//! Memory hierarchy timing: L1I/L1D → L2 bus → L2 → front-side bus → SDRAM.
//!
//! Latency *and contention* are modeled at every level, as the paper
//! requires (§4): the L2 bus (at core frequency, Table 4.1 varies its
//! width) and the front-side bus (Table 4.1 varies its frequency) are
//! occupancy-tracked resources, so bursts of misses queue behind each
//! other; outstanding misses to the same block merge MSHR-style.

use crate::cache::Cache;
use crate::config::{DerivedTiming, SimConfig, WritePolicy};
use crate::dram::Sdram;
use std::collections::HashMap;

/// Statistics of one simulation's memory system activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MemoryStats {
    /// L1I misses.
    pub l1i_misses: u64,
    /// L1I accesses.
    pub l1i_accesses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L1D accesses.
    pub l1d_accesses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// L2 accesses.
    pub l2_accesses: u64,
    /// Core cycles the L2 bus was occupied.
    pub l2_bus_busy: u64,
    /// Core cycles the FSB was occupied.
    pub fsb_busy: u64,
    /// Dirty write-backs from L1D to L2.
    pub l1_writebacks: u64,
    /// Dirty write-backs from L2 to memory.
    pub l2_writebacks: u64,
    /// Next-line prefetches issued into the L1D.
    pub prefetches: u64,
}

/// The full cache/bus/DRAM timing model.
#[derive(Debug, Clone)]
pub struct MemoryHierarchy {
    l1i: Cache,
    l1d: Cache,
    l2: Cache,
    timing: DerivedTiming,
    l1d_policy: WritePolicy,
    prefetch_nextline: bool,
    sdram: Sdram,
    /// Next cycle the L2 bus is free.
    l2_bus_free: u64,
    /// Next cycle the front-side bus is free.
    fsb_free: u64,
    /// Outstanding L1D misses: block -> fill-complete cycle (MSHR merge).
    outstanding: HashMap<u64, u64>,
    stats: MemoryStats,
}

impl MemoryHierarchy {
    /// Builds the hierarchy for a validated configuration.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails validation; call [`SimConfig::derive`]
    /// first if validity is uncertain.
    pub fn new(config: &SimConfig) -> Self {
        let timing = config.derive().expect("validated config");
        let sdram = if config.sdram_banks == 0 {
            Sdram::flat(timing.dram_cycles)
        } else {
            Sdram::banked(timing.dram_cycles, config.sdram_banks)
        };
        Self {
            sdram,
            l1i: Cache::new(config.l1i),
            l1d: Cache::new(config.l1d),
            l2: Cache::new(config.l2),
            timing,
            l1d_policy: config.l1d.write_policy,
            prefetch_nextline: config.prefetch_nextline,
            l2_bus_free: 0,
            fsb_free: 0,
            outstanding: HashMap::new(),
            stats: MemoryStats::default(),
        }
    }

    /// Accumulated statistics.
    pub fn stats(&self) -> MemoryStats {
        let mut s = self.stats;
        s.l1i_accesses = self.l1i.hits() + self.l1i.misses();
        s.l1i_misses = self.l1i.misses();
        s.l1d_accesses = self.l1d.hits() + self.l1d.misses();
        s.l1d_misses = self.l1d.misses();
        s.l2_accesses = self.l2.hits() + self.l2.misses();
        s.l2_misses = self.l2.misses();
        s
    }

    /// Derived timing constants in use.
    pub fn timing(&self) -> DerivedTiming {
        self.timing
    }

    /// Occupies the L2 bus for `cycles` starting no earlier than `earliest`;
    /// returns the completion cycle.
    fn l2_bus_transfer(&mut self, earliest: u64, cycles: u64) -> u64 {
        let start = earliest.max(self.l2_bus_free);
        self.l2_bus_free = start + cycles;
        self.stats.l2_bus_busy += cycles;
        start + cycles
    }

    /// Occupies the FSB for `cycles` starting no earlier than `earliest`;
    /// returns the cycle the *data* is fully delivered (bus occupancy plus
    /// SDRAM latency overlaps: the bus is held for the transfer only).
    fn fsb_transfer(&mut self, earliest: u64, cycles: u64) -> u64 {
        let start = earliest.max(self.fsb_free);
        self.fsb_free = start + cycles;
        self.stats.fsb_busy += cycles;
        start + cycles
    }

    /// The DRAM + FSB leg of an L2 miss; returns data-delivered cycle.
    fn memory_trip(&mut self, addr: u64, lookup_done: u64) -> u64 {
        // SDRAM access begins at lookup completion (command over the
        // address lines), then the block crosses the FSB.
        let data_at_dram = self.sdram.access(addr, lookup_done);
        self.fsb_transfer(data_at_dram, self.timing.fsb_block_cycles)
    }

    /// An L2 lookup for a block requested at `cycle`; returns the cycle the
    /// block is available at the L2's output. Handles L2 dirty evictions
    /// (extra FSB traffic).
    fn access_l2(&mut self, block: u64, cycle: u64, write: bool) -> u64 {
        let lookup_done = cycle + self.timing.l2_lat;
        let outcome = self.l2.access(block, write, true);
        if outcome.hit {
            return lookup_done;
        }
        let done = self.memory_trip(block, lookup_done);
        if outcome.writeback.is_some() {
            self.stats.l2_writebacks += 1;
            // The victim's write-back occupies the FSB after the fill.
            let cycles = self.timing.fsb_block_cycles;
            self.fsb_transfer(done, cycles);
        }
        done
    }

    /// Timing of a demand load issued at `cycle`; returns data-ready cycle.
    pub fn load(&mut self, addr: u64, cycle: u64) -> u64 {
        let block = self.l1d.block_of(addr);
        let l1_done = cycle + self.timing.l1d_lat;
        let outcome = self.l1d.access(addr, false, true);
        if outcome.hit {
            // The line was allocated by an earlier miss; if its fill is
            // still in flight this is a delayed hit that completes with the
            // primary miss (MSHR merge).
            if let Some(&ready) = self.outstanding.get(&block) {
                if ready > l1_done {
                    return ready;
                }
            }
            return l1_done;
        }
        // The L1 fill may evict a dirty line: write-back traffic to L2.
        if outcome.writeback.is_some() {
            self.stats.l1_writebacks += 1;
            let cycles = self.timing.l2_bus_l1_block;
            self.l2_bus_transfer(cycle, cycles);
        }
        // L1 miss path: L2 lookup, then block crosses the L2 bus.
        let l2_out = self.access_l2(block, l1_done, false);
        let ready = self.l2_bus_transfer(l2_out, self.timing.l2_bus_l1_block);
        self.outstanding.insert(block, ready);
        if self.prefetch_nextline {
            self.prefetch(block + self.l1d.block_bytes(), ready);
        }
        if self.outstanding.len() > 4096 {
            self.outstanding.retain(|_, &mut r| r > cycle);
        }
        ready
    }

    /// Issues a next-line prefetch of `block` into the L1D, starting no
    /// earlier than `after` (prefetches yield to the demand fill). Only
    /// L2-resident lines are prefetched — speculative DRAM traffic would
    /// compete with demand misses for the front-side bus. The prefetched
    /// line is treated as another outstanding miss so demand loads that
    /// arrive before the fill merge with it instead of paying the full
    /// miss again.
    fn prefetch(&mut self, block: u64, after: u64) {
        if self.l1d.probe(block) || self.outstanding.contains_key(&block) || !self.l2.probe(block) {
            return;
        }
        self.stats.prefetches += 1;
        let l2_out = self.access_l2(block, after, false);
        let done = self.l2_bus_transfer(l2_out, self.timing.l2_bus_l1_block);
        if self.l1d.fill(block).is_some() {
            self.stats.l1_writebacks += 1;
            let cycles = self.timing.l2_bus_l1_block;
            self.l2_bus_transfer(done, cycles);
        }
        self.outstanding.insert(block, done);
    }

    /// Timing effects of a committed store at `cycle`.
    ///
    /// Stores retire through a store buffer, so no completion latency is
    /// returned; only cache state and bus occupancy are updated.
    pub fn store(&mut self, addr: u64, cycle: u64) {
        match self.l1d_policy {
            WritePolicy::WriteBack => {
                let outcome = self.l1d.access(addr, true, true);
                if !outcome.hit {
                    // Write-allocate: fetch the block (read-for-ownership).
                    let block = self.l1d.block_of(addr);
                    let l2_out = self.access_l2(block, cycle + self.timing.l1d_lat, false);
                    self.l2_bus_transfer(l2_out, self.timing.l2_bus_l1_block);
                }
                if outcome.writeback.is_some() {
                    self.stats.l1_writebacks += 1;
                    self.l2_bus_transfer(cycle, self.timing.l2_bus_l1_block);
                }
            }
            WritePolicy::WriteThrough => {
                // Update L1 on hit, no allocate on miss; data always goes to
                // the L2, consuming L2 bus bandwidth per store.
                self.l1d.access(addr, true, false);
                let store_cycles = self.timing.l2_bus_store;
                self.l2_bus_transfer(cycle, store_cycles);
                let block = self.l1d.block_of(addr);
                self.access_l2(block, cycle, true);
            }
        }
    }

    /// Timing of an instruction fetch of the block containing `pc` at
    /// `cycle`; returns fetch-complete cycle.
    pub fn fetch(&mut self, pc: u64, cycle: u64) -> u64 {
        let l1_done = cycle + self.timing.l1i_lat;
        if self.l1i.access(pc, false, true).hit {
            return l1_done;
        }
        let block = self.l1i.block_of(pc);
        let l2_out = self.access_l2(block, l1_done, false);
        self.l2_bus_transfer(l2_out, self.timing.l2_bus_l1i_block)
    }

    /// Whether the L1I currently holds the block containing `pc` (no state
    /// change).
    pub fn l1i_has(&self, pc: u64) -> bool {
        self.l1i.probe(pc)
    }

    /// Block address in L1I terms.
    pub fn l1i_block_of(&self, pc: u64) -> u64 {
        self.l1i.block_of(pc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheParams, SimConfig};

    fn cfg() -> SimConfig {
        SimConfig::default()
    }

    #[test]
    fn l1_hit_costs_l1_latency() {
        let mut m = MemoryHierarchy::new(&cfg());
        let t = m.timing();
        m.load(0x1000_0000, 0); // cold miss fills
        let ready = m.load(0x1000_0000, 1000);
        assert_eq!(ready, 1000 + t.l1d_lat);
    }

    #[test]
    fn cold_miss_pays_dram_and_buses() {
        let mut m = MemoryHierarchy::new(&cfg());
        let t = m.timing();
        let ready = m.load(0x1000_0000, 0);
        let expected =
            t.l1d_lat + t.l2_lat + t.dram_cycles + t.fsb_block_cycles + t.l2_bus_l1_block;
        assert_eq!(ready, expected);
    }

    #[test]
    fn l2_hit_skips_dram() {
        let mut m = MemoryHierarchy::new(&cfg());
        let t = m.timing();
        m.load(0x1000_0000, 0); // now in L1 and L2
                                // Evict from L1 only: touch conflicting blocks. Easier: a second
                                // address in the same L2 block but a different L1 block is an L1
                                // miss + L2 hit (L1 blocks 32B, L2 blocks 64B).
        let ready = m.load(0x1000_0020, 10_000);
        assert_eq!(ready, 10_000 + t.l1d_lat + t.l2_lat + t.l2_bus_l1_block);
    }

    #[test]
    fn concurrent_misses_queue_on_fsb() {
        let mut m = MemoryHierarchy::new(&cfg());
        // Two cold misses to distinct L2 blocks at the same cycle: the
        // second's FSB transfer must queue behind the first's.
        let r1 = m.load(0x1000_0000, 0);
        let r2 = m.load(0x2000_0000, 0);
        assert!(r2 > r1, "second miss must queue: {r2} !> {r1}");
        assert_eq!(r2 - r1, m.timing().fsb_block_cycles);
    }

    #[test]
    fn mshr_merges_same_block_misses() {
        let mut m = MemoryHierarchy::new(&cfg());
        let r1 = m.load(0x1000_0000, 0);
        let r2 = m.load(0x1000_0008, 1); // same 32B block, still in flight
        assert_eq!(r2, r1, "merged miss completes with the primary");
        // And no extra FSB occupancy was charged.
        assert_eq!(m.stats().fsb_busy, m.timing().fsb_block_cycles);
    }

    #[test]
    fn write_through_store_consumes_l2_bus() {
        let mut wt_cfg = cfg();
        wt_cfg.l1d.write_policy = WritePolicy::WriteThrough;
        let mut m = MemoryHierarchy::new(&wt_cfg);
        m.load(0x1000_0000, 0); // warm L2
        let busy_before = m.stats().l2_bus_busy;
        for i in 0..10 {
            m.store(0x1000_0000 + i * 8, 5000 + i * 10);
        }
        let busy = m.stats().l2_bus_busy - busy_before;
        assert!(busy >= 10, "10 WT stores must occupy the bus, got {busy}");
    }

    #[test]
    fn write_back_batches_store_traffic() {
        // WB: repeated stores to one resident block cost no bus traffic.
        let mut m = MemoryHierarchy::new(&cfg());
        m.load(0x1000_0000, 0);
        let busy_before = m.stats().l2_bus_busy;
        for i in 0..10 {
            m.store(0x1000_0000, 5000 + i * 10);
        }
        assert_eq!(m.stats().l2_bus_busy, busy_before);
    }

    #[test]
    fn dirty_eviction_generates_writeback_traffic() {
        let mut small_cfg = cfg();
        small_cfg.l1d = CacheParams::write_back(1024, 1, 32); // 32 sets
        let mut m = MemoryHierarchy::new(&small_cfg);
        m.store(0x1000_0000, 0); // dirty line (write-allocate)
                                 // Conflicting block (same set): 32 sets * 32B stride = 1024. The
                                 // load's fill evicts the dirty line: write-back traffic.
        m.load(0x1000_0000 + 1024, 10_000);
        assert_eq!(m.stats().l1_writebacks, 1);
        // A store to another conflicting block evicts the (clean) loaded
        // line: no additional write-back.
        m.store(0x1000_0000 + 2048, 20_000);
        assert_eq!(m.stats().l1_writebacks, 1);
    }

    #[test]
    fn narrow_l2_bus_slows_l1_fills() {
        let mut narrow = cfg();
        narrow.l2_bus_bytes = 8;
        let mut wide = cfg();
        wide.l2_bus_bytes = 32;
        let mut mn = MemoryHierarchy::new(&narrow);
        let mut mw = MemoryHierarchy::new(&wide);
        let rn = mn.load(0x1000_0000, 0);
        let rw = mw.load(0x1000_0000, 0);
        assert!(rn > rw);
    }

    #[test]
    fn slower_fsb_raises_miss_latency() {
        let mut slow = cfg();
        slow.fsb_ghz = 0.533;
        let mut fast = cfg();
        fast.fsb_ghz = 1.4;
        let rs = MemoryHierarchy::new(&slow).load(0x1000_0000, 0);
        let rf = MemoryHierarchy::new(&fast).load(0x1000_0000, 0);
        assert!(rs > rf);
    }

    #[test]
    fn instruction_fetch_uses_l1i() {
        let mut m = MemoryHierarchy::new(&cfg());
        let t = m.timing();
        let cold = m.fetch(0x0040_0000, 0);
        assert!(cold > t.l1i_lat);
        let warm = m.fetch(0x0040_0000, 10_000);
        assert_eq!(warm, 10_000 + t.l1i_lat);
        assert_eq!(m.stats().l1i_misses, 1);
    }
}

#[cfg(test)]
mod prefetch_tests {
    use super::*;
    use crate::config::SimConfig;
    use archpredict_workloads::{Benchmark, TraceGenerator};

    #[test]
    fn nextline_prefetch_hides_strided_misses() {
        // applu's strided sweeps are the prefetcher's best case.
        let on = SimConfig {
            prefetch_nextline: true,
            ..SimConfig::default()
        };
        let off = SimConfig::default();
        let generator = TraceGenerator::new(Benchmark::Applu);
        let run = |cfg: &SimConfig| {
            crate::simulate_with_warmup(cfg, generator.interval(0), 8_000, 16_000)
        };
        let with = run(&on);
        let without = run(&off);
        assert!(
            with.l1d_misses < without.l1d_misses,
            "prefetch should cut strided misses: {} vs {}",
            with.l1d_misses,
            without.l1d_misses
        );
        assert!(
            with.ipc() >= without.ipc() * 0.99,
            "{} vs {}",
            with.ipc(),
            without.ipc()
        );
    }

    #[test]
    fn prefetch_counter_only_moves_when_enabled() {
        let mut m = MemoryHierarchy::new(&SimConfig::default());
        m.load(0x1000_0000, 0);
        assert_eq!(m.stats().prefetches, 0);
        let cfg = SimConfig {
            prefetch_nextline: true,
            ..SimConfig::default()
        };
        let mut m = MemoryHierarchy::new(&cfg);
        m.load(0x1000_0000, 0);
        assert_eq!(m.stats().prefetches, 1);
        // The prefetched next line is now a (delayed) hit, not a new miss.
        let _ready = m.load(0x1000_0000 + 32, 1);
        assert_eq!(m.stats().prefetches, 1, "no cascade on the merged hit");
    }
}
