//! The cycle-by-cycle out-of-order execution engine.
//!
//! Each cycle proceeds commit → issue → dispatch → fetch (so a newly
//! dispatched instruction issues at the earliest one cycle later, and a
//! newly issued one commits no earlier than its completion cycle). The
//! engine models:
//!
//! * a fetch unit limited by fetch width, taken branches, I-cache misses,
//!   BTB misses, and branch mispredictions (front end redirects when the
//!   branch *resolves*, plus the frequency-derived minimum penalty);
//! * dispatch limited by ROB, load/store queues, physical registers, and
//!   the in-flight branch cap;
//! * out-of-order issue limited by issue width, per-family functional-unit
//!   throughput, and load/store ports, with wakeup driven by the trace's
//!   producer–consumer dependency distances;
//! * in-order commit limited by commit width, with stores draining to the
//!   memory hierarchy at commit time.

use crate::branch::{Btb, TournamentPredictor};
use crate::config::{FuThroughput, SimConfig};
use crate::memory::MemoryHierarchy;
use crate::result::SimResult;
use archpredict_workloads::{Instruction, OpClass};
use std::collections::VecDeque;

/// Completion-time ring size; must exceed ROB size + maximum dependency
/// distance by a comfortable margin.
const RING: usize = 8192;

/// Execution latencies (cycles) by op family; loads add memory time.
const LAT_INT_ALU: u64 = 1;
const LAT_INT_MUL: u64 = 8;
const LAT_FP_ALU: u64 = 4;
const LAT_FP_MUL: u64 = 6;
const LAT_AGEN: u64 = 1;
const LAT_BRANCH: u64 = 1;

/// Front-end bubble when a predicted-taken branch misses in the BTB.
const BTB_BUBBLE: u64 = 2;

#[derive(Debug, Clone, Copy)]
struct Snapshot {
    cycle: u64,
    committed: u64,
    branches: u64,
    mispredicts: u64,
    btb_misses: u64,
    fetch_stall_cycles: u64,
    stall_icache: u64,
    stall_branch: u64,
    stall_btb: u64,
    mem: crate::memory::MemoryStats,
}

#[derive(Debug, Clone, Copy)]
struct RobEntry {
    seq: u64,
    op: OpClass,
    addr: u64,
    dep1: u64, // producer sequence numbers; u64::MAX = none
    dep2: u64,
    issued: bool,
    complete: u64,
    mispredicted: bool,
}

#[derive(Debug)]
pub(crate) struct Engine<I: Iterator<Item = Instruction>> {
    cfg: SimConfig,
    fu: FuThroughput,
    mem: MemoryHierarchy,
    predictor: TournamentPredictor,
    btb: Btb,
    trace: I,
    pending: Option<Instruction>,
    trace_done: bool,

    rob: VecDeque<RobEntry>,
    fetch_q: VecDeque<(Instruction, bool)>, // (instr, mispredicted)
    complete_at: Vec<u64>,

    int_regs_free: u32,
    fp_regs_free: u32,
    loads_free: u32,
    stores_free: u32,
    branches_free: u32,

    cycle: u64,
    seq: u64,
    committed: u64,
    target: u64,
    warmup: u64,
    warmup_snapshot: Option<Snapshot>,

    fetch_stall_until: u64,
    stalled_on_branch: Option<u64>,
    last_fetch_block: u64,

    branches: u64,
    mispredicts: u64,
    btb_misses: u64,
    fetch_stall_cycles: u64,
    stall_cause: StallCause,
    stall_icache: u64,
    stall_branch: u64,
    stall_btb: u64,
}

/// Why the front end is currently stalled (for cycle attribution).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum StallCause {
    None,
    Icache,
    Branch,
    Btb,
}

impl<I: Iterator<Item = Instruction>> Engine<I> {
    pub(crate) fn new(cfg: &SimConfig, trace: I, target: u64) -> Self {
        Self::with_warmup(cfg, trace, 0, target)
    }

    /// Like `new`, but the first `warmup` committed instructions warm the
    /// caches and predictors without being counted in the result.
    pub(crate) fn with_warmup(cfg: &SimConfig, trace: I, warmup: u64, measured: u64) -> Self {
        let mem = MemoryHierarchy::new(cfg);
        Self {
            fu: cfg.fu_throughput(),
            predictor: TournamentPredictor::new(cfg.predictor_entries),
            btb: Btb::new(cfg.btb_sets),
            mem,
            trace,
            pending: None,
            trace_done: false,
            rob: VecDeque::with_capacity(cfg.rob_size as usize),
            fetch_q: VecDeque::with_capacity(2 * cfg.width as usize + 8),
            complete_at: vec![0; RING],
            int_regs_free: cfg.int_regs,
            fp_regs_free: cfg.fp_regs,
            loads_free: cfg.lsq_loads,
            stores_free: cfg.lsq_stores,
            branches_free: cfg.max_branches,
            cycle: 0,
            seq: 0,
            committed: 0,
            target: warmup + measured,
            warmup,
            warmup_snapshot: None,
            fetch_stall_until: 0,
            stalled_on_branch: None,
            last_fetch_block: u64::MAX,
            branches: 0,
            mispredicts: 0,
            btb_misses: 0,
            fetch_stall_cycles: 0,
            stall_cause: StallCause::None,
            stall_icache: 0,
            stall_branch: 0,
            stall_btb: 0,
            cfg: cfg.clone(),
        }
    }

    pub(crate) fn run(mut self) -> SimResult {
        let mut last_progress = (0u64, 0u64); // (cycle, committed)
        while self.committed < self.target {
            self.cycle += 1;
            let committed = self.commit();
            let (issued, blocked) = self.issue();
            let dispatched = self.dispatch();
            let q_before = self.fetch_q.len();
            self.fetch();
            let fetched = self.fetch_q.len() != q_before;
            // Idle-cycle skip: when nothing moved and nothing is ready, jump
            // to the next known event (a completion or a fetch redirect).
            // Stall counters are advanced as if the cycles had been stepped.
            if committed == 0 && issued == 0 && dispatched == 0 && !fetched && !blocked {
                if let Some(next) = self.next_event() {
                    if next > self.cycle + 1 {
                        let skipped = next - 1 - self.cycle;
                        if self.stalled_on_branch.is_some() || self.cycle < self.fetch_stall_until {
                            self.charge_stall(skipped);
                        }
                        self.cycle = next - 1;
                    }
                }
            }
            if self.warmup_snapshot.is_none() && self.committed >= self.warmup {
                self.warmup_snapshot = Some(Snapshot {
                    cycle: self.cycle,
                    committed: self.committed,
                    branches: self.branches,
                    mispredicts: self.mispredicts,
                    btb_misses: self.btb_misses,
                    fetch_stall_cycles: self.fetch_stall_cycles,
                    stall_icache: self.stall_icache,
                    stall_branch: self.stall_branch,
                    stall_btb: self.stall_btb,
                    mem: self.mem.stats(),
                });
            }
            if self.trace_exhausted() && self.rob.is_empty() && self.fetch_q.is_empty() {
                break;
            }
            // Forward-progress watchdog: a structural deadlock is a
            // simulator bug and must be loud, not a hang.
            if self.committed > last_progress.1 {
                last_progress = (self.cycle, self.committed);
            } else {
                assert!(
                    self.cycle - last_progress.0 < 1_000_000,
                    "simulator deadlock at cycle {} ({} committed)",
                    self.cycle,
                    self.committed
                );
            }
        }
        let base = self.warmup_snapshot.unwrap_or(Snapshot {
            cycle: 0,
            committed: 0,
            branches: 0,
            mispredicts: 0,
            btb_misses: 0,
            fetch_stall_cycles: 0,
            stall_icache: 0,
            stall_branch: 0,
            stall_btb: 0,
            mem: crate::memory::MemoryStats::default(),
        });
        let mem = self.mem.stats();
        SimResult {
            instructions: self.committed - base.committed,
            cycles: self.cycle - base.cycle,
            l1i_misses: mem.l1i_misses - base.mem.l1i_misses,
            l1d_misses: mem.l1d_misses - base.mem.l1d_misses,
            l2_misses: mem.l2_misses - base.mem.l2_misses,
            branches: self.branches - base.branches,
            mispredicts: self.mispredicts - base.mispredicts,
            btb_misses: self.btb_misses - base.btb_misses,
            l2_bus_busy: mem.l2_bus_busy - base.mem.l2_bus_busy,
            fsb_busy: mem.fsb_busy - base.mem.fsb_busy,
            fetch_stall_cycles: self.fetch_stall_cycles - base.fetch_stall_cycles,
            icache_stall_cycles: self.stall_icache - base.stall_icache,
            branch_stall_cycles: self.stall_branch - base.stall_branch,
            btb_stall_cycles: self.stall_btb - base.stall_btb,
        }
    }

    fn trace_exhausted(&self) -> bool {
        self.trace_done && self.pending.is_none()
    }

    fn commit(&mut self) -> u32 {
        let mut committed = 0;
        for _ in 0..self.cfg.width {
            if self.committed >= self.target {
                break;
            }
            let Some(front) = self.rob.front() else { break };
            if !front.issued || front.complete > self.cycle {
                break;
            }
            let entry = self.rob.pop_front().expect("checked front");
            match entry.op {
                OpClass::Store => {
                    self.mem.store(entry.addr, self.cycle);
                    self.stores_free += 1;
                }
                OpClass::Load => {
                    self.loads_free += 1;
                    self.int_regs_free += 1;
                }
                OpClass::Branch => {
                    self.branches_free += 1;
                }
                OpClass::FpAlu | OpClass::FpMul => {
                    self.fp_regs_free += 1;
                }
                OpClass::IntAlu | OpClass::IntMul => {
                    self.int_regs_free += 1;
                }
            }
            self.committed += 1;
            committed += 1;
        }
        committed
    }

    fn dep_ready(&self, dep: u64) -> bool {
        dep == u64::MAX || self.complete_at[(dep % RING as u64) as usize] <= self.cycle
    }

    /// Returns `(issued, ready_but_blocked)`.
    fn issue(&mut self) -> (u32, bool) {
        let mut issued = 0u32;
        let mut blocked = false;
        let mut int_used = 0u32;
        let mut fp_used = 0u32;
        let mut mul_used = 0u32;
        let mut loads_used = 0u32;
        let mut stores_used = 0u32;
        let cycle = self.cycle;
        for i in 0..self.rob.len() {
            if issued >= self.cfg.width {
                blocked = true;
                break;
            }
            let e = self.rob[i];
            if e.issued || !self.dep_ready(e.dep1) || !self.dep_ready(e.dep2) {
                continue;
            }
            let complete = match e.op {
                OpClass::IntAlu => {
                    if int_used >= self.fu.int_alu {
                        blocked = true;
                        continue;
                    }
                    int_used += 1;
                    cycle + LAT_INT_ALU
                }
                OpClass::IntMul => {
                    if mul_used >= self.fu.mul {
                        blocked = true;
                        continue;
                    }
                    mul_used += 1;
                    cycle + LAT_INT_MUL
                }
                OpClass::FpAlu => {
                    if fp_used >= self.fu.fp {
                        blocked = true;
                        continue;
                    }
                    fp_used += 1;
                    cycle + LAT_FP_ALU
                }
                OpClass::FpMul => {
                    if fp_used >= self.fu.fp {
                        blocked = true;
                        continue;
                    }
                    fp_used += 1;
                    cycle + LAT_FP_MUL
                }
                OpClass::Load => {
                    if loads_used >= self.cfg.load_ports {
                        blocked = true;
                        continue;
                    }
                    loads_used += 1;
                    self.mem.load(e.addr, cycle + LAT_AGEN)
                }
                OpClass::Store => {
                    if stores_used >= self.cfg.store_ports {
                        blocked = true;
                        continue;
                    }
                    stores_used += 1;
                    cycle + LAT_AGEN
                }
                OpClass::Branch => {
                    if int_used >= self.fu.int_alu {
                        blocked = true;
                        continue;
                    }
                    int_used += 1;
                    cycle + LAT_BRANCH
                }
            };
            let entry = &mut self.rob[i];
            entry.issued = true;
            entry.complete = complete;
            self.complete_at[(entry.seq % RING as u64) as usize] = complete;
            if entry.mispredicted && self.stalled_on_branch == Some(entry.seq) {
                // Redirect the front end when the branch resolves, plus the
                // frequency-derived minimum pipeline-refill penalty.
                let penalty = self.mem.timing().mispredict_penalty;
                self.fetch_stall_until = complete + penalty;
                self.stall_cause = StallCause::Branch;
                self.stalled_on_branch = None;
            }
            issued += 1;
        }
        (issued, blocked)
    }

    /// Earliest future cycle at which anything can change, used to skip
    /// idle cycles. `None` when no bound is known.
    fn next_event(&self) -> Option<u64> {
        let mut t = u64::MAX;
        if let Some(front) = self.rob.front() {
            if front.issued {
                t = t.min(front.complete);
            }
        }
        for e in &self.rob {
            if e.issued {
                continue;
            }
            let dep_time = |dep: u64| -> Option<u64> {
                if dep == u64::MAX {
                    Some(0)
                } else {
                    let c = self.complete_at[(dep % RING as u64) as usize];
                    if c == u64::MAX {
                        None // producer not yet issued: unbounded here
                    } else {
                        Some(c)
                    }
                }
            };
            if let (Some(a), Some(b)) = (dep_time(e.dep1), dep_time(e.dep2)) {
                t = t.min(a.max(b).max(self.cycle + 1));
            }
        }
        if self.stalled_on_branch.is_none() && self.cycle < self.fetch_stall_until {
            t = t.min(self.fetch_stall_until);
        }
        if t == u64::MAX {
            None
        } else {
            Some(t)
        }
    }

    fn dispatch(&mut self) -> u32 {
        let mut dispatched = 0;
        for _ in 0..self.cfg.width {
            if self.rob.len() >= self.cfg.rob_size as usize {
                break;
            }
            let Some(&(instr, mispredicted)) = self.fetch_q.front() else {
                break;
            };
            // Structural resources.
            match instr.op {
                OpClass::Load => {
                    if self.loads_free == 0 || self.int_regs_free == 0 {
                        break;
                    }
                    self.loads_free -= 1;
                    self.int_regs_free -= 1;
                }
                OpClass::Store => {
                    if self.stores_free == 0 {
                        break;
                    }
                    self.stores_free -= 1;
                }
                OpClass::Branch => {
                    if self.branches_free == 0 {
                        break;
                    }
                    self.branches_free -= 1;
                }
                OpClass::FpAlu | OpClass::FpMul => {
                    if self.fp_regs_free == 0 {
                        break;
                    }
                    self.fp_regs_free -= 1;
                }
                OpClass::IntAlu | OpClass::IntMul => {
                    if self.int_regs_free == 0 {
                        break;
                    }
                    self.int_regs_free -= 1;
                }
            }
            self.fetch_q.pop_front();
            let seq = self.seq;
            self.seq += 1;
            self.complete_at[(seq % RING as u64) as usize] = u64::MAX;
            let dep_seq = |d: u32| {
                if d == 0 {
                    u64::MAX
                } else {
                    seq.checked_sub(d as u64).unwrap_or(u64::MAX)
                }
            };
            self.rob.push_back(RobEntry {
                seq,
                op: instr.op,
                addr: instr.addr,
                dep1: dep_seq(instr.dep1),
                dep2: dep_seq(instr.dep2),
                issued: false,
                complete: u64::MAX,
                mispredicted,
            });
            dispatched += 1;
        }
        dispatched
    }

    fn next_instr(&mut self) -> Option<Instruction> {
        if let Some(i) = self.pending.take() {
            return Some(i);
        }
        let next = self.trace.next();
        if next.is_none() {
            self.trace_done = true;
        }
        next
    }

    fn charge_stall(&mut self, cycles: u64) {
        self.fetch_stall_cycles += cycles;
        match self.stall_cause {
            StallCause::Icache => self.stall_icache += cycles,
            StallCause::Btb => self.stall_btb += cycles,
            // Waiting on an unresolved mispredicted branch, or in its
            // post-resolution refill window.
            StallCause::Branch | StallCause::None => self.stall_branch += cycles,
        }
    }

    fn fetch(&mut self) {
        if self.stalled_on_branch.is_some() {
            self.stall_cause = StallCause::Branch;
            self.charge_stall(1);
            return;
        }
        if self.cycle < self.fetch_stall_until {
            self.charge_stall(1);
            return;
        }
        self.stall_cause = StallCause::None;
        let cap = 2 * self.cfg.width as usize + 8;
        let mut fetched = 0;
        while fetched < self.cfg.width && self.fetch_q.len() < cap {
            let Some(instr) = self.next_instr() else {
                break;
            };
            // Instruction cache: one access per new block.
            let block = self.mem.l1i_block_of(instr.pc);
            if block != self.last_fetch_block {
                if self.mem.l1i_has(instr.pc) {
                    self.mem.fetch(instr.pc, self.cycle);
                    self.last_fetch_block = block;
                } else {
                    let ready = self.mem.fetch(instr.pc, self.cycle);
                    self.last_fetch_block = block;
                    self.fetch_stall_until = ready;
                    self.stall_cause = StallCause::Icache;
                    self.pending = Some(instr);
                    return;
                }
            }
            fetched += 1;
            if instr.op == OpClass::Branch {
                self.branches += 1;
                let predicted = self.predictor.predict_and_update(instr.pc, instr.taken);
                let mispredicted = predicted != instr.taken;
                let mut ends_group = false;
                if predicted {
                    // Need a target from the BTB; a miss costs a bubble.
                    if !self.btb.lookup_and_update(instr.pc, instr.target) {
                        self.btb_misses += 1;
                        self.fetch_stall_until = self.cycle + BTB_BUBBLE;
                        self.stall_cause = StallCause::Btb;
                    }
                    ends_group = true; // taken branches end the fetch group
                }
                self.fetch_q.push_back((instr, mispredicted));
                if mispredicted {
                    self.mispredicts += 1;
                    // Fetch goes down the wrong path; it resumes when the
                    // branch resolves (see `issue`).
                    self.stalled_on_branch = Some(self.seq + self.fetch_q.len() as u64 - 1);
                    return;
                }
                if ends_group {
                    return;
                }
            } else {
                self.fetch_q.push_back((instr, false));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate;
    use archpredict_workloads::{Benchmark, TraceGenerator};

    fn run(cfg: &SimConfig, benchmark: Benchmark, n: u64) -> SimResult {
        let generator = TraceGenerator::new(benchmark);
        crate::simulate_with_warmup(cfg, generator.interval(0), n / 2, n)
    }

    #[test]
    fn deterministic() {
        let cfg = SimConfig::default();
        let a = run(&cfg, Benchmark::Gzip, 5000);
        let b = run(&cfg, Benchmark::Gzip, 5000);
        assert_eq!(a, b);
    }

    #[test]
    fn commits_exactly_target() {
        let cfg = SimConfig::default();
        let r = run(&cfg, Benchmark::Mesa, 3000);
        assert_eq!(r.instructions, 3000);
        assert!(r.cycles > 0);
    }

    #[test]
    fn ipc_is_bounded_by_width() {
        let cfg = SimConfig::default();
        for b in Benchmark::ALL {
            let r = run(&cfg, b, 8000);
            let ipc = r.ipc();
            assert!(
                ipc > 0.02 && ipc <= cfg.width as f64,
                "{}: ipc {ipc}",
                b.name()
            );
        }
    }

    #[test]
    fn memory_bound_app_has_low_ipc() {
        let cfg = SimConfig::default();
        let mcf = run(&cfg, Benchmark::Mcf, 8000);
        let gzip = run(&cfg, Benchmark::Gzip, 8000);
        assert!(
            mcf.ipc() < gzip.ipc(),
            "mcf {} should trail gzip {}",
            mcf.ipc(),
            gzip.ipc()
        );
    }

    #[test]
    fn bigger_l1d_helps_cache_sensitive_app() {
        let mut small = SimConfig::default();
        small.l1d.capacity_bytes = 8 * 1024;
        let mut large = SimConfig::default();
        large.l1d.capacity_bytes = 64 * 1024;
        let rs = run(&small, Benchmark::Twolf, 10_000);
        let rl = run(&large, Benchmark::Twolf, 10_000);
        assert!(rs.l1d_misses > rl.l1d_misses);
        assert!(rl.ipc() > rs.ipc(), "{} !> {}", rl.ipc(), rs.ipc());
    }

    #[test]
    fn bigger_l2_helps_l2_sensitive_app() {
        let mut small = SimConfig::default();
        small.l2.capacity_bytes = 256 * 1024;
        let mut large = SimConfig::default();
        large.l2.capacity_bytes = 2048 * 1024;
        let rs = run(&small, Benchmark::Equake, 12_000);
        let rl = run(&large, Benchmark::Equake, 12_000);
        assert!(rs.l2_misses > rl.l2_misses);
    }

    #[test]
    fn wider_machine_is_not_slower() {
        let narrow = SimConfig {
            width: 4,
            ..SimConfig::default()
        };
        let wide = SimConfig {
            width: 8,
            functional_units: 8,
            ..SimConfig::default()
        };
        let rn = run(&narrow, Benchmark::Mgrid, 8000);
        let rw = run(&wide, Benchmark::Mgrid, 8000);
        assert!(rw.ipc() >= rn.ipc() * 0.98, "{} vs {}", rw.ipc(), rn.ipc());
    }

    #[test]
    fn branch_stats_are_sane() {
        let cfg = SimConfig::default();
        let r = run(&cfg, Benchmark::Crafty, 10_000);
        assert!(r.branches > 500);
        let rate = r.mispredict_rate();
        assert!((0.01..0.40).contains(&rate), "rate {rate}");
    }

    #[test]
    fn frequency_tradeoff_materializes() {
        // At 2 GHz memory is relatively closer: IPC should be at least as
        // high as at 4 GHz for a memory-bound code.
        let slow = SimConfig {
            freq_ghz: 2.0,
            ..SimConfig::default()
        };
        let fast = SimConfig {
            freq_ghz: 4.0,
            ..SimConfig::default()
        };
        let r2 = run(&slow, Benchmark::Mcf, 8000);
        let r4 = run(&fast, Benchmark::Mcf, 8000);
        assert!(r2.ipc() >= r4.ipc(), "{} vs {}", r2.ipc(), r4.ipc());
    }

    #[test]
    fn write_policy_changes_behavior() {
        let wb = SimConfig::default();
        let mut wt = SimConfig::default();
        wt.l1d.write_policy = crate::config::WritePolicy::WriteThrough;
        let rb = run(&wb, Benchmark::Gzip, 8000);
        let rt = run(&wt, Benchmark::Gzip, 8000);
        assert_ne!(rb.cycles, rt.cycles);
        assert!(rt.l2_bus_busy > rb.l2_bus_busy, "WT must add bus traffic");
    }

    #[test]
    fn stall_attribution_sums_and_responds() {
        let cfg = SimConfig::default();
        let r = run(&cfg, Benchmark::Crafty, 10_000);
        assert_eq!(
            r.fetch_stall_cycles,
            r.icache_stall_cycles + r.branch_stall_cycles + r.btb_stall_cycles,
            "attribution must partition the total"
        );
        // crafty is branchy with a large code footprint: both major causes
        // must register.
        assert!(r.branch_stall_cycles > 0);
        // A tiny L1I must shift stalls toward the I-cache.
        let mut small_icache = SimConfig::default();
        small_icache.l1i.capacity_bytes = 8 * 1024;
        small_icache.l1i.associativity = 1;
        let rs = run(&small_icache, Benchmark::Crafty, 10_000);
        assert!(
            rs.icache_stall_cycles > r.icache_stall_cycles,
            "{} !> {}",
            rs.icache_stall_cycles,
            r.icache_stall_cycles
        );
    }

    #[test]
    fn banked_sdram_helps_streaming_workloads() {
        let flat = SimConfig::default();
        let banked = SimConfig {
            sdram_banks: 8,
            ..SimConfig::default()
        };
        let rf = run(&flat, Benchmark::Applu, 10_000);
        let rb = run(&banked, Benchmark::Applu, 10_000);
        // applu streams rows: the open-row model must not be slower, and
        // usually wins outright.
        assert!(
            rb.ipc() >= rf.ipc() * 0.98,
            "banked {} vs flat {}",
            rb.ipc(),
            rf.ipc()
        );
    }

    #[test]
    fn finite_trace_drains() {
        let cfg = SimConfig::default();
        let generator = TraceGenerator::new(Benchmark::Gzip);
        let trace: Vec<_> = generator.interval(0).take(500).collect();
        let r = simulate(&cfg, trace.into_iter(), 10_000);
        assert_eq!(r.instructions, 500);
    }
}
