//! Cycle-level out-of-order processor and memory-hierarchy simulator.
//!
//! This crate plays the role SESC plays in the paper (§4): a detailed,
//! execution-ordered timing model of an out-of-order core and its memory
//! subsystem, with latency and contention modeled at all levels. It is
//! trace-driven — instruction streams come from `archpredict-workloads` —
//! which is sufficient here because every parameter the paper varies
//! (Tables 4.1/4.2) is a *timing* parameter, not a functional one.
//!
//! Modeled structures:
//!
//! * fetch/issue/commit-width-limited pipeline with a reorder buffer,
//!   separate load/store queues, physical register files, and an in-flight
//!   branch cap;
//! * per-family functional-unit throughput (integer ALU / FP / multiply);
//! * 21264-style tournament branch predictor and a 2-way BTB;
//! * L1I/L1D/L2 set-associative caches (write-through or write-back L1D),
//!   an occupancy-tracked L2 bus at core frequency, an occupancy-tracked
//!   front-side bus, and fixed-latency SDRAM;
//! * cache latencies derived from geometry via `archpredict-cacti`, and a
//!   branch misprediction penalty derived from core frequency.
//!
//! # Example
//!
//! ```
//! use archpredict_sim::{simulate, SimConfig};
//! use archpredict_workloads::{Benchmark, TraceGenerator};
//!
//! let config = SimConfig::default();
//! let generator = TraceGenerator::new(Benchmark::Gzip);
//! let result = simulate(&config, generator.interval(0), 2000);
//! assert_eq!(result.instructions, 2000);
//! assert!(result.ipc() > 0.0);
//! ```

pub mod branch;
pub mod cache;
pub mod config;
pub mod dram;
mod engine;
pub mod memory;
pub mod result;

pub use config::{CacheParams, ConfigError, DerivedTiming, SimConfig, WritePolicy};
pub use result::SimResult;

use archpredict_workloads::Instruction;

/// Runs the simulator: commits up to `instructions` instructions from
/// `trace` under `config`, returning timing and event statistics.
///
/// If the trace ends early, the pipeline drains and the result reports the
/// instructions actually committed.
///
/// # Panics
///
/// Panics if `config` is invalid (validate with [`SimConfig::derive`]
/// first when configurations come from untrusted input) or if the engine
/// detects an internal deadlock (a simulator bug, not a user error).
pub fn simulate<I>(config: &SimConfig, trace: I, instructions: u64) -> SimResult
where
    I: Iterator<Item = Instruction>,
{
    engine::Engine::new(config, trace, instructions).run()
}

/// Like [`simulate`], but commits `warmup` instructions first to warm
/// caches and predictors; statistics cover only the following `measured`
/// instructions. This is the standard remedy for compulsory-miss bias when
/// measuring short traces.
///
/// # Panics
///
/// Same conditions as [`simulate`].
pub fn simulate_with_warmup<I>(
    config: &SimConfig,
    trace: I,
    warmup: u64,
    measured: u64,
) -> SimResult
where
    I: Iterator<Item = Instruction>,
{
    engine::Engine::with_warmup(config, trace, warmup, measured).run()
}
