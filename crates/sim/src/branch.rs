//! Branch direction prediction and target buffering.
//!
//! [`TournamentPredictor`] models the Alpha 21264 scheme the paper fixes
//! (Table 4.1) and scales (Table 4.2: 1K/2K/4K entries): a local predictor
//! (per-branch history indexing saturating counters), a global predictor
//! (path history indexing saturating counters), and a chooser that learns
//! which component to trust per history. [`Btb`] models the 2-way
//! set-associative branch target buffer (Table 4.2: 1K/2K sets).

/// Two-bit saturating counter helper.
#[inline]
fn bump(counter: &mut u8, up: bool, max: u8) {
    if up {
        if *counter < max {
            *counter += 1;
        }
    } else if *counter > 0 {
        *counter -= 1;
    }
}

/// 21264-style tournament branch direction predictor.
///
/// `entries` scales all three tables together, matching the paper's single
/// "Branch Predictor: 1K, 2K, 4K entries" knob.
#[derive(Debug, Clone)]
pub struct TournamentPredictor {
    /// Per-branch local history registers (10 bits each).
    local_history: Vec<u16>,
    /// Local prediction counters (3-bit), indexed by local history.
    local_counters: Vec<u8>,
    /// Global prediction counters (2-bit), indexed by global history.
    global_counters: Vec<u8>,
    /// Chooser counters (2-bit), indexed by global history:
    /// high = trust global.
    chooser: Vec<u8>,
    global_history: u32,
    entries_mask: u32,
    mispredicts: u64,
    lookups: u64,
}

impl TournamentPredictor {
    /// Creates a predictor with `entries` entries per table.
    ///
    /// # Panics
    ///
    /// Panics if `entries` is not a nonzero power of two.
    pub fn new(entries: u32) -> Self {
        assert!(
            entries.is_power_of_two() && entries > 0,
            "entries must be a nonzero power of two"
        );
        Self {
            local_history: vec![0; entries as usize],
            local_counters: vec![3; entries as usize],
            global_counters: vec![1; entries as usize],
            chooser: vec![1; entries as usize],
            global_history: 0,
            entries_mask: entries - 1,
            mispredicts: 0,
            lookups: 0,
        }
    }

    /// Predicts the direction of the branch at `pc`, then updates all
    /// tables with the actual `taken` outcome. Returns the prediction.
    ///
    /// Trace-driven simulators resolve the outcome immediately; the timing
    /// model charges the misprediction penalty separately.
    pub fn predict_and_update(&mut self, pc: u64, taken: bool) -> bool {
        self.lookups += 1;
        let local_idx = ((pc >> 2) as u32 & self.entries_mask) as usize;
        let history = self.local_history[local_idx];
        let local_idx2 = (history as u32 & self.entries_mask) as usize;
        let local_pred = self.local_counters[local_idx2] >= 4;
        let global_idx = (self.global_history & self.entries_mask) as usize;
        let global_pred = self.global_counters[global_idx] >= 2;
        let use_global = self.chooser[global_idx] >= 2;
        let prediction = if use_global { global_pred } else { local_pred };

        // Chooser trains toward whichever component was right (when they
        // disagree).
        if global_pred != local_pred {
            bump(&mut self.chooser[global_idx], global_pred == taken, 3);
        }
        bump(&mut self.local_counters[local_idx2], taken, 7);
        bump(&mut self.global_counters[global_idx], taken, 3);
        self.local_history[local_idx] = ((history << 1) | taken as u16) & 0x3FF;
        self.global_history = (self.global_history << 1) | taken as u32;

        if prediction != taken {
            self.mispredicts += 1;
        }
        prediction
    }

    /// Mispredictions recorded so far.
    pub fn mispredicts(&self) -> u64 {
        self.mispredicts
    }

    /// Lookups recorded so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

/// 2-way set-associative branch target buffer.
#[derive(Debug, Clone)]
pub struct Btb {
    /// `(tag, target)` pairs; two ways per set, way 0 is MRU.
    entries: Vec<[(u64, u64); 2]>,
    sets_mask: u64,
    misses: u64,
    lookups: u64,
}

impl Btb {
    /// Creates a BTB with `sets` sets (2-way).
    ///
    /// # Panics
    ///
    /// Panics if `sets` is not a nonzero power of two.
    pub fn new(sets: u32) -> Self {
        assert!(
            sets.is_power_of_two() && sets > 0,
            "sets must be a nonzero power of two"
        );
        Self {
            entries: vec![[(u64::MAX, 0); 2]; sets as usize],
            sets_mask: (sets - 1) as u64,
            misses: 0,
            lookups: 0,
        }
    }

    /// Looks up the target for the taken branch at `pc` and installs
    /// `target` on a miss. Returns whether the lookup hit with the correct
    /// target (a miss costs the front end a bubble).
    pub fn lookup_and_update(&mut self, pc: u64, target: u64) -> bool {
        self.lookups += 1;
        let set = ((pc >> 2) & self.sets_mask) as usize;
        let ways = &mut self.entries[set];
        let hit = if ways[0].0 == pc && ways[0].1 == target {
            true
        } else if ways[1].0 == pc && ways[1].1 == target {
            ways.swap(0, 1); // promote to MRU
            true
        } else {
            // Install/replace: update in place if tag matches with stale
            // target, else evict LRU (way 1).
            if ways[0].0 == pc {
                ways[0].1 = target;
            } else if ways[1].0 == pc {
                ways[1].1 = target;
                ways.swap(0, 1);
            } else {
                ways[1] = (pc, target);
                ways.swap(0, 1);
            }
            false
        };
        if !hit {
            self.misses += 1;
        }
        hit
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }

    /// Lookups recorded so far.
    pub fn lookups(&self) -> u64 {
        self.lookups
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archpredict_stats::rng::Xoshiro256;

    #[test]
    fn learns_always_taken_branch() {
        let mut p = TournamentPredictor::new(1024);
        for _ in 0..64 {
            p.predict_and_update(0x400100, true);
        }
        let before = p.mispredicts();
        for _ in 0..1000 {
            p.predict_and_update(0x400100, true);
        }
        assert_eq!(p.mispredicts(), before, "warmed-up biased branch is free");
    }

    #[test]
    fn learns_short_loop_pattern_via_local_history() {
        // Pattern: taken 7x then not-taken, repeating. Local 10-bit history
        // captures it perfectly after warmup.
        let mut p = TournamentPredictor::new(4096);
        let mut phase = 0;
        for _ in 0..2000 {
            let taken = phase != 7;
            phase = (phase + 1) % 8;
            p.predict_and_update(0x400200, taken);
        }
        let before = p.mispredicts();
        for _ in 0..800 {
            let taken = phase != 7;
            phase = (phase + 1) % 8;
            p.predict_and_update(0x400200, taken);
        }
        let new = p.mispredicts() - before;
        assert!(
            new < 40,
            "periodic branch should be nearly perfect, got {new}/800"
        );
    }

    #[test]
    fn random_branches_mispredict_about_half() {
        let mut p = TournamentPredictor::new(4096);
        let mut rng = Xoshiro256::seed_from(3);
        let n = 20_000;
        for _ in 0..n {
            p.predict_and_update(0x400300, rng.chance(0.5));
        }
        let rate = p.mispredicts() as f64 / n as f64;
        assert!((0.40..0.60).contains(&rate), "rate {rate}");
    }

    #[test]
    fn smaller_predictor_suffers_more_aliasing() {
        // Many static branches with distinct biases: a small table aliases.
        let run = |entries: u32| {
            let mut p = TournamentPredictor::new(entries);
            let mut rng = Xoshiro256::seed_from(9);
            for _ in 0..60_000 {
                let b = rng.below(4096);
                let pc = 0x400000 + b * 4;
                // Hash-derived fixed direction so branches that alias in a
                // small table usually disagree (destructive aliasing).
                let taken = b.wrapping_mul(0x9E37_79B9_7F4A_7C15) >> 63 == 1;
                p.predict_and_update(pc, taken);
            }
            p.mispredicts()
        };
        let small = run(1024);
        let large = run(4096);
        assert!(
            small > large,
            "1K-entry ({small}) should mispredict more than 4K ({large})"
        );
    }

    #[test]
    fn btb_miss_then_hit() {
        let mut b = Btb::new(1024);
        assert!(!b.lookup_and_update(0x400100, 0x400800));
        assert!(b.lookup_and_update(0x400100, 0x400800));
        assert_eq!(b.misses(), 1);
    }

    #[test]
    fn btb_detects_stale_target() {
        let mut b = Btb::new(1024);
        b.lookup_and_update(0x400100, 0x400800);
        assert!(!b.lookup_and_update(0x400100, 0x400900), "target changed");
        assert!(b.lookup_and_update(0x400100, 0x400900));
    }

    #[test]
    fn btb_two_way_keeps_two_conflicting_branches() {
        let mut b = Btb::new(16);
        // Same set: pcs differing by sets*4 = 64.
        let (p1, p2, p3) = (0x1000, 0x1040, 0x1080);
        b.lookup_and_update(p1, 1);
        b.lookup_and_update(p2, 2);
        assert!(b.lookup_and_update(p1, 1));
        assert!(b.lookup_and_update(p2, 2));
        // Third conflicting branch evicts LRU (p1).
        b.lookup_and_update(p3, 3);
        assert!(!b.lookup_and_update(p1, 1));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_sizes_panic() {
        TournamentPredictor::new(1000);
    }
}
