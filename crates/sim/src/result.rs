//! Simulation results and statistics.

/// Outcome of one simulation run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimResult {
    /// Instructions committed.
    pub instructions: u64,
    /// Cycles elapsed.
    pub cycles: u64,
    /// L1I misses.
    pub l1i_misses: u64,
    /// L1D misses.
    pub l1d_misses: u64,
    /// L2 misses.
    pub l2_misses: u64,
    /// Conditional branches executed.
    pub branches: u64,
    /// Branch direction mispredictions.
    pub mispredicts: u64,
    /// BTB misses on predicted-taken branches.
    pub btb_misses: u64,
    /// Core cycles the L2 bus was busy.
    pub l2_bus_busy: u64,
    /// Core cycles the front-side bus was busy.
    pub fsb_busy: u64,
    /// Cycles the front end was stalled (I-cache misses, mispredictions,
    /// BTB bubbles).
    pub fetch_stall_cycles: u64,
    /// Front-end stall cycles attributed to instruction-cache misses.
    pub icache_stall_cycles: u64,
    /// Front-end stall cycles attributed to branch mispredictions
    /// (resolution wait plus pipeline refill).
    pub branch_stall_cycles: u64,
    /// Front-end stall cycles attributed to BTB-miss bubbles.
    pub btb_stall_cycles: u64,
}

impl SimResult {
    /// Instructions per cycle.
    pub fn ipc(&self) -> f64 {
        if self.cycles == 0 {
            0.0
        } else {
            self.instructions as f64 / self.cycles as f64
        }
    }

    /// Branch misprediction rate (0 when no branches ran).
    pub fn mispredict_rate(&self) -> f64 {
        if self.branches == 0 {
            0.0
        } else {
            self.mispredicts as f64 / self.branches as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ipc_and_rates() {
        let r = SimResult {
            instructions: 1000,
            cycles: 500,
            l1i_misses: 0,
            l1d_misses: 0,
            l2_misses: 0,
            branches: 100,
            mispredicts: 5,
            btb_misses: 0,
            l2_bus_busy: 0,
            fsb_busy: 0,
            fetch_stall_cycles: 0,
            icache_stall_cycles: 0,
            branch_stall_cycles: 0,
            btb_stall_cycles: 0,
        };
        assert_eq!(r.ipc(), 2.0);
        assert_eq!(r.mispredict_rate(), 0.05);
    }

    #[test]
    fn zero_cycles_is_safe() {
        let r = SimResult {
            instructions: 0,
            cycles: 0,
            l1i_misses: 0,
            l1d_misses: 0,
            l2_misses: 0,
            branches: 0,
            mispredicts: 0,
            btb_misses: 0,
            l2_bus_busy: 0,
            fsb_busy: 0,
            fetch_stall_cycles: 0,
            icache_stall_cycles: 0,
            branch_stall_cycles: 0,
            btb_stall_cycles: 0,
        };
        assert_eq!(r.ipc(), 0.0);
        assert_eq!(r.mispredict_rate(), 0.0);
    }
}
