//! SDRAM timing: the paper's flat 100 ns device, plus an optional
//! open-row, bank-aware model.
//!
//! Both studies fix "SDRAM 100 ns" (Tables 4.1/4.2), which the flat model
//! reproduces exactly. The banked model is an extension in the spirit of
//! the paper's motivation (Jacob's "DRAM issues at the system level" is
//! its example of an intractable study): each bank tracks its open row, so
//! row-buffer hits are fast, row conflicts pay precharge + activate, and
//! concurrent misses to different banks overlap while same-bank misses
//! serialize.

/// Row-buffer size assumed by the banked model.
const ROW_BYTES_LOG2: u32 = 12; // 4 KB rows

/// SDRAM device timing model.
#[derive(Debug, Clone, PartialEq)]
pub struct Sdram {
    /// Per-bank (open row, busy-until cycle); empty = flat model.
    banks: Vec<(u64, u64)>,
    bank_mask: u64,
    /// Flat access latency in core cycles (also the row-miss baseline).
    flat_cycles: u64,
    /// Row-buffer hit latency (CAS only).
    hit_cycles: u64,
    /// Row conflict latency (precharge + activate + CAS).
    conflict_cycles: u64,
    row_hits: u64,
    row_conflicts: u64,
}

impl Sdram {
    /// Flat fixed-latency device (the paper's model).
    pub fn flat(latency_cycles: u64) -> Self {
        Self {
            banks: Vec::new(),
            bank_mask: 0,
            flat_cycles: latency_cycles,
            hit_cycles: latency_cycles,
            conflict_cycles: latency_cycles,
            row_hits: 0,
            row_conflicts: 0,
        }
    }

    /// Bank-aware device: row hits cost ~40 % of the flat latency, row
    /// conflicts ~130 % (precharge + activate), distinct banks overlap.
    ///
    /// # Panics
    ///
    /// Panics if `banks` is not a nonzero power of two.
    pub fn banked(latency_cycles: u64, banks: u32) -> Self {
        assert!(
            banks > 0 && banks.is_power_of_two(),
            "banks must be a nonzero power of two"
        );
        Self {
            banks: vec![(u64::MAX, 0); banks as usize],
            bank_mask: (banks - 1) as u64,
            flat_cycles: latency_cycles,
            hit_cycles: (latency_cycles * 2 / 5).max(1),
            conflict_cycles: latency_cycles * 13 / 10,
            row_hits: 0,
            row_conflicts: 0,
        }
    }

    /// Whether the bank-aware model is active.
    pub fn is_banked(&self) -> bool {
        !self.banks.is_empty()
    }

    /// Row-buffer hits observed (banked model only).
    pub fn row_hits(&self) -> u64 {
        self.row_hits
    }

    /// Row conflicts observed (banked model only).
    pub fn row_conflicts(&self) -> u64 {
        self.row_conflicts
    }

    /// Services a block read for `addr` arriving at `at`; returns the cycle
    /// the data leaves the device.
    pub fn access(&mut self, addr: u64, at: u64) -> u64 {
        if self.banks.is_empty() {
            return at + self.flat_cycles;
        }
        let bank = ((addr >> ROW_BYTES_LOG2) & self.bank_mask) as usize;
        let row = addr >> (ROW_BYTES_LOG2 + self.bank_mask.count_ones());
        let (open_row, busy_until) = self.banks[bank];
        let start = at.max(busy_until);
        let latency = if open_row == row {
            self.row_hits += 1;
            self.hit_cycles
        } else {
            self.row_conflicts += 1;
            self.conflict_cycles
        };
        let done = start + latency;
        self.banks[bank] = (row, done);
        done
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flat_model_is_constant_latency() {
        let mut d = Sdram::flat(400);
        assert_eq!(d.access(0x0, 100), 500);
        assert_eq!(d.access(0xFFFF_FFFF, 100), 500);
        assert!(!d.is_banked());
    }

    #[test]
    fn row_hits_are_fast() {
        let mut d = Sdram::banked(400, 8);
        let first = d.access(0x1000_0000, 0); // conflict (cold)
        let second = d.access(0x1000_0040, first); // same 4KB row
        assert!(second - first < first, "row hit must be cheaper than open");
        assert_eq!(d.row_hits(), 1);
        assert_eq!(d.row_conflicts(), 1);
    }

    #[test]
    fn different_banks_overlap_same_bank_serializes() {
        let mut d = Sdram::banked(400, 8);
        // Two cold accesses to different banks at the same instant overlap.
        let a = d.access(0x0000_0000, 0);
        let b = d.access(0x0000_1000, 0); // next bank (4KB row stride)
        assert_eq!(a, b, "independent banks service in parallel");
        // Two different rows of one bank serialize.
        let mut d = Sdram::banked(400, 8);
        let a = d.access(0x0000_0000, 0);
        let c = d.access(0x0010_0000, 0); // same bank, different row
        assert!(c > a, "same-bank conflict must queue: {c} vs {a}");
    }

    #[test]
    fn streaming_mostly_row_hits() {
        let mut d = Sdram::banked(400, 8);
        let mut at = 0;
        for i in 0..64u64 {
            at = d.access(0x2000_0000 + i * 64, at);
        }
        // 4KB row / 64B blocks = 64 accesses per row: one conflict, 63 hits.
        assert_eq!(d.row_conflicts(), 1);
        assert_eq!(d.row_hits(), 63);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_bank_count_panics() {
        Sdram::banked(400, 3);
    }
}
