//! Set-associative cache state with true LRU replacement.
//!
//! This module models cache *contents* (hit/miss behavior, dirty state,
//! evictions); timing (latencies, bus occupancy) is composed on top by
//! [`crate::memory`].

use crate::config::CacheParams;

/// Outcome of a cache access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessOutcome {
    /// Whether the block was present.
    pub hit: bool,
    /// Block address of a dirty line evicted to make room (write-back
    /// traffic the caller must account for).
    pub writeback: Option<u64>,
}

#[derive(Debug, Clone, Copy, Default)]
struct Line {
    tag: u64,
    valid: bool,
    dirty: bool,
    /// Monotonic last-use stamp for LRU.
    lru: u64,
}

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct Cache {
    lines: Vec<Line>,
    sets: u64,
    ways: usize,
    block_shift: u32,
    stamp: u64,
    hits: u64,
    misses: u64,
}

impl Cache {
    /// Builds an empty cache from parameters.
    ///
    /// # Panics
    ///
    /// Panics if the geometry is invalid; validate via
    /// [`CacheParams::geometry`] first (the simulator's config derivation
    /// does this).
    pub fn new(params: CacheParams) -> Self {
        let geometry = params.geometry().expect("validated geometry");
        let sets = geometry.sets();
        let ways = params.associativity as usize;
        Self {
            lines: vec![Line::default(); (sets as usize) * ways],
            sets,
            ways,
            block_shift: params.block_bytes.trailing_zeros(),
            stamp: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Block address (address with offset bits cleared) of `addr`.
    #[inline]
    pub fn block_of(&self, addr: u64) -> u64 {
        addr >> self.block_shift << self.block_shift
    }

    /// Line size in bytes.
    #[inline]
    pub fn block_bytes(&self) -> u64 {
        1 << self.block_shift
    }

    #[inline]
    fn set_of(&self, addr: u64) -> u64 {
        (addr >> self.block_shift) % self.sets
    }

    #[inline]
    fn tag_of(&self, addr: u64) -> u64 {
        addr >> self.block_shift
    }

    /// Looks up `addr` without modifying replacement or content state.
    pub fn probe(&self, addr: u64) -> bool {
        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        self.lines[set * self.ways..(set + 1) * self.ways]
            .iter()
            .any(|l| l.valid && l.tag == tag)
    }

    /// Accesses `addr`. On a miss with `allocate`, fills the block (evicting
    /// LRU). `write` marks the line dirty when it ends up present.
    pub fn access(&mut self, addr: u64, write: bool, allocate: bool) -> AccessOutcome {
        self.stamp += 1;
        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        let set_lines = &mut self.lines[base..base + self.ways];

        if let Some(line) = set_lines.iter_mut().find(|l| l.valid && l.tag == tag) {
            line.lru = self.stamp;
            line.dirty |= write;
            self.hits += 1;
            return AccessOutcome {
                hit: true,
                writeback: None,
            };
        }
        self.misses += 1;
        if !allocate {
            return AccessOutcome {
                hit: false,
                writeback: None,
            };
        }
        // Victim: an invalid way if any, else true LRU.
        let victim = set_lines
            .iter()
            .enumerate()
            .min_by_key(|(_, l)| if l.valid { l.lru + 1 } else { 0 })
            .map(|(i, _)| i)
            .expect("nonzero ways");
        let line = &mut set_lines[victim];
        let writeback = if line.valid && line.dirty {
            Some(line.tag << self.block_shift)
        } else {
            None
        };
        *line = Line {
            tag,
            valid: true,
            dirty: write,
            lru: self.stamp,
        };
        AccessOutcome {
            hit: false,
            writeback,
        }
    }

    /// Fills `addr`'s block without touching the hit/miss counters —
    /// prefetch fills are not demand accesses. Returns a dirty victim's
    /// block address, as [`Cache::access`] does.
    pub fn fill(&mut self, addr: u64) -> Option<u64> {
        let hits = self.hits;
        let misses = self.misses;
        let outcome = self.access(addr, false, true);
        self.hits = hits;
        self.misses = misses;
        outcome.writeback
    }

    /// Invalidates `addr` if present, returning whether it was dirty.
    pub fn invalidate(&mut self, addr: u64) -> bool {
        let set = self.set_of(addr) as usize;
        let tag = self.tag_of(addr);
        let base = set * self.ways;
        for line in &mut self.lines[base..base + self.ways] {
            if line.valid && line.tag == tag {
                line.valid = false;
                return line.dirty;
            }
        }
        false
    }

    /// Hits recorded so far.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Misses recorded so far.
    pub fn misses(&self) -> u64 {
        self.misses
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{CacheParams, WritePolicy};

    fn tiny(ways: u32) -> Cache {
        // 4 sets x `ways` x 32B blocks.
        Cache::new(CacheParams {
            capacity_bytes: 4 * ways as u64 * 32,
            associativity: ways,
            block_bytes: 32,
            write_policy: WritePolicy::WriteBack,
        })
    }

    #[test]
    fn miss_then_hit_after_fill() {
        let mut c = tiny(2);
        assert!(!c.access(0x1000, false, true).hit);
        assert!(c.access(0x1000, false, true).hit);
        assert!(c.access(0x101f, false, true).hit, "same 32B block");
        assert!(!c.access(0x1020, false, true).hit, "next block");
        assert_eq!(c.hits(), 2);
        assert_eq!(c.misses(), 2);
    }

    #[test]
    fn lru_evicts_least_recent() {
        let mut c = tiny(2);
        // Three conflicting blocks in set 0 (set stride = 4 sets * 32B = 128B).
        let (a, b, d) = (0x0000, 0x0080, 0x0100);
        c.access(a, false, true);
        c.access(b, false, true);
        c.access(a, false, true); // a most recent
        c.access(d, false, true); // evicts b
        assert!(c.probe(a));
        assert!(!c.probe(b));
        assert!(c.probe(d));
    }

    #[test]
    fn dirty_eviction_reports_writeback() {
        let mut c = tiny(1);
        c.access(0x0000, true, true); // dirty fill
        let out = c.access(0x0080, false, true); // conflicts, evicts dirty
        assert_eq!(out.writeback, Some(0x0000));
        // Clean eviction reports none.
        let out = c.access(0x0100, false, true);
        assert_eq!(out.writeback, None);
    }

    #[test]
    fn no_allocate_leaves_cache_unchanged() {
        let mut c = tiny(2);
        let out = c.access(0x2000, true, false);
        assert!(!out.hit);
        assert!(!c.probe(0x2000));
    }

    #[test]
    fn write_hit_marks_dirty() {
        let mut c = tiny(1);
        c.access(0x0000, false, true); // clean fill
        c.access(0x0008, true, true); // write hit -> dirty
        let out = c.access(0x0080, false, true);
        assert_eq!(out.writeback, Some(0x0000));
    }

    #[test]
    fn invalidate_removes_and_reports_dirty() {
        let mut c = tiny(2);
        c.access(0x0000, true, true);
        assert!(c.invalidate(0x0000));
        assert!(!c.probe(0x0000));
        assert!(!c.invalidate(0x0000), "already gone");
    }

    #[test]
    fn probe_does_not_touch_lru() {
        let mut c = tiny(2);
        let (a, b, d) = (0x0000, 0x0080, 0x0100);
        c.access(a, false, true);
        c.access(b, false, true);
        // Probing `a` must not refresh it: next fill still evicts `a`.
        assert!(c.probe(a));
        c.access(d, false, true);
        assert!(!c.probe(a));
        assert!(c.probe(b));
    }

    #[test]
    fn block_of_masks_offset() {
        let c = tiny(2);
        assert_eq!(c.block_of(0x1234), 0x1220);
    }
}
