//! Simulator configuration.
//!
//! [`SimConfig`] carries every parameter of the paper's two design spaces
//! (Tables 4.1 and 4.2) plus the fixed machine parameters. Cache latencies
//! and the branch misprediction penalty are *derived* — via the CACTI-style
//! model and the frequency rule the paper describes — rather than set by
//! hand, so a configuration is fully determined by its architectural knobs.

use archpredict_cacti::{access_time_ns, cycles_at_ghz, CacheGeometry, GeometryError};

/// L1 data cache write policy (Table 4.1 varies this).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WritePolicy {
    /// Write-through, no write-allocate: stores propagate to L2.
    WriteThrough,
    /// Write-back, write-allocate: dirty lines written on eviction.
    WriteBack,
}

impl std::fmt::Display for WritePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            WritePolicy::WriteThrough => "WT",
            WritePolicy::WriteBack => "WB",
        })
    }
}

/// Geometry + policy of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheParams {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Ways per set.
    pub associativity: u32,
    /// Line size in bytes.
    pub block_bytes: u32,
    /// Write policy (only meaningful for the L1 data cache; L2 is
    /// write-back, per Table 4.2).
    pub write_policy: WritePolicy,
}

impl CacheParams {
    /// Write-back cache with the given geometry.
    pub fn write_back(capacity_bytes: u64, associativity: u32, block_bytes: u32) -> Self {
        Self {
            capacity_bytes,
            associativity,
            block_bytes,
            write_policy: WritePolicy::WriteBack,
        }
    }

    /// Validated CACTI geometry for this cache.
    ///
    /// # Errors
    ///
    /// Propagates [`GeometryError`] for invalid dimensions.
    pub fn geometry(&self) -> Result<CacheGeometry, GeometryError> {
        CacheGeometry::new(self.capacity_bytes, self.associativity, self.block_bytes)
    }
}

/// Full machine configuration.
///
/// Defaults (via [`SimConfig::default`]) reproduce the *fixed* machine of
/// the memory-system study (right side of Table 4.1): a 4 GHz, 4-wide
/// out-of-order core with a 128-entry ROB, 96+96 registers, 48/48 LSQ,
/// 2/2 load-store units, a 32 KB 2-cycle L1I, tournament predictor, 100 ns
/// SDRAM, and a 64-bit 800 MHz front-side bus.
#[derive(Debug, Clone, PartialEq)]
pub struct SimConfig {
    /// Core clock in GHz (Table 4.2 varies 2 and 4).
    pub freq_ghz: f64,
    /// Fetch = issue = commit width in instructions (Tables 4.1/4.2).
    pub width: u32,
    /// Reorder buffer entries.
    pub rob_size: u32,
    /// Integer physical registers beyond the architectural set.
    pub int_regs: u32,
    /// FP physical registers beyond the architectural set.
    pub fp_regs: u32,
    /// Load-queue entries.
    pub lsq_loads: u32,
    /// Store-queue entries.
    pub lsq_stores: u32,
    /// Maximum branches in flight (Table 4.2 varies 16/32).
    pub max_branches: u32,
    /// Total simple functional units; integer ALU throughput equals this,
    /// FP throughput is half, multiply/divide a quarter (minimum one each).
    pub functional_units: u32,
    /// Load ports per cycle (fixed 2 in both studies).
    pub load_ports: u32,
    /// Store ports per cycle (fixed 2 in both studies).
    pub store_ports: u32,
    /// Tournament (21264-style) predictor capacity in entries per table.
    pub predictor_entries: u32,
    /// Branch target buffer sets (2-way, per Table 4.2).
    pub btb_sets: u32,
    /// L1 instruction cache.
    pub l1i: CacheParams,
    /// L1 data cache.
    pub l1d: CacheParams,
    /// Unified L2 cache (write-back).
    pub l2: CacheParams,
    /// L2 bus width in bytes (Table 4.1 varies 8/16/32; runs at core clock).
    pub l2_bus_bytes: u32,
    /// Front-side bus frequency in GHz (Table 4.1 varies 0.533/0.8/1.4).
    pub fsb_ghz: f64,
    /// Front-side bus width in bytes (64 bits in both studies).
    pub fsb_bytes: u32,
    /// SDRAM access latency in nanoseconds (100 ns in both studies).
    pub sdram_ns: f64,
    /// Next-line L1D prefetch on demand misses (an extension knob; both
    /// paper studies run with it disabled).
    pub prefetch_nextline: bool,
    /// SDRAM banks for the open-row-aware memory model (an extension knob;
    /// `0` selects the paper's flat 100 ns SDRAM). Must be a power of two.
    pub sdram_banks: u32,
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            freq_ghz: 4.0,
            width: 4,
            rob_size: 128,
            int_regs: 96,
            fp_regs: 96,
            lsq_loads: 48,
            lsq_stores: 48,
            max_branches: 32,
            functional_units: 4,
            load_ports: 2,
            store_ports: 2,
            predictor_entries: 4096,
            btb_sets: 2048,
            l1i: CacheParams::write_back(32 * 1024, 2, 32),
            l1d: CacheParams::write_back(32 * 1024, 4, 32),
            l2: CacheParams::write_back(1024 * 1024, 8, 64),
            l2_bus_bytes: 32,
            fsb_ghz: 0.8,
            fsb_bytes: 8,
            sdram_ns: 100.0,
            prefetch_nextline: false,
            sdram_banks: 0,
        }
    }
}

impl SimConfig {
    /// Validates the configuration and computes all derived timing
    /// parameters.
    ///
    /// # Errors
    ///
    /// Returns [`ConfigError`] for zero/invalid fields or cache geometries.
    pub fn derive(&self) -> Result<DerivedTiming, ConfigError> {
        if !(self.freq_ghz > 0.0 && self.freq_ghz.is_finite()) {
            return Err(ConfigError::Frequency(self.freq_ghz));
        }
        if !(self.fsb_ghz > 0.0 && self.fsb_ghz.is_finite()) {
            return Err(ConfigError::Frequency(self.fsb_ghz));
        }
        for (field, v) in [
            ("width", self.width),
            ("rob_size", self.rob_size),
            ("int_regs", self.int_regs),
            ("fp_regs", self.fp_regs),
            ("lsq_loads", self.lsq_loads),
            ("lsq_stores", self.lsq_stores),
            ("max_branches", self.max_branches),
            ("functional_units", self.functional_units),
            ("load_ports", self.load_ports),
            ("store_ports", self.store_ports),
            ("l2_bus_bytes", self.l2_bus_bytes),
            ("fsb_bytes", self.fsb_bytes),
        ] {
            if v == 0 {
                return Err(ConfigError::ZeroField(field));
            }
        }
        if !self.predictor_entries.is_power_of_two() {
            return Err(ConfigError::PredictorEntries(self.predictor_entries));
        }
        if !self.btb_sets.is_power_of_two() {
            return Err(ConfigError::BtbSets(self.btb_sets));
        }
        if self.sdram_ns <= 0.0 || !self.sdram_ns.is_finite() {
            return Err(ConfigError::SdramLatency(self.sdram_ns));
        }
        if self.sdram_banks != 0 && !self.sdram_banks.is_power_of_two() {
            return Err(ConfigError::SdramBanks(self.sdram_banks));
        }
        let l1i = self.l1i.geometry().map_err(ConfigError::L1i)?;
        let l1d = self.l1d.geometry().map_err(ConfigError::L1d)?;
        let l2 = self.l2.geometry().map_err(ConfigError::L2)?;
        if self.l2.block_bytes < self.l1d.block_bytes || self.l2.block_bytes < self.l1i.block_bytes
        {
            return Err(ConfigError::BlockInversion);
        }

        let l1i_lat = cycles_at_ghz(access_time_ns(l1i), self.freq_ghz) as u64;
        let l1d_lat = cycles_at_ghz(access_time_ns(l1d), self.freq_ghz) as u64;
        let l2_lat = cycles_at_ghz(access_time_ns(l2), self.freq_ghz) as u64;
        // Minimum branch misprediction penalty scales with pipeline depth,
        // i.e. with frequency: 11 cycles at 2 GHz, 20 at 4 GHz (paper §4).
        let mispredict_penalty = ((5.0 * self.freq_ghz).round() as u64).max(11);
        let dram_cycles = (self.sdram_ns * self.freq_ghz).ceil() as u64;
        // FSB transfer of one L2 block, in core cycles.
        let fsb_beats = self.l2.block_bytes.div_ceil(self.fsb_bytes) as f64;
        let fsb_block_cycles = (fsb_beats * self.freq_ghz / self.fsb_ghz).ceil() as u64;
        // L2-bus transfer (runs at core frequency) of one L1 block.
        let l2_bus_l1_block = self.l1d.block_bytes.div_ceil(self.l2_bus_bytes) as u64;
        let l2_bus_l1i_block = self.l1i.block_bytes.div_ceil(self.l2_bus_bytes) as u64;
        // A write-through store moves 8 bytes over the L2 bus.
        let l2_bus_store = 8u32.div_ceil(self.l2_bus_bytes) as u64;

        Ok(DerivedTiming {
            l1i_lat,
            l1d_lat,
            l2_lat,
            mispredict_penalty,
            dram_cycles,
            fsb_block_cycles,
            l2_bus_l1_block,
            l2_bus_l1i_block,
            l2_bus_store,
        })
    }

    /// Issue throughput per op family, derived from `functional_units`.
    pub fn fu_throughput(&self) -> FuThroughput {
        FuThroughput {
            int_alu: self.functional_units,
            fp: (self.functional_units / 2).max(1),
            mul: (self.functional_units / 4).max(1),
        }
    }
}

/// Per-cycle issue limits per functional-unit family.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FuThroughput {
    /// Integer ALU operations per cycle.
    pub int_alu: u32,
    /// FP operations per cycle.
    pub fp: u32,
    /// Multiply/divide operations per cycle.
    pub mul: u32,
}

/// Timing values derived from a [`SimConfig`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DerivedTiming {
    /// L1I hit latency in cycles.
    pub l1i_lat: u64,
    /// L1D hit latency in cycles.
    pub l1d_lat: u64,
    /// L2 hit latency in cycles.
    pub l2_lat: u64,
    /// Minimum branch misprediction penalty in cycles.
    pub mispredict_penalty: u64,
    /// SDRAM access latency in core cycles.
    pub dram_cycles: u64,
    /// FSB occupancy to move one L2 block, in core cycles.
    pub fsb_block_cycles: u64,
    /// L2-bus occupancy to move one L1D block, in core cycles.
    pub l2_bus_l1_block: u64,
    /// L2-bus occupancy to move one L1I block, in core cycles.
    pub l2_bus_l1i_block: u64,
    /// L2-bus occupancy of one write-through store, in core cycles.
    pub l2_bus_store: u64,
}

/// Configuration validation errors.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ConfigError {
    /// A frequency was not positive and finite.
    Frequency(f64),
    /// A structural field that must be positive was zero.
    ZeroField(&'static str),
    /// Predictor entries must be a power of two.
    PredictorEntries(u32),
    /// BTB sets must be a power of two.
    BtbSets(u32),
    /// SDRAM latency must be positive.
    SdramLatency(f64),
    /// SDRAM bank count must be zero (flat model) or a power of two.
    SdramBanks(u32),
    /// Invalid L1I geometry.
    L1i(GeometryError),
    /// Invalid L1D geometry.
    L1d(GeometryError),
    /// Invalid L2 geometry.
    L2(GeometryError),
    /// L2 blocks must be at least as large as L1 blocks (inclusion).
    BlockInversion,
}

impl std::fmt::Display for ConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ConfigError::Frequency(v) => write!(f, "frequency {v} must be positive and finite"),
            ConfigError::ZeroField(name) => write!(f, "field `{name}` must be positive"),
            ConfigError::PredictorEntries(v) => {
                write!(f, "predictor entries {v} must be a power of two")
            }
            ConfigError::BtbSets(v) => write!(f, "BTB sets {v} must be a power of two"),
            ConfigError::SdramLatency(v) => write!(f, "SDRAM latency {v} must be positive"),
            ConfigError::SdramBanks(v) => {
                write!(f, "SDRAM banks {v} must be zero or a power of two")
            }
            ConfigError::L1i(e) => write!(f, "L1I: {e}"),
            ConfigError::L1d(e) => write!(f, "L1D: {e}"),
            ConfigError::L2(e) => write!(f, "L2: {e}"),
            ConfigError::BlockInversion => {
                write!(f, "L2 block size must be >= L1 block sizes")
            }
        }
    }
}

impl std::error::Error for ConfigError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_derives() {
        let t = SimConfig::default().derive().unwrap();
        assert_eq!(t.l1i_lat, 2, "paper anchor: 32KB L1I = 2 cycles at 4GHz");
        assert_eq!(t.mispredict_penalty, 20, "paper anchor: 20 cycles at 4GHz");
        assert_eq!(t.dram_cycles, 400, "100ns at 4GHz");
    }

    #[test]
    fn two_ghz_penalty_is_eleven() {
        let cfg = SimConfig {
            freq_ghz: 2.0,
            ..SimConfig::default()
        };
        assert_eq!(cfg.derive().unwrap().mispredict_penalty, 11);
        assert_eq!(cfg.derive().unwrap().dram_cycles, 200);
    }

    #[test]
    fn fsb_transfer_scales_with_frequency_ratio() {
        let cfg = SimConfig::default(); // 64B L2 block, 8B FSB at 0.8GHz, core 4GHz
        let t = cfg.derive().unwrap();
        // 8 beats * (4.0/0.8) = 40 core cycles.
        assert_eq!(t.fsb_block_cycles, 40);
        let faster = SimConfig {
            fsb_ghz: 1.4,
            ..cfg
        };
        assert!(faster.derive().unwrap().fsb_block_cycles < t.fsb_block_cycles);
    }

    #[test]
    fn l2_bus_width_divides_transfer() {
        let narrow = SimConfig {
            l2_bus_bytes: 8,
            ..SimConfig::default()
        };
        let wide = SimConfig {
            l2_bus_bytes: 32,
            ..SimConfig::default()
        };
        assert_eq!(narrow.derive().unwrap().l2_bus_l1_block, 4);
        assert_eq!(wide.derive().unwrap().l2_bus_l1_block, 1);
    }

    #[test]
    fn fu_throughput_floors() {
        let cfg = SimConfig {
            functional_units: 4,
            ..SimConfig::default()
        };
        let t = cfg.fu_throughput();
        assert_eq!((t.int_alu, t.fp, t.mul), (4, 2, 1));
        let cfg8 = SimConfig {
            functional_units: 8,
            ..SimConfig::default()
        };
        let t8 = cfg8.fu_throughput();
        assert_eq!((t8.int_alu, t8.fp, t8.mul), (8, 4, 2));
    }

    #[test]
    fn validation_catches_errors() {
        let cfg = SimConfig {
            width: 0,
            ..SimConfig::default()
        };
        assert_eq!(cfg.derive().unwrap_err(), ConfigError::ZeroField("width"));

        let cfg = SimConfig {
            predictor_entries: 3000,
            ..SimConfig::default()
        };
        assert!(matches!(
            cfg.derive().unwrap_err(),
            ConfigError::PredictorEntries(3000)
        ));

        let mut cfg = SimConfig::default();
        cfg.l1d.block_bytes = 128; // larger than L2 block
        assert_eq!(cfg.derive().unwrap_err(), ConfigError::BlockInversion);

        let mut cfg = SimConfig::default();
        cfg.l2.capacity_bytes = 3_000_000;
        assert!(matches!(cfg.derive().unwrap_err(), ConfigError::L2(_)));
    }

    #[test]
    fn larger_l2_is_slower() {
        let small = SimConfig {
            l2: CacheParams::write_back(256 * 1024, 4, 64),
            ..SimConfig::default()
        };
        let large = SimConfig {
            l2: CacheParams::write_back(2048 * 1024, 4, 64),
            ..SimConfig::default()
        };
        assert!(small.derive().unwrap().l2_lat < large.derive().unwrap().l2_lat);
    }
}
