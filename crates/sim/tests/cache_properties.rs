//! Property tests for cache-state invariants.

use archpredict_sim::cache::Cache;
use archpredict_sim::config::{CacheParams, WritePolicy};
use proptest::prelude::*;

fn cache_params(sets_log2: u32, ways_log2: u32, block_log2: u32) -> CacheParams {
    let block = 1u32 << block_log2;
    let ways = 1u32 << ways_log2;
    let capacity = (1u64 << sets_log2) * ways as u64 * block as u64;
    CacheParams {
        capacity_bytes: capacity,
        associativity: ways,
        block_bytes: block,
        write_policy: WritePolicy::WriteBack,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// After an allocating access, the block is present.
    #[test]
    fn access_then_probe(
        sets in 0u32..6, ways in 0u32..3, block in 5u32..8,
        addrs in prop::collection::vec(0u64..1_000_000, 1..60),
    ) {
        let mut cache = Cache::new(cache_params(sets, ways, block));
        for &a in &addrs {
            cache.access(a, false, true);
            prop_assert!(cache.probe(a), "just-filled block must be present");
        }
    }

    /// Hits + misses equals the number of accesses.
    #[test]
    fn counters_are_conserved(
        addrs in prop::collection::vec(0u64..100_000, 1..100),
    ) {
        let mut cache = Cache::new(cache_params(3, 1, 5));
        for &a in &addrs {
            cache.access(a, a % 3 == 0, true);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), addrs.len() as u64);
    }

    /// A working set no larger than one set's ways never conflicts: after
    /// the first pass, every re-access hits.
    #[test]
    fn small_working_set_never_misses_after_warmup(
        rounds in 2usize..6,
    ) {
        let params = cache_params(2, 2, 5); // 4 sets x 4 ways x 32B
        let mut cache = Cache::new(params);
        // 4 blocks mapping to the same set (stride = sets * block = 128).
        let addrs: Vec<u64> = (0..4).map(|i| i * 128).collect();
        for &a in &addrs {
            cache.access(a, false, true);
        }
        let misses_after_warmup = cache.misses();
        for _ in 0..rounds {
            for &a in &addrs {
                cache.access(a, false, true);
            }
        }
        prop_assert_eq!(cache.misses(), misses_after_warmup);
    }

    /// Write-backs only ever report blocks that were written.
    #[test]
    fn writebacks_require_writes(
        addrs in prop::collection::vec(0u64..10_000, 1..80),
    ) {
        let mut cache = Cache::new(cache_params(1, 0, 5)); // tiny: 2 sets x 1 way
        let mut written = std::collections::HashSet::new();
        for &a in &addrs {
            let write = a % 2 == 0;
            let block = cache.block_of(a);
            let outcome = cache.access(a, write, true);
            if write {
                written.insert(block);
            }
            if let Some(victim) = outcome.writeback {
                prop_assert!(written.contains(&victim), "clean victim {victim:#x} written back");
            }
        }
    }

    /// fill() never changes hit/miss counters.
    #[test]
    fn fill_is_stats_neutral(addrs in prop::collection::vec(0u64..10_000, 1..50)) {
        let mut cache = Cache::new(cache_params(2, 1, 5));
        cache.access(12345, false, true);
        let (h, m) = (cache.hits(), cache.misses());
        for &a in &addrs {
            cache.fill(a);
            prop_assert!(cache.probe(a));
        }
        prop_assert_eq!((cache.hits(), cache.misses()), (h, m));
    }
}
