//! Analytical cache access-time model in the spirit of CACTI 3.2.
//!
//! The paper derives the latency of every cache configuration it simulates
//! "through CACTI 3.2" at a 90 nm technology node (§4). This crate provides
//! the equivalent functionality: map a cache geometry (capacity,
//! associativity, block size) to an access time in nanoseconds, and convert
//! that to pipeline cycles at a given core frequency.
//!
//! The model is a calibrated analytical decomposition rather than a
//! transistor-level netlist: access time is the sum of decoder, wordline,
//! bitline, sense-amplifier, tag-comparison, and output-driver terms whose
//! scaling with geometry follows the CACTI formulation (logarithmic in rows
//! for the decoder, square-root-of-area wire terms, linear-in-associativity
//! comparison and multiplexing). Constants are anchored so that the
//! configurations named in the paper land on the paper's latencies:
//! a 32 KB, 2-way L1 costs 2 cycles at 4 GHz (Table 4.1) and L2
//! configurations span roughly 8–20 cycles.
//!
//! # Example
//!
//! ```
//! use archpredict_cacti::{CacheGeometry, access_time_ns, cycles_at_ghz};
//!
//! let l1 = CacheGeometry::new(32 * 1024, 2, 32)?;
//! let t = access_time_ns(l1);
//! assert_eq!(cycles_at_ghz(t, 4.0), 2);
//! # Ok::<(), archpredict_cacti::GeometryError>(())
//! ```

/// Physical organization of a cache: capacity, associativity, block size.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct CacheGeometry {
    capacity_bytes: u64,
    associativity: u32,
    block_bytes: u32,
}

impl CacheGeometry {
    /// Creates a geometry after validating it.
    ///
    /// # Errors
    ///
    /// Returns [`GeometryError`] if any dimension is zero or not a power of
    /// two, or if the geometry has fewer than one set.
    pub fn new(
        capacity_bytes: u64,
        associativity: u32,
        block_bytes: u32,
    ) -> Result<Self, GeometryError> {
        if capacity_bytes == 0 || !capacity_bytes.is_power_of_two() {
            return Err(GeometryError::Capacity(capacity_bytes));
        }
        if associativity == 0 || !associativity.is_power_of_two() {
            return Err(GeometryError::Associativity(associativity));
        }
        if block_bytes == 0 || !block_bytes.is_power_of_two() {
            return Err(GeometryError::BlockSize(block_bytes));
        }
        if capacity_bytes < associativity as u64 * block_bytes as u64 {
            return Err(GeometryError::TooFewSets {
                capacity_bytes,
                associativity,
                block_bytes,
            });
        }
        Ok(Self {
            capacity_bytes,
            associativity,
            block_bytes,
        })
    }

    /// Total capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.capacity_bytes
    }

    /// Associativity (ways per set).
    pub fn associativity(&self) -> u32 {
        self.associativity
    }

    /// Block (line) size in bytes.
    pub fn block_bytes(&self) -> u32 {
        self.block_bytes
    }

    /// Number of sets.
    pub fn sets(&self) -> u64 {
        self.capacity_bytes / (self.associativity as u64 * self.block_bytes as u64)
    }
}

/// Invalid cache geometry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum GeometryError {
    /// Capacity must be a nonzero power of two.
    Capacity(u64),
    /// Associativity must be a nonzero power of two.
    Associativity(u32),
    /// Block size must be a nonzero power of two.
    BlockSize(u32),
    /// capacity / (associativity * block) must be at least one set.
    TooFewSets {
        /// Requested capacity.
        capacity_bytes: u64,
        /// Requested associativity.
        associativity: u32,
        /// Requested block size.
        block_bytes: u32,
    },
}

impl std::fmt::Display for GeometryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GeometryError::Capacity(c) => {
                write!(f, "capacity {c} is not a nonzero power of two")
            }
            GeometryError::Associativity(a) => {
                write!(f, "associativity {a} is not a nonzero power of two")
            }
            GeometryError::BlockSize(b) => {
                write!(f, "block size {b} is not a nonzero power of two")
            }
            GeometryError::TooFewSets {
                capacity_bytes,
                associativity,
                block_bytes,
            } => write!(
                f,
                "geometry {capacity_bytes}B/{associativity}-way/{block_bytes}B has fewer than one set"
            ),
        }
    }
}

impl std::error::Error for GeometryError {}

// Calibration constants (90 nm). Chosen so the paper's named configurations
// land on the paper's cycle counts; see the `anchors_match_the_paper` test.
const T_FIXED_NS: f64 = 0.04; // sense amps, latches, drivers
const T_DECODE_NS: f64 = 0.008; // per log2(sets)
const T_WIRE_NS: f64 = 0.0006; // per capacity^WIRE_EXP: global H-tree wires
const WIRE_EXP: f64 = 0.6; // wire delay grows superlinearly in sqrt(area)
const T_ASSOC_NS: f64 = 0.01; // per log2(assoc)+1: tag compare + way mux
const T_BLOCK_NS: f64 = 0.01; // per (block/32): wider output mux

/// Access time in nanoseconds for a cache geometry at 90 nm.
///
/// The decomposition mirrors CACTI: a fixed sense/drive term, a decoder term
/// logarithmic in the number of sets, a wire term following a calibrated
/// power law in capacity (H-tree wire delay grows slightly faster than the
/// square root of area once repeater insertion saturates), an associativity
/// term for tag match and way selection, and a block-width term for the
/// output multiplexer.
pub fn access_time_ns(geometry: CacheGeometry) -> f64 {
    let sets = geometry.sets() as f64;
    let assoc = geometry.associativity() as f64;
    T_FIXED_NS
        + T_DECODE_NS * sets.log2().max(0.0)
        + T_WIRE_NS * (geometry.capacity_bytes() as f64).powf(WIRE_EXP)
        + T_ASSOC_NS * (assoc.log2() + 1.0)
        + T_BLOCK_NS * geometry.block_bytes() as f64 / 32.0
}

/// Converts an access time to whole pipeline cycles at `ghz` gigahertz,
/// rounding up (an access cannot complete mid-cycle) with a floor of one
/// cycle.
///
/// # Panics
///
/// Panics if `ghz` is not positive and finite.
pub fn cycles_at_ghz(access_ns: f64, ghz: f64) -> u32 {
    assert!(ghz > 0.0 && ghz.is_finite(), "frequency must be positive");
    ((access_ns * ghz).ceil() as u32).max(1)
}

/// Convenience: cycles for a geometry at a frequency.
///
/// # Errors
///
/// Propagates [`GeometryError`] from [`CacheGeometry::new`].
pub fn latency_cycles(
    capacity_bytes: u64,
    associativity: u32,
    block_bytes: u32,
    ghz: f64,
) -> Result<u32, GeometryError> {
    let g = CacheGeometry::new(capacity_bytes, associativity, block_bytes)?;
    Ok(cycles_at_ghz(access_time_ns(g), ghz))
}

#[cfg(test)]
mod tests {
    use super::*;

    const KB: u64 = 1024;

    fn geo(cap: u64, assoc: u32, block: u32) -> CacheGeometry {
        CacheGeometry::new(cap, assoc, block).unwrap()
    }

    #[test]
    fn anchors_match_the_paper() {
        // Table 4.1: L1 ICache 32KB -> 2 cycles at 4 GHz.
        assert_eq!(latency_cycles(32 * KB, 2, 32, 4.0).unwrap(), 2);
        // Small direct-mapped L1s are fast.
        assert!(latency_cycles(8 * KB, 1, 32, 4.0).unwrap() <= 2);
        // The largest L1 of the memory study remains a plausible L1.
        assert!(latency_cycles(64 * KB, 8, 64, 4.0).unwrap() <= 4);
        // L2 range of the memory study: roughly 8..20 cycles at 4 GHz.
        let fastest_l2 = latency_cycles(256 * KB, 1, 64, 4.0).unwrap();
        let slowest_l2 = latency_cycles(2048 * KB, 16, 128, 4.0).unwrap();
        assert!((5..=10).contains(&fastest_l2), "fastest L2 {fastest_l2}");
        assert!((12..=24).contains(&slowest_l2), "slowest L2 {slowest_l2}");
    }

    #[test]
    fn monotone_in_capacity() {
        let mut prev = 0.0;
        for cap in [8, 16, 32, 64, 128, 256, 512, 1024, 2048] {
            let t = access_time_ns(geo(cap * KB, 4, 64));
            assert!(t > prev, "capacity {cap}KB: {t} !> {prev}");
            prev = t;
        }
    }

    #[test]
    fn monotone_in_associativity() {
        let mut prev = 0.0;
        for assoc in [1, 2, 4, 8, 16] {
            let t = access_time_ns(geo(256 * KB, assoc, 64));
            assert!(t > prev, "assoc {assoc}: {t} !> {prev}");
            prev = t;
        }
    }

    #[test]
    fn wider_blocks_cost_slightly_more() {
        let narrow = access_time_ns(geo(32 * KB, 2, 32));
        let wide = access_time_ns(geo(32 * KB, 2, 64));
        assert!(wide > narrow);
        assert!(wide - narrow < 0.05, "block width must be a minor term");
    }

    #[test]
    fn cycles_round_up_with_floor_one() {
        assert_eq!(cycles_at_ghz(0.01, 2.0), 1);
        assert_eq!(cycles_at_ghz(0.55, 2.0), 2); // 1.1 cycles -> 2
        assert_eq!(cycles_at_ghz(1.0, 4.0), 4);
    }

    #[test]
    fn lower_frequency_needs_fewer_cycles() {
        let t = access_time_ns(geo(1024 * KB, 4, 64));
        assert!(cycles_at_ghz(t, 2.0) < cycles_at_ghz(t, 4.0));
    }

    #[test]
    fn geometry_validation() {
        assert!(matches!(
            CacheGeometry::new(0, 1, 32),
            Err(GeometryError::Capacity(0))
        ));
        assert!(matches!(
            CacheGeometry::new(3000, 1, 32),
            Err(GeometryError::Capacity(3000))
        ));
        assert!(matches!(
            CacheGeometry::new(1024, 3, 32),
            Err(GeometryError::Associativity(3))
        ));
        assert!(matches!(
            CacheGeometry::new(1024, 1, 0),
            Err(GeometryError::BlockSize(0))
        ));
        assert!(matches!(
            CacheGeometry::new(64, 4, 32),
            Err(GeometryError::TooFewSets { .. })
        ));
    }

    #[test]
    fn sets_computed_correctly() {
        assert_eq!(geo(32 * KB, 2, 32).sets(), 512);
        assert_eq!(geo(2048 * KB, 16, 128).sets(), 1024);
    }
}
