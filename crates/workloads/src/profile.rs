//! Statistical workload profiles.
//!
//! A [`WorkloadProfile`] captures everything the trace generator needs to
//! mimic one benchmark: instruction mix, dependency structure, branch
//! behavior, the working-set hierarchy, code footprint, and a set of
//! [`Phase`]s the program moves through over time.

/// Relative frequencies of instruction classes.
///
/// Weights need not sum to one; they are normalized at trace-generation
/// time. Branch weight is specified separately via basic-block length (every
/// basic block ends in exactly one branch), so this mix covers the
/// *non-branch* body of each block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OpMix {
    /// Integer ALU weight.
    pub int_alu: f64,
    /// Integer multiply/divide weight.
    pub int_mul: f64,
    /// FP add/compare weight.
    pub fp_alu: f64,
    /// FP multiply/divide weight.
    pub fp_mul: f64,
    /// Load weight.
    pub load: f64,
    /// Store weight.
    pub store: f64,
}

impl OpMix {
    /// Validates that all weights are non-negative and at least one positive.
    pub fn validate(&self) -> Result<(), ProfileError> {
        let w = [
            self.int_alu,
            self.int_mul,
            self.fp_alu,
            self.fp_mul,
            self.load,
            self.store,
        ];
        if w.iter().any(|&x| x < 0.0 || !x.is_finite()) {
            return Err(ProfileError::NegativeWeight);
        }
        if w.iter().sum::<f64>() <= 0.0 {
            return Err(ProfileError::EmptyMix);
        }
        Ok(())
    }
}

/// Branch behavior model.
///
/// Each *static* branch is deterministically assigned (by hashing its PC) to
/// one of three populations, and its dynamic outcomes follow that
/// population's law. Real predictors then achieve workload-specific accuracy
/// as an emergent property — exactly what the processor study needs when it
/// varies predictor and BTB capacity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct BranchMix {
    /// Fraction of static branches that are heavily biased (taken or
    /// not-taken with probability `bias`).
    pub biased_fraction: f64,
    /// Probability of the dominant direction for biased branches.
    pub bias: f64,
    /// Fraction of static branches that are loop back-edges with a periodic
    /// taken^(n-1) not-taken pattern.
    pub loop_fraction: f64,
    /// Mean loop trip count for periodic branches.
    pub mean_trip_count: f64,
    /// Remaining branches are data-dependent coin flips with this
    /// probability of being taken.
    pub random_taken: f64,
}

impl BranchMix {
    /// Validates fractions and probabilities.
    pub fn validate(&self) -> Result<(), ProfileError> {
        let probs = [
            self.biased_fraction,
            self.bias,
            self.loop_fraction,
            self.random_taken,
        ];
        if probs.iter().any(|&p| !(0.0..=1.0).contains(&p)) {
            return Err(ProfileError::BadProbability);
        }
        if self.biased_fraction + self.loop_fraction > 1.0 {
            return Err(ProfileError::BranchFractionsExceedOne);
        }
        if self.mean_trip_count < 1.0 {
            return Err(ProfileError::BadTripCount);
        }
        Ok(())
    }
}

/// One component of the data working-set hierarchy.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Region {
    /// Size of the region in bytes.
    pub bytes: u64,
    /// Relative probability that an access falls in this region.
    pub weight: f64,
    /// Access pattern within the region.
    pub pattern: AccessPattern,
}

/// Spatial pattern of accesses within a [`Region`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum AccessPattern {
    /// Unit-stride streaming (with occasional restarts).
    Sequential,
    /// Fixed-stride streaming, e.g. column-major sweeps.
    Strided {
        /// Stride in bytes.
        stride: u64,
    },
    /// Uniformly random within the region (pointer chasing).
    Random,
}

/// Data-side memory behavior: a mixture of regions.
#[derive(Debug, Clone, PartialEq)]
pub struct MemoryMix {
    /// Working-set components, innermost (hottest) first by convention.
    pub regions: Vec<Region>,
}

impl MemoryMix {
    /// Validates that the mixture is non-empty with positive weights/sizes.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.regions.is_empty() {
            return Err(ProfileError::NoRegions);
        }
        for r in &self.regions {
            if r.bytes == 0 {
                return Err(ProfileError::EmptyRegion);
            }
            if r.weight < 0.0 || !r.weight.is_finite() {
                return Err(ProfileError::NegativeWeight);
            }
            if let AccessPattern::Strided { stride } = r.pattern {
                if stride == 0 {
                    return Err(ProfileError::ZeroStride);
                }
            }
        }
        if self.regions.iter().map(|r| r.weight).sum::<f64>() <= 0.0 {
            return Err(ProfileError::EmptyMix);
        }
        Ok(())
    }
}

/// A program phase: a self-similar stretch of execution.
///
/// Phases differ in instruction mix, memory behavior and code region, which
/// is what basic-block-vector clustering (SimPoint) keys on.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// Human-readable label (e.g. `"init"`, `"solve"`).
    pub name: String,
    /// Instruction mix during this phase.
    pub mix: OpMix,
    /// Memory mixture during this phase.
    pub memory: MemoryMix,
    /// Number of static basic blocks executed by this phase (its code
    /// footprint is roughly `static_blocks * mean_block_len * 4` bytes).
    pub static_blocks: u32,
    /// Mean basic-block length in instructions (including the terminating
    /// branch).
    pub mean_block_len: f64,
}

/// Complete statistical description of one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct WorkloadProfile {
    /// Benchmark name (e.g. `"mcf"`).
    pub name: String,
    /// Master seed; every stream the generator uses derives from this.
    pub seed: u64,
    /// Branch population model (shared across phases).
    pub branches: BranchMix,
    /// Mean producer–consumer dependency distance in dynamic instructions.
    /// Small values (≈2) serialize execution; large values (≳10) expose ILP.
    pub mean_dep_distance: f64,
    /// Probability that an instruction has a second register source.
    pub second_source_prob: f64,
    /// The phases this program cycles through.
    pub phases: Vec<Phase>,
    /// Pattern of phase indices the program follows, repeated cyclically,
    /// one entry per trace interval.
    pub phase_schedule: Vec<u8>,
}

impl WorkloadProfile {
    /// Validates the whole profile.
    ///
    /// # Errors
    ///
    /// Returns the first [`ProfileError`] found in any component.
    pub fn validate(&self) -> Result<(), ProfileError> {
        if self.phases.is_empty() {
            return Err(ProfileError::NoPhases);
        }
        self.branches.validate()?;
        if self.mean_dep_distance < 1.0 {
            return Err(ProfileError::BadDepDistance);
        }
        if !(0.0..=1.0).contains(&self.second_source_prob) {
            return Err(ProfileError::BadProbability);
        }
        for p in &self.phases {
            p.mix.validate()?;
            p.memory.validate()?;
            if p.static_blocks == 0 {
                return Err(ProfileError::NoBlocks);
            }
            if p.mean_block_len < 2.0 {
                return Err(ProfileError::BadBlockLen);
            }
        }
        if self.phase_schedule.is_empty() {
            return Err(ProfileError::EmptySchedule);
        }
        if self
            .phase_schedule
            .iter()
            .any(|&p| p as usize >= self.phases.len())
        {
            return Err(ProfileError::ScheduleOutOfRange);
        }
        Ok(())
    }
}

/// Validation errors for workload profiles.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProfileError {
    /// A mixture weight was negative or non-finite.
    NegativeWeight,
    /// A mixture had no positive weight.
    EmptyMix,
    /// A probability was outside `[0, 1]`.
    BadProbability,
    /// Biased + loop branch fractions exceed one.
    BranchFractionsExceedOne,
    /// Mean loop trip count below one.
    BadTripCount,
    /// Memory mixture has no regions.
    NoRegions,
    /// A region had zero size.
    EmptyRegion,
    /// A strided region had zero stride.
    ZeroStride,
    /// Profile has no phases.
    NoPhases,
    /// Phase has zero static basic blocks.
    NoBlocks,
    /// Mean basic-block length below two.
    BadBlockLen,
    /// Mean dependency distance below one.
    BadDepDistance,
    /// Phase schedule is empty.
    EmptySchedule,
    /// Phase schedule references a nonexistent phase.
    ScheduleOutOfRange,
}

impl std::fmt::Display for ProfileError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let msg = match self {
            ProfileError::NegativeWeight => "mixture weight is negative or non-finite",
            ProfileError::EmptyMix => "mixture has no positive weight",
            ProfileError::BadProbability => "probability outside [0, 1]",
            ProfileError::BranchFractionsExceedOne => "branch fractions exceed one",
            ProfileError::BadTripCount => "mean loop trip count below one",
            ProfileError::NoRegions => "memory mixture has no regions",
            ProfileError::EmptyRegion => "memory region has zero size",
            ProfileError::ZeroStride => "strided region has zero stride",
            ProfileError::NoPhases => "profile has no phases",
            ProfileError::NoBlocks => "phase has zero static basic blocks",
            ProfileError::BadBlockLen => "mean basic-block length below two",
            ProfileError::BadDepDistance => "mean dependency distance below one",
            ProfileError::EmptySchedule => "phase schedule is empty",
            ProfileError::ScheduleOutOfRange => "phase schedule references nonexistent phase",
        };
        f.write_str(msg)
    }
}

impl std::error::Error for ProfileError {}

#[cfg(test)]
mod tests {
    use super::*;

    fn valid_profile() -> WorkloadProfile {
        WorkloadProfile {
            name: "toy".into(),
            seed: 1,
            branches: BranchMix {
                biased_fraction: 0.5,
                bias: 0.95,
                loop_fraction: 0.3,
                mean_trip_count: 20.0,
                random_taken: 0.5,
            },
            mean_dep_distance: 4.0,
            second_source_prob: 0.5,
            phases: vec![Phase {
                name: "main".into(),
                mix: OpMix {
                    int_alu: 4.0,
                    int_mul: 0.2,
                    fp_alu: 0.0,
                    fp_mul: 0.0,
                    load: 2.0,
                    store: 1.0,
                },
                memory: MemoryMix {
                    regions: vec![Region {
                        bytes: 1 << 16,
                        weight: 1.0,
                        pattern: AccessPattern::Sequential,
                    }],
                },
                static_blocks: 100,
                mean_block_len: 6.0,
            }],
            phase_schedule: vec![0],
        }
    }

    #[test]
    fn valid_profile_passes() {
        valid_profile().validate().unwrap();
    }

    #[test]
    fn rejects_bad_components() {
        let mut p = valid_profile();
        p.phases[0].mix.load = -1.0;
        assert_eq!(p.validate().unwrap_err(), ProfileError::NegativeWeight);

        let mut p = valid_profile();
        p.branches.biased_fraction = 0.8;
        p.branches.loop_fraction = 0.5;
        assert_eq!(
            p.validate().unwrap_err(),
            ProfileError::BranchFractionsExceedOne
        );

        let mut p = valid_profile();
        p.phases[0].memory.regions.clear();
        assert_eq!(p.validate().unwrap_err(), ProfileError::NoRegions);

        let mut p = valid_profile();
        p.phase_schedule = vec![3];
        assert_eq!(p.validate().unwrap_err(), ProfileError::ScheduleOutOfRange);

        let mut p = valid_profile();
        p.mean_dep_distance = 0.5;
        assert_eq!(p.validate().unwrap_err(), ProfileError::BadDepDistance);
    }

    #[test]
    fn rejects_zero_stride() {
        let mut p = valid_profile();
        p.phases[0].memory.regions[0].pattern = AccessPattern::Strided { stride: 0 };
        assert_eq!(p.validate().unwrap_err(), ProfileError::ZeroStride);
    }
}
