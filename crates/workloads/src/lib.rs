//! Synthetic SPEC CPU2000-like statistical workloads.
//!
//! The paper runs four SPEC CINT2000 (gzip, mcf, crafty, twolf) and four
//! SPEC CFP2000 (mgrid, applu, mesa, equake) benchmarks with MinneSPEC
//! reduced inputs. SPEC binaries and inputs are proprietary and outside the
//! scope of a pure-Rust reproduction, so this crate substitutes each
//! benchmark with a **deterministic statistical trace generator** whose
//! published qualitative character is preserved:
//!
//! * instruction mix (integer vs floating point, load/store/branch density),
//! * instruction-level parallelism (producer–consumer dependency distances),
//! * branch behavior (per-static-branch bias, loop periodicity, entropy),
//! * memory behavior (a hierarchy of working sets with sequential, strided,
//!   and pointer-chasing access components), and
//! * program **phases** (the generator cycles through distinct phase
//!   profiles, which is what gives SimPoint something to find).
//!
//! Determinism is the load-bearing property: `SIM(config, app)` must be a
//! pure function for the paper's methodology to be measurable, so a given
//! `(benchmark, interval)` pair always produces the identical instruction
//! sequence, independent of the architecture simulating it.
//!
//! # Example
//!
//! ```
//! use archpredict_workloads::{Benchmark, TraceGenerator};
//!
//! let generator = TraceGenerator::new(Benchmark::Mcf);
//! let a: Vec<_> = generator.interval(0).take(100).collect();
//! let b: Vec<_> = generator.interval(0).take(100).collect();
//! assert_eq!(a, b); // bit-reproducible
//! ```

pub mod instr;
pub mod profile;
pub mod spec;
pub mod trace;

pub use instr::{Instruction, OpClass};
pub use profile::{BranchMix, MemoryMix, OpMix, Phase, WorkloadProfile};
pub use spec::Benchmark;
pub use trace::{IntervalTrace, TraceGenerator};
