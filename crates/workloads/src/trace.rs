//! Deterministic statistical trace generation.
//!
//! A [`TraceGenerator`] turns a [`WorkloadProfile`] into an arbitrarily long
//! instruction stream, organized as *intervals*: `interval(i)` always yields
//! the identical sequence for a given profile, independent of how many
//! instructions the caller consumes or what else has been generated. The
//! program's phase schedule assigns each interval to a phase, so different
//! intervals exercise different code (basic-block ids), instruction mixes,
//! and working sets — the structure SimPoint discovers and exploits.

use crate::instr::{Instruction, OpClass};
use crate::profile::{AccessPattern, ProfileError, WorkloadProfile};
use archpredict_stats::rng::{SplitMix64, Xoshiro256};
use std::collections::HashMap;

/// Maximum dependency distance encoded in a trace (bounds simulator state).
pub const MAX_DEP_DISTANCE: u32 = 64;

/// Distinct stochastic variants per phase: interval `i` of a phase reuses
/// the variant stream `i % VARIANTS_PER_PHASE`. Real programs revisit a
/// small family of behaviors within each phase (input-dependent but
/// recurring); a bounded variant count reproduces that, and it is what
/// makes SimPoint-style representative sampling meaningful.
pub const VARIANTS_PER_PHASE: usize = 7;

/// Bytes of code attributed to each static basic block (for I-cache
/// behavior: a phase's code footprint is `static_blocks * BLOCK_CODE_BYTES`).
pub const BLOCK_CODE_BYTES: u64 = 32;

/// Base virtual address of the code segment.
const CODE_BASE: u64 = 0x0040_0000;
/// Base virtual address of the data segment.
const DATA_BASE: u64 = 0x1000_0000;

/// Deterministic trace generator for one benchmark.
///
/// # Example
///
/// ```
/// use archpredict_workloads::{Benchmark, TraceGenerator};
/// let generator = TraceGenerator::new(Benchmark::Gzip);
/// let head: Vec<_> = generator.interval(3).take(10).collect();
/// assert_eq!(head.len(), 10);
/// ```
#[derive(Debug, Clone)]
pub struct TraceGenerator {
    profile: WorkloadProfile,
    /// First global basic-block id of each phase.
    phase_bb_base: Vec<u32>,
    /// Disjoint data-segment base address of each region of each phase.
    region_bases: Vec<Vec<u64>>,
}

impl TraceGenerator {
    /// Builds a generator for a named benchmark.
    ///
    /// # Panics
    ///
    /// Never panics: the built-in benchmark profiles are statically valid.
    pub fn new(benchmark: crate::spec::Benchmark) -> Self {
        Self::from_profile(benchmark.profile()).expect("built-in profiles are valid")
    }

    /// Builds a generator from a custom profile.
    ///
    /// # Errors
    ///
    /// Returns the profile's validation error, if any.
    pub fn from_profile(profile: WorkloadProfile) -> Result<Self, ProfileError> {
        profile.validate()?;
        let mut phase_bb_base = Vec::with_capacity(profile.phases.len());
        let mut next_bb = 0u32;
        let mut region_bases = Vec::with_capacity(profile.phases.len());
        let mut next_addr = DATA_BASE;
        for phase in &profile.phases {
            phase_bb_base.push(next_bb);
            next_bb += phase.static_blocks;
            let mut bases = Vec::with_capacity(phase.memory.regions.len());
            for region in &phase.memory.regions {
                bases.push(next_addr);
                // Keep regions disjoint and page-aligned.
                next_addr += region.bytes.div_ceil(4096) * 4096 + 4096;
            }
            region_bases.push(bases);
        }
        Ok(Self {
            profile,
            phase_bb_base,
            region_bases,
        })
    }

    /// The underlying profile.
    pub fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    /// Number of intervals in one complete pass of the program's phase
    /// schedule (the "whole benchmark" for SimPoint purposes).
    pub fn num_intervals(&self) -> usize {
        self.profile.phase_schedule.len()
    }

    /// Phase index executed during `interval`.
    pub fn phase_of_interval(&self, interval: usize) -> usize {
        let schedule = &self.profile.phase_schedule;
        schedule[interval % schedule.len()] as usize
    }

    /// Total number of distinct basic-block ids across all phases
    /// (the dimensionality of basic-block vectors).
    pub fn total_static_blocks(&self) -> u32 {
        self.phase_bb_base
            .last()
            .copied()
            .unwrap_or(0)
            .saturating_add(self.profile.phases.last().map_or(0, |p| p.static_blocks))
    }

    /// Returns the (infinite) instruction stream of `interval`.
    ///
    /// The stream is a pure function of `(profile.seed, interval)`.
    pub fn interval(&self, interval: usize) -> IntervalTrace<'_> {
        let phase_idx = self.phase_of_interval(interval);
        let phase = &self.profile.phases[phase_idx];
        let variant = (interval % VARIANTS_PER_PHASE) as u64;
        let rng = Xoshiro256::seed_from(self.profile.seed)
            .derive(0x5EED_0000 ^ ((phase_idx as u64) << 8) ^ variant);
        let mix_weights = [
            phase.mix.int_alu,
            phase.mix.int_mul,
            phase.mix.fp_alu,
            phase.mix.fp_mul,
            phase.mix.load,
            phase.mix.store,
        ];
        let mut cursor_rng = rng.derive(17);
        let cursors = phase
            .memory
            .regions
            .iter()
            .map(|r| (cursor_rng.below(r.bytes.max(1)) / 8) * 8)
            .collect();
        IntervalTrace {
            generator: self,
            phase_idx,
            rng,
            mix_weights,
            bb: 0,
            block_left: 0,
            pending_branch: None,
            cursors,
            loop_counters: HashMap::new(),
        }
    }

    /// Basic-block vector of `interval` over its first `len` instructions:
    /// a `total_static_blocks()`-dimensional count vector, normalized to sum
    /// to one. This is the SimPoint fingerprint of the interval.
    pub fn bbv(&self, interval: usize, len: usize) -> Vec<f64> {
        let dim = self.total_static_blocks() as usize;
        let mut counts = vec![0.0f64; dim];
        for instr in self.interval(interval).take(len) {
            counts[instr.bb as usize] += 1.0;
        }
        let total: f64 = counts.iter().sum();
        if total > 0.0 {
            for c in &mut counts {
                *c /= total;
            }
        }
        counts
    }
}

/// Per-static-branch behavioral category, derived by hashing the branch PC.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BranchKind {
    /// Strongly biased; `taken_bias` is the dominant direction.
    Biased { taken_bias: bool },
    /// Loop back-edge with a fixed trip count.
    Loop { period: u32 },
    /// Data-dependent coin flip.
    Random,
}

/// Infinite iterator over the instructions of one interval.
///
/// Produced by [`TraceGenerator::interval`]. Never returns `None`.
#[derive(Debug, Clone)]
pub struct IntervalTrace<'a> {
    generator: &'a TraceGenerator,
    phase_idx: usize,
    rng: Xoshiro256,
    mix_weights: [f64; 6],
    /// Current basic block (phase-local index).
    bb: u32,
    /// Non-branch instructions remaining in the current block.
    block_left: u32,
    /// Branch to be emitted at the end of the current block.
    pending_branch: Option<()>,
    /// Per-region streaming cursors.
    cursors: Vec<u64>,
    /// Loop branch trip counters, keyed by phase-local block id.
    loop_counters: HashMap<u32, u32>,
}

impl IntervalTrace<'_> {
    fn phase(&self) -> &crate::profile::Phase {
        &self.generator.profile.phases[self.phase_idx]
    }

    fn global_bb(&self) -> u32 {
        self.generator.phase_bb_base[self.phase_idx] + self.bb
    }

    fn block_pc(&self, bb: u32, offset: u32) -> u64 {
        let global = self.generator.phase_bb_base[self.phase_idx] + bb;
        CODE_BASE + global as u64 * BLOCK_CODE_BYTES + (offset as u64 * 4) % BLOCK_CODE_BYTES
    }

    /// Deterministic branch category of the branch terminating block `bb`.
    fn branch_kind(&self, bb: u32) -> BranchKind {
        let b = &self.generator.profile.branches;
        let h = SplitMix64::new(
            self.generator.profile.seed ^ 0xB4A9_C0DE ^ (self.global_bb_of(bb) as u64) << 3,
        )
        .next_u64();
        let frac = (h >> 11) as f64 / (1u64 << 53) as f64;
        if frac < b.biased_fraction {
            BranchKind::Biased {
                taken_bias: h & 1 == 0,
            }
        } else if frac < b.biased_fraction + b.loop_fraction {
            // Period in [2, 2*mean), deterministic per branch.
            let span = (2.0 * b.mean_trip_count - 2.0).max(1.0) as u64;
            BranchKind::Loop {
                period: (2 + (h >> 8) % span) as u32,
            }
        } else {
            BranchKind::Random
        }
    }

    fn global_bb_of(&self, bb: u32) -> u32 {
        self.generator.phase_bb_base[self.phase_idx] + bb
    }

    fn sample_block_len(&mut self) -> u32 {
        // Static code has fixed block sizes: derive the length of this block
        // deterministically from its id, uniform on [2, 2*mean-2] so the
        // phase mean is preserved.
        let mean = self.phase().mean_block_len;
        let span = ((2.0 * (mean - 2.0)).max(0.0) as u64) + 1;
        let h = SplitMix64::new(
            self.generator.profile.seed ^ 0x0B10_C51E ^ ((self.global_bb() as u64) << 5),
        )
        .next_u64();
        2 + (h % span).min(30) as u32
    }

    fn sample_dep(&mut self) -> u32 {
        let mean = self.generator.profile.mean_dep_distance;
        let p = 1.0 / mean.max(1.0);
        (1 + self.rng.next_geometric(p) as u32).min(MAX_DEP_DISTANCE)
    }

    fn memory_address(&mut self, region_idx: usize) -> u64 {
        let region = self.phase().memory.regions[region_idx];
        let base = self.generator.region_bases[self.phase_idx][region_idx];
        match region.pattern {
            AccessPattern::Sequential => {
                // Occasional restart models a new buffer/scan.
                if self.rng.chance(0.002) {
                    self.cursors[region_idx] = (self.rng.below(region.bytes) / 8) * 8;
                }
                let addr = base + self.cursors[region_idx];
                self.cursors[region_idx] = (self.cursors[region_idx] + 8) % region.bytes;
                addr
            }
            AccessPattern::Strided { stride } => {
                let addr = base + self.cursors[region_idx];
                self.cursors[region_idx] = (self.cursors[region_idx] + stride) % region.bytes;
                addr
            }
            AccessPattern::Random => {
                // Skewed ("Zipf-like") random access: real pointer-chasing
                // codes hammer a hot head of their structures while the
                // tail supplies steady capacity pressure. Raising a uniform
                // deviate to the fifth power sends ~40% of accesses to the
                // first 1% of the region and spreads the rest over all of it.
                let u = self.rng.next_f64();
                let off = (u.powi(5) * region.bytes as f64) as u64;
                base + (off.min(region.bytes - 1) / 8) * 8
            }
        }
    }

    fn choose_region(&mut self) -> usize {
        let weights: Vec<f64> = self
            .phase()
            .memory
            .regions
            .iter()
            .map(|r| r.weight)
            .collect();
        self.rng.weighted_index(&weights)
    }

    fn emit_branch(&mut self) -> Instruction {
        let bb = self.bb;
        let pc = self.block_pc(bb, 31); // terminating slot of the block
        let kind = self.branch_kind(bb);
        let taken = match kind {
            BranchKind::Biased { taken_bias } => {
                let follow = self.rng.chance(self.generator.profile.branches.bias);
                if follow {
                    taken_bias
                } else {
                    !taken_bias
                }
            }
            BranchKind::Loop { period } => {
                let counter = self.loop_counters.entry(bb).or_insert(0);
                *counter += 1;
                if *counter >= period {
                    *counter = 0;
                    false // loop exit
                } else {
                    true // back edge
                }
            }
            BranchKind::Random => self
                .rng
                .chance(self.generator.profile.branches.random_taken),
        };
        let static_blocks = self.phase().static_blocks;
        // Control flow: loop back-edges re-execute their block; other taken
        // branches are short forward jumps (as in real code), so execution
        // sweeps the phase's static code cyclically. This locality is what
        // makes same-phase intervals produce similar basic-block vectors.
        let target_bb = match kind {
            BranchKind::Loop { .. } => bb, // tight loop re-executes the block
            _ => {
                let h = SplitMix64::new(self.generator.profile.seed ^ (bb as u64) << 17).next_u64();
                (bb + 1 + (h % 12) as u32) % static_blocks
            }
        };
        let next_bb = if taken {
            target_bb
        } else {
            (bb + 1) % static_blocks
        };
        let target_pc = self.block_pc(target_bb, 0);
        let dep1 = self.sample_dep();
        let instr = Instruction {
            op: OpClass::Branch,
            pc,
            addr: 0,
            taken,
            target: target_pc,
            dep1,
            dep2: 0,
            bb: self.global_bb(),
        };
        self.bb = next_bb;
        self.block_left = 0;
        instr
    }
}

impl Iterator for IntervalTrace<'_> {
    type Item = Instruction;

    fn next(&mut self) -> Option<Instruction> {
        if self.block_left == 0 {
            if self.pending_branch.take().is_some() {
                return Some(self.emit_branch());
            }
            // Start a new block: schedule its body then its branch.
            self.block_left = self.sample_block_len() - 1;
            self.pending_branch = Some(());
        }
        // Emit a body instruction.
        let offset = 30 - self.block_left.min(30);
        self.block_left -= 1;
        let class_idx = self.rng.weighted_index(&self.mix_weights);
        let op = OpClass::ALL[class_idx];
        let pc = self.block_pc(self.bb, offset);
        let dep1 = self.sample_dep();
        let dep2 = if self.rng.chance(self.generator.profile.second_source_prob) {
            self.sample_dep()
        } else {
            0
        };
        let instr = match op {
            OpClass::Load | OpClass::Store => {
                let region = self.choose_region();
                let addr = self.memory_address(region);
                Instruction {
                    op,
                    pc,
                    addr,
                    taken: false,
                    target: 0,
                    dep1,
                    dep2,
                    bb: self.global_bb(),
                }
            }
            _ => Instruction {
                op,
                pc,
                addr: 0,
                taken: false,
                target: 0,
                dep1,
                dep2,
                bb: self.global_bb(),
            },
        };
        Some(instr)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::Benchmark;

    #[test]
    fn intervals_are_deterministic() {
        let generator = TraceGenerator::new(Benchmark::Twolf);
        let a: Vec<_> = generator.interval(5).take(2000).collect();
        let b: Vec<_> = generator.interval(5).take(2000).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn same_phase_same_variant_intervals_are_identical() {
        // Interval i and i + lcm(schedule period alignment) share phase and
        // variant; find such a pair explicitly.
        let generator = TraceGenerator::new(Benchmark::Gzip);
        let n = generator.num_intervals();
        let pair = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .find(|&(a, b)| {
                generator.phase_of_interval(a) == generator.phase_of_interval(b)
                    && a % VARIANTS_PER_PHASE == b % VARIANTS_PER_PHASE
            })
            .expect("schedule long enough for a repeat");
        let x: Vec<_> = generator.interval(pair.0).take(1000).collect();
        let y: Vec<_> = generator.interval(pair.1).take(1000).collect();
        assert_eq!(x, y, "intervals {pair:?} must replay the same variant");
    }

    #[test]
    fn same_phase_different_variant_intervals_differ() {
        let generator = TraceGenerator::new(Benchmark::Gzip);
        let n = generator.num_intervals();
        let pair = (0..n)
            .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
            .find(|&(a, b)| {
                generator.phase_of_interval(a) == generator.phase_of_interval(b)
                    && a % VARIANTS_PER_PHASE != b % VARIANTS_PER_PHASE
            })
            .expect("distinct variants exist");
        let x: Vec<_> = generator.interval(pair.0).take(1000).collect();
        let y: Vec<_> = generator.interval(pair.1).take(1000).collect();
        assert_ne!(x, y);
    }

    #[test]
    fn different_intervals_differ() {
        let generator = TraceGenerator::new(Benchmark::Twolf);
        let a: Vec<_> = generator.interval(0).take(500).collect();
        let b: Vec<_> = generator.interval(1).take(500).collect();
        assert_ne!(a, b);
    }

    #[test]
    fn mix_roughly_matches_profile() {
        let generator = TraceGenerator::new(Benchmark::Gzip);
        let n = 50_000;
        let mut loads = 0usize;
        let mut branches = 0usize;
        for i in generator.interval(0).take(n) {
            match i.op {
                OpClass::Load => loads += 1,
                OpClass::Branch => branches += 1,
                _ => {}
            }
        }
        // gzip: roughly 20-30% loads, 10-25% branches.
        let load_frac = loads as f64 / n as f64;
        let br_frac = branches as f64 / n as f64;
        assert!((0.10..0.40).contains(&load_frac), "load frac {load_frac}");
        assert!((0.05..0.35).contains(&br_frac), "branch frac {br_frac}");
    }

    #[test]
    fn memory_instructions_have_addresses_in_data_segment() {
        let generator = TraceGenerator::new(Benchmark::Mcf);
        for i in generator.interval(2).take(10_000) {
            if i.op.is_memory() {
                assert!(i.addr >= super::DATA_BASE, "addr {:#x}", i.addr);
            } else {
                assert_eq!(i.addr, 0);
            }
        }
    }

    #[test]
    fn branches_terminate_blocks_and_set_targets() {
        let generator = TraceGenerator::new(Benchmark::Crafty);
        let mut saw_taken = false;
        let mut saw_not_taken = false;
        for i in generator.interval(0).take(20_000) {
            if i.op == OpClass::Branch {
                assert!(i.target >= super::CODE_BASE);
                saw_taken |= i.taken;
                saw_not_taken |= !i.taken;
            }
        }
        assert!(saw_taken && saw_not_taken);
    }

    #[test]
    fn bb_ids_stay_within_phase_range() {
        let generator = TraceGenerator::new(Benchmark::Applu);
        let total = generator.total_static_blocks();
        for interval in 0..4 {
            for i in generator.interval(interval).take(3000) {
                assert!(i.bb < total, "bb {} out of range {}", i.bb, total);
            }
        }
    }

    #[test]
    fn bbv_is_normalized_and_phase_distinct() {
        let generator = TraceGenerator::new(Benchmark::Mgrid);
        // Find two intervals in different phases.
        let p0 = generator.phase_of_interval(0);
        let other = (0..generator.num_intervals())
            .find(|&i| generator.phase_of_interval(i) != p0)
            .expect("mgrid has multiple phases");
        let v0 = generator.bbv(0, 5000);
        let v1 = generator.bbv(other, 5000);
        let sum0: f64 = v0.iter().sum();
        assert!((sum0 - 1.0).abs() < 1e-9);
        // Different phases touch different code: cosine similarity low.
        let dot: f64 = v0.iter().zip(&v1).map(|(a, b)| a * b).sum();
        let n0: f64 = v0.iter().map(|x| x * x).sum::<f64>().sqrt();
        let n1: f64 = v1.iter().map(|x| x * x).sum::<f64>().sqrt();
        let cos = dot / (n0 * n1);
        assert!(cos < 0.5, "phases too similar: cos={cos}");
    }

    #[test]
    fn same_phase_intervals_have_similar_bbvs() {
        let generator = TraceGenerator::new(Benchmark::Mgrid);
        let p0 = generator.phase_of_interval(0);
        let same = (1..generator.num_intervals())
            .find(|&i| generator.phase_of_interval(i) == p0)
            .expect("phase repeats");
        let v0 = generator.bbv(0, 20_000);
        let v1 = generator.bbv(same, 20_000);
        let dot: f64 = v0.iter().zip(&v1).map(|(a, b)| a * b).sum();
        let n0: f64 = v0.iter().map(|x| x * x).sum::<f64>().sqrt();
        let n1: f64 = v1.iter().map(|x| x * x).sum::<f64>().sqrt();
        assert!(dot / (n0 * n1) > 0.7);
    }

    #[test]
    fn dependency_distances_bounded_and_positive() {
        let generator = TraceGenerator::new(Benchmark::Equake);
        for i in generator.interval(0).take(5000) {
            assert!(i.dep1 >= 1 && i.dep1 <= MAX_DEP_DISTANCE);
            assert!(i.dep2 <= MAX_DEP_DISTANCE);
        }
    }

    #[test]
    fn loop_branches_mostly_taken_for_loopy_benchmark() {
        // mgrid is loop-dominated: overall taken rate should be high.
        let generator = TraceGenerator::new(Benchmark::Mgrid);
        let (mut taken, mut total) = (0usize, 0usize);
        for i in generator.interval(1).take(30_000) {
            if i.op == OpClass::Branch {
                total += 1;
                taken += i.taken as usize;
            }
        }
        let rate = taken as f64 / total as f64;
        assert!(rate > 0.6, "taken rate {rate}");
    }
}
