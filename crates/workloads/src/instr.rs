//! Dynamic instruction records produced by the trace generators and consumed
//! by the cycle-level simulator.

/// Functional class of a dynamic instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpClass {
    /// Integer ALU operation (add, logic, shift, compare).
    IntAlu,
    /// Integer multiply / divide (long latency).
    IntMul,
    /// Floating-point add / compare / convert.
    FpAlu,
    /// Floating-point multiply / divide / sqrt (long latency).
    FpMul,
    /// Memory load.
    Load,
    /// Memory store.
    Store,
    /// Conditional branch.
    Branch,
}

impl OpClass {
    /// All classes, in a stable order (useful for mix tables and counters).
    pub const ALL: [OpClass; 7] = [
        OpClass::IntAlu,
        OpClass::IntMul,
        OpClass::FpAlu,
        OpClass::FpMul,
        OpClass::Load,
        OpClass::Store,
        OpClass::Branch,
    ];

    /// Stable small index of the class (matches position in [`OpClass::ALL`]).
    pub fn index(self) -> usize {
        match self {
            OpClass::IntAlu => 0,
            OpClass::IntMul => 1,
            OpClass::FpAlu => 2,
            OpClass::FpMul => 3,
            OpClass::Load => 4,
            OpClass::Store => 5,
            OpClass::Branch => 6,
        }
    }

    /// Whether the instruction reads or writes memory.
    pub fn is_memory(self) -> bool {
        matches!(self, OpClass::Load | OpClass::Store)
    }

    /// Whether the instruction produces a floating-point result (and hence
    /// consumes a floating-point physical register).
    pub fn is_fp(self) -> bool {
        matches!(self, OpClass::FpAlu | OpClass::FpMul)
    }
}

impl std::fmt::Display for OpClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpClass::IntAlu => "int_alu",
            OpClass::IntMul => "int_mul",
            OpClass::FpAlu => "fp_alu",
            OpClass::FpMul => "fp_mul",
            OpClass::Load => "load",
            OpClass::Store => "store",
            OpClass::Branch => "branch",
        };
        f.write_str(s)
    }
}

/// One dynamic instruction.
///
/// Dependency information is encoded as *distances*: `dep1`/`dep2` give the
/// number of dynamic instructions back to each producer (`0` means no
/// dependency through that operand). This is the standard representation for
/// statistically generated traces (cf. HLS, Oskin et al., ISCA 2000) and is
/// all an out-of-order timing model needs.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Instruction {
    /// Functional class.
    pub op: OpClass,
    /// Program counter of this instruction.
    pub pc: u64,
    /// Effective address (loads/stores only; `0` otherwise).
    pub addr: u64,
    /// Branch outcome (branches only; `false` otherwise).
    pub taken: bool,
    /// Branch target PC (branches only; `0` otherwise).
    pub target: u64,
    /// Distance (in dynamic instructions) to first producer; `0` = none.
    pub dep1: u32,
    /// Distance to second producer; `0` = none.
    pub dep2: u32,
    /// Basic-block identifier (for SimPoint basic-block vectors).
    pub bb: u32,
}

impl Instruction {
    /// A register-only instruction with no memory or control behavior.
    pub fn compute(op: OpClass, pc: u64, dep1: u32, dep2: u32, bb: u32) -> Self {
        Self {
            op,
            pc,
            addr: 0,
            taken: false,
            target: 0,
            dep1,
            dep2,
            bb,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn class_index_is_stable_and_total() {
        for (i, c) in OpClass::ALL.iter().enumerate() {
            assert_eq!(c.index(), i);
        }
    }

    #[test]
    fn memory_and_fp_classification() {
        assert!(OpClass::Load.is_memory());
        assert!(OpClass::Store.is_memory());
        assert!(!OpClass::Branch.is_memory());
        assert!(OpClass::FpMul.is_fp());
        assert!(!OpClass::IntMul.is_fp());
    }

    #[test]
    fn display_is_lowercase() {
        assert_eq!(OpClass::FpAlu.to_string(), "fp_alu");
    }
}
