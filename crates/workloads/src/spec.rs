//! Built-in benchmark personalities.
//!
//! One [`WorkloadProfile`] per benchmark the paper evaluates: four SPEC
//! CINT2000 (gzip, mcf, crafty, twolf) and four SPEC CFP2000 (mgrid, applu,
//! mesa, equake). The numbers below are not fit to any proprietary data;
//! they encode the *published qualitative character* of each code
//! (instruction mixes, working-set scale, branch behavior, phase structure)
//! at a scale matched to the design spaces of Tables 4.1/4.2 — working sets
//! straddle the studied L1 (8–64 KB) and L2 (256 KB–2 MB) capacities, and
//! code footprints straddle the studied L1I capacities (8/32 KB).

use crate::profile::{AccessPattern, BranchMix, MemoryMix, OpMix, Phase, Region, WorkloadProfile};

const KB: u64 = 1024;
const MB: u64 = 1024 * 1024;

/// The eight benchmarks of the paper's evaluation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Benchmark {
    /// SPEC CINT2000 164.gzip — compression; integer, cache-friendly.
    Gzip,
    /// SPEC CINT2000 181.mcf — network simplex; pointer chasing, giant
    /// working set, memory-bound, low ILP.
    Mcf,
    /// SPEC CINT2000 186.crafty — chess; branchy integer code with a large
    /// instruction footprint.
    Crafty,
    /// SPEC CINT2000 300.twolf — place & route; irregular accesses and
    /// data-dependent branches (the hardest application to model in the
    /// paper).
    Twolf,
    /// SPEC CFP2000 172.mgrid — multigrid solver; regular strided FP loops,
    /// high ILP.
    Mgrid,
    /// SPEC CFP2000 173.applu — SSOR solver; strided FP with larger arrays.
    Applu,
    /// SPEC CFP2000 177.mesa — software rendering; mixed INT/FP with
    /// moderate locality and a large code footprint.
    Mesa,
    /// SPEC CFP2000 183.equake — FEM earthquake simulation; sparse-matrix
    /// FP with irregular accesses.
    Equake,
}

impl Benchmark {
    /// All benchmarks, in the paper's grouping order (CINT then CFP).
    pub const ALL: [Benchmark; 8] = [
        Benchmark::Gzip,
        Benchmark::Mcf,
        Benchmark::Crafty,
        Benchmark::Twolf,
        Benchmark::Mgrid,
        Benchmark::Applu,
        Benchmark::Mesa,
        Benchmark::Equake,
    ];

    /// The four applications featured in the paper's main-body figures.
    pub const FEATURED: [Benchmark; 4] = [
        Benchmark::Mesa,
        Benchmark::Equake,
        Benchmark::Mcf,
        Benchmark::Crafty,
    ];

    /// Lower-case benchmark name as used in the paper.
    pub fn name(self) -> &'static str {
        match self {
            Benchmark::Gzip => "gzip",
            Benchmark::Mcf => "mcf",
            Benchmark::Crafty => "crafty",
            Benchmark::Twolf => "twolf",
            Benchmark::Mgrid => "mgrid",
            Benchmark::Applu => "applu",
            Benchmark::Mesa => "mesa",
            Benchmark::Equake => "equake",
        }
    }

    /// Parses a benchmark from its lower-case name.
    pub fn from_name(name: &str) -> Option<Benchmark> {
        Benchmark::ALL.iter().copied().find(|b| b.name() == name)
    }

    /// The statistical profile of this benchmark.
    pub fn profile(self) -> WorkloadProfile {
        match self {
            Benchmark::Gzip => gzip(),
            Benchmark::Mcf => mcf(),
            Benchmark::Crafty => crafty(),
            Benchmark::Twolf => twolf(),
            Benchmark::Mgrid => mgrid(),
            Benchmark::Applu => applu(),
            Benchmark::Mesa => mesa(),
            Benchmark::Equake => equake(),
        }
    }
}

impl std::fmt::Display for Benchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

impl std::str::FromStr for Benchmark {
    type Err = UnknownBenchmark;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        Benchmark::from_name(s).ok_or_else(|| UnknownBenchmark(s.to_owned()))
    }
}

/// Error parsing a benchmark name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UnknownBenchmark(String);

impl std::fmt::Display for UnknownBenchmark {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "unknown benchmark {:?} (expected one of ", self.0)?;
        for (i, b) in Benchmark::ALL.iter().enumerate() {
            if i > 0 {
                f.write_str(", ")?;
            }
            f.write_str(b.name())?;
        }
        f.write_str(")")
    }
}

impl std::error::Error for UnknownBenchmark {}

fn int_mix(load: f64, store: f64, mul: f64) -> OpMix {
    OpMix {
        int_alu: 1.0 - load - store - mul,
        int_mul: mul,
        fp_alu: 0.0,
        fp_mul: 0.0,
        load,
        store,
    }
}

fn fp_mix(load: f64, store: f64, fp_alu: f64, fp_mul: f64) -> OpMix {
    OpMix {
        int_alu: (1.0 - load - store - fp_alu - fp_mul).max(0.02),
        int_mul: 0.01,
        fp_alu,
        fp_mul,
        load,
        store,
    }
}

fn seq(bytes: u64, weight: f64) -> Region {
    Region {
        bytes,
        weight,
        pattern: AccessPattern::Sequential,
    }
}

fn strided(bytes: u64, stride: u64, weight: f64) -> Region {
    Region {
        bytes,
        weight,
        pattern: AccessPattern::Strided { stride },
    }
}

fn random(bytes: u64, weight: f64) -> Region {
    Region {
        bytes,
        weight,
        pattern: AccessPattern::Random,
    }
}

fn gzip() -> WorkloadProfile {
    WorkloadProfile {
        name: "gzip".into(),
        seed: 0x675A_4950,
        branches: BranchMix {
            biased_fraction: 0.62,
            bias: 0.96,
            loop_fraction: 0.30,
            mean_trip_count: 24.0,
            random_taken: 0.65,
        },
        mean_dep_distance: 4.5,
        second_source_prob: 0.45,
        phases: vec![
            Phase {
                name: "deflate".into(),
                mix: int_mix(0.24, 0.12, 0.02),
                memory: MemoryMix {
                    regions: vec![
                        seq(6 * KB, 12.0),
                        random(32 * KB, 1.2),
                        strided(320 * KB, 256, 1.2),
                    ],
                },
                static_blocks: 420,
                mean_block_len: 6.0,
            },
            Phase {
                name: "huffman".into(),
                mix: int_mix(0.28, 0.08, 0.01),
                memory: MemoryMix {
                    regions: vec![seq(4 * KB, 8.0), random(24 * KB, 1.5)],
                },
                static_blocks: 260,
                mean_block_len: 5.0,
            },
        ],
        phase_schedule: pattern(&[0, 0, 0, 1, 0, 0, 1, 1], 6),
    }
}

fn mcf() -> WorkloadProfile {
    WorkloadProfile {
        name: "mcf".into(),
        seed: 0x6D63_6600,
        branches: BranchMix {
            biased_fraction: 0.40,
            bias: 0.92,
            loop_fraction: 0.22,
            mean_trip_count: 14.0,
            random_taken: 0.48,
        },
        mean_dep_distance: 2.8, // pointer chasing serializes
        second_source_prob: 0.35,
        phases: vec![
            Phase {
                name: "simplex".into(),
                mix: int_mix(0.36, 0.07, 0.01),
                memory: MemoryMix {
                    // The famous mcf working set: far larger than any L2 studied.
                    regions: vec![
                        random(2 * KB, 3.0),
                        random(160 * KB, 1.8),
                        random(7 * MB, 0.55),
                    ],
                },
                static_blocks: 230,
                mean_block_len: 6.5,
            },
            Phase {
                name: "refresh".into(),
                mix: int_mix(0.30, 0.12, 0.01),
                memory: MemoryMix {
                    regions: vec![strided(1536 * KB, 512, 1.4), random(96 * KB, 3.0)],
                },
                static_blocks: 140,
                mean_block_len: 7.0,
            },
        ],
        phase_schedule: pattern(&[0, 0, 0, 0, 0, 1], 8),
    }
}

fn crafty() -> WorkloadProfile {
    WorkloadProfile {
        name: "crafty".into(),
        seed: 0x6372_6166,
        branches: BranchMix {
            biased_fraction: 0.64,
            bias: 0.93,
            loop_fraction: 0.16,
            mean_trip_count: 8.0,
            random_taken: 0.46,
        },
        mean_dep_distance: 5.0,
        second_source_prob: 0.55,
        phases: vec![
            Phase {
                name: "search".into(),
                mix: int_mix(0.25, 0.08, 0.03),
                memory: MemoryMix {
                    regions: vec![
                        random(14 * KB, 9.0),
                        strided(320 * KB, 128, 1.4),
                        random(MB, 0.15),
                    ],
                },
                // Large instruction footprint: stresses the studied L1I sizes.
                static_blocks: 620,
                mean_block_len: 4.5,
            },
            Phase {
                name: "evaluate".into(),
                mix: int_mix(0.22, 0.06, 0.05),
                memory: MemoryMix {
                    regions: vec![random(10 * KB, 8.0), random(128 * KB, 0.9)],
                },
                static_blocks: 480,
                mean_block_len: 5.0,
            },
            Phase {
                name: "hash_probe".into(),
                mix: int_mix(0.34, 0.05, 0.01),
                memory: MemoryMix {
                    regions: vec![random(1024 * KB, 0.7), random(16 * KB, 4.0)],
                },
                static_blocks: 300,
                mean_block_len: 6.0,
            },
        ],
        phase_schedule: pattern(&[0, 1, 0, 1, 2, 0, 1, 0], 6),
    }
}

fn twolf() -> WorkloadProfile {
    WorkloadProfile {
        name: "twolf".into(),
        seed: 0x7477_6F6C,
        branches: BranchMix {
            biased_fraction: 0.56,
            bias: 0.90,
            loop_fraction: 0.18,
            mean_trip_count: 9.0,
            random_taken: 0.50, // data-dependent: near-max entropy
        },
        mean_dep_distance: 3.2,
        second_source_prob: 0.50,
        phases: vec![
            Phase {
                name: "new_position".into(),
                mix: int_mix(0.27, 0.11, 0.04),
                memory: MemoryMix {
                    regions: vec![
                        random(12 * KB, 6.5),
                        random(100 * KB, 1.6),
                        strided(448 * KB, 256, 1.4),
                    ],
                },
                static_blocks: 520,
                mean_block_len: 4.8,
            },
            Phase {
                name: "cost_eval".into(),
                mix: int_mix(0.31, 0.07, 0.06),
                memory: MemoryMix {
                    regions: vec![random(40 * KB, 5.0), random(288 * KB, 0.9)],
                },
                static_blocks: 420,
                mean_block_len: 4.2,
            },
            Phase {
                name: "accept_reject".into(),
                mix: int_mix(0.20, 0.14, 0.02),
                memory: MemoryMix {
                    regions: vec![random(8 * KB, 5.0), strided(640 * KB, 256, 1.2)],
                },
                static_blocks: 380,
                mean_block_len: 5.5,
            },
            Phase {
                name: "reconfigure".into(),
                mix: int_mix(0.29, 0.13, 0.03),
                memory: MemoryMix {
                    regions: vec![seq(200 * KB, 1.2), random(24 * KB, 4.5)],
                },
                static_blocks: 450,
                mean_block_len: 4.6,
            },
        ],
        // Irregular schedule: annealing temperature changes phase balance.
        phase_schedule: vec![
            0, 1, 2, 0, 1, 1, 3, 0, 2, 1, 0, 3, 1, 2, 0, 1, 0, 2, 3, 1, 0, 1, 2, 0, 1, 3, 0, 1, 2,
            1, 0, 2, 1, 0, 3, 1, 0, 2, 1, 0, 1, 2, 3, 0, 1, 0, 2, 1,
        ],
    }
}

fn mgrid() -> WorkloadProfile {
    WorkloadProfile {
        name: "mgrid".into(),
        seed: 0x6D67_7269,
        branches: BranchMix {
            biased_fraction: 0.22,
            bias: 0.97,
            loop_fraction: 0.68,
            mean_trip_count: 48.0,
            random_taken: 0.60,
        },
        mean_dep_distance: 10.0, // vectorizable inner loops: high ILP
        second_source_prob: 0.60,
        phases: vec![
            Phase {
                name: "relax_fine".into(),
                mix: fp_mix(0.34, 0.11, 0.28, 0.14),
                memory: MemoryMix {
                    regions: vec![
                        seq(24 * KB, 7.0),
                        strided(768 * KB, 512, 1.6),
                        strided(1024 * KB, 8, 0.5),
                    ],
                },
                static_blocks: 120,
                mean_block_len: 9.0,
            },
            Phase {
                name: "relax_mid".into(),
                mix: fp_mix(0.33, 0.12, 0.27, 0.13),
                memory: MemoryMix {
                    regions: vec![
                        seq(20 * KB, 7.0),
                        strided(384 * KB, 256, 1.6),
                        strided(384 * KB, 8, 0.5),
                    ],
                },
                static_blocks: 110,
                mean_block_len: 9.0,
            },
            Phase {
                name: "relax_coarse".into(),
                mix: fp_mix(0.31, 0.13, 0.26, 0.12),
                memory: MemoryMix {
                    regions: vec![strided(40 * KB, 8, 6.0), seq(6 * KB, 3.0)],
                },
                static_blocks: 100,
                mean_block_len: 8.0,
            },
        ],
        // V-cycles: fine -> mid -> coarse -> mid -> fine ...
        phase_schedule: pattern(&[0, 1, 2, 2, 1, 0], 8),
    }
}

fn applu() -> WorkloadProfile {
    WorkloadProfile {
        name: "applu".into(),
        seed: 0x6170_706C,
        branches: BranchMix {
            biased_fraction: 0.28,
            bias: 0.96,
            loop_fraction: 0.60,
            mean_trip_count: 36.0,
            random_taken: 0.55,
        },
        mean_dep_distance: 7.0,
        second_source_prob: 0.62,
        phases: vec![
            Phase {
                name: "jacobian".into(),
                mix: fp_mix(0.30, 0.14, 0.26, 0.16),
                memory: MemoryMix {
                    regions: vec![
                        seq(12 * KB, 6.0),
                        strided(44 * KB, 16, 2.2),
                        strided(1024 * KB, 512, 1.2),
                    ],
                },
                static_blocks: 170,
                mean_block_len: 10.0,
            },
            Phase {
                name: "lower_sweep".into(),
                mix: fp_mix(0.33, 0.12, 0.25, 0.14),
                memory: MemoryMix {
                    regions: vec![
                        seq(16 * KB, 6.0),
                        strided(1280 * KB, 512, 1.2),
                        seq(96 * KB, 1.4),
                    ],
                },
                static_blocks: 150,
                mean_block_len: 11.0,
            },
            Phase {
                name: "upper_sweep".into(),
                mix: fp_mix(0.33, 0.12, 0.25, 0.14),
                memory: MemoryMix {
                    regions: vec![
                        seq(16 * KB, 6.0),
                        strided(1280 * KB, 512, 1.2),
                        random(64 * KB, 1.0),
                    ],
                },
                static_blocks: 150,
                mean_block_len: 11.0,
            },
        ],
        phase_schedule: pattern(&[0, 1, 2, 1, 2], 10),
    }
}

fn mesa() -> WorkloadProfile {
    WorkloadProfile {
        name: "mesa".into(),
        seed: 0x6D65_7361,
        branches: BranchMix {
            biased_fraction: 0.66,
            bias: 0.94,
            loop_fraction: 0.22,
            mean_trip_count: 16.0,
            random_taken: 0.58,
        },
        mean_dep_distance: 6.0,
        second_source_prob: 0.52,
        phases: vec![
            Phase {
                name: "transform".into(),
                mix: fp_mix(0.26, 0.13, 0.24, 0.12),
                memory: MemoryMix {
                    regions: vec![seq(10 * KB, 8.0), seq(768 * KB, 0.5)],
                },
                static_blocks: 560,
                mean_block_len: 7.0,
            },
            Phase {
                name: "rasterize".into(),
                mix: fp_mix(0.28, 0.18, 0.16, 0.07),
                memory: MemoryMix {
                    regions: vec![strided(224 * KB, 128, 1.2), random(20 * KB, 7.0)],
                },
                static_blocks: 520,
                mean_block_len: 5.5,
            },
            Phase {
                name: "texture".into(),
                mix: fp_mix(0.32, 0.10, 0.18, 0.10),
                memory: MemoryMix {
                    regions: vec![strided(512 * KB, 256, 1.3), seq(12 * KB, 6.0)],
                },
                static_blocks: 500,
                mean_block_len: 6.0,
            },
        ],
        phase_schedule: pattern(&[0, 1, 1, 2, 1, 0, 1, 2], 6),
    }
}

fn equake() -> WorkloadProfile {
    WorkloadProfile {
        name: "equake".into(),
        seed: 0x6571_6B65,
        branches: BranchMix {
            biased_fraction: 0.34,
            bias: 0.94,
            loop_fraction: 0.50,
            mean_trip_count: 26.0,
            random_taken: 0.52,
        },
        mean_dep_distance: 4.2,
        second_source_prob: 0.58,
        phases: vec![
            Phase {
                name: "smvp".into(),
                mix: fp_mix(0.38, 0.09, 0.24, 0.12),
                memory: MemoryMix {
                    // Sparse matrix-vector product: indexed gathers.
                    regions: vec![
                        random(700 * KB, 0.8),
                        strided(1024 * KB, 512, 1.4),
                        seq(14 * KB, 6.0),
                    ],
                },
                static_blocks: 260,
                mean_block_len: 8.0,
            },
            Phase {
                name: "time_integration".into(),
                mix: fp_mix(0.30, 0.15, 0.26, 0.13),
                memory: MemoryMix {
                    regions: vec![strided(768 * KB, 512, 1.3), seq(36 * KB, 5.0)],
                },
                static_blocks: 200,
                mean_block_len: 9.0,
            },
        ],
        phase_schedule: pattern(&[0, 0, 1, 0, 0, 1], 8),
    }
}

/// Repeats `base` `times` times into one schedule vector.
fn pattern(base: &[u8], times: usize) -> Vec<u8> {
    base.iter()
        .copied()
        .cycle()
        .take(base.len() * times)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_profiles_validate() {
        for b in Benchmark::ALL {
            b.profile()
                .validate()
                .unwrap_or_else(|e| panic!("{}: {e}", b.name()));
        }
    }

    #[test]
    fn names_round_trip() {
        for b in Benchmark::ALL {
            assert_eq!(Benchmark::from_name(b.name()), Some(b));
            assert_eq!(b.name().parse::<Benchmark>(), Ok(b));
        }
        assert_eq!(Benchmark::from_name("nope"), None);
        let err = "nope".parse::<Benchmark>().unwrap_err();
        assert!(err.to_string().contains("gzip"));
    }

    #[test]
    fn seeds_are_distinct() {
        let mut seeds: Vec<u64> = Benchmark::ALL.iter().map(|b| b.profile().seed).collect();
        seeds.sort();
        seeds.dedup();
        assert_eq!(seeds.len(), 8);
    }

    #[test]
    fn featured_set_matches_paper() {
        let names: Vec<&str> = Benchmark::FEATURED.iter().map(|b| b.name()).collect();
        assert_eq!(names, ["mesa", "equake", "mcf", "crafty"]);
    }

    #[test]
    fn working_sets_straddle_studied_cache_sizes() {
        // At least one benchmark must exceed the largest studied L2 (2 MB)
        // and at least one must fit in the smallest studied L1 (8 KB).
        let mut exceeds_l2 = false;
        let mut fits_l1 = false;
        for b in Benchmark::ALL {
            for phase in &b.profile().phases {
                for r in &phase.memory.regions {
                    exceeds_l2 |= r.bytes > 2 * MB;
                    fits_l1 |= r.bytes <= 8 * KB;
                }
            }
        }
        assert!(exceeds_l2 && fits_l1);
    }

    #[test]
    fn schedules_are_nontrivial() {
        for b in Benchmark::ALL {
            let p = b.profile();
            assert!(
                p.phase_schedule.len() >= 24,
                "{}: schedule too short for SimPoint",
                b.name()
            );
            if p.phases.len() > 1 {
                let first = p.phase_schedule[0];
                assert!(
                    p.phase_schedule.iter().any(|&x| x != first),
                    "{}: schedule never changes phase",
                    b.name()
                );
            }
        }
    }
}
