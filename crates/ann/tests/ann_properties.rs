//! Property tests for the neural-network stack.

use archpredict_ann::dataset::fold_ranges;
use archpredict_ann::network::{Network, NetworkSnapshot, PredictScratch};
use archpredict_ann::scaling::{MinMaxScaler, TargetScaler};
use archpredict_stats::rng::Xoshiro256;
use proptest::prelude::*;

/// A small random topology: input width, 1–2 hidden layers, output width.
fn arb_topology() -> impl Strategy<Value = Vec<usize>> {
    (
        1usize..5,
        prop::collection::vec(1usize..12, 1..3),
        1usize..3,
    )
        .prop_map(|(inputs, hidden, outputs)| {
            let mut t = vec![inputs];
            t.extend(hidden);
            t.push(outputs);
            t
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Target scaling is a bijection on the fitted range.
    #[test]
    fn target_scaler_round_trips(
        values in prop::collection::vec(-1e6f64..1e6, 2..40),
        pick in 0usize..40,
    ) {
        let scaler = TargetScaler::fit(&values);
        let v = values[pick % values.len()];
        let round = scaler.unscale(scaler.scale(v));
        prop_assert!((round - v).abs() <= 1e-6 * v.abs().max(1.0));
        prop_assert!((0.0..=1.0).contains(&scaler.scale(v)));
    }

    /// Input scaling maps fitted rows into the unit hypercube.
    #[test]
    fn input_scaler_bounds(
        rows in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 3),
            2..30,
        ),
    ) {
        let scaler = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()));
        for row in &rows {
            for x in scaler.transform(row) {
                prop_assert!((0.0..=1.0).contains(&x), "scaled value {x}");
            }
        }
    }

    /// Fold ranges partition exactly with balanced sizes.
    #[test]
    fn folds_partition(n in 10usize..5000, k in 3usize..11) {
        prop_assume!(k <= n);
        let ranges = fold_ranges(n, k);
        prop_assert_eq!(ranges.len(), k);
        let total: usize = ranges.iter().map(|(a, b)| b - a).sum();
        prop_assert_eq!(total, n);
        let sizes: Vec<usize> = ranges.iter().map(|(a, b)| b - a).collect();
        prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    /// Forward passes are pure: same input, same output.
    #[test]
    fn prediction_is_pure(seed in 0u64..1000, x in 0.0f64..1.0, y in 0.0f64..1.0) {
        let mut rng = Xoshiro256::seed_from(seed);
        let net = Network::new(&[2, 8, 1], &mut rng);
        prop_assert_eq!(net.predict(&[x, y]), net.predict(&[x, y]));
    }

    /// The allocation-free kernel is bit-for-bit the allocating path, on
    /// any random topology — including scratch reuse across topologies.
    #[test]
    fn predict_into_matches_predict_bit_for_bit(
        topology in arb_topology(),
        other in arb_topology(),
        seed in 0u64..1000,
        raw in prop::collection::vec(0.0f64..1.0, 4),
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let net = Network::new(&topology, &mut rng);
        let input = &raw[..topology[0]];
        let mut scratch = PredictScratch::default();
        // Dirty the scratch with a different topology first: buffers must
        // be reusable across networks of any shape.
        let other_net = Network::new(&other, &mut rng);
        let _ = other_net.predict_into(&raw[..other[0]], &mut scratch);
        prop_assert_eq!(
            net.predict_into(input, &mut scratch).to_vec(),
            net.predict(input)
        );
    }

    /// Batch prediction over a row-major matrix equals row-by-row predict,
    /// bit for bit, and appends (never clobbers) the output vector.
    #[test]
    fn predict_batch_matches_predict_bit_for_bit(
        topology in arb_topology(),
        seed in 0u64..1000,
        n_rows in 0usize..9,
        raw in prop::collection::vec(0.0f64..1.0, 8 * 4),
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let net = Network::new(&topology, &mut rng);
        let dims = topology[0];
        let rows: Vec<f64> = raw.iter().copied().take(n_rows * dims).collect();
        let mut scratch = PredictScratch::default();
        let mut outputs = vec![f64::NAN];
        net.predict_batch(&rows, &mut outputs, &mut scratch);
        let outputs_per_row = *topology.last().unwrap();
        prop_assert_eq!(outputs.len(), 1 + n_rows * outputs_per_row);
        prop_assert!(outputs[0].is_nan(), "batch must append, not clobber");
        for (row, out) in rows.chunks_exact(dims).zip(outputs[1..].chunks_exact(outputs_per_row)) {
            prop_assert_eq!(net.predict(row), out.to_vec());
        }
    }

    /// Snapshot → perturb → restore is a bit-for-bit round trip.
    #[test]
    fn snapshot_restore_round_trips(
        topology in arb_topology(),
        seed in 0u64..1000,
        raw in prop::collection::vec(0.05f64..0.95, 4),
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut net = Network::new(&topology, &mut rng);
        let input = raw[..topology[0]].to_vec();
        let before = net.predict(&input);
        let mut snap = NetworkSnapshot::default();
        net.snapshot_into(&mut snap);
        let target = vec![0.5; *topology.last().unwrap()];
        net.train_example(&input, &target, 0.3, 0.5);
        net.restore(&snap);
        prop_assert_eq!(net.predict(&input), before);
    }

    /// Training on one example reduces (or preserves) that example's error
    /// when momentum is off and the step is small.
    #[test]
    fn gradient_step_descends(seed in 0u64..500, x in 0.05f64..0.95, t in 0.1f64..0.9) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut net = Network::new(&[1, 6, 1], &mut rng);
        let before = (net.predict(&[x])[0] - t).abs();
        for _ in 0..10 {
            net.train_example(&[x], &[t], 0.01, 0.0);
        }
        let after = (net.predict(&[x])[0] - t).abs();
        prop_assert!(after <= before + 1e-9, "{before} -> {after}");
    }

    /// The blocked batch kernel is bit-for-bit the textbook scalar path on
    /// random topologies and batch sizes. Batch sizes up to 40 exercise
    /// ragged lane tails (n % 8 != 0) and the topology strategy's hidden
    /// widths of 1–11 exercise ragged unit tiles (units % 4 != 0).
    #[test]
    fn blocked_batch_matches_naive_bit_for_bit(
        topology in arb_topology(),
        seed in 0u64..1000,
        n_rows in 0usize..41,
        raw in prop::collection::vec(0.0f64..1.0, 41 * 4),
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let net = Network::new(&topology, &mut rng);
        let dims = topology[0];
        let rows: Vec<f64> = raw.iter().copied().take(n_rows * dims).collect();
        let mut scratch = PredictScratch::default();
        let mut outputs = Vec::new();
        net.predict_batch(&rows, &mut outputs, &mut scratch);
        let width = *topology.last().unwrap();
        let mut naive_scratch = PredictScratch::default();
        for (row, out) in rows.chunks_exact(dims).zip(outputs.chunks_exact(width)) {
            prop_assert_eq!(
                net.predict_into_naive(row, &mut naive_scratch),
                out,
                "blocked kernel diverged from the scalar reference"
            );
        }
    }

    /// The vectorized backprop step produces bit-for-bit the same network
    /// as the textbook scalar reference after a run of presentations, for
    /// random topologies (including multi-head outputs), learning rates,
    /// and momenta.
    #[test]
    fn vectorized_trainer_matches_reference_bit_for_bit(
        topology in arb_topology(),
        seed in 0u64..1000,
        steps in 1usize..24,
        rate in 0.01f64..0.9,
        momentum in 0.0f64..0.9,
    ) {
        let mut rng = Xoshiro256::seed_from(seed);
        let fresh = Network::new(&topology, &mut rng);
        let mut vectorized = fresh.clone();
        let mut reference = fresh;
        let (inputs, outputs) = (topology[0], *topology.last().unwrap());
        let mut example_rng = Xoshiro256::seed_from(seed ^ 0x9e37);
        for _ in 0..steps {
            let x: Vec<f64> = (0..inputs).map(|_| example_rng.next_f64()).collect();
            let t: Vec<f64> = (0..outputs).map(|_| example_rng.next_f64()).collect();
            let err_v = vectorized.train_example(&x, &t, rate, momentum);
            let err_r = reference.train_example_reference(&x, &t, rate, momentum);
            prop_assert_eq!(err_v, err_r, "per-step error diverged");
        }
        prop_assert_eq!(
            &vectorized, &reference,
            "vectorized trainer diverged from the scalar reference"
        );
    }
}

/// Batches longer than one 256-point block must chunk correctly: the
/// block-boundary seams (ends exactly on a boundary, one past, mid-block
/// ragged tail) stay bit-for-bit equal to the scalar path.
#[test]
fn blocked_batch_crosses_block_boundaries() {
    let mut rng = Xoshiro256::seed_from(42);
    let net = Network::new(&[3, 7, 2], &mut rng);
    for n_rows in [255, 256, 257, 512, 600] {
        let mut rng = Xoshiro256::seed_from(n_rows as u64);
        let rows: Vec<f64> = (0..n_rows * 3).map(|_| rng.next_f64()).collect();
        let mut scratch = PredictScratch::default();
        let mut outputs = Vec::new();
        net.predict_batch(&rows, &mut outputs, &mut scratch);
        assert_eq!(outputs.len(), n_rows * 2);
        let mut naive_scratch = PredictScratch::default();
        for (row, out) in rows.chunks_exact(3).zip(outputs.chunks_exact(2)) {
            assert_eq!(
                net.predict_into_naive(row, &mut naive_scratch),
                out,
                "diverged in a {n_rows}-point batch"
            );
        }
    }
}
