//! Property tests for the neural-network stack.

use archpredict_ann::dataset::fold_ranges;
use archpredict_ann::network::Network;
use archpredict_ann::scaling::{MinMaxScaler, TargetScaler};
use archpredict_stats::rng::Xoshiro256;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Target scaling is a bijection on the fitted range.
    #[test]
    fn target_scaler_round_trips(
        values in prop::collection::vec(-1e6f64..1e6, 2..40),
        pick in 0usize..40,
    ) {
        let scaler = TargetScaler::fit(&values);
        let v = values[pick % values.len()];
        let round = scaler.unscale(scaler.scale(v));
        prop_assert!((round - v).abs() <= 1e-6 * v.abs().max(1.0));
        prop_assert!((0.0..=1.0).contains(&scaler.scale(v)));
    }

    /// Input scaling maps fitted rows into the unit hypercube.
    #[test]
    fn input_scaler_bounds(
        rows in prop::collection::vec(
            prop::collection::vec(-1e3f64..1e3, 3),
            2..30,
        ),
    ) {
        let scaler = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()));
        for row in &rows {
            for x in scaler.transform(row) {
                prop_assert!((0.0..=1.0).contains(&x), "scaled value {x}");
            }
        }
    }

    /// Fold ranges partition exactly with balanced sizes.
    #[test]
    fn folds_partition(n in 10usize..5000, k in 3usize..11) {
        prop_assume!(k <= n);
        let ranges = fold_ranges(n, k);
        prop_assert_eq!(ranges.len(), k);
        let total: usize = ranges.iter().map(|(a, b)| b - a).sum();
        prop_assert_eq!(total, n);
        let sizes: Vec<usize> = ranges.iter().map(|(a, b)| b - a).collect();
        prop_assert!(sizes.iter().max().unwrap() - sizes.iter().min().unwrap() <= 1);
    }

    /// Forward passes are pure: same input, same output.
    #[test]
    fn prediction_is_pure(seed in 0u64..1000, x in 0.0f64..1.0, y in 0.0f64..1.0) {
        let mut rng = Xoshiro256::seed_from(seed);
        let net = Network::new(&[2, 8, 1], &mut rng);
        prop_assert_eq!(net.predict(&[x, y]), net.predict(&[x, y]));
    }

    /// Training on one example reduces (or preserves) that example's error
    /// when momentum is off and the step is small.
    #[test]
    fn gradient_step_descends(seed in 0u64..500, x in 0.05f64..0.95, t in 0.1f64..0.9) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut net = Network::new(&[1, 6, 1], &mut rng);
        let before = (net.predict(&[x])[0] - t).abs();
        for _ in 0..10 {
            net.train_example(&[x], &[t], 0.01, 0.0);
        }
        let after = (net.predict(&[x])[0] - t).abs();
        prop_assert!(after <= before + 1e-9, "{before} -> {after}");
    }
}
