//! Minimax normalization (paper §3.3).
//!
//! Cardinal and continuous inputs — and the target metric — are scaled into
//! `[0, 1]` using their minimum and maximum over the data, preventing
//! parameters with wide ranges from dominating the gradient. Predictions
//! are scaled back to the original range before error is computed, because
//! the paper reports *percentage* error in real units.

use archpredict_stats::json::{JsonError, Value};

/// Per-dimension minimax scaler for feature vectors.
#[derive(Debug, Clone, PartialEq)]
pub struct MinMaxScaler {
    mins: Vec<f64>,
    maxs: Vec<f64>,
}

impl MinMaxScaler {
    /// Fits the scaler to rows of equal-length feature vectors.
    ///
    /// # Panics
    ///
    /// Panics if `rows` is empty or ragged.
    pub fn fit<'a, I>(rows: I) -> Self
    where
        I: IntoIterator<Item = &'a [f64]>,
    {
        let mut iter = rows.into_iter();
        let first = iter.next().expect("cannot fit scaler to no data");
        let mut mins = first.to_vec();
        let mut maxs = first.to_vec();
        for row in iter {
            assert_eq!(row.len(), mins.len(), "ragged feature rows");
            for ((m, x), v) in mins.iter_mut().zip(row).zip(maxs.iter_mut()) {
                *m = m.min(*x);
                *v = v.max(*x);
            }
        }
        Self { mins, maxs }
    }

    /// Builds a scaler from explicit per-dimension bounds (e.g. the design
    /// space's declared parameter ranges, as the paper normalizes).
    ///
    /// # Panics
    ///
    /// Panics if lengths differ or any `min > max`.
    pub fn from_bounds(mins: Vec<f64>, maxs: Vec<f64>) -> Self {
        assert_eq!(mins.len(), maxs.len(), "bounds length mismatch");
        assert!(
            mins.iter().zip(&maxs).all(|(a, b)| a <= b),
            "min exceeds max"
        );
        Self { mins, maxs }
    }

    /// Number of dimensions.
    pub fn dims(&self) -> usize {
        self.mins.len()
    }

    /// Serializes the fitted bounds to a JSON [`Value`].
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("mins".into(), Value::from_f64s(&self.mins)),
            ("maxs".into(), Value::from_f64s(&self.maxs)),
        ])
    }

    /// Deserializes bounds written by [`MinMaxScaler::to_json_value`].
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let mins = value.get("mins")?.as_f64_vec()?;
        let maxs = value.get("maxs")?.as_f64_vec()?;
        if mins.len() != maxs.len() || mins.iter().zip(&maxs).any(|(a, b)| a > b) {
            return Err(JsonError::custom("invalid scaler bounds"));
        }
        Ok(Self { mins, maxs })
    }

    /// Scales a feature vector into `[0, 1]` per dimension. Constant
    /// dimensions map to `0.5`.
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn transform(&self, row: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.dims());
        self.transform_into(row, &mut out);
        out
    }

    /// Scales a feature vector, *appending* the `dims()` scaled values to
    /// `out` — the allocation-free building block for row-major feature
    /// matrices. Bit-for-bit identical to [`MinMaxScaler::transform`].
    ///
    /// # Panics
    ///
    /// Panics on dimensionality mismatch.
    pub fn transform_into(&self, row: &[f64], out: &mut Vec<f64>) {
        assert_eq!(row.len(), self.dims(), "dimensionality mismatch");
        out.extend(
            row.iter()
                .zip(self.mins.iter().zip(&self.maxs))
                .map(|(&x, (&lo, &hi))| {
                    // Degenerate (constant, non-finite, or never-fitted) ranges
                    // map to the interval midpoint instead of producing NaN/Inf
                    // that would poison every downstream weight.
                    if lo.is_finite() && hi.is_finite() && hi > lo {
                        (x - lo) / (hi - lo)
                    } else {
                        0.5
                    }
                }),
        );
    }
}

/// Minimax scaler for a scalar target.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TargetScaler {
    min: f64,
    max: f64,
}

impl TargetScaler {
    /// Fits to observed target values. Non-finite values are ignored (a
    /// faulty simulator must not poison the scale of every good sample);
    /// if no finite value remains the scaler degenerates to the constant
    /// range `[0, 0]`, which [`TargetScaler::scale`] maps to `0.5`.
    ///
    /// # Panics
    ///
    /// Panics if `values` is empty.
    pub fn fit(values: &[f64]) -> Self {
        assert!(!values.is_empty(), "cannot fit scaler to no data");
        let finite = values.iter().copied().filter(|v| v.is_finite());
        let (min, max) = finite.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
            (lo.min(v), hi.max(v))
        });
        if min.is_finite() && max.is_finite() {
            Self { min, max }
        } else {
            Self { min: 0.0, max: 0.0 }
        }
    }

    /// Serializes the fitted range to a JSON [`Value`].
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("min".into(), Value::num(self.min)),
            ("max".into(), Value::num(self.max)),
        ])
    }

    /// Deserializes a range written by [`TargetScaler::to_json_value`].
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let min = value.get("min")?.as_f64()?;
        let max = value.get("max")?.as_f64()?;
        if min > max {
            return Err(JsonError::custom("invalid target range"));
        }
        Ok(Self { min, max })
    }

    /// Scales a raw target into `[0, 1]` (`0.5` for a constant or
    /// degenerate range).
    pub fn scale(&self, value: f64) -> f64 {
        if self.max > self.min && (self.max - self.min).is_finite() {
            (value - self.min) / (self.max - self.min)
        } else {
            0.5
        }
    }

    /// Maps a normalized prediction back to the raw range.
    pub fn unscale(&self, normalized: f64) -> f64 {
        if self.max > self.min && (self.max - self.min).is_finite() {
            self.min + normalized * (self.max - self.min)
        } else {
            self.min
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transform_maps_bounds_to_unit_interval() {
        let rows = [vec![0.0, 10.0], vec![4.0, 30.0], vec![2.0, 20.0]];
        let scaler = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()));
        assert_eq!(scaler.transform(&[0.0, 10.0]), vec![0.0, 0.0]);
        assert_eq!(scaler.transform(&[4.0, 30.0]), vec![1.0, 1.0]);
        assert_eq!(scaler.transform(&[2.0, 20.0]), vec![0.5, 0.5]);
    }

    #[test]
    fn constant_dimension_maps_to_half() {
        let rows = [vec![3.0], vec![3.0]];
        let scaler = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()));
        assert_eq!(scaler.transform(&[3.0]), vec![0.5]);
    }

    #[test]
    fn target_round_trip() {
        let scaler = TargetScaler::fit(&[0.2, 1.4, 0.8]);
        for v in [0.2, 0.5, 1.4] {
            assert!((scaler.unscale(scaler.scale(v)) - v).abs() < 1e-12);
        }
        assert_eq!(scaler.scale(0.2), 0.0);
        assert_eq!(scaler.scale(1.4), 1.0);
    }

    #[test]
    fn non_finite_targets_are_ignored_by_fit() {
        let scaler = TargetScaler::fit(&[0.2, f64::NAN, 1.4, f64::INFINITY, 0.8]);
        assert_eq!(scaler.scale(0.2), 0.0);
        assert_eq!(scaler.scale(1.4), 1.0);
        // All-non-finite data degenerates to the midpoint, never NaN.
        let degenerate = TargetScaler::fit(&[f64::NAN, f64::NEG_INFINITY]);
        assert_eq!(degenerate.scale(7.0), 0.5);
        assert!(degenerate.unscale(0.3).is_finite());
    }

    #[test]
    fn non_finite_feature_bounds_map_to_midpoint() {
        let rows = [vec![f64::NAN, 1.0], vec![f64::NAN, 3.0]];
        let scaler = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()));
        let out = scaler.transform(&[5.0, 2.0]);
        assert!(out.iter().all(|v| v.is_finite()), "got {out:?}");
        assert_eq!(out[1], 0.5);
    }

    #[test]
    fn from_bounds_matches_fit() {
        let a = MinMaxScaler::from_bounds(vec![0.0, 10.0], vec![4.0, 30.0]);
        let rows = [vec![0.0, 10.0], vec![4.0, 30.0]];
        let b = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()));
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "min exceeds max")]
    fn inverted_bounds_panic() {
        MinMaxScaler::from_bounds(vec![1.0], vec![0.0]);
    }

    #[test]
    fn json_round_trips_exactly() {
        let rows = [vec![0.1, 10.0], vec![0.7, 30.0]];
        let scaler = MinMaxScaler::fit(rows.iter().map(|r| r.as_slice()));
        let back = MinMaxScaler::from_json_value(
            &Value::parse(&scaler.to_json_value().to_json()).unwrap(),
        )
        .unwrap();
        assert_eq!(scaler, back);

        let target = TargetScaler::fit(&[0.2, 1.4]);
        let back = TargetScaler::from_json_value(
            &Value::parse(&target.to_json_value().to_json()).unwrap(),
        )
        .unwrap();
        assert_eq!(target, back);
        assert!(
            TargetScaler::from_json_value(&Value::parse("{\"min\":2.0,\"max\":1.0}").unwrap())
                .is_err()
        );
    }
}
