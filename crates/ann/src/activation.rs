//! Activation functions.
//!
//! The paper uses sigmoid hidden units (Fig. 3.2). Output units are linear,
//! the standard choice for regression targets. The requirements stated in
//! §3 — non-linear, monotonic, differentiable — are satisfied by both
//! provided non-linearities.

use archpredict_stats::fastmath;

/// Supported activation functions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Activation {
    /// Logistic sigmoid `1 / (1 + e^-x)` (the paper's hidden units).
    Sigmoid,
    /// Hyperbolic tangent.
    Tanh,
    /// Identity (regression outputs).
    Linear,
}

impl Activation {
    /// Applies the function.
    ///
    /// Sigmoid goes through [`fastmath::exp`] rather than libm: the
    /// polynomial is branch-free IEEE arithmetic, so forward-pass loops
    /// containing the activation still autovectorize, and scalar vs.
    /// lane-blocked evaluation is bit-for-bit identical — the property the
    /// blocked batch kernels' determinism contract rests on.
    #[inline]
    pub fn apply(self, x: f64) -> f64 {
        match self {
            Activation::Sigmoid => 1.0 / (1.0 + fastmath::exp(-x)),
            Activation::Tanh => x.tanh(),
            Activation::Linear => x,
        }
    }

    /// Applies the function elementwise in place — per element exactly
    /// [`Activation::apply`], but with the variant match hoisted out of
    /// the loop so the body is one branch-free vectorizable pass. The
    /// batch kernels run this over whole activation matrices (thousands
    /// of elements), which is where the sigmoid's polynomial `exp`
    /// actually gets its SIMD width.
    #[inline]
    pub fn apply_slice(self, values: &mut [f64]) {
        match self {
            Activation::Sigmoid => {
                for v in values.iter_mut() {
                    *v = 1.0 / (1.0 + fastmath::exp(-*v));
                }
            }
            Activation::Tanh => {
                for v in values.iter_mut() {
                    *v = v.tanh();
                }
            }
            Activation::Linear => {}
        }
    }

    /// Derivative expressed in terms of the *output* value `y = f(x)`,
    /// which is what backpropagation has at hand.
    #[inline]
    pub fn derivative_from_output(self, y: f64) -> f64 {
        match self {
            Activation::Sigmoid => y * (1.0 - y),
            Activation::Tanh => 1.0 - y * y,
            Activation::Linear => 1.0,
        }
    }

    /// Stable name used by the JSON persistence format.
    pub fn name(self) -> &'static str {
        match self {
            Activation::Sigmoid => "sigmoid",
            Activation::Tanh => "tanh",
            Activation::Linear => "linear",
        }
    }

    /// Inverse of [`Activation::name`].
    pub fn from_name(name: &str) -> Option<Self> {
        match name {
            "sigmoid" => Some(Activation::Sigmoid),
            "tanh" => Some(Activation::Tanh),
            "linear" => Some(Activation::Linear),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sigmoid_shape() {
        assert_eq!(Activation::Sigmoid.apply(0.0), 0.5);
        assert!(Activation::Sigmoid.apply(10.0) > 0.999);
        assert!(Activation::Sigmoid.apply(-10.0) < 0.001);
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let eps = 1e-6;
        for f in [Activation::Sigmoid, Activation::Tanh, Activation::Linear] {
            for x in [-2.0, -0.5, 0.0, 0.7, 3.0] {
                let numeric = (f.apply(x + eps) - f.apply(x - eps)) / (2.0 * eps);
                let analytic = f.derivative_from_output(f.apply(x));
                assert!(
                    (numeric - analytic).abs() < 1e-6,
                    "{f:?} at {x}: {numeric} vs {analytic}"
                );
            }
        }
    }

    #[test]
    fn monotonicity() {
        for f in [Activation::Sigmoid, Activation::Tanh, Activation::Linear] {
            let mut prev = f.apply(-5.0);
            let mut x = -4.5;
            while x <= 5.0 {
                let y = f.apply(x);
                assert!(y > prev);
                prev = y;
                x += 0.5;
            }
        }
    }
}
