//! Training datasets and cross-validation fold layout.

/// One training example: raw (unnormalized) features and target.
#[derive(Debug, Clone, PartialEq)]
pub struct Sample {
    /// Encoded design-point features (one-hot nominals, raw cardinals…).
    pub features: Vec<f64>,
    /// Raw target metric (e.g. IPC).
    pub target: f64,
}

impl Sample {
    /// Convenience constructor.
    pub fn new(features: Vec<f64>, target: f64) -> Self {
        Self { features, target }
    }
}

/// A growable collection of samples.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Dataset {
    samples: Vec<Sample>,
}

impl Dataset {
    /// Creates an empty dataset.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends one sample.
    ///
    /// # Panics
    ///
    /// Panics if the sample's dimensionality differs from earlier samples
    /// or its target is non-finite.
    pub fn push(&mut self, sample: Sample) {
        if let Some(first) = self.samples.first() {
            assert_eq!(
                first.features.len(),
                sample.features.len(),
                "feature dimensionality mismatch"
            );
        }
        assert!(sample.target.is_finite(), "non-finite target");
        self.samples.push(sample);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.samples.len()
    }

    /// Whether the dataset is empty.
    pub fn is_empty(&self) -> bool {
        self.samples.is_empty()
    }

    /// All samples.
    pub fn samples(&self) -> &[Sample] {
        &self.samples
    }

    /// Iterates over samples.
    pub fn iter(&self) -> std::slice::Iter<'_, Sample> {
        self.samples.iter()
    }
}

impl FromIterator<Sample> for Dataset {
    fn from_iter<I: IntoIterator<Item = Sample>>(iter: I) -> Self {
        let mut d = Dataset::new();
        for s in iter {
            d.push(s);
        }
        d
    }
}

impl Extend<Sample> for Dataset {
    fn extend<I: IntoIterator<Item = Sample>>(&mut self, iter: I) {
        for s in iter {
            self.push(s);
        }
    }
}

/// Splits `0..n` into `k` contiguous folds whose sizes differ by at most
/// one (Fig. 3.3's layout: the data arrive in random order, so contiguous
/// folds are random folds).
///
/// Returns `(start, end)` half-open ranges.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds `n`.
pub fn fold_ranges(n: usize, k: usize) -> Vec<(usize, usize)> {
    assert!(k > 0, "need at least one fold");
    assert!(k <= n, "more folds than samples ({k} > {n})");
    let base = n / k;
    let extra = n % k;
    let mut ranges = Vec::with_capacity(k);
    let mut start = 0;
    for i in 0..k {
        let len = base + usize::from(i < extra);
        ranges.push((start, start + len));
        start += len;
    }
    ranges
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn folds_partition_exactly() {
        for (n, k) in [(1000, 10), (103, 10), (7, 7), (23, 4)] {
            let ranges = fold_ranges(n, k);
            assert_eq!(ranges.len(), k);
            assert_eq!(ranges[0].0, 0);
            assert_eq!(ranges.last().unwrap().1, n);
            for w in ranges.windows(2) {
                assert_eq!(w[0].1, w[1].0, "folds must be contiguous");
            }
            let sizes: Vec<usize> = ranges.iter().map(|(a, b)| b - a).collect();
            let min = sizes.iter().min().unwrap();
            let max = sizes.iter().max().unwrap();
            assert!(max - min <= 1, "balanced folds: {sizes:?}");
        }
    }

    #[test]
    fn figure_3_3_layout() {
        // 1K training points in 10 folds of 100, as the paper's example.
        let ranges = fold_ranges(1000, 10);
        assert_eq!(ranges[0], (0, 100));
        assert_eq!(ranges[9], (900, 1000));
    }

    #[test]
    fn dataset_push_validates() {
        let mut d = Dataset::new();
        d.push(Sample::new(vec![1.0, 2.0], 0.5));
        assert_eq!(d.len(), 1);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            let mut d2 = d.clone();
            d2.push(Sample::new(vec![1.0], 0.5));
        }));
        assert!(result.is_err(), "dimensionality mismatch must panic");
    }

    #[test]
    #[should_panic(expected = "more folds than samples")]
    fn too_many_folds_panics() {
        fold_ranges(5, 6);
    }
}
