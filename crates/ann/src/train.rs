//! Single-network training with early stopping (paper §3.1–3.3).
//!
//! Training presents examples stochastically; with
//! [`TrainConfig::percentage_error`] enabled (the paper's default for
//! architectural targets), examples are drawn at a frequency proportional
//! to the inverse of their target value, which makes plain squared-error
//! gradient descent optimize *percentage* error. Early stopping monitors
//! percentage error on a held-aside set and restores the best weights.

use crate::dataset::Sample;
use crate::network::{Network, NetworkSnapshot, PredictScratch};
use crate::scaling::{MinMaxScaler, TargetScaler};
use archpredict_stats::json::{JsonError, Value};
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::WeightedAlias;

/// Worker-thread policy for per-fold ensemble training
/// (see [`crate::cross_validation::fit_ensemble`]).
///
/// Fold results are joined in fold order and each fold trains from its own
/// derived RNG stream, so the trained ensemble and error estimate are
/// bit-for-bit identical for every setting of this knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Parallelism {
    /// One worker per available core (capped at the task count), unless
    /// the `ARCHPREDICT_TRAIN_THREADS` environment variable overrides the
    /// core count.
    #[default]
    Auto,
    /// Exactly this many workers; `Fixed(1)` forces the sequential path.
    Fixed(usize),
}

impl Parallelism {
    /// Environment variable overriding the automatic thread count.
    pub const ENV_THREADS: &'static str = "ARCHPREDICT_TRAIN_THREADS";

    /// Resolves the policy to a concrete worker count for `tasks`
    /// independent tasks (always at least 1, never more than `tasks`).
    pub fn worker_count(self, tasks: usize) -> usize {
        self.worker_count_with_env(tasks, Self::ENV_THREADS)
    }

    /// [`Parallelism::worker_count`] with a caller-chosen environment
    /// override for the `Auto` branch. Subsystems with their own thread
    /// knob (e.g. batch simulation's `ARCHPREDICT_SIM_THREADS`) resolve
    /// through this so `Fixed(n)` semantics stay identical everywhere.
    pub fn worker_count_with_env(self, tasks: usize, env_threads: &str) -> usize {
        let workers = match self {
            Parallelism::Fixed(n) => n.max(1),
            Parallelism::Auto => std::env::var(env_threads)
                .ok()
                .and_then(|v| v.trim().parse::<usize>().ok())
                .filter(|&n| n > 0)
                .unwrap_or_else(|| {
                    std::thread::available_parallelism()
                        .map(|n| n.get())
                        .unwrap_or(1)
                }),
        };
        workers.min(tasks.max(1))
    }
}

/// Hyperparameters for network training.
///
/// Defaults follow the paper's architecture (§3.1): one hidden layer of 16
/// units, weights initialized in ±0.01, and percentage-error training. The
/// default learning rate and momentum are higher than the paper's
/// 0.001/0.5 because our (much smaller) training sets favor faster
/// convergence; [`TrainConfig::paper`] restores the published values.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrainConfig {
    /// Hidden units in the first hidden layer.
    pub hidden_units: usize,
    /// Units in an optional second hidden layer (paper Fig. 3.1(b); `0`
    /// selects the paper's default single-hidden-layer topology).
    pub second_hidden_units: usize,
    /// Gradient-descent step size (η in Eq. 3.1).
    pub learning_rate: f64,
    /// Momentum coefficient (α in Eq. 3.2).
    pub momentum: f64,
    /// Hard cap on training epochs.
    pub max_epochs: usize,
    /// Stop after this many epochs without improvement on the
    /// early-stopping set.
    pub patience: usize,
    /// Train for percentage error: inverse-target presentation frequency
    /// and percentage-error early stopping (§3.3).
    pub percentage_error: bool,
    /// Worker threads for per-fold cross-validation training. Results are
    /// identical for every setting; this only affects wall-clock time.
    pub parallelism: Parallelism,
}

impl Default for TrainConfig {
    fn default() -> Self {
        Self {
            hidden_units: 16,
            second_hidden_units: 0,
            learning_rate: 0.1,
            momentum: 0.7,
            max_epochs: 800,
            patience: 60,
            percentage_error: true,
            parallelism: Parallelism::Auto,
        }
    }
}

impl TrainConfig {
    /// An epoch budget scaled to the training-set size: small sets afford
    /// (and need) many passes; large sets converge in fewer. Used by the
    /// experiment harness so every point on a learning curve is trained to
    /// comparable convergence.
    pub fn scaled_to(n_samples: usize) -> Self {
        let max_epochs = (400_000 / n_samples.max(1)).clamp(1_500, 10_000);
        Self {
            max_epochs,
            patience: (max_epochs / 15).max(50),
            ..Self::default()
        }
    }

    /// The paper's exact published hyperparameters (η = 0.001), which need
    /// more epochs to converge.
    pub fn paper() -> Self {
        Self {
            learning_rate: 0.001,
            momentum: 0.5,
            max_epochs: 4000,
            patience: 150,
            ..Self::default()
        }
    }
}

/// Layer sizes for a config: `[inputs, hidden, (hidden2,) outputs]`.
pub(crate) fn layer_sizes(inputs: usize, config: &TrainConfig, outputs: usize) -> Vec<usize> {
    let mut sizes = vec![inputs, config.hidden_units];
    if config.second_hidden_units > 0 {
        sizes.push(config.second_hidden_units);
    }
    sizes.push(outputs);
    sizes
}

/// A trained network together with the scalers needed to use it on raw
/// feature vectors and to return raw-scale predictions.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainedModel {
    network: Network,
    input_scaler: MinMaxScaler,
    target_scaler: TargetScaler,
    /// Epochs actually run before stopping.
    pub epochs: usize,
    /// Best mean absolute percentage error seen on the early-stopping set
    /// (the error of the restored weights).
    pub best_es_error: f64,
    /// Whether training diverged (non-finite early-stopping error from
    /// exploding weights). The returned weights are still the best finite
    /// snapshot, but callers should prefer to retrain from a fresh seed.
    pub diverged: bool,
}

/// Caller-owned scratch for allocation-free model and ensemble inference:
/// a buffer for scaled input rows (one row or a whole chunk matrix), the
/// network's ping-pong scratch, and the batch kernels' staging buffers.
/// One buffer per worker thread is the intended usage; it may be shared
/// across models of different widths (it re-sizes as needed).
#[derive(Debug, Clone, Default)]
pub struct PredictBuffer {
    scaled: Vec<f64>,
    scratch: PredictScratch,
    /// Normalized network outputs for one batch, before target unscaling.
    values: Vec<f64>,
    /// One member model's raw-scale chunk predictions (ensemble batch
    /// paths accumulate member-outer over this).
    pub(crate) member: Vec<f64>,
    /// Per-row Welford running means for batched committee disagreement.
    pub(crate) mean: Vec<f64>,
    /// Per-row Welford running sums of squared deviations.
    pub(crate) m2: Vec<f64>,
}

impl TrainedModel {
    /// Predicts the raw-scale target for raw features.
    ///
    /// Convenience wrapper over [`TrainedModel::predict_with`] that pays
    /// one scratch allocation per call; sweeps should hold a
    /// [`PredictBuffer`] and use `predict_with` / `predict_batch_into`.
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.predict_with(features, &mut PredictBuffer::default())
    }

    /// Predicts the raw-scale target for raw features using caller-owned
    /// scratch — zero allocations per call once the buffer has grown, and
    /// bit-for-bit identical to [`TrainedModel::predict`].
    pub fn predict_with(&self, features: &[f64], buf: &mut PredictBuffer) -> f64 {
        buf.scaled.clear();
        self.input_scaler.transform_into(features, &mut buf.scaled);
        let PredictBuffer {
            scaled, scratch, ..
        } = buf;
        self.target_scaler
            .unscale(self.network.predict_into(scaled, scratch)[0])
    }

    /// Width of the raw feature vectors this model consumes.
    pub fn input_dims(&self) -> usize {
        self.input_scaler.dims()
    }

    /// Predicts raw-scale targets for a row-major matrix of raw feature
    /// rows (each [`TrainedModel::input_dims`] wide), appending one
    /// prediction per row to `out`. Equivalent to per-row
    /// [`TrainedModel::predict`], bit for bit — but the whole chunk is
    /// scaled into one matrix and pushed through the blocked
    /// [`Network::predict_batch`] kernel instead of row-at-a-time forward
    /// passes.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the input width.
    pub fn predict_batch_into(&self, rows: &[f64], out: &mut Vec<f64>, buf: &mut PredictBuffer) {
        let dims = self.input_dims();
        assert_eq!(
            rows.len() % dims,
            0,
            "batch length {} is not a multiple of the feature width {dims}",
            rows.len()
        );
        buf.scaled.clear();
        for row in rows.chunks_exact(dims) {
            self.input_scaler.transform_into(row, &mut buf.scaled);
        }
        buf.values.clear();
        let PredictBuffer {
            scaled,
            scratch,
            values,
            ..
        } = buf;
        self.network.predict_batch(scaled, values, scratch);
        assert_eq!(values.len(), rows.len() / dims, "one prediction per row");
        out.reserve(values.len());
        out.extend(values.iter().map(|&y| self.target_scaler.unscale(y)));
    }

    /// [`TrainedModel::predict_with`] through the textbook per-output
    /// forward loop instead of the blocked kernel — structurally the
    /// pre-kernel production path, kept as the honest baseline the speedup
    /// gate measures the blocked kernels against. Bit-for-bit identical to
    /// [`TrainedModel::predict`], just slower. Not for production use.
    #[doc(hidden)]
    pub fn predict_reference_with(&self, features: &[f64], buf: &mut PredictBuffer) -> f64 {
        buf.scaled.clear();
        self.input_scaler.transform_into(features, &mut buf.scaled);
        let PredictBuffer {
            scaled, scratch, ..
        } = buf;
        self.target_scaler
            .unscale(self.network.predict_into_naive(scaled, scratch)[0])
    }

    /// Serializes the model (network plus scalers) to a JSON [`Value`].
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("network".into(), self.network.to_json_value()),
            ("input_scaler".into(), self.input_scaler.to_json_value()),
            ("target_scaler".into(), self.target_scaler.to_json_value()),
            ("epochs".into(), Value::num(self.epochs as f64)),
            ("best_es_error".into(), Value::num(self.best_es_error)),
            ("diverged".into(), Value::Bool(self.diverged)),
        ])
    }

    /// Deserializes a model written by [`TrainedModel::to_json_value`].
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            network: Network::from_json_value(value.get("network")?)?,
            input_scaler: MinMaxScaler::from_json_value(value.get("input_scaler")?)?,
            target_scaler: TargetScaler::from_json_value(value.get("target_scaler")?)?,
            epochs: value.get("epochs")?.as_usize()?,
            best_es_error: value.get("best_es_error")?.as_f64_or(f64::INFINITY)?,
            // Absent in models written before the fault-tolerance work.
            diverged: value
                .get("diverged")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
        })
    }
}

/// Mean absolute percentage error (in percent) of one output head over a
/// pre-scaled row-major feature matrix with raw-scale targets. The
/// early-stopping loop calls this every epoch, so the scaler transform is
/// hoisted to the caller (done once per training run) and the whole set
/// runs through the blocked [`Network::predict_batch`] kernel on reusable
/// buffers — zero allocations and no scalar forward passes per epoch.
/// Bit-for-bit identical to per-row `predict_into` evaluation.
fn percent_error(
    network: &Network,
    target_scaler: &TargetScaler,
    head: usize,
    scaled_rows: &[f64],
    targets: &[f64],
    scratch: &mut PredictScratch,
    values: &mut Vec<f64>,
) -> f64 {
    values.clear();
    network.predict_batch(scaled_rows, values, scratch);
    let heads = network.outputs();
    assert_eq!(values.len(), targets.len() * heads, "one row per target");
    let mut total = 0.0;
    for (ys, &target) in values.chunks_exact(heads).zip(targets) {
        let y = target_scaler.unscale(ys[head]);
        total += 100.0 * (y - target).abs() / target.abs().max(1e-12);
    }
    total / targets.len() as f64
}

/// Trains one network on `train`, early-stopping on `es`, with scalers
/// fitted from both sets (the design-space bounds are known up front in
/// the paper's setting, so scaler fit is not a leak).
///
/// # Panics
///
/// Panics if either set is empty or samples are inconsistently sized.
pub fn train_network(
    train: &[&Sample],
    es: &[&Sample],
    config: &TrainConfig,
    rng: &mut Xoshiro256,
) -> TrainedModel {
    assert!(!train.is_empty(), "empty training set");
    assert!(!es.is_empty(), "empty early-stopping set");

    let input_scaler = MinMaxScaler::fit(train.iter().chain(es).map(|s| s.features.as_slice()));
    let targets: Vec<f64> = train.iter().chain(es).map(|s| s.target).collect();
    let target_scaler = TargetScaler::fit(&targets);

    // Pre-normalize the training set once.
    let inputs: Vec<Vec<f64>> = train
        .iter()
        .map(|s| input_scaler.transform(&s.features))
        .collect();
    let targets: Vec<f64> = train
        .iter()
        .map(|s| target_scaler.scale(s.target))
        .collect();

    // Presentation distribution: inverse-target frequency for percentage-
    // error training, uniform otherwise.
    let weights: Vec<f64> = if config.percentage_error {
        train
            .iter()
            .map(|s| 1.0 / s.target.abs().max(1e-9))
            .collect()
    } else {
        vec![1.0; train.len()]
    };
    let alias = WeightedAlias::new(&weights);

    // The early-stopping set is evaluated every epoch: scale it once up
    // front (the per-epoch loop then runs allocation-free on one scratch).
    let dims = inputs[0].len();
    let mut es_inputs: Vec<f64> = Vec::with_capacity(es.len() * dims);
    for s in es {
        input_scaler.transform_into(&s.features, &mut es_inputs);
    }
    let es_targets: Vec<f64> = es.iter().map(|s| s.target).collect();
    let mut es_scratch = PredictScratch::default();
    let mut es_values = Vec::with_capacity(es.len());

    let mut network = Network::new(&layer_sizes(dims, config, 1), rng);
    // Best-epoch bookkeeping: a weights/velocity-only snapshot overwritten
    // in place, instead of cloning the network (and its scratch and delta
    // buffers) on every improving epoch.
    let mut best = NetworkSnapshot::default();
    network.snapshot_into(&mut best);
    let mut best_error = f64::INFINITY;
    let mut best_epoch = 0;
    let mut epochs = 0;
    let mut diverged = false;

    for epoch in 0..config.max_epochs {
        epochs = epoch + 1;
        for _ in 0..inputs.len() {
            let i = alias.sample(rng);
            network.train_example(
                &inputs[i],
                std::slice::from_ref(&targets[i]),
                config.learning_rate,
                config.momentum,
            );
        }
        let es_error = percent_error(
            &network,
            &target_scaler,
            0,
            &es_inputs,
            &es_targets,
            &mut es_scratch,
            &mut es_values,
        );
        if !es_error.is_finite() {
            // Exploding weights: further epochs only compound NaN/Inf.
            // Bail out; the restore below rolls back to the best finite
            // snapshot (the near-zero init if no epoch ever improved) and
            // the caller can reinitialize from a fresh seed.
            diverged = true;
            break;
        }
        if es_error < best_error {
            best_error = es_error;
            network.snapshot_into(&mut best);
            best_epoch = epoch;
        } else if epoch - best_epoch >= config.patience {
            break;
        }
    }
    network.restore(&best);

    TrainedModel {
        network,
        input_scaler,
        target_scaler,
        epochs,
        best_es_error: best_error,
        diverged,
    }
}

/// A trained multi-output network (one output head per task, shared
/// hidden layers) together with its scalers. The **primary** head is the
/// one early stopping monitored; auxiliary heads act as an inductive bias
/// through the shared hidden layer (the paper's §7 multi-task proposal).
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTrainedModel {
    network: Network,
    input_scaler: MinMaxScaler,
    target_scalers: Vec<TargetScaler>,
    /// Output index of the primary task (the early-stopping head).
    pub primary: usize,
    /// Epochs actually run before stopping.
    pub epochs: usize,
    /// Best primary-head mean absolute percentage error seen on the
    /// early-stopping set (the error of the restored weights).
    pub best_es_error: f64,
    /// Whether training diverged (see [`TrainedModel::diverged`]).
    pub diverged: bool,
}

impl MultiTrainedModel {
    /// Number of output heads.
    pub fn tasks(&self) -> usize {
        self.target_scalers.len()
    }

    /// Width of the raw feature vectors this model consumes.
    pub fn input_dims(&self) -> usize {
        self.input_scaler.dims()
    }

    /// Predicts every task's raw-scale target for raw features, appending
    /// one value per head (in head order) to `out`.
    pub fn predict_all_into(&self, features: &[f64], buf: &mut PredictBuffer, out: &mut Vec<f64>) {
        buf.scaled.clear();
        self.input_scaler.transform_into(features, &mut buf.scaled);
        let PredictBuffer {
            scaled, scratch, ..
        } = buf;
        let heads = self.network.predict_into(scaled, scratch);
        out.extend(
            heads
                .iter()
                .zip(&self.target_scalers)
                .map(|(&y, s)| s.unscale(y)),
        );
    }

    /// Predicts every task's raw-scale target for raw features.
    pub fn predict_all(&self, features: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.tasks());
        self.predict_all_into(features, &mut PredictBuffer::default(), &mut out);
        out
    }

    /// Predicts the primary task's raw-scale target using caller-owned
    /// scratch.
    pub fn predict_primary_with(&self, features: &[f64], buf: &mut PredictBuffer) -> f64 {
        buf.scaled.clear();
        self.input_scaler.transform_into(features, &mut buf.scaled);
        let PredictBuffer {
            scaled, scratch, ..
        } = buf;
        self.target_scalers[self.primary]
            .unscale(self.network.predict_into(scaled, scratch)[self.primary])
    }

    /// Predicts the primary task's raw-scale target for raw features.
    pub fn predict_primary(&self, features: &[f64]) -> f64 {
        self.predict_primary_with(features, &mut PredictBuffer::default())
    }

    /// Serializes the model (network plus all scalers) to a JSON
    /// [`Value`], mirroring [`TrainedModel::to_json_value`].
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("network".into(), self.network.to_json_value()),
            ("input_scaler".into(), self.input_scaler.to_json_value()),
            (
                "target_scalers".into(),
                Value::Array(
                    self.target_scalers
                        .iter()
                        .map(TargetScaler::to_json_value)
                        .collect(),
                ),
            ),
            ("primary".into(), Value::num(self.primary as f64)),
            ("epochs".into(), Value::num(self.epochs as f64)),
            ("best_es_error".into(), Value::num(self.best_es_error)),
            ("diverged".into(), Value::Bool(self.diverged)),
        ])
    }

    /// Deserializes a model written by
    /// [`MultiTrainedModel::to_json_value`].
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let target_scalers: Vec<TargetScaler> = value
            .get("target_scalers")?
            .as_array()?
            .iter()
            .map(TargetScaler::from_json_value)
            .collect::<Result<_, _>>()?;
        if target_scalers.is_empty() {
            return Err(JsonError::custom(
                "multi-task model needs at least one head",
            ));
        }
        let primary = value.get("primary")?.as_usize()?;
        if primary >= target_scalers.len() {
            return Err(JsonError::custom(format!(
                "primary head {primary} out of range for {} heads",
                target_scalers.len()
            )));
        }
        Ok(Self {
            network: Network::from_json_value(value.get("network")?)?,
            input_scaler: MinMaxScaler::from_json_value(value.get("input_scaler")?)?,
            target_scalers,
            primary,
            epochs: value.get("epochs")?.as_usize()?,
            best_es_error: value.get("best_es_error")?.as_f64_or(f64::INFINITY)?,
            diverged: value
                .get("diverged")
                .and_then(|v| v.as_bool())
                .unwrap_or(false),
        })
    }

    /// Serializes the model with a versioned [`ModelHeader`] carrying
    /// `fingerprint`, mirroring [`Ensemble::to_json_fingerprinted`].
    ///
    /// [`ModelHeader`]: crate::ensemble::ModelHeader
    /// [`Ensemble::to_json_fingerprinted`]: crate::ensemble::Ensemble::to_json_fingerprinted
    pub fn to_json_fingerprinted(&self, fingerprint: u64) -> String {
        let mut fields = crate::ensemble::ModelHeader::current(fingerprint).to_json_fields();
        fields.push(("model".into(), self.to_json_value()));
        Value::Object(fields).to_json()
    }

    /// Deserializes a model written by
    /// [`MultiTrainedModel::to_json_fingerprinted`], enforcing the header
    /// (current format, matching fingerprint).
    pub fn from_json_checked(text: &str, expected_fingerprint: u64) -> Result<Self, JsonError> {
        let value = Value::parse(text)?;
        let header = crate::ensemble::ModelHeader::from_json_value(&value)?.ok_or_else(|| {
            JsonError::custom(
                "artifact has no version header (pre-versioning legacy); refit the model",
            )
        })?;
        header.check(expected_fingerprint)?;
        Self::from_json_value(value.get("model")?)
    }
}

/// Trains one multi-output network on `train`, early-stopping on the
/// `primary` head's percentage error over `es`. Each element pairs a raw
/// feature row with its target row (one value per task, every row the
/// same width). Mirrors [`train_network`] exactly — scalers fitted over
/// both sets, inverse-primary-target presentation frequency under
/// [`TrainConfig::percentage_error`], snapshot/restore best-epoch
/// bookkeeping, divergence detection — with one output unit per task.
///
/// # Panics
///
/// Panics if either set is empty, target rows are empty or ragged, or
/// `primary` is out of range.
pub fn train_multi_network(
    train: &[(&[f64], &[f64])],
    es: &[(&[f64], &[f64])],
    primary: usize,
    config: &TrainConfig,
    rng: &mut Xoshiro256,
) -> MultiTrainedModel {
    assert!(!train.is_empty(), "empty training set");
    assert!(!es.is_empty(), "empty early-stopping set");
    let tasks = train[0].1.len();
    assert!(tasks > 0, "no target tasks");
    assert!(primary < tasks, "primary task out of range");
    assert!(
        train.iter().chain(es).all(|(_, row)| row.len() == tasks),
        "ragged target rows"
    );

    let input_scaler = MinMaxScaler::fit(train.iter().chain(es).map(|&(x, _)| x));
    let target_scalers: Vec<TargetScaler> = (0..tasks)
        .map(|t| {
            let column: Vec<f64> = train.iter().chain(es).map(|(_, row)| row[t]).collect();
            TargetScaler::fit(&column)
        })
        .collect();

    // Pre-normalize the training set once.
    let inputs: Vec<Vec<f64>> = train
        .iter()
        .map(|(x, _)| input_scaler.transform(x))
        .collect();
    let targets: Vec<Vec<f64>> = train
        .iter()
        .map(|(_, row)| {
            row.iter()
                .zip(&target_scalers)
                .map(|(&v, s)| s.scale(v))
                .collect()
        })
        .collect();

    // Presentation frequency follows the primary target, so squared-error
    // descent optimizes the primary head's percentage error; the auxiliary
    // heads ride along on whatever presentation the primary dictates.
    let weights: Vec<f64> = if config.percentage_error {
        train
            .iter()
            .map(|(_, row)| 1.0 / row[primary].abs().max(1e-9))
            .collect()
    } else {
        vec![1.0; train.len()]
    };
    let alias = WeightedAlias::new(&weights);

    let dims = inputs[0].len();
    let mut es_inputs: Vec<f64> = Vec::with_capacity(es.len() * dims);
    for (x, _) in es {
        input_scaler.transform_into(x, &mut es_inputs);
    }
    let es_targets: Vec<f64> = es.iter().map(|(_, row)| row[primary]).collect();
    let mut es_scratch = PredictScratch::default();
    let mut es_values = Vec::with_capacity(es.len() * tasks);

    let mut network = Network::new(&layer_sizes(dims, config, tasks), rng);
    let mut best = NetworkSnapshot::default();
    network.snapshot_into(&mut best);
    let mut best_error = f64::INFINITY;
    let mut best_epoch = 0;
    let mut epochs = 0;
    let mut diverged = false;

    for epoch in 0..config.max_epochs {
        epochs = epoch + 1;
        for _ in 0..inputs.len() {
            let i = alias.sample(rng);
            network.train_example(
                &inputs[i],
                &targets[i],
                config.learning_rate,
                config.momentum,
            );
        }
        let es_error = percent_error(
            &network,
            &target_scalers[primary],
            primary,
            &es_inputs,
            &es_targets,
            &mut es_scratch,
            &mut es_values,
        );
        if !es_error.is_finite() {
            diverged = true;
            break;
        }
        if es_error < best_error {
            best_error = es_error;
            network.snapshot_into(&mut best);
            best_epoch = epoch;
        } else if epoch - best_epoch >= config.patience {
            break;
        }
    }
    network.restore(&best);

    MultiTrainedModel {
        network,
        input_scaler,
        target_scalers,
        primary,
        epochs,
        best_es_error: best_error,
        diverged,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;

    /// A smooth nonlinear 2-D test function with IPC-like range.
    fn target_fn(a: f64, b: f64) -> f64 {
        0.3 + 0.5 * (a * 3.0).sin().abs() + 0.4 * a * b
    }

    fn make_samples(n: usize, seed: u64) -> Vec<Sample> {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..n)
            .map(|_| {
                let a = rng.next_f64();
                let b = rng.next_f64();
                Sample::new(vec![a, b], target_fn(a, b))
            })
            .collect()
    }

    #[test]
    fn learns_nonlinear_function_within_a_few_percent() {
        let samples = make_samples(400, 1);
        let (train, es) = samples.split_at(320);
        let train_refs: Vec<&Sample> = train.iter().collect();
        let es_refs: Vec<&Sample> = es.iter().collect();
        let mut rng = Xoshiro256::seed_from(2);
        let model = train_network(&train_refs, &es_refs, &TrainConfig::default(), &mut rng);

        let test = make_samples(200, 3);
        let mut total = 0.0;
        for s in &test {
            total += 100.0 * (model.predict(&s.features) - s.target).abs() / s.target;
        }
        let mape = total / test.len() as f64;
        assert!(mape < 5.0, "test MAPE {mape:.2}%");
    }

    #[test]
    fn early_stopping_terminates_before_max_epochs() {
        let samples = make_samples(200, 4);
        let (train, es) = samples.split_at(160);
        let train_refs: Vec<&Sample> = train.iter().collect();
        let es_refs: Vec<&Sample> = es.iter().collect();
        let config = TrainConfig {
            max_epochs: 4000,
            patience: 10,
            ..TrainConfig::default()
        };
        let mut rng = Xoshiro256::seed_from(5);
        let model = train_network(&train_refs, &es_refs, &config, &mut rng);
        assert!(model.epochs < 4000, "ran {} epochs", model.epochs);
        assert!(
            model.best_es_error.is_finite() && model.best_es_error > 0.0,
            "best ES error {}",
            model.best_es_error
        );
    }

    #[test]
    fn percentage_training_helps_small_targets() {
        // An IPC-like target range (0.08..1.3, as across the studied design
        // spaces): percentage-error training should serve the small-target
        // region at least as well as plain squared-error training,
        // averaged over seeds.
        let mut rng = Xoshiro256::seed_from(6);
        let samples: Vec<Sample> = (0..500)
            .map(|_| {
                let a = rng.next_f64();
                let b = rng.next_f64();
                let t = 0.08 + 1.2 * (0.3 * a + 0.7 * a * b).powf(1.5);
                Sample::new(vec![a, b], t)
            })
            .collect();
        let (train, es) = samples.split_at(400);
        let train_refs: Vec<&Sample> = train.iter().collect();
        let es_refs: Vec<&Sample> = es.iter().collect();

        let run = |pct: bool, seed: u64| {
            let config = TrainConfig {
                percentage_error: pct,
                ..TrainConfig::default()
            };
            let mut rng = Xoshiro256::seed_from(seed);
            let model = train_network(&train_refs, &es_refs, &config, &mut rng);
            let mut total = 0.0;
            let mut count = 0;
            for s in &samples {
                if s.target < 0.3 {
                    total += 100.0 * (model.predict(&s.features) - s.target).abs() / s.target;
                    count += 1;
                }
            }
            total / count as f64
        };
        let with: f64 = [7, 8, 9].iter().map(|&s| run(true, s)).sum::<f64>() / 3.0;
        let without: f64 = [7, 8, 9].iter().map(|&s| run(false, s)).sum::<f64>() / 3.0;
        assert!(
            with < without * 1.05,
            "pct training {with:.2}% should not trail plain {without:.2}% on small targets"
        );
    }

    #[test]
    fn two_hidden_layers_also_learn() {
        let samples = make_samples(400, 21);
        let (train, es) = samples.split_at(320);
        let train_refs: Vec<&Sample> = train.iter().collect();
        let es_refs: Vec<&Sample> = es.iter().collect();
        // Near-zero init makes two-layer nets slow starters: give the
        // deeper topology a bigger epoch budget.
        let config = TrainConfig {
            second_hidden_units: 8,
            learning_rate: 0.2,
            max_epochs: 6000,
            patience: 500,
            ..TrainConfig::default()
        };
        let mut rng = Xoshiro256::seed_from(22);
        let model = train_network(&train_refs, &es_refs, &config, &mut rng);
        let test = make_samples(150, 23);
        let mut total = 0.0;
        for s in &test {
            total += 100.0 * (model.predict(&s.features) - s.target).abs() / s.target;
        }
        let mape = total / test.len() as f64;
        assert!(mape < 8.0, "two-layer MAPE {mape:.2}%");
    }

    #[test]
    fn deterministic_given_seed() {
        let samples = make_samples(120, 8);
        let (train, es) = samples.split_at(100);
        let train_refs: Vec<&Sample> = train.iter().collect();
        let es_refs: Vec<&Sample> = es.iter().collect();
        let mut r1 = Xoshiro256::seed_from(9);
        let mut r2 = Xoshiro256::seed_from(9);
        let m1 = train_network(&train_refs, &es_refs, &TrainConfig::default(), &mut r1);
        let m2 = train_network(&train_refs, &es_refs, &TrainConfig::default(), &mut r2);
        assert_eq!(m1.predict(&[0.3, 0.3]), m2.predict(&[0.3, 0.3]));
    }

    #[test]
    fn returned_model_carries_the_best_early_stopping_weights() {
        // Regression for the snapshot refactor (weights-only snapshot +
        // restore-on-exit instead of cloning the whole network every
        // improving epoch): recomputing the early-stopping error from the
        // *returned* model must reproduce `best_es_error` bit for bit.
        let samples = make_samples(200, 31);
        let (train, es) = samples.split_at(160);
        let train_refs: Vec<&Sample> = train.iter().collect();
        let es_refs: Vec<&Sample> = es.iter().collect();
        let config = TrainConfig {
            max_epochs: 400,
            patience: 25,
            ..TrainConfig::default()
        };
        let mut rng = Xoshiro256::seed_from(32);
        let model = train_network(&train_refs, &es_refs, &config, &mut rng);
        // The model keeps training past its best epoch before patience runs
        // out, so restore-on-exit must have rolled weights back.
        let mut total = 0.0;
        for s in &es_refs {
            let y = model.predict(&s.features);
            total += 100.0 * (y - s.target).abs() / s.target.abs().max(1e-12);
        }
        assert_eq!(total / es_refs.len() as f64, model.best_es_error);
    }

    #[test]
    fn zero_epoch_budget_returns_the_initial_network() {
        // max_epochs = 0 exercises the pre-loop snapshot: restore must be
        // a no-op, not a rollback to garbage.
        let samples = make_samples(60, 33);
        let (train, es) = samples.split_at(40);
        let train_refs: Vec<&Sample> = train.iter().collect();
        let es_refs: Vec<&Sample> = es.iter().collect();
        let config = TrainConfig {
            max_epochs: 0,
            ..TrainConfig::default()
        };
        let mut rng = Xoshiro256::seed_from(34);
        let model = train_network(&train_refs, &es_refs, &config, &mut rng);
        assert_eq!(model.epochs, 0);
        assert!(model.predict(&[0.4, 0.6]).is_finite());
    }

    #[test]
    fn divergent_learning_rate_is_detected_and_model_stays_finite() {
        // A huge learning rate on linear outputs explodes geometrically to
        // ±Inf/NaN within an epoch or two. Training must flag the
        // divergence, stop early, and still return finite weights (the
        // best snapshot before the blow-up).
        let samples = make_samples(200, 41);
        let (train, es) = samples.split_at(160);
        let train_refs: Vec<&Sample> = train.iter().collect();
        let es_refs: Vec<&Sample> = es.iter().collect();
        let config = TrainConfig {
            learning_rate: 10.0,
            max_epochs: 200,
            ..TrainConfig::default()
        };
        let mut rng = Xoshiro256::seed_from(42);
        let model = train_network(&train_refs, &es_refs, &config, &mut rng);
        assert!(model.diverged, "lr=10 should diverge");
        assert!(
            model.epochs < 200,
            "should bail early, ran {}",
            model.epochs
        );
        assert!(
            model.predict(&[0.4, 0.6]).is_finite(),
            "returned weights must be the last finite snapshot"
        );
    }

    #[test]
    #[should_panic(expected = "empty training set")]
    fn empty_train_panics() {
        let mut rng = Xoshiro256::seed_from(1);
        train_network(&[], &[], &TrainConfig::default(), &mut rng);
    }

    /// Correlated multi-task rows: aux heads are smooth transforms of the
    /// primary.
    fn make_multi_rows(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.next_f64();
            let b = rng.next_f64();
            let primary = 0.3 + 0.5 * (a * 2.2).sin().abs() + 0.2 * a * b;
            xs.push(vec![a, b]);
            ys.push(vec![primary, 2.0 - primary, primary * primary]);
        }
        (xs, ys)
    }

    fn as_pairs<'a>(xs: &'a [Vec<f64>], ys: &'a [Vec<f64>]) -> Vec<(&'a [f64], &'a [f64])> {
        xs.iter()
            .zip(ys)
            .map(|(x, y)| (x.as_slice(), y.as_slice()))
            .collect()
    }

    #[test]
    fn multi_output_learns_every_head() {
        let (xs, ys) = make_multi_rows(300, 51);
        let pairs = as_pairs(&xs, &ys);
        let (train, es) = pairs.split_at(240);
        let mut rng = Xoshiro256::seed_from(52);
        let model = train_multi_network(train, es, 0, &TrainConfig::default(), &mut rng);
        assert_eq!(model.tasks(), 3);
        assert_eq!(model.input_dims(), 2);
        assert!(!model.diverged);

        let (test_x, test_y) = make_multi_rows(150, 53);
        let mut primary_mape = 0.0;
        for (x, y) in test_x.iter().zip(&test_y) {
            primary_mape += 100.0 * (model.predict_primary(x) - y[0]).abs() / y[0];
            let all = model.predict_all(x);
            assert_eq!(all.len(), 3);
            // The anti-correlated head mirrors the primary.
            assert!((all[0] + all[1] - 2.0).abs() < 0.3, "{all:?} vs {y:?}");
        }
        primary_mape /= test_x.len() as f64;
        assert!(primary_mape < 6.0, "primary MAPE {primary_mape:.2}%");
    }

    #[test]
    fn multi_output_is_deterministic_and_restores_best_weights() {
        let (xs, ys) = make_multi_rows(150, 61);
        let pairs = as_pairs(&xs, &ys);
        let (train, es) = pairs.split_at(120);
        let config = TrainConfig {
            max_epochs: 300,
            patience: 20,
            ..TrainConfig::default()
        };
        let run = || {
            let mut rng = Xoshiro256::seed_from(62);
            train_multi_network(train, es, 0, &config, &mut rng)
        };
        let (m1, m2) = (run(), run());
        assert_eq!(m1.predict_all(&[0.3, 0.7]), m2.predict_all(&[0.3, 0.7]));
        // Recomputing the primary-head ES error from the returned model
        // must reproduce `best_es_error` bit for bit (restore-on-exit).
        let mut total = 0.0;
        for &(x, y) in es {
            total += 100.0 * (m1.predict_primary(x) - y[0]).abs() / y[0].abs().max(1e-12);
        }
        assert_eq!(total / es.len() as f64, m1.best_es_error);
    }

    #[test]
    fn multi_output_json_round_trip_is_exact() {
        let (xs, ys) = make_multi_rows(120, 81);
        let pairs = as_pairs(&xs, &ys);
        let (train, es) = pairs.split_at(96);
        let config = TrainConfig {
            max_epochs: 120,
            ..TrainConfig::default()
        };
        let mut rng = Xoshiro256::seed_from(82);
        let model = train_multi_network(train, es, 1, &config, &mut rng);

        // Round-tripped predictions are bit-exact (shortest-round-trip
        // floats); the structs differ only in transient optimizer state
        // (velocity), which serialization intentionally drops.
        let probe = |m: &MultiTrainedModel| {
            [[0.2, 0.9], [0.0, 0.0], [0.77, 0.33]]
                .iter()
                .flat_map(|x| m.predict_all(x))
                .map(f64::to_bits)
                .collect::<Vec<u64>>()
        };
        let back = MultiTrainedModel::from_json_value(
            &Value::parse(&model.to_json_value().to_json()).unwrap(),
        )
        .unwrap();
        assert_eq!(probe(&back), probe(&model));
        assert_eq!(back.primary, model.primary);
        assert_eq!(back.epochs, model.epochs);
        assert_eq!(back.best_es_error.to_bits(), model.best_es_error.to_bits());
        assert_eq!(back.tasks(), model.tasks());

        // Headered round trip enforces the fingerprint.
        let json = model.to_json_fingerprinted(42);
        let back = MultiTrainedModel::from_json_checked(&json, 42).unwrap();
        assert_eq!(probe(&back), probe(&model));
        let err = MultiTrainedModel::from_json_checked(&json, 43).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
    }

    #[test]
    #[should_panic(expected = "primary task out of range")]
    fn multi_output_bad_primary_panics() {
        let (xs, ys) = make_multi_rows(20, 71);
        let pairs = as_pairs(&xs, &ys);
        let (train, es) = pairs.split_at(16);
        let mut rng = Xoshiro256::seed_from(72);
        train_multi_network(train, es, 9, &TrainConfig::default(), &mut rng);
    }

    #[test]
    #[should_panic(expected = "ragged target rows")]
    fn multi_output_ragged_targets_panic() {
        let xs = [vec![0.1, 0.2], vec![0.3, 0.4]];
        let ys = [vec![1.0, 2.0], vec![1.0]];
        let train = [(xs[0].as_slice(), ys[0].as_slice())];
        let es = [(xs[1].as_slice(), ys[1].as_slice())];
        let mut rng = Xoshiro256::seed_from(73);
        train_multi_network(&train, &es, 0, &TrainConfig::default(), &mut rng);
    }
}
