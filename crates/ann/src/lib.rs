//! Feed-forward neural networks with cross-validation ensembles.
//!
//! This crate is the machine-learning engine of the paper: fully connected
//! multilayer perceptrons trained by backpropagation with momentum
//! (§3.1, Eqs. 3.1–3.2), combined into k-fold cross-validation ensembles
//! (§3.2, Fig. 3.3) that both predict well and *estimate their own error*
//! over the full design space — the property that drives the paper's
//! incremental sample-until-accurate methodology.
//!
//! Architectural specifics from §3.3 are built in:
//!
//! * minimax scaling of cardinal/continuous inputs and of the target;
//! * percentage-error training via inverse-target presentation frequency;
//! * percentage-error early stopping on a held-aside fold;
//! * prediction averaging across the ensemble.
//!
//! # Example
//!
//! ```
//! use archpredict_ann::cross_validation::fit_ensemble;
//! use archpredict_ann::dataset::{Dataset, Sample};
//! use archpredict_ann::train::TrainConfig;
//! use archpredict_stats::rng::Xoshiro256;
//!
//! // A toy "simulator": IPC as a smooth function of two knobs.
//! let mut rng = Xoshiro256::seed_from(1);
//! let data: Dataset = (0..200)
//!     .map(|_| {
//!         let (a, b) = (rng.next_f64(), rng.next_f64());
//!         Sample::new(vec![a, b], 0.4 + 0.5 * a + 0.3 * a * b)
//!     })
//!     .collect();
//! let fit = fit_ensemble(&data, 10, &TrainConfig::default(), 7);
//! assert!(fit.estimate.mean < 5.0, "estimated error {:.2}%", fit.estimate.mean);
//! let prediction = fit.ensemble.predict(&[0.5, 0.5]);
//! assert!((prediction - 0.725).abs() < 0.1);
//! ```

pub mod activation;
pub mod cross_validation;
pub mod dataset;
pub mod ensemble;
pub mod network;
pub mod scaling;
pub mod train;

pub use cross_validation::{fit_ensemble, CvFit, ErrorEstimate, FoldRecord};
pub use dataset::{Dataset, Sample};
pub use ensemble::{Ensemble, ModelHeader, MODEL_FORMAT_VERSION};
pub use network::{Network, NetworkSnapshot, PredictScratch};
pub use train::{
    train_multi_network, MultiTrainedModel, Parallelism, PredictBuffer, TrainConfig, TrainedModel,
};
