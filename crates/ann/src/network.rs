//! Fully connected feed-forward networks trained by backpropagation.
//!
//! Implements exactly the model of the paper's §3.1: weighted edges between
//! successive layers, sigmoid hidden units, gradient descent on squared
//! error with a momentum term (Equations 3.1/3.2), and near-zero uniform
//! weight initialization (so the network starts as an almost-linear model
//! and grows non-linearity as weights grow).

use crate::activation::Activation;
use archpredict_stats::json::{JsonError, Value};
use archpredict_stats::rng::Xoshiro256;

/// Half-width of the uniform weight initialization interval (paper §3.1:
/// weights start in `[-0.01, 0.01]`).
pub const INIT_WEIGHT_RANGE: f64 = 0.01;

fn json_err(message: &str) -> JsonError {
    JsonError::custom(message)
}

/// Lane width of the register-blocked kernels: eight independent f64
/// accumulator chains. Eight lanes fill four SSE2 registers (or two AVX
/// ones) when LLVM autovectorizes, and — just as importantly on any
/// target — break the 4-cycle floating-point add latency chain of a
/// scalar dot product into eight independent chains that saturate the
/// FMA pipes. The value is a tuning constant, not a correctness
/// parameter: every kernel preserves the exact per-unit summation order
/// at any lane width.
const LANES: usize = 8;

/// Output units processed together per register tile of the batch kernel
/// ([`Layer::forward_batch_t`]). One 8-lane accumulator row per unit is a
/// single vector-add dependency chain (latency-bound); four units give
/// four independent chains that share each activation load, which is what
/// moves the kernel from add-latency-bound to FLOP-throughput-bound.
/// Tuning constant only — per-unit summation order is unchanged.
const UNIT_TILE: usize = 4;

/// Points per internal block of [`Network::predict_batch`]. Matches the
/// 256-point chunks `core::infer` hands the ensemble, and bounds the
/// activation-matrix scratch at `2 * max_width * BLOCK_POINTS` floats per
/// worker regardless of sweep size.
const BLOCK_POINTS: usize = 256;

/// One fully connected layer: `outputs x (inputs + 1)` weights, the final
/// column being the bias.
#[derive(Debug, Clone, PartialEq)]
struct Layer {
    inputs: usize,
    outputs: usize,
    activation: Activation,
    /// Row-major `[output][input + bias]`.
    weights: Vec<f64>,
    /// Previous update, for momentum (Eq. 3.2).
    velocity: Vec<f64>,
}

impl Layer {
    fn new(inputs: usize, outputs: usize, activation: Activation, rng: &mut Xoshiro256) -> Self {
        let n = outputs * (inputs + 1);
        Self {
            inputs,
            outputs,
            activation,
            weights: (0..n)
                .map(|_| rng.range_f64(-INIT_WEIGHT_RANGE, INIT_WEIGHT_RANGE))
                .collect(),
            velocity: vec![0.0; n],
        }
    }

    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("inputs".into(), Value::num(self.inputs as f64)),
            ("outputs".into(), Value::num(self.outputs as f64)),
            (
                "activation".into(),
                Value::Str(self.activation.name().into()),
            ),
            ("weights".into(), Value::from_f64s(&self.weights)),
            ("velocity".into(), Value::from_f64s(&self.velocity)),
        ])
    }

    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let layer = Self {
            inputs: value.get("inputs")?.as_usize()?,
            outputs: value.get("outputs")?.as_usize()?,
            activation: Activation::from_name(value.get("activation")?.as_str()?)
                .ok_or_else(|| json_err("unknown activation"))?,
            weights: value.get("weights")?.as_f64_vec()?,
            velocity: value.get("velocity")?.as_f64_vec()?,
        };
        let n = layer.outputs * (layer.inputs + 1);
        if layer.weights.len() != n || layer.velocity.len() != n {
            return Err(json_err("layer weight count mismatch"));
        }
        if layer.inputs == 0 || layer.outputs == 0 {
            return Err(json_err("layer sizes must be positive"));
        }
        Ok(layer)
    }

    fn forward(&self, input: &[f64], output: &mut Vec<f64>) {
        output.clear();
        output.resize(self.outputs, 0.0);
        self.forward_into(input, output);
    }

    /// Forward pass into a caller-provided slice of exactly `outputs`
    /// elements — no allocation, bit-for-bit the arithmetic of
    /// [`Self::forward_naive_into`].
    ///
    /// Outputs are processed in blocks of [`LANES`] independent
    /// accumulator chains (each output keeps its own bias-then-ascending-
    /// input summation order, so results are exactly the naive loop's),
    /// which turns the latency-bound scalar dot product into [`LANES`]
    /// parallel ones.
    ///
    /// The length checks are hard `assert_eq!`s, not `debug_assert_eq!`s:
    /// a too-short output slice in a release build must abort rather than
    /// silently compute (and hand back) fewer outputs than the layer has.
    fn forward_into(&self, input: &[f64], output: &mut [f64]) {
        assert_eq!(output.len(), self.outputs, "output slice length");
        assert_eq!(input.len(), self.inputs, "input slice length");
        let stride = self.inputs + 1;
        let mut o = 0;
        while o + LANES <= self.outputs {
            let rows = &self.weights[o * stride..(o + LANES) * stride];
            let mut acc = [0.0; LANES];
            for (k, a) in acc.iter_mut().enumerate() {
                *a = rows[k * stride + self.inputs]; // bias
            }
            for (i, &x) in input.iter().enumerate() {
                for (k, a) in acc.iter_mut().enumerate() {
                    *a += rows[k * stride + i] * x;
                }
            }
            output[o..o + LANES].copy_from_slice(&acc);
            o += LANES;
        }
        for (row, out) in self.weights[o * stride..]
            .chunks_exact(stride)
            .zip(&mut output[o..])
        {
            let mut net = row[self.inputs]; // bias
            for (w, x) in row[..self.inputs].iter().zip(input) {
                net += w * x;
            }
            *out = net;
        }
        self.activation.apply_slice(output);
    }

    /// The textbook one-output-at-a-time forward loop, kept as the
    /// reference the blocked kernels are property-tested against.
    fn forward_naive_into(&self, input: &[f64], output: &mut [f64]) {
        assert_eq!(output.len(), self.outputs, "output slice length");
        assert_eq!(input.len(), self.inputs, "input slice length");
        for (o, out) in output.iter_mut().enumerate() {
            let row = &self.weights[o * (self.inputs + 1)..(o + 1) * (self.inputs + 1)];
            let mut net = row[self.inputs]; // bias
            for (w, x) in row[..self.inputs].iter().zip(input) {
                net += w * x;
            }
            *out = self.activation.apply(net);
        }
    }

    /// Forward pass over a **feature-major** activation matrix: `input_t`
    /// holds `inputs` rows of `n` points each (`input_t[i * n + p]` is
    /// feature `i` of point `p`), `out_t` receives `outputs` rows in the
    /// same layout. This is the matrix-matrix kernel behind
    /// [`Network::predict_batch`].
    ///
    /// Net inputs are accumulated in register tiles of [`UNIT_TILE`]
    /// output units × [`LANES`] lanes: the tile keeps one row of eight
    /// accumulators per unit (initialized to that unit's bias) and streams
    /// the units' weight rows once, adding `w[u][i] * x[i][lane]` in
    /// ascending-`i` order — each weight is a broadcast scalar, the eight
    /// activations are one contiguous load shared by all four units, and
    /// each `(unit, lane)` chain is exactly the scalar summation order, so
    /// the result is bit-for-bit [`Self::forward_naive_into`] per point.
    /// Ragged edges (`outputs % UNIT_TILE` units, `n % LANES` points) run
    /// the same order with fewer units / one point at a time. The
    /// activation is then applied in one contiguous elementwise pass over
    /// the whole output matrix ([`Activation::apply_slice`]) — same
    /// per-element arithmetic, but the sigmoid's polynomial `exp`
    /// vectorizes over a long flat loop instead of per-tile fragments.
    fn forward_batch_t(&self, input_t: &[f64], out_t: &mut [f64], n: usize) {
        assert_eq!(input_t.len(), self.inputs * n, "input matrix size");
        assert_eq!(out_t.len(), self.outputs * n, "output matrix size");
        let stride = self.inputs + 1;
        let full_units = self.outputs - self.outputs % UNIT_TILE;
        for (wblock, oblock) in self.weights[..full_units * stride]
            .chunks_exact(stride * UNIT_TILE)
            .zip(out_t[..full_units * n].chunks_exact_mut(n * UNIT_TILE))
        {
            let mut wrows = wblock.chunks_exact(stride);
            let (w0, w1, w2, w3) = (
                wrows.next().expect("tile row"),
                wrows.next().expect("tile row"),
                wrows.next().expect("tile row"),
                wrows.next().expect("tile row"),
            );
            let (o0, rest) = oblock.split_at_mut(n);
            let (o1, rest) = rest.split_at_mut(n);
            let (o2, o3) = rest.split_at_mut(n);
            let mut p = 0;
            while p + LANES <= n {
                let mut a0 = [w0[self.inputs]; LANES];
                let mut a1 = [w1[self.inputs]; LANES];
                let mut a2 = [w2[self.inputs]; LANES];
                let mut a3 = [w3[self.inputs]; LANES];
                for ((((xrow, &c0), &c1), &c2), &c3) in input_t
                    .chunks_exact(n)
                    .zip(&w0[..self.inputs])
                    .zip(&w1[..self.inputs])
                    .zip(&w2[..self.inputs])
                    .zip(&w3[..self.inputs])
                {
                    let x: &[f64; LANES] = xrow[p..p + LANES].try_into().expect("lane tile");
                    for l in 0..LANES {
                        a0[l] += c0 * x[l];
                        a1[l] += c1 * x[l];
                        a2[l] += c2 * x[l];
                        a3[l] += c3 * x[l];
                    }
                }
                o0[p..p + LANES].copy_from_slice(&a0);
                o1[p..p + LANES].copy_from_slice(&a1);
                o2[p..p + LANES].copy_from_slice(&a2);
                o3[p..p + LANES].copy_from_slice(&a3);
                p += LANES;
            }
            for (w, out) in [(w0, &mut *o0), (w1, o1), (w2, o2), (w3, o3)] {
                Self::net_points_tail(w, self.inputs, out, input_t, n, p);
            }
        }
        for (row, out_row) in self.weights[full_units * stride..]
            .chunks_exact(stride)
            .zip(out_t[full_units * n..].chunks_exact_mut(n))
        {
            let (w, bias) = (&row[..self.inputs], row[self.inputs]);
            let mut p = 0;
            while p + LANES <= n {
                let mut acc = [bias; LANES];
                for (xrow, &wi) in input_t.chunks_exact(n).zip(w) {
                    let x: &[f64; LANES] = xrow[p..p + LANES].try_into().expect("lane tile");
                    for (a, &xl) in acc.iter_mut().zip(x) {
                        *a += wi * xl;
                    }
                }
                out_row[p..p + LANES].copy_from_slice(&acc);
                p += LANES;
            }
            Self::net_points_tail(row, self.inputs, out_row, input_t, n, p);
        }
        self.activation.apply_slice(out_t);
    }

    /// Scalar tail of [`Self::forward_batch_t`]: net inputs for points
    /// `from..n` of one output unit, in the exact per-point summation
    /// order (activation is applied later over the whole matrix).
    fn net_points_tail(
        row: &[f64],
        inputs: usize,
        out_row: &mut [f64],
        input_t: &[f64],
        n: usize,
        from: usize,
    ) {
        let bias = row[inputs];
        for (p, out) in out_row.iter_mut().enumerate().skip(from) {
            let mut net = bias;
            for (xrow, &wi) in input_t.chunks_exact(n).zip(&row[..inputs]) {
                net += wi * xrow[p];
            }
            *out = net;
        }
    }
}

/// Caller-owned scratch for allocation-free forward passes.
///
/// Two flat buffers, ping-ponged between layers. Single-point passes
/// ([`Network::predict_into`]) use them as activation vectors of the
/// widest layer; batched passes ([`Network::predict_batch`]) use them as
/// whole feature-major activation *matrices* of up to
/// `max_width * BLOCK_POINTS` floats, ping-ponging one full layer of the
/// block at a time. A scratch grows to the largest use it has seen and is
/// reused verbatim afterwards, so a long prediction sweep allocates
/// exactly once per worker. One scratch may be shared across networks of
/// different topologies (it re-sizes as needed).
#[derive(Debug, Clone, Default)]
pub struct PredictScratch {
    a: Vec<f64>,
    b: Vec<f64>,
}

/// A weights + velocity snapshot of a [`Network`], without the scratch and
/// delta buffers a full `clone` would copy. Used by early stopping to
/// remember the best epoch cheaply: `snapshot_into` overwrites a
/// preallocated snapshot in place, so the per-improving-epoch cost is two
/// `memcpy`s and zero allocations after the first.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct NetworkSnapshot {
    weights: Vec<f64>,
    velocity: Vec<f64>,
}

/// A feed-forward multi-layer perceptron.
///
/// # Example
///
/// ```
/// use archpredict_ann::network::Network;
/// use archpredict_stats::rng::Xoshiro256;
///
/// let mut rng = Xoshiro256::seed_from(1);
/// let net = Network::new(&[3, 16, 1], &mut rng);
/// let y = net.predict(&[0.1, 0.5, 0.9]);
/// assert_eq!(y.len(), 1);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Network {
    layers: Vec<Layer>,
    /// Cached activations per layer (including the input), reused across
    /// training steps to avoid allocation.
    scratch: Vec<Vec<f64>>,
    /// Per-layer delta buffers.
    deltas: Vec<Vec<f64>>,
}

impl Network {
    /// Builds a network with the given layer sizes
    /// (`[inputs, hidden..., outputs]`), sigmoid hidden units and linear
    /// outputs, with weights initialized uniformly in ±[`INIT_WEIGHT_RANGE`].
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sizes are given or any size is zero.
    pub fn new(sizes: &[usize], rng: &mut Xoshiro256) -> Self {
        assert!(sizes.len() >= 2, "need at least input and output sizes");
        assert!(sizes.iter().all(|&s| s > 0), "layer sizes must be positive");
        let layers: Vec<Layer> = sizes
            .windows(2)
            .enumerate()
            .map(|(i, w)| {
                let activation = if i + 2 == sizes.len() {
                    Activation::Linear
                } else {
                    Activation::Sigmoid
                };
                Layer::new(w[0], w[1], activation, rng)
            })
            .collect();
        let scratch = sizes.iter().map(|&s| vec![0.0; s]).collect();
        let deltas = sizes[1..].iter().map(|&s| vec![0.0; s]).collect();
        Self {
            layers,
            scratch,
            deltas,
        }
    }

    /// Number of input units.
    pub fn inputs(&self) -> usize {
        self.layers.first().expect("nonempty").inputs
    }

    /// Number of output units.
    pub fn outputs(&self) -> usize {
        self.layers.last().expect("nonempty").outputs
    }

    fn ensure_buffers(&mut self) {
        // After deserialization the skipped buffers are empty; rebuild them.
        if self.scratch.len() != self.layers.len() + 1 {
            let mut sizes = vec![self.layers[0].inputs];
            sizes.extend(self.layers.iter().map(|l| l.outputs));
            self.scratch = sizes.iter().map(|&s| vec![0.0; s]).collect();
            self.deltas = sizes[1..].iter().map(|&s| vec![0.0; s]).collect();
        }
    }

    /// Serializes the network (weights, velocities, topology) to a JSON
    /// [`Value`]. Scratch buffers are rebuilt on load, not stored.
    pub fn to_json_value(&self) -> Value {
        Value::Object(vec![(
            "layers".into(),
            Value::Array(self.layers.iter().map(Layer::to_json_value).collect()),
        )])
    }

    /// Deserializes a network written by [`Network::to_json_value`],
    /// validating topology and rebuilding the scratch buffers.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let layers: Vec<Layer> = value
            .get("layers")?
            .as_array()?
            .iter()
            .map(Layer::from_json_value)
            .collect::<Result<_, _>>()?;
        if layers.is_empty() {
            return Err(json_err("network needs at least one layer"));
        }
        for pair in layers.windows(2) {
            if pair[0].outputs != pair[1].inputs {
                return Err(json_err("layer sizes do not chain"));
            }
        }
        let mut sizes = vec![layers[0].inputs];
        sizes.extend(layers.iter().map(|l| l.outputs));
        Ok(Self {
            layers,
            scratch: sizes.iter().map(|&s| vec![0.0; s]).collect(),
            deltas: sizes[1..].iter().map(|&s| vec![0.0; s]).collect(),
        })
    }

    /// Width of the widest activation vector (input layer included).
    fn max_width(&self) -> usize {
        self.layers
            .iter()
            .map(|l| l.outputs)
            .max()
            .unwrap_or(0)
            .max(self.inputs())
    }

    /// Runs the network forward.
    ///
    /// Convenience wrapper over [`Self::predict_into`] that allocates a
    /// fresh scratch per call; hot paths should hold a [`PredictScratch`]
    /// and call `predict_into` (or [`Self::predict_batch`]) instead.
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the input layer size.
    pub fn predict(&self, input: &[f64]) -> Vec<f64> {
        let mut scratch = PredictScratch::default();
        self.predict_into(input, &mut scratch).to_vec()
    }

    /// Runs the network forward using caller-owned scratch, returning the
    /// output activations as a slice into the scratch. Performs zero
    /// allocations once the scratch has grown to the network's width, and
    /// is bit-for-bit identical to [`Self::predict`].
    ///
    /// # Panics
    ///
    /// Panics if `input.len()` differs from the input layer size.
    pub fn predict_into<'s>(&self, input: &[f64], scratch: &'s mut PredictScratch) -> &'s [f64] {
        assert_eq!(input.len(), self.inputs(), "input dimensionality");
        let width = self.max_width();
        scratch.a.resize(width, 0.0);
        scratch.b.resize(width, 0.0);
        scratch.a[..input.len()].copy_from_slice(input);
        let PredictScratch { a, b } = scratch;
        let (mut current, mut next) = (a, b);
        let mut len = input.len();
        for layer in &self.layers {
            layer.forward_into(&current[..len], &mut next[..layer.outputs]);
            len = layer.outputs;
            std::mem::swap(&mut current, &mut next);
        }
        &current[..len]
    }

    /// Runs the network forward over a row-major feature matrix
    /// (`rows.len() / inputs()` rows, each `inputs()` wide), appending each
    /// row's output activations to `outputs`. Equivalent to calling
    /// [`Self::predict`] per row, bit for bit, without the per-call
    /// allocations — and, unlike the per-row path, through a blocked
    /// matrix-matrix kernel.
    ///
    /// Rows are processed in blocks of at most `BLOCK_POINTS` points. Each
    /// block is transposed once into the scratch as a feature-major
    /// activation matrix, whole activation matrices are then ping-ponged
    /// between the layers' register-tiled kernels
    /// (`Layer::forward_batch_t`), and the final layer's matrix is
    /// transposed back into row-major order on append. The lane dimension
    /// of the tiles is the *batch* dimension: each point keeps its own
    /// accumulator chain in the scalar path's exact summation order, which
    /// is what makes the blocked kernel bit-for-bit identical to
    /// [`Self::predict_into`] while the chains vectorize.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the input layer size.
    pub fn predict_batch(
        &self,
        rows: &[f64],
        outputs: &mut Vec<f64>,
        scratch: &mut PredictScratch,
    ) {
        let dims = self.inputs();
        assert_eq!(
            rows.len() % dims,
            0,
            "batch length {} is not a multiple of the input width {dims}",
            rows.len()
        );
        let total = rows.len() / dims;
        if total == 0 {
            return;
        }
        outputs.reserve(total * self.outputs());
        let block = total.min(BLOCK_POINTS);
        let elems = self.max_width() * block;
        if scratch.a.len() < elems {
            scratch.a.resize(elems, 0.0);
        }
        if scratch.b.len() < elems {
            scratch.b.resize(elems, 0.0);
        }
        for chunk in rows.chunks(block * dims) {
            let n = chunk.len() / dims;
            let PredictScratch { a, b } = scratch;
            // Transpose the block once: feature-major, one row per input.
            for (i, row) in a.chunks_exact_mut(n).take(dims).enumerate() {
                for (dst, src) in row.iter_mut().zip(chunk[i..].iter().step_by(dims)) {
                    *dst = *src;
                }
            }
            let (mut cur, mut next) = (a, b);
            let mut width = dims;
            for layer in &self.layers {
                layer.forward_batch_t(&cur[..width * n], &mut next[..layer.outputs * n], n);
                width = layer.outputs;
                std::mem::swap(&mut cur, &mut next);
            }
            // Transpose the output matrix back to row-major on append. A
            // single output unit (the common regression head) is already
            // row-major: one contiguous copy.
            let out_t = &cur[..width * n];
            if width == 1 {
                outputs.extend_from_slice(out_t);
            } else {
                for p in 0..n {
                    outputs.extend(out_t.iter().skip(p).step_by(n));
                }
            }
        }
    }

    /// Per-row forward through the unblocked textbook loops — the
    /// reference implementation the blocked kernels are property-tested
    /// and benchmarked against. Not for production use.
    #[doc(hidden)]
    pub fn predict_naive(&self, input: &[f64]) -> Vec<f64> {
        assert_eq!(input.len(), self.inputs(), "input dimensionality");
        let mut current = input.to_vec();
        let mut next = Vec::new();
        for layer in &self.layers {
            next.clear();
            next.resize(layer.outputs, 0.0);
            layer.forward_naive_into(&current, &mut next);
            std::mem::swap(&mut current, &mut next);
        }
        current
    }

    /// [`Self::predict_into`] with the textbook one-output-at-a-time layer
    /// loop instead of the blocked kernel — structurally the pre-kernel
    /// production forward pass (scratch ping-pong, no per-layer
    /// allocation), kept as the honest baseline the speedup gate measures
    /// the blocked kernels against. Bit-for-bit identical results. Not for
    /// production use.
    #[doc(hidden)]
    pub fn predict_into_naive<'s>(
        &self,
        input: &[f64],
        scratch: &'s mut PredictScratch,
    ) -> &'s [f64] {
        assert_eq!(input.len(), self.inputs(), "input dimensionality");
        let width = self.max_width();
        scratch.a.resize(width, 0.0);
        scratch.b.resize(width, 0.0);
        scratch.a[..input.len()].copy_from_slice(input);
        let PredictScratch { a, b } = scratch;
        let (mut current, mut next) = (a, b);
        let mut len = input.len();
        for layer in &self.layers {
            layer.forward_naive_into(&current[..len], &mut next[..layer.outputs]);
            len = layer.outputs;
            std::mem::swap(&mut current, &mut next);
        }
        &current[..len]
    }

    /// Total number of weights (biases included) across all layers.
    pub fn weight_count(&self) -> usize {
        self.layers.iter().map(|l| l.weights.len()).sum()
    }

    /// Copies the weights and velocities into `snapshot`, resizing it on
    /// first use and overwriting in place afterwards (no allocation on the
    /// steady-state path).
    pub fn snapshot_into(&self, snapshot: &mut NetworkSnapshot) {
        let n = self.weight_count();
        snapshot.weights.resize(n, 0.0);
        snapshot.velocity.resize(n, 0.0);
        let mut at = 0;
        for layer in &self.layers {
            let end = at + layer.weights.len();
            snapshot.weights[at..end].copy_from_slice(&layer.weights);
            snapshot.velocity[at..end].copy_from_slice(&layer.velocity);
            at = end;
        }
    }

    /// Restores weights and velocities captured by [`Self::snapshot_into`]
    /// on a network of the same topology.
    ///
    /// # Panics
    ///
    /// Panics if the snapshot's parameter count does not match.
    pub fn restore(&mut self, snapshot: &NetworkSnapshot) {
        assert_eq!(
            snapshot.weights.len(),
            self.weight_count(),
            "snapshot topology mismatch"
        );
        let mut at = 0;
        for layer in &mut self.layers {
            let end = at + layer.weights.len();
            layer.weights.copy_from_slice(&snapshot.weights[at..end]);
            layer.velocity.copy_from_slice(&snapshot.velocity[at..end]);
            at = end;
        }
    }

    /// One stochastic gradient step on a single example, with momentum
    /// (paper Eq. 3.2): `w <- w - (lr * dE/dw + momentum * prev_update)`.
    ///
    /// Returns the example's squared error before the update.
    ///
    /// The inner loops are the vectorized counterparts of
    /// [`Self::train_example_reference`] and produce bit-for-bit identical
    /// weights: the forward pass runs the output-blocked kernel, delta
    /// back-propagation accumulates with contiguous weight rows
    /// (next-unit-outer, so each lower unit's sum still adds next-layer
    /// contributions in ascending unit order), and the weight/velocity
    /// update streams each row elementwise. No summation order changes —
    /// only the instruction-level parallelism does.
    ///
    /// # Panics
    ///
    /// Panics if `input`/`target` dimensionalities do not match the network.
    pub fn train_example(
        &mut self,
        input: &[f64],
        target: &[f64],
        learning_rate: f64,
        momentum: f64,
    ) -> f64 {
        assert_eq!(input.len(), self.inputs(), "input dimensionality");
        assert_eq!(target.len(), self.outputs(), "target dimensionality");
        self.ensure_buffers();

        // Forward pass, keeping every layer's activations.
        self.scratch[0].clear();
        self.scratch[0].extend_from_slice(input);
        for (i, layer) in self.layers.iter().enumerate() {
            let (before, after) = self.scratch.split_at_mut(i + 1);
            layer.forward(&before[i], &mut after[0]);
        }

        // Output deltas: dE/dnet for squared error with linear outputs is
        // (y - t) * f'(y).
        let last = self.layers.len() - 1;
        let mut squared_error = 0.0;
        let out_activation = self.layers[last].activation;
        for ((delta, &y), &t) in self.deltas[last]
            .iter_mut()
            .zip(&self.scratch[last + 1])
            .zip(target)
        {
            let err = y - t;
            squared_error += err * err;
            *delta = err * out_activation.derivative_from_output(y);
        }

        // Backward pass: propagate deltas. Next-layer weight rows are
        // contiguous, so running the next-unit loop *outside* the
        // lower-unit loop turns the strided gathers of the textbook loop
        // into streaming elementwise accumulation — while each lower
        // unit's sum still adds contributions in ascending next-unit
        // order, exactly as the reference.
        for l in (0..last).rev() {
            let (lower, upper) = self.deltas.split_at_mut(l + 1);
            let next_layer = &self.layers[l + 1];
            let this_outputs = self.layers[l].outputs;
            let stride = next_layer.inputs + 1;
            lower[l].fill(0.0);
            for (row, &delta) in next_layer.weights.chunks_exact(stride).zip(&upper[0][..]) {
                for (sum, &w) in lower[l].iter_mut().zip(&row[..this_outputs]) {
                    *sum += w * delta;
                }
            }
            let activation = self.layers[l].activation;
            for (sum, &y) in lower[l].iter_mut().zip(&self.scratch[l + 1]) {
                *sum *= activation.derivative_from_output(y);
            }
        }

        // Weight updates with momentum: each row's update is elementwise
        // over contiguous weight/velocity rows and the input activations,
        // with the shared `-lr * delta` factor hoisted (same product order
        // as the reference, which multiplies `-lr * delta` first).
        for (l, layer) in self.layers.iter_mut().enumerate() {
            let input_act = &self.scratch[l];
            let stride = layer.inputs + 1;
            for (row, (v_row, &delta)) in layer.weights.chunks_exact_mut(stride).zip(
                layer
                    .velocity
                    .chunks_exact_mut(stride)
                    .zip(&self.deltas[l][..]),
            ) {
                let step = -learning_rate * delta;
                for ((w, v), &x) in row[..layer.inputs]
                    .iter_mut()
                    .zip(&mut v_row[..layer.inputs])
                    .zip(input_act)
                {
                    let update = step * x + momentum * *v;
                    *w += update;
                    *v = update;
                }
                let (w, v) = (&mut row[layer.inputs], &mut v_row[layer.inputs]); // bias
                let update = step + momentum * *v;
                *w += update;
                *v = update;
            }
        }
        squared_error
    }

    /// The textbook backpropagation step the vectorized
    /// [`Self::train_example`] is property-tested against: one-output-at-
    /// a-time forward, strided delta gathers, index-addressed updates.
    /// Bit-for-bit identical weights and return value, just slower. Not
    /// for production use.
    #[doc(hidden)]
    #[allow(clippy::needless_range_loop)]
    pub fn train_example_reference(
        &mut self,
        input: &[f64],
        target: &[f64],
        learning_rate: f64,
        momentum: f64,
    ) -> f64 {
        assert_eq!(input.len(), self.inputs(), "input dimensionality");
        assert_eq!(target.len(), self.outputs(), "target dimensionality");
        self.ensure_buffers();

        // Forward pass, keeping every layer's activations.
        self.scratch[0].clear();
        self.scratch[0].extend_from_slice(input);
        for (i, layer) in self.layers.iter().enumerate() {
            let (before, after) = self.scratch.split_at_mut(i + 1);
            after[0].clear();
            after[0].resize(layer.outputs, 0.0);
            layer.forward_naive_into(&before[i], &mut after[0]);
        }

        // Output deltas.
        let last = self.layers.len() - 1;
        let mut squared_error = 0.0;
        for o in 0..self.layers[last].outputs {
            let y = self.scratch[last + 1][o];
            let err = y - target[o];
            squared_error += err * err;
            self.deltas[last][o] = err * self.layers[last].activation.derivative_from_output(y);
        }

        // Backward pass: propagate deltas.
        for l in (0..last).rev() {
            let (lower, upper) = self.deltas.split_at_mut(l + 1);
            let next_layer = &self.layers[l + 1];
            let this_outputs = self.layers[l].outputs;
            for j in 0..this_outputs {
                let mut sum = 0.0;
                for o in 0..next_layer.outputs {
                    sum += next_layer.weights[o * (next_layer.inputs + 1) + j] * upper[0][o];
                }
                let y = self.scratch[l + 1][j];
                lower[l][j] = sum * self.layers[l].activation.derivative_from_output(y);
            }
        }

        // Weight updates with momentum.
        for (l, layer) in self.layers.iter_mut().enumerate() {
            let input_act = &self.scratch[l];
            for o in 0..layer.outputs {
                let delta = self.deltas[l][o];
                let row = o * (layer.inputs + 1);
                for i in 0..layer.inputs {
                    let idx = row + i;
                    let update =
                        -learning_rate * delta * input_act[i] + momentum * layer.velocity[idx];
                    layer.weights[idx] += update;
                    layer.velocity[idx] = update;
                }
                let idx = row + layer.inputs; // bias
                let update = -learning_rate * delta + momentum * layer.velocity[idx];
                layer.weights[idx] += update;
                layer.velocity[idx] = update;
            }
        }
        squared_error
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn initial_network_is_nearly_linear_and_near_zero() {
        let mut rng = Xoshiro256::seed_from(2);
        let net = Network::new(&[4, 16, 1], &mut rng);
        // With weights in ±0.01, outputs are near the bias path: tiny.
        let y = net.predict(&[1.0, 1.0, 1.0, 1.0]);
        assert!(y[0].abs() < 0.2, "initial output {y:?}");
    }

    #[test]
    fn gradient_matches_finite_differences() {
        // Numeric gradient check on a tiny network: perturb each weight and
        // compare dE/dw with the backprop update direction.
        let mut rng = Xoshiro256::seed_from(3);
        let mut net = Network::new(&[2, 3, 1], &mut rng);
        // Use larger weights so derivatives are non-trivial.
        for layer in &mut net.layers {
            for w in &mut layer.weights {
                *w = rng.range_f64(-0.8, 0.8);
            }
        }
        let input = [0.3, -0.6];
        let target = [0.9];
        let eps = 1e-6;

        let error_of = |net: &Network| {
            let y = net.predict(&input)[0];
            (y - target[0]) * (y - target[0])
        };

        // Analytic gradient via a momentum-free, lr=1 "update": the weight
        // change equals -dE/dnet contributions; recover gradient by diffing
        // weights around the update.
        let mut trained = net.clone();
        let lr = 1e-4;
        trained.train_example(&input, &target, lr, 0.0);

        for l in 0..net.layers.len() {
            for idx in 0..net.layers[l].weights.len() {
                // Numeric: dE/dw (note E here is the squared error; backprop
                // uses dE/dw with E = sum err^2, derivative 2*err*...; the
                // implementation folds the 2 into delta implicitly by using
                // err, so compare against E/2's gradient).
                let mut plus = net.clone();
                plus.layers[l].weights[idx] += eps;
                let mut minus = net.clone();
                minus.layers[l].weights[idx] -= eps;
                let numeric = (error_of(&plus) - error_of(&minus)) / (2.0 * eps) / 2.0;
                let analytic = -(trained.layers[l].weights[idx] - net.layers[l].weights[idx]) / lr;
                assert!(
                    (numeric - analytic).abs() < 1e-4,
                    "layer {l} weight {idx}: numeric {numeric} vs analytic {analytic}"
                );
            }
        }
    }

    #[test]
    fn learns_xor() {
        // The canonical non-linear task: impossible for a linear model.
        let data = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        let mut rng = Xoshiro256::seed_from(5);
        let mut net = Network::new(&[2, 8, 1], &mut rng);
        for _ in 0..60_000 {
            let (x, t) = data[rng.index(4)];
            net.train_example(&x, &[t], 0.3, 0.5);
        }
        for (x, t) in data {
            let y = net.predict(&x)[0];
            assert!((y - t).abs() < 0.25, "xor({x:?}) = {y}, want {t}");
        }
    }

    #[test]
    fn momentum_accelerates_convergence() {
        // Same seed, same presentations: momentum should reach a lower
        // error on a smooth problem within a fixed budget.
        let run = |momentum: f64| {
            let mut rng = Xoshiro256::seed_from(6);
            let mut net = Network::new(&[1, 8, 1], &mut rng);
            let mut data_rng = Xoshiro256::seed_from(7);
            for _ in 0..4000 {
                let x = data_rng.next_f64();
                let t = 0.5 + 0.4 * (x * 6.0).sin();
                net.train_example(&[x], &[t], 0.05, momentum);
            }
            let mut err = 0.0;
            for i in 0..100 {
                let x = i as f64 / 100.0;
                let t = 0.5 + 0.4 * (x * 6.0).sin();
                let y = net.predict(&[x])[0];
                err += (y - t) * (y - t);
            }
            err
        };
        assert!(run(0.5) < run(0.0), "momentum should help on this problem");
    }

    #[test]
    fn multi_output_network() {
        let mut rng = Xoshiro256::seed_from(8);
        let mut net = Network::new(&[2, 10, 2], &mut rng);
        // Learn two functions at once (multi-task shape from §7).
        let mut data_rng = Xoshiro256::seed_from(9);
        for _ in 0..30_000 {
            let a = data_rng.next_f64();
            let b = data_rng.next_f64();
            net.train_example(&[a, b], &[(a + b) / 2.0, a * b], 0.1, 0.5);
        }
        let y = net.predict(&[0.4, 0.6]);
        assert!((y[0] - 0.5).abs() < 0.1, "sum head {y:?}");
        assert!((y[1] - 0.24).abs() < 0.1, "product head {y:?}");
    }

    #[test]
    #[should_panic(expected = "input dimensionality")]
    fn wrong_input_size_panics() {
        let mut rng = Xoshiro256::seed_from(1);
        let net = Network::new(&[3, 4, 1], &mut rng);
        net.predict(&[1.0]);
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let mut rng = Xoshiro256::seed_from(10);
        let mut net = Network::new(&[2, 4, 1], &mut rng);
        for _ in 0..100 {
            net.train_example(&[0.2, 0.8], &[0.5], 0.1, 0.5);
        }
        let json = net.to_json_value().to_json();
        let parsed = Value::parse(&json).unwrap();
        let mut restored = Network::from_json_value(&parsed).unwrap();
        // Shortest-round-trip float formatting makes this exact.
        assert_eq!(net.predict(&[0.3, 0.4]), restored.predict(&[0.3, 0.4]));
        // And training still works on the rebuilt buffers.
        restored.train_example(&[0.3, 0.4], &[0.6], 0.1, 0.5);
        // Weights and velocities survive bit-for-bit, so further training
        // matches the original exactly.
        let mut twin = net.clone();
        twin.train_example(&[0.3, 0.4], &[0.6], 0.1, 0.5);
        assert_eq!(twin.predict(&[0.7, 0.2]), restored.predict(&[0.7, 0.2]));
    }

    #[test]
    fn json_rejects_corrupt_topology() {
        let mut rng = Xoshiro256::seed_from(11);
        let net = Network::new(&[2, 3, 1], &mut rng);
        let json = net.to_json_value().to_json();
        // Truncate a weight array.
        let broken = json.replacen(",", "", 1);
        let parsed = Value::parse(&broken);
        assert!(parsed.is_err() || Network::from_json_value(&parsed.unwrap()).is_err());
        assert!(Network::from_json_value(&Value::parse("{\"layers\":[]}").unwrap()).is_err());
    }
}
