//! k-fold cross-validation ensembles with error estimation (paper §3.2).
//!
//! The dataset is split into `k` folds. Model `m` trains on all folds
//! except `m` (its test fold) and `m+1 mod k` (its early-stopping fold) —
//! the rotation of Fig. 3.3. The `k` networks are averaged into an
//! [`Ensemble`]; the per-point percentage errors each model makes on its
//! own held-out test fold are pooled into the **error estimate**, the
//! quantity that lets the architect decide when to stop simulating.
//!
//! The `k` folds are independent — each trains from its own RNG stream
//! derived from the fit seed — so [`fit_ensemble`] fans them out across
//! worker threads (see [`crate::train::Parallelism`]). Fold results are
//! joined in fold index order before the error estimate is pooled, making
//! the parallel and sequential paths bit-for-bit identical.

use crate::dataset::{fold_ranges, Dataset, Sample};
use crate::ensemble::Ensemble;
use crate::train::{train_network, TrainConfig};
use archpredict_stats::describe::Accumulator;
use archpredict_stats::rng::Xoshiro256;

/// Cross-validation estimate of model error over the full design space.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ErrorEstimate {
    /// Estimated mean absolute percentage error.
    pub mean: f64,
    /// Estimated standard deviation of the percentage error.
    pub std_dev: f64,
    /// Number of held-out points the estimate pools.
    pub points: u64,
}

/// Training telemetry from one fold's model.
#[derive(Debug, Clone, PartialEq)]
pub struct FoldRecord {
    /// Fold index (also the model's test-fold index).
    pub fold: usize,
    /// Samples the model trained on.
    pub train_samples: usize,
    /// Samples in the early-stopping fold.
    pub es_samples: usize,
    /// Samples in the test fold pooled into the error estimate.
    pub test_samples: usize,
    /// Epochs actually run before early stopping.
    pub epochs: usize,
    /// Best mean absolute percentage error on the early-stopping fold.
    pub best_es_error: f64,
    /// Wall-clock seconds spent training this fold (when folds train in
    /// parallel these overlap, so they sum to more than elapsed time).
    pub seconds: f64,
    /// Times this fold was reinitialized after detecting training
    /// divergence (non-finite early-stopping error). `0` on healthy folds.
    pub reinits: u32,
}

/// Bounded attempts at re-training a diverged fold before giving up and
/// keeping its best finite snapshot.
pub const MAX_FOLD_REINITS: u32 = 3;

/// Learning-rate decay applied on each divergence reinit. A divergence is
/// almost always a step-size instability, so a fresh seed alone rarely
/// helps; shrinking the step makes recovery deterministic.
pub const REINIT_LR_DECAY: f64 = 0.1;

/// Result of fitting a cross-validation ensemble.
#[derive(Debug, Clone, PartialEq)]
pub struct CvFit {
    /// The averaged ensemble of `k` networks.
    pub ensemble: Ensemble,
    /// Cross-validation error estimate.
    pub estimate: ErrorEstimate,
    /// Per-fold training telemetry, in fold order.
    pub folds: Vec<FoldRecord>,
}

/// Everything one fold produces, carried back to the join point.
struct FoldOutput {
    model: crate::train::TrainedModel,
    /// Per-test-point percentage errors, in test-fold sample order.
    errors: Vec<f64>,
    record: FoldRecord,
}

/// Trains a `folds`-fold cross-validation ensemble on `dataset`.
///
/// The sample order is randomized (seeded) before fold assignment, then
/// each of the `folds` models trains per Fig. 3.3. Folds fan out across
/// worker threads per `config.parallelism`; each fold seeds its network
/// from its own derived RNG stream and results are joined in fold order,
/// so the returned fit is **bit-for-bit identical** for any thread count.
/// Returns the ensemble, the pooled error estimate, and per-fold telemetry
/// (wall seconds in [`FoldRecord::seconds`] are the only fields that vary
/// between runs).
///
/// # Panics
///
/// Panics if `folds < 3` (a model needs disjoint train/ES/test folds) or
/// the dataset has fewer samples than folds.
pub fn fit_ensemble(dataset: &Dataset, folds: usize, config: &TrainConfig, seed: u64) -> CvFit {
    assert!(folds >= 3, "cross validation needs at least 3 folds");
    assert!(
        dataset.len() >= folds,
        "dataset smaller than fold count ({} < {folds})",
        dataset.len()
    );
    let mut rng = Xoshiro256::seed_from(seed);
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    archpredict_stats::sampling::shuffle(&mut order, &mut rng);
    let (rng, order) = (rng, order); // freeze: folds only derive() from here
                                     // Position → fold lookup table: O(n) once, instead of a linear scan
                                     // over the fold ranges for every (fold, position) pair.
    let ranges = fold_ranges(dataset.len(), folds);
    let mut fold_of = vec![0usize; dataset.len()];
    for (fold, &(start, end)) in ranges.iter().enumerate() {
        for entry in &mut fold_of[start..end] {
            *entry = fold;
        }
    }

    let samples = dataset.samples();
    // `derive` is pure (it does not advance `rng`), so fold RNGs do not
    // depend on the order folds are trained in.
    let run_fold = |m: usize| -> FoldOutput {
        let started = std::time::Instant::now();
        let es_fold = (m + 1) % folds;
        let mut train: Vec<&Sample> = Vec::new();
        let mut es: Vec<&Sample> = Vec::new();
        let mut test: Vec<&Sample> = Vec::new();
        for (position, &sample_idx) in order.iter().enumerate() {
            let sample = &samples[sample_idx];
            if fold_of[position] == m {
                test.push(sample);
            } else if fold_of[position] == es_fold {
                es.push(sample);
            } else {
                train.push(sample);
            }
        }
        let mut model_rng = rng.derive(m as u64 + 1);
        let mut fold_config = *config;
        let mut model = train_network(&train, &es, &fold_config, &mut model_rng);
        let mut reinits = 0u32;
        while model.diverged && reinits < MAX_FOLD_REINITS {
            reinits += 1;
            // Base fold streams are 1..=folds, so reinit streams start at
            // folds + 1 and can never collide with another fold's stream.
            model_rng = rng.derive(m as u64 + 1 + (folds as u64) * reinits as u64);
            fold_config.learning_rate *= REINIT_LR_DECAY;
            model = train_network(&train, &es, &fold_config, &mut model_rng);
        }
        let mut buf = crate::train::PredictBuffer::default();
        let errors: Vec<f64> = test
            .iter()
            .map(|s| {
                let pred = model.predict_with(&s.features, &mut buf);
                100.0 * (pred - s.target).abs() / s.target.abs().max(1e-12)
            })
            .collect();
        let record = FoldRecord {
            fold: m,
            train_samples: train.len(),
            es_samples: es.len(),
            test_samples: test.len(),
            epochs: model.epochs,
            best_es_error: model.best_es_error,
            seconds: started.elapsed().as_secs_f64(),
            reinits,
        };
        FoldOutput {
            model,
            errors,
            record,
        }
    };

    let workers = config.parallelism.worker_count(folds);
    let outputs: Vec<FoldOutput> = if workers <= 1 {
        (0..folds).map(run_fold).collect()
    } else {
        // Fan folds out round-robin across workers (fold m goes to worker
        // m % workers, keeping chunk sizes balanced), writing each result
        // into its own slot so the join below reads them in fold order.
        let mut slots: Vec<Option<FoldOutput>> = (0..folds).map(|_| None).collect();
        std::thread::scope(|scope| {
            for (worker, slot_chunk) in slots.chunks_mut(folds.div_ceil(workers)).enumerate() {
                let first = worker * folds.div_ceil(workers);
                let run_fold = &run_fold;
                scope.spawn(move || {
                    for (offset, slot) in slot_chunk.iter_mut().enumerate() {
                        *slot = Some(run_fold(first + offset));
                    }
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| slot.expect("every fold trains"))
            .collect()
    };

    // Join in fold index order: the estimate pools per-point errors in
    // exactly the order the sequential loop produced them.
    let mut models = Vec::with_capacity(folds);
    let mut records = Vec::with_capacity(folds);
    let mut errors = Accumulator::new();
    for output in outputs {
        for &e in &output.errors {
            errors.add(e);
        }
        models.push(output.model);
        records.push(output.record);
    }

    CvFit {
        ensemble: Ensemble::new(models),
        estimate: ErrorEstimate {
            mean: errors.mean(),
            std_dev: errors.population_std_dev(),
            points: errors.count(),
        },
        folds: records,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target_fn(a: f64, b: f64, c: f64) -> f64 {
        0.2 + 0.6 * (a * 2.5).sin().abs() + 0.3 * b * c + 0.2 * c
    }

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..n)
            .map(|_| {
                let (a, b, c) = (rng.next_f64(), rng.next_f64(), rng.next_f64());
                Sample::new(vec![a, b, c], target_fn(a, b, c))
            })
            .collect()
    }

    #[test]
    fn estimate_tracks_true_error() {
        let train = dataset(500, 1);
        let fit = fit_ensemble(&train, 10, &TrainConfig::default(), 42);

        // True error on unseen points.
        let test = dataset(400, 2);
        let mut acc = Accumulator::new();
        for s in test.iter() {
            let pred = fit.ensemble.predict(&s.features);
            acc.add(100.0 * (pred - s.target).abs() / s.target);
        }
        let true_mean = acc.mean();
        let est = fit.estimate.mean;
        assert!(est > 0.0);
        assert!(
            (true_mean - est).abs() < est.max(1.0),
            "estimate {est:.2}% vs true {true_mean:.2}%"
        );
        // And the model must actually be good on this smooth function.
        assert!(true_mean < 6.0, "true error {true_mean:.2}%");
    }

    #[test]
    fn more_data_reduces_error() {
        let small = fit_ensemble(&dataset(60, 3), 10, &TrainConfig::default(), 7);
        let large = fit_ensemble(&dataset(600, 3), 10, &TrainConfig::default(), 7);
        assert!(
            large.estimate.mean < small.estimate.mean,
            "600 pts {:.2}% should beat 60 pts {:.2}%",
            large.estimate.mean,
            small.estimate.mean
        );
    }

    #[test]
    fn ensemble_beats_typical_member() {
        // Averaging reduces variance: the ensemble's true error should not
        // exceed the pooled member test error (which is what the estimate
        // measures) by any meaningful margin — usually it is lower (§3.2).
        let train = dataset(300, 4);
        let fit = fit_ensemble(&train, 10, &TrainConfig::default(), 8);
        let test = dataset(300, 5);
        let mut acc = Accumulator::new();
        for s in test.iter() {
            acc.add(100.0 * (fit.ensemble.predict(&s.features) - s.target).abs() / s.target);
        }
        assert!(
            acc.mean() <= fit.estimate.mean * 1.25,
            "ensemble {:.2}% vs member estimate {:.2}%",
            acc.mean(),
            fit.estimate.mean
        );
    }

    #[test]
    fn estimate_pools_every_point_once() {
        let train = dataset(100, 6);
        let fit = fit_ensemble(&train, 10, &TrainConfig::default(), 9);
        assert_eq!(fit.estimate.points, 100);
        assert_eq!(fit.ensemble.len(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = dataset(100, 10);
        let a = fit_ensemble(&train, 5, &TrainConfig::default(), 11);
        let b = fit_ensemble(&train, 5, &TrainConfig::default(), 11);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(
            a.ensemble.predict(&[0.2, 0.4, 0.6]),
            b.ensemble.predict(&[0.2, 0.4, 0.6])
        );
    }

    #[test]
    #[should_panic(expected = "at least 3 folds")]
    fn too_few_folds_panics() {
        fit_ensemble(&dataset(30, 1), 2, &TrainConfig::default(), 1);
    }

    #[test]
    fn parallel_matches_sequential_bit_for_bit() {
        use crate::train::Parallelism;
        let train = dataset(120, 12);
        let fit_with = |parallelism| {
            let config = TrainConfig {
                parallelism,
                ..TrainConfig::default()
            };
            fit_ensemble(&train, 6, &config, 13)
        };
        let sequential = fit_with(Parallelism::Fixed(1));
        for parallel in [fit_with(Parallelism::Fixed(3)), fit_with(Parallelism::Auto)] {
            // The pooled estimate is identical to the last bit: same
            // per-point errors accumulated in the same order.
            assert_eq!(sequential.estimate, parallel.estimate);
            // Every member model is identical, not just the average.
            for x in [[0.1, 0.2, 0.3], [0.9, 0.5, 0.4], [0.5, 0.5, 0.5]] {
                assert_eq!(
                    sequential.ensemble.member_predictions(&x),
                    parallel.ensemble.member_predictions(&x)
                );
            }
            // Telemetry matches except wall-clock seconds.
            for (s, p) in sequential.folds.iter().zip(&parallel.folds) {
                assert_eq!((s.fold, s.epochs), (p.fold, p.epochs));
                assert_eq!(s.best_es_error, p.best_es_error);
                assert_eq!(
                    (s.train_samples, s.es_samples, s.test_samples),
                    (p.train_samples, p.es_samples, p.test_samples)
                );
            }
        }
    }

    #[test]
    fn diverged_folds_recover_via_reinit_with_damped_learning_rate() {
        // lr = 10 explodes every fold (linear output layer, geometric error
        // growth). The reinit loop must retrain each fold with a damped
        // step until it converges, leaving a finite, usable ensemble.
        let train = dataset(150, 16);
        let config = TrainConfig {
            learning_rate: 10.0,
            max_epochs: 300,
            ..TrainConfig::default()
        };
        let fit = fit_ensemble(&train, 5, &config, 17);
        assert!(
            fit.folds.iter().any(|r| r.reinits > 0),
            "expected at least one fold to reinit, got {:?}",
            fit.folds.iter().map(|r| r.reinits).collect::<Vec<_>>()
        );
        assert!(
            fit.folds.iter().all(|r| r.reinits <= MAX_FOLD_REINITS),
            "reinits must stay bounded"
        );
        assert!(
            fit.estimate.mean.is_finite(),
            "estimate {} must be finite after recovery",
            fit.estimate.mean
        );
        assert!(fit.ensemble.predict(&[0.3, 0.5, 0.7]).is_finite());
        // Recovery is deterministic: same seed, same result.
        let again = fit_ensemble(&train, 5, &config, 17);
        assert_eq!(fit.estimate, again.estimate);
    }

    #[test]
    fn fold_records_cover_the_dataset() {
        let n = 97;
        let folds = 5;
        let fit = fit_ensemble(&dataset(n, 14), folds, &TrainConfig::default(), 15);
        assert_eq!(fit.folds.len(), folds);
        for (m, record) in fit.folds.iter().enumerate() {
            assert_eq!(record.fold, m);
            assert_eq!(
                record.train_samples + record.es_samples + record.test_samples,
                n
            );
            assert!(record.epochs > 0);
            assert!(record.best_es_error.is_finite() && record.best_es_error > 0.0);
            assert!(record.seconds >= 0.0);
        }
        // Each sample appears in exactly one test fold.
        let pooled: usize = fit.folds.iter().map(|r| r.test_samples).sum();
        assert_eq!(pooled, n);
        assert_eq!(fit.estimate.points, n as u64);
    }
}
