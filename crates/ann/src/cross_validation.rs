//! k-fold cross-validation ensembles with error estimation (paper §3.2).
//!
//! The dataset is split into `k` folds. Model `m` trains on all folds
//! except `m` (its test fold) and `m+1 mod k` (its early-stopping fold) —
//! the rotation of Fig. 3.3. The `k` networks are averaged into an
//! [`Ensemble`]; the per-point percentage errors each model makes on its
//! own held-out test fold are pooled into the **error estimate**, the
//! quantity that lets the architect decide when to stop simulating.

use crate::dataset::{fold_ranges, Dataset, Sample};
use crate::ensemble::Ensemble;
use crate::train::{train_network, TrainConfig};
use archpredict_stats::describe::Accumulator;
use archpredict_stats::rng::Xoshiro256;
use serde::{Deserialize, Serialize};

/// Cross-validation estimate of model error over the full design space.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ErrorEstimate {
    /// Estimated mean absolute percentage error.
    pub mean: f64,
    /// Estimated standard deviation of the percentage error.
    pub std_dev: f64,
    /// Number of held-out points the estimate pools.
    pub points: u64,
}

/// Result of fitting a cross-validation ensemble.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CvFit {
    /// The averaged ensemble of `k` networks.
    pub ensemble: Ensemble,
    /// Cross-validation error estimate.
    pub estimate: ErrorEstimate,
}

/// Trains a `folds`-fold cross-validation ensemble on `dataset`.
///
/// The sample order is randomized (seeded) before fold assignment, then
/// each of the `folds` models trains per Fig. 3.3. Returns the ensemble and
/// the pooled error estimate.
///
/// # Panics
///
/// Panics if `folds < 3` (a model needs disjoint train/ES/test folds) or
/// the dataset has fewer samples than folds.
pub fn fit_ensemble(dataset: &Dataset, folds: usize, config: &TrainConfig, seed: u64) -> CvFit {
    assert!(folds >= 3, "cross validation needs at least 3 folds");
    assert!(
        dataset.len() >= folds,
        "dataset smaller than fold count ({} < {folds})",
        dataset.len()
    );
    let mut rng = Xoshiro256::seed_from(seed);
    let mut order: Vec<usize> = (0..dataset.len()).collect();
    archpredict_stats::sampling::shuffle(&mut order, &mut rng);
    let ranges = fold_ranges(dataset.len(), folds);
    let fold_of = |position: usize| {
        ranges
            .iter()
            .position(|&(a, b)| position >= a && position < b)
    };

    let samples = dataset.samples();
    let mut models = Vec::with_capacity(folds);
    let mut errors = Accumulator::new();

    for m in 0..folds {
        let es_fold = (m + 1) % folds;
        let mut train: Vec<&Sample> = Vec::new();
        let mut es: Vec<&Sample> = Vec::new();
        let mut test: Vec<&Sample> = Vec::new();
        for (position, &sample_idx) in order.iter().enumerate() {
            let fold = fold_of(position).expect("position covered by ranges");
            let sample = &samples[sample_idx];
            if fold == m {
                test.push(sample);
            } else if fold == es_fold {
                es.push(sample);
            } else {
                train.push(sample);
            }
        }
        let mut model_rng = rng.derive(m as u64 + 1);
        let model = train_network(&train, &es, config, &mut model_rng);
        for s in &test {
            let pred = model.predict(&s.features);
            errors.add(100.0 * (pred - s.target).abs() / s.target.abs().max(1e-12));
        }
        models.push(model);
    }

    CvFit {
        ensemble: Ensemble::new(models),
        estimate: ErrorEstimate {
            mean: errors.mean(),
            std_dev: errors.population_std_dev(),
            points: errors.count(),
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn target_fn(a: f64, b: f64, c: f64) -> f64 {
        0.2 + 0.6 * (a * 2.5).sin().abs() + 0.3 * b * c + 0.2 * c
    }

    fn dataset(n: usize, seed: u64) -> Dataset {
        let mut rng = Xoshiro256::seed_from(seed);
        (0..n)
            .map(|_| {
                let (a, b, c) = (rng.next_f64(), rng.next_f64(), rng.next_f64());
                Sample::new(vec![a, b, c], target_fn(a, b, c))
            })
            .collect()
    }

    #[test]
    fn estimate_tracks_true_error() {
        let train = dataset(500, 1);
        let fit = fit_ensemble(&train, 10, &TrainConfig::default(), 42);

        // True error on unseen points.
        let test = dataset(400, 2);
        let mut acc = Accumulator::new();
        for s in test.iter() {
            let pred = fit.ensemble.predict(&s.features);
            acc.add(100.0 * (pred - s.target).abs() / s.target);
        }
        let true_mean = acc.mean();
        let est = fit.estimate.mean;
        assert!(est > 0.0);
        assert!(
            (true_mean - est).abs() < est.max(1.0),
            "estimate {est:.2}% vs true {true_mean:.2}%"
        );
        // And the model must actually be good on this smooth function.
        assert!(true_mean < 6.0, "true error {true_mean:.2}%");
    }

    #[test]
    fn more_data_reduces_error() {
        let small = fit_ensemble(&dataset(60, 3), 10, &TrainConfig::default(), 7);
        let large = fit_ensemble(&dataset(600, 3), 10, &TrainConfig::default(), 7);
        assert!(
            large.estimate.mean < small.estimate.mean,
            "600 pts {:.2}% should beat 60 pts {:.2}%",
            large.estimate.mean,
            small.estimate.mean
        );
    }

    #[test]
    fn ensemble_beats_typical_member() {
        // Averaging reduces variance: the ensemble's true error should not
        // exceed the pooled member test error (which is what the estimate
        // measures) by any meaningful margin — usually it is lower (§3.2).
        let train = dataset(300, 4);
        let fit = fit_ensemble(&train, 10, &TrainConfig::default(), 8);
        let test = dataset(300, 5);
        let mut acc = Accumulator::new();
        for s in test.iter() {
            acc.add(100.0 * (fit.ensemble.predict(&s.features) - s.target).abs() / s.target);
        }
        assert!(
            acc.mean() <= fit.estimate.mean * 1.25,
            "ensemble {:.2}% vs member estimate {:.2}%",
            acc.mean(),
            fit.estimate.mean
        );
    }

    #[test]
    fn estimate_pools_every_point_once() {
        let train = dataset(100, 6);
        let fit = fit_ensemble(&train, 10, &TrainConfig::default(), 9);
        assert_eq!(fit.estimate.points, 100);
        assert_eq!(fit.ensemble.len(), 10);
    }

    #[test]
    fn deterministic_given_seed() {
        let train = dataset(100, 10);
        let a = fit_ensemble(&train, 5, &TrainConfig::default(), 11);
        let b = fit_ensemble(&train, 5, &TrainConfig::default(), 11);
        assert_eq!(a.estimate, b.estimate);
        assert_eq!(
            a.ensemble.predict(&[0.2, 0.4, 0.6]),
            b.ensemble.predict(&[0.2, 0.4, 0.6])
        );
    }

    #[test]
    #[should_panic(expected = "at least 3 folds")]
    fn too_few_folds_panics() {
        fit_ensemble(&dataset(30, 1), 2, &TrainConfig::default(), 1);
    }
}
