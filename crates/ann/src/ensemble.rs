//! Prediction-averaging ensembles (paper §3.2).
//!
//! The `k` networks produced by cross-validation are combined by averaging
//! their predictions — "an approach frequently used in weather forecasting"
//! that usually beats a single network trained on all the data.

use crate::train::{PredictBuffer, TrainedModel};
use archpredict_stats::describe::Accumulator;
use archpredict_stats::json::{JsonError, Value};

/// Serialization format version stamped into every artifact header.
///
/// Bump this whenever anything that changes model *numerics* ships — the
/// vectorized `fastmath` kernels redefined every trained weight, so a
/// model persisted under one format mispredicts silently under another.
/// Version 2 is the fastmath-kernel era; headerless JSON predates
/// versioning and is treated as unknown legacy (loadable through the
/// unchecked [`Ensemble::from_json`], rejected by
/// [`Ensemble::from_json_checked`]).
pub const MODEL_FORMAT_VERSION: u32 = 2;

/// The versioned header stamped onto persisted model artifacts.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ModelHeader {
    /// Serialization/numerics format ([`MODEL_FORMAT_VERSION`] today).
    pub format: u32,
    /// Fingerprint of the design space + encoding the model was trained
    /// on (0 = not stamped). The trainer-side caller computes it; this
    /// crate only carries and compares it.
    pub fingerprint: u64,
}

impl ModelHeader {
    /// The current-format header for a given space/encoder fingerprint.
    pub fn current(fingerprint: u64) -> Self {
        Self {
            format: MODEL_FORMAT_VERSION,
            fingerprint,
        }
    }

    pub(crate) fn to_json_fields(self) -> Vec<(String, Value)> {
        vec![
            ("format".into(), Value::num(self.format as f64)),
            // u64 as hex: JSON numbers are f64 and cannot carry the
            // full 64 bits exactly.
            (
                "fingerprint".into(),
                Value::Str(format!("{:016x}", self.fingerprint)),
            ),
        ]
    }

    /// Reads the header out of a parsed artifact, `None` when the JSON
    /// predates versioning (no `format` key).
    pub fn from_json_value(value: &Value) -> Result<Option<Self>, JsonError> {
        let Ok(format) = value.get("format") else {
            return Ok(None);
        };
        let fingerprint = value.get("fingerprint")?.as_str()?;
        let fingerprint = u64::from_str_radix(fingerprint, 16)
            .map_err(|_| JsonError::custom(format!("bad hex fingerprint {fingerprint:?}")))?;
        Ok(Some(Self {
            format: format.as_u64()? as u32,
            fingerprint,
        }))
    }

    /// Errors unless the header matches the current format and the
    /// expected fingerprint — the registry's load-time compatibility gate.
    pub fn check(self, expected_fingerprint: u64) -> Result<(), JsonError> {
        if self.format != MODEL_FORMAT_VERSION {
            return Err(JsonError::custom(format!(
                "model format {} is incompatible with this build (format {MODEL_FORMAT_VERSION}); refit the model",
                self.format
            )));
        }
        if self.fingerprint != expected_fingerprint {
            return Err(JsonError::custom(format!(
                "model fingerprint {:016x} does not match the requested space/encoding {expected_fingerprint:016x}; refit the model",
                self.fingerprint
            )));
        }
        Ok(())
    }
}

/// An averaging ensemble of trained models.
#[derive(Debug, Clone, PartialEq)]
pub struct Ensemble {
    models: Vec<TrainedModel>,
}

impl Ensemble {
    /// Wraps trained models into an ensemble.
    ///
    /// # Panics
    ///
    /// Panics if `models` is empty.
    pub fn new(models: Vec<TrainedModel>) -> Self {
        assert!(!models.is_empty(), "ensemble needs at least one model");
        Self { models }
    }

    /// Number of member models.
    pub fn len(&self) -> usize {
        self.models.len()
    }

    /// Whether the ensemble has no members (never true once constructed).
    pub fn is_empty(&self) -> bool {
        self.models.is_empty()
    }

    /// The member models.
    pub fn models(&self) -> &[TrainedModel] {
        &self.models
    }

    /// Predicts the raw-scale target by averaging member predictions.
    ///
    /// Convenience wrapper over [`Ensemble::predict_with`] that pays one
    /// scratch allocation per call; sweeps should hold a [`PredictBuffer`]
    /// and use `predict_with` / [`Ensemble::predict_batch_into`].
    pub fn predict(&self, features: &[f64]) -> f64 {
        self.predict_with(features, &mut PredictBuffer::default())
    }

    /// Predicts the raw-scale target using caller-owned scratch — zero
    /// allocations per call, bit-for-bit identical to
    /// [`Ensemble::predict`].
    pub fn predict_with(&self, features: &[f64], buf: &mut PredictBuffer) -> f64 {
        let sum: f64 = self
            .models
            .iter()
            .map(|m| m.predict_with(features, buf))
            .sum();
        sum / self.models.len() as f64
    }

    /// Width of the raw feature vectors the ensemble consumes.
    pub fn input_dims(&self) -> usize {
        self.models[0].input_dims()
    }

    /// Predicts raw-scale targets for a row-major matrix of raw feature
    /// rows (each [`Ensemble::input_dims`] wide), appending one averaged
    /// prediction per row to `out`. The loop runs member-outer so each
    /// model's weights stay hot across the whole chunk, and every member
    /// pushes the chunk through its blocked matrix-matrix kernel
    /// ([`TrainedModel::predict_batch_into`]); per-row sums still
    /// accumulate in member order, so results are bit-for-bit identical to
    /// per-row [`Ensemble::predict`].
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the input width.
    pub fn predict_batch_into(&self, rows: &[f64], out: &mut Vec<f64>, buf: &mut PredictBuffer) {
        let dims = self.input_dims();
        assert_eq!(
            rows.len() % dims,
            0,
            "batch length {} is not a multiple of the feature width {dims}",
            rows.len()
        );
        let start = out.len();
        out.resize(start + rows.len() / dims, 0.0);
        let mut member = std::mem::take(&mut buf.member);
        for model in &self.models {
            member.clear();
            model.predict_batch_into(rows, &mut member, buf);
            for (slot, &y) in out[start..].iter_mut().zip(&member) {
                *slot += y;
            }
        }
        buf.member = member;
        let n = self.models.len() as f64;
        for slot in &mut out[start..] {
            *slot /= n;
        }
    }

    /// Ensemble average through each member's textbook per-output forward
    /// loop ([`TrainedModel::predict_reference_with`]) with one fresh
    /// scratch per call — structurally the pre-kernel production path
    /// ([`Ensemble::predict`] before the blocked kernels), kept as the
    /// honest baseline the speedup gate measures against. Bit-for-bit
    /// identical to [`Ensemble::predict`]. Not for production use.
    #[doc(hidden)]
    pub fn predict_reference(&self, features: &[f64]) -> f64 {
        let mut buf = PredictBuffer::default();
        let sum: f64 = self
            .models
            .iter()
            .map(|m| m.predict_reference_with(features, &mut buf))
            .sum();
        sum / self.models.len() as f64
    }

    /// Per-member predictions, exposed for query-by-committee active
    /// learning (disagreement = informativeness; paper §7 future work).
    pub fn member_predictions(&self, features: &[f64]) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.models.len());
        self.member_predictions_into(features, &mut out, &mut PredictBuffer::default());
        out
    }

    /// Per-member predictions appended to `out`, allocation-free given a
    /// warm [`PredictBuffer`].
    pub fn member_predictions_into(
        &self,
        features: &[f64],
        out: &mut Vec<f64>,
        buf: &mut PredictBuffer,
    ) {
        out.extend(self.models.iter().map(|m| m.predict_with(features, buf)));
    }

    /// Sample standard deviation of member predictions — the committee
    /// disagreement used by the active-learning extension.
    pub fn disagreement(&self, features: &[f64]) -> f64 {
        self.disagreement_with(features, &mut PredictBuffer::default())
    }

    /// Committee disagreement using caller-owned scratch: member
    /// predictions fold straight into a Welford [`Accumulator`], so scoring
    /// a candidate allocates nothing.
    pub fn disagreement_with(&self, features: &[f64], buf: &mut PredictBuffer) -> f64 {
        let mut acc = Accumulator::new();
        for model in &self.models {
            acc.add(model.predict_with(features, buf));
        }
        acc.sample_std_dev()
    }

    /// Committee disagreement for a row-major matrix of raw feature rows,
    /// appending one score per row to `out` — the batched counterpart of
    /// [`Ensemble::disagreement_with`], bit for bit.
    ///
    /// Runs member-outer: each member predicts the whole chunk through its
    /// blocked kernel, and the predictions fold into per-row Welford
    /// states (running mean and M2, updated elementwise in member order —
    /// the exact `Accumulator::add` recurrence), so the kernel's batch
    /// throughput carries over to query-by-committee scoring.
    ///
    /// # Panics
    ///
    /// Panics if `rows.len()` is not a multiple of the input width.
    pub fn disagreement_batch_into(
        &self,
        rows: &[f64],
        out: &mut Vec<f64>,
        buf: &mut PredictBuffer,
    ) {
        let dims = self.input_dims();
        assert_eq!(
            rows.len() % dims,
            0,
            "batch length {} is not a multiple of the feature width {dims}",
            rows.len()
        );
        let n_rows = rows.len() / dims;
        let mut member = std::mem::take(&mut buf.member);
        let mut mean = std::mem::take(&mut buf.mean);
        let mut m2 = std::mem::take(&mut buf.m2);
        mean.clear();
        mean.resize(n_rows, 0.0);
        m2.clear();
        m2.resize(n_rows, 0.0);
        for (k, model) in self.models.iter().enumerate() {
            member.clear();
            model.predict_batch_into(rows, &mut member, buf);
            let count = (k + 1) as f64;
            for ((m, s), &x) in mean.iter_mut().zip(&mut m2).zip(&member) {
                let delta = x - *m;
                *m += delta / count;
                *s += delta * (x - *m);
            }
        }
        // Sample standard deviation, matching `Accumulator::sample_std_dev`
        // (0.0 for fewer than two members).
        out.reserve(n_rows);
        if self.models.len() < 2 {
            out.resize(out.len() + n_rows, 0.0);
        } else {
            let denom = (self.models.len() - 1) as f64;
            out.extend(m2.iter().map(|&s| (s / denom).sqrt()));
        }
        buf.member = member;
        buf.mean = mean;
        buf.m2 = m2;
    }

    /// Serializes the ensemble to a JSON string with the current
    /// [`ModelHeader`] and a fingerprint of 0 ("not stamped"). Callers
    /// that know what space/encoding produced the model should use
    /// [`Ensemble::to_json_fingerprinted`] so loads can be checked.
    pub fn to_json(&self) -> String {
        self.to_json_fingerprinted(0)
    }

    /// Serializes the ensemble with a versioned header carrying
    /// `fingerprint` (the trainer's space/encoder identity), so
    /// [`Ensemble::from_json_checked`] can refuse incompatible artifacts.
    pub fn to_json_fingerprinted(&self, fingerprint: u64) -> String {
        let mut fields = ModelHeader::current(fingerprint).to_json_fields();
        fields.push((
            "models".into(),
            Value::Array(
                self.models
                    .iter()
                    .map(TrainedModel::to_json_value)
                    .collect(),
            ),
        ));
        Value::Object(fields).to_json()
    }

    /// Deserializes an ensemble written by [`Ensemble::to_json`].
    ///
    /// Accepts both current headered artifacts and legacy headerless JSON
    /// (written before versioning) without any compatibility check — use
    /// [`Ensemble::from_json_checked`] when the artifact must match a
    /// known space/encoding. A present-but-wrong format still fails: the
    /// header, once written, is never ignored.
    pub fn from_json(text: &str) -> Result<Self, JsonError> {
        let value = Value::parse(text)?;
        if let Some(header) = ModelHeader::from_json_value(&value)? {
            if header.format != MODEL_FORMAT_VERSION {
                return Err(JsonError::custom(format!(
                    "model format {} is incompatible with this build (format {MODEL_FORMAT_VERSION}); refit the model",
                    header.format
                )));
            }
        }
        Self::models_from_json_value(&value)
    }

    /// Deserializes an ensemble and enforces the artifact header: the
    /// format must be current and the stored fingerprint must equal
    /// `expected_fingerprint`. Legacy headerless JSON is rejected —
    /// an unstamped artifact cannot prove what space it was trained on.
    pub fn from_json_checked(text: &str, expected_fingerprint: u64) -> Result<Self, JsonError> {
        let value = Value::parse(text)?;
        let header = ModelHeader::from_json_value(&value)?.ok_or_else(|| {
            JsonError::custom(
                "artifact has no version header (pre-versioning legacy); refit the model",
            )
        })?;
        header.check(expected_fingerprint)?;
        Self::models_from_json_value(&value)
    }

    fn models_from_json_value(value: &Value) -> Result<Self, JsonError> {
        let models: Vec<TrainedModel> = value
            .get("models")?
            .as_array()?
            .iter()
            .map(TrainedModel::from_json_value)
            .collect::<Result<_, _>>()?;
        if models.is_empty() {
            return Err(JsonError::custom("ensemble needs at least one model"));
        }
        Ok(Self { models })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Sample;
    use crate::train::{train_network, TrainConfig};
    use archpredict_stats::rng::Xoshiro256;

    fn trained(seed: u64) -> TrainedModel {
        let mut rng = Xoshiro256::seed_from(seed);
        let samples: Vec<Sample> = (0..80)
            .map(|_| {
                let a = rng.next_f64();
                Sample::new(vec![a], 0.5 + a)
            })
            .collect();
        let (train, es) = samples.split_at(64);
        let train_refs: Vec<&Sample> = train.iter().collect();
        let es_refs: Vec<&Sample> = es.iter().collect();
        let config = TrainConfig {
            max_epochs: 60,
            ..TrainConfig::default()
        };
        train_network(&train_refs, &es_refs, &config, &mut rng)
    }

    #[test]
    fn average_is_within_member_range() {
        let ensemble = Ensemble::new(vec![trained(1), trained(2), trained(3)]);
        let x = [0.4];
        let preds = ensemble.member_predictions(&x);
        let min = preds.iter().copied().fold(f64::INFINITY, f64::min);
        let max = preds.iter().copied().fold(f64::NEG_INFINITY, f64::max);
        let avg = ensemble.predict(&x);
        assert!(avg >= min && avg <= max);
    }

    #[test]
    fn disagreement_is_zero_for_identical_members() {
        let m = trained(4);
        let ensemble = Ensemble::new(vec![m.clone(), m.clone(), m]);
        assert!(ensemble.disagreement(&[0.3]) < 1e-12);
    }

    #[test]
    fn disagreement_positive_for_distinct_members() {
        let ensemble = Ensemble::new(vec![trained(5), trained(6)]);
        assert!(ensemble.disagreement(&[0.9]) > 0.0);
    }

    #[test]
    #[should_panic(expected = "at least one model")]
    fn empty_ensemble_panics() {
        Ensemble::new(Vec::new());
    }

    #[test]
    fn json_round_trip_preserves_predictions() {
        let ensemble = Ensemble::new(vec![trained(7), trained(8), trained(9)]);
        let json = ensemble.to_json();
        let restored = Ensemble::from_json(&json).unwrap();
        for x in [0.1, 0.5, 0.9] {
            // Shortest-round-trip float formatting makes this exact.
            assert_eq!(ensemble.predict(&[x]), restored.predict(&[x]));
        }
        assert_eq!(restored.len(), 3);
        assert!(Ensemble::from_json("{\"models\":[]}").is_err());
    }

    #[test]
    fn header_carries_format_and_fingerprint() {
        let ensemble = Ensemble::new(vec![trained(10)]);
        let json = ensemble.to_json_fingerprinted(0xDEAD_BEEF_0123_4567);
        let header = ModelHeader::from_json_value(&Value::parse(&json).unwrap())
            .unwrap()
            .expect("header present");
        assert_eq!(header.format, MODEL_FORMAT_VERSION);
        assert_eq!(header.fingerprint, 0xDEAD_BEEF_0123_4567);
        let restored = Ensemble::from_json_checked(&json, 0xDEAD_BEEF_0123_4567).unwrap();
        assert_eq!(restored.predict(&[0.5]), ensemble.predict(&[0.5]));
    }

    #[test]
    fn checked_load_rejects_mismatches() {
        let ensemble = Ensemble::new(vec![trained(11)]);
        let json = ensemble.to_json_fingerprinted(1);
        // Wrong fingerprint fails loudly.
        let err = Ensemble::from_json_checked(&json, 2).unwrap_err();
        assert!(err.to_string().contains("fingerprint"), "{err}");
        // Legacy headerless JSON loads unchecked but never checked.
        let legacy = Value::parse(&json)
            .map(|v| match v {
                Value::Object(fields) => Value::Object(
                    fields
                        .into_iter()
                        .filter(|(k, _)| k == "models")
                        .collect::<Vec<_>>(),
                ),
                _ => unreachable!(),
            })
            .unwrap()
            .to_json();
        assert!(Ensemble::from_json(&legacy).is_ok());
        let err = Ensemble::from_json_checked(&legacy, 1).unwrap_err();
        assert!(err.to_string().contains("header"), "{err}");
        // A stale format version is rejected by both paths.
        let stale = json.replacen(
            &format!("\"format\":{MODEL_FORMAT_VERSION}.0"),
            "\"format\":1.0",
            1,
        );
        assert_ne!(stale, json, "format field should have been rewritten");
        assert!(Ensemble::from_json(&stale).is_err());
        assert!(Ensemble::from_json_checked(&stale, 1).is_err());
    }
}
