//! Property tests for the statistics substrate.

use archpredict_stats::describe::{quantile, Accumulator};
use archpredict_stats::plackett_burman::Design;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::{sample_without_replacement, IncrementalSampler, WeightedAlias};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Welford merge equals sequential accumulation.
    #[test]
    fn welford_merge_is_associative(
        a in prop::collection::vec(-1e3f64..1e3, 1..50),
        b in prop::collection::vec(-1e3f64..1e3, 1..50),
    ) {
        let mut merged: Accumulator = a.iter().copied().collect();
        let rhs: Accumulator = b.iter().copied().collect();
        merged.merge(&rhs);
        let sequential: Accumulator = a.iter().chain(&b).copied().collect();
        prop_assert!((merged.mean() - sequential.mean()).abs() < 1e-9);
        prop_assert!(
            (merged.population_variance() - sequential.population_variance()).abs() < 1e-6
        );
    }

    /// Quantiles are monotone in the fraction.
    #[test]
    fn quantiles_are_monotone(
        data in prop::collection::vec(-1e3f64..1e3, 2..60),
        q1 in 0.0f64..1.0,
        q2 in 0.0f64..1.0,
    ) {
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        prop_assert!(quantile(&data, lo) <= quantile(&data, hi) + 1e-12);
    }

    /// Sampling without replacement returns distinct in-range indices.
    #[test]
    fn swr_is_distinct(population in 1usize..2000, seed in 0u64..1000) {
        let mut rng = Xoshiro256::seed_from(seed);
        let k = (population / 2).max(1);
        let sample = sample_without_replacement(population, k, &mut rng);
        let unique: std::collections::HashSet<_> = sample.iter().collect();
        prop_assert_eq!(unique.len(), k);
        prop_assert!(sample.iter().all(|&i| i < population));
    }

    /// Incremental batches are mutually disjoint.
    #[test]
    fn incremental_batches_disjoint(
        population in 10usize..500,
        batches in prop::collection::vec(1usize..40, 1..6),
        seed in 0u64..1000,
    ) {
        let mut sampler = IncrementalSampler::new(population, Xoshiro256::seed_from(seed));
        let mut seen = std::collections::HashSet::new();
        for b in batches {
            for i in sampler.next_batch(b) {
                prop_assert!(seen.insert(i), "index {i} repeated");
            }
        }
    }

    /// Alias sampling never returns a zero-weight outcome.
    #[test]
    fn alias_respects_zero_weights(
        weights in prop::collection::vec(0.0f64..10.0, 1..30),
        seed in 0u64..500,
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let table = WeightedAlias::new(&weights);
        let mut rng = Xoshiro256::seed_from(seed);
        for _ in 0..200 {
            let i = table.sample(&mut rng);
            prop_assert!(weights[i] > 0.0, "drew zero-weight index {i}");
        }
    }

    /// Folded PB designs are balanced in every column.
    #[test]
    fn folded_pb_columns_balance(params in 1usize..24) {
        let d = Design::plackett_burman_foldover(params).unwrap();
        for j in 0..params {
            let sum: i32 = d.iter().map(|r| r[j] as i32).sum();
            prop_assert_eq!(sum, 0);
        }
    }
}
