//! Minimal self-contained JSON reading and writing.
//!
//! The workspace builds in environments with no access to crates.io, so
//! model persistence (trained networks, simulation caches) uses this small
//! JSON module instead of an external serialization framework. Floats are
//! written with Rust's shortest round-trip formatting (`{:?}`), so a
//! value → text → value trip reproduces every `f64` bit-for-bit; non-finite
//! floats are written as `null`.

use std::collections::HashMap;
use std::fmt;

/// A JSON document.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null` (also used to encode non-finite floats).
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Array(Vec<Value>),
    /// An object, in insertion order.
    Object(Vec<(String, Value)>),
}

/// Error produced by [`Value::parse`] or the typed accessors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    message: String,
    /// Byte offset of the error, when known.
    pub offset: Option<usize>,
}

impl JsonError {
    /// Builds an application-level error (schema mismatch, bad field), for
    /// use by callers layering typed decoding on top of [`Value`].
    pub fn custom(message: impl Into<String>) -> Self {
        Self::new(message)
    }

    fn new(message: impl Into<String>) -> Self {
        Self {
            message: message.into(),
            offset: None,
        }
    }

    fn at(message: impl Into<String>, offset: usize) -> Self {
        Self {
            message: message.into(),
            offset: Some(offset),
        }
    }
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.offset {
            Some(o) => write!(f, "{} (at byte {o})", self.message),
            None => write!(f, "{}", self.message),
        }
    }
}

impl std::error::Error for JsonError {}

impl Value {
    /// Parses a JSON document.
    pub fn parse(text: &str) -> Result<Value, JsonError> {
        let bytes = text.as_bytes();
        let mut pos = 0;
        let value = parse_value(bytes, &mut pos)?;
        skip_ws(bytes, &mut pos);
        if pos != bytes.len() {
            return Err(JsonError::at("trailing characters", pos));
        }
        Ok(value)
    }

    /// Renders the document as compact JSON.
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_value(self, &mut out);
        out
    }

    /// Builds a number, mapping non-finite floats to [`Value::Null`].
    pub fn num(x: f64) -> Value {
        if x.is_finite() {
            Value::Num(x)
        } else {
            Value::Null
        }
    }

    /// Object member lookup.
    pub fn get(&self, key: &str) -> Result<&Value, JsonError> {
        match self {
            Value::Object(members) => members
                .iter()
                .find(|(k, _)| k == key)
                .map(|(_, v)| v)
                .ok_or_else(|| JsonError::new(format!("missing key {key:?}"))),
            _ => Err(JsonError::new(format!(
                "expected object while looking up {key:?}"
            ))),
        }
    }

    /// The value as a finite `f64`.
    pub fn as_f64(&self) -> Result<f64, JsonError> {
        match self {
            Value::Num(x) => Ok(*x),
            _ => Err(JsonError::new("expected number")),
        }
    }

    /// The value as an `f64`, decoding `null` as the given non-finite
    /// stand-in (see module docs).
    pub fn as_f64_or(&self, non_finite: f64) -> Result<f64, JsonError> {
        match self {
            Value::Null => Ok(non_finite),
            other => other.as_f64(),
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Result<u64, JsonError> {
        let x = self.as_f64()?;
        if x >= 0.0 && x.fract() == 0.0 && x <= 2f64.powi(53) {
            Ok(x as u64)
        } else {
            Err(JsonError::new(format!(
                "expected unsigned integer, got {x}"
            )))
        }
    }

    /// The value as a `usize`.
    pub fn as_usize(&self) -> Result<usize, JsonError> {
        Ok(self.as_u64()? as usize)
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Result<bool, JsonError> {
        match self {
            Value::Bool(b) => Ok(*b),
            _ => Err(JsonError::new("expected boolean")),
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Result<&str, JsonError> {
        match self {
            Value::Str(s) => Ok(s),
            _ => Err(JsonError::new("expected string")),
        }
    }

    /// The value as an array slice.
    pub fn as_array(&self) -> Result<&[Value], JsonError> {
        match self {
            Value::Array(items) => Ok(items),
            _ => Err(JsonError::new("expected array")),
        }
    }

    /// The value as a `Vec<f64>` (array of finite numbers).
    pub fn as_f64_vec(&self) -> Result<Vec<f64>, JsonError> {
        self.as_array()?.iter().map(Value::as_f64).collect()
    }

    /// Builds an array of numbers.
    pub fn from_f64s(xs: &[f64]) -> Value {
        Value::Array(xs.iter().map(|&x| Value::num(x)).collect())
    }
}

/// Serializes a point-index → value map (a simulation cache).
pub fn map_to_json(map: &HashMap<usize, f64>) -> String {
    let mut entries: Vec<(&usize, &f64)> = map.iter().collect();
    entries.sort_by_key(|(k, _)| **k);
    Value::Object(
        entries
            .into_iter()
            .map(|(k, v)| (k.to_string(), Value::num(*v)))
            .collect(),
    )
    .to_json()
}

/// Parses a point-index → value map written by [`map_to_json`] (or any JSON
/// object whose keys are integers and values numbers).
pub fn map_from_json(text: &str) -> Result<HashMap<usize, f64>, JsonError> {
    let value = Value::parse(text)?;
    let Value::Object(members) = value else {
        return Err(JsonError::new("expected top-level object"));
    };
    members
        .into_iter()
        .map(|(k, v)| {
            let key: usize = k
                .parse()
                .map_err(|_| JsonError::new(format!("non-integer key {k:?}")))?;
            Ok((key, v.as_f64()?))
        })
        .collect()
}

fn write_value(value: &Value, out: &mut String) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::Num(x) => {
            if x.is_finite() {
                // `{:?}` is Rust's shortest representation that parses back
                // to the identical f64.
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(s, out),
        Value::Array(items) => {
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_value(item, out);
            }
            out.push(']');
        }
        Value::Object(members) => {
            out.push('{');
            for (i, (key, item)) in members.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                write_string(key, out);
                out.push(':');
                write_value(item, out);
            }
            out.push('}');
        }
    }
}

fn write_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, lit: &str) -> Result<(), JsonError> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(())
    } else {
        Err(JsonError::at(format!("expected {lit:?}"), *pos))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(JsonError::at("unexpected end of input", *pos)),
        Some(b'n') => expect(bytes, pos, "null").map(|()| Value::Null),
        Some(b't') => expect(bytes, pos, "true").map(|()| Value::Bool(true)),
        Some(b'f') => expect(bytes, pos, "false").map(|()| Value::Bool(false)),
        Some(b'"') => parse_string(bytes, pos).map(Value::Str),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Array(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Array(items));
                    }
                    _ => return Err(JsonError::at("expected ',' or ']'", *pos)),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut members = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Object(members));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, ":")?;
                let value = parse_value(bytes, pos)?;
                members.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Object(members));
                    }
                    _ => return Err(JsonError::at("expected ',' or '}'", *pos)),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    if bytes.get(*pos) != Some(&b'"') {
        return Err(JsonError::at("expected string", *pos));
    }
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(JsonError::at("unterminated string", *pos)),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| JsonError::at("truncated \\u escape", *pos))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| JsonError::at("bad \\u escape", *pos))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| JsonError::at("bad \\u escape", *pos))?;
                        // Surrogate pairs are not needed by our own writer;
                        // map lone surrogates to the replacement character.
                        out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        *pos += 4;
                    }
                    _ => return Err(JsonError::at("bad escape", *pos)),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance by whole UTF-8 characters.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| JsonError::at("invalid UTF-8", *pos))?;
                let c = rest.chars().next().expect("nonempty");
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'0'..=b'9' | b'-' | b'+' | b'.' | b'e' | b'E')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos])
        .map_err(|_| JsonError::at("invalid number", start))?;
    text.parse::<f64>()
        .map(Value::Num)
        .map_err(|_| JsonError::at(format!("invalid number {text:?}"), start))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_f64_bit_pattern_tested() {
        for &x in &[
            0.0,
            -0.0,
            1.5,
            std::f64::consts::PI,
            1e-300,
            -2.225_073_858_507_201e-308,
            f64::MAX,
            f64::MIN_POSITIVE,
            0.1 + 0.2,
        ] {
            let text = Value::Num(x).to_json();
            let back = Value::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), x.to_bits(), "{x} via {text}");
        }
    }

    #[test]
    fn non_finite_floats_become_null() {
        assert_eq!(Value::num(f64::NAN), Value::Null);
        assert_eq!(Value::Num(f64::INFINITY).to_json(), "null");
        let v = Value::parse("null").unwrap();
        assert!(v.as_f64_or(f64::INFINITY).unwrap().is_infinite());
    }

    #[test]
    fn parses_nested_structures() {
        let text = r#"{"a": [1, 2.5, {"b": "x\ny"}], "c": true, "d": null}"#;
        let v = Value::parse(text).unwrap();
        assert_eq!(v.get("c").unwrap(), &Value::Bool(true));
        let a = v.get("a").unwrap().as_array().unwrap();
        assert_eq!(a[1].as_f64().unwrap(), 2.5);
        assert_eq!(a[2].get("b").unwrap().as_str().unwrap(), "x\ny");
        // Round trip.
        let again = Value::parse(&v.to_json()).unwrap();
        assert_eq!(v, again);
    }

    #[test]
    fn rejects_malformed_documents() {
        for text in ["", "{", "[1,", "{\"a\" 1}", "tru", "1.2.3", "[1] tail"] {
            assert!(Value::parse(text).is_err(), "{text:?} should fail");
        }
    }

    #[test]
    fn string_escapes_round_trip() {
        let s = "quote \" backslash \\ newline \n tab \t control \u{1}";
        let text = Value::Str(s.to_string()).to_json();
        assert_eq!(Value::parse(&text).unwrap().as_str().unwrap(), s);
    }

    #[test]
    fn cache_map_round_trips() {
        let mut map = HashMap::new();
        map.insert(17usize, 1.25);
        map.insert(3usize, 0.1 + 0.2);
        map.insert(23_039usize, 0.875);
        let text = map_to_json(&map);
        let back = map_from_json(&text).unwrap();
        assert_eq!(back, map);
        // Keys are sorted for stable artifacts.
        assert!(text.find("\"3\"").unwrap() < text.find("\"17\"").unwrap());
    }

    #[test]
    fn map_from_json_rejects_bad_keys() {
        assert!(map_from_json("{\"x\": 1}").is_err());
        assert!(map_from_json("[1]").is_err());
    }
}
