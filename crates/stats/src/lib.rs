//! Statistical substrate for the `archpredict` workspace.
//!
//! This crate collects the deterministic, dependency-free numerical building
//! blocks that every other crate in the workspace relies on:
//!
//! * [`rng`] — fast, seedable, portable pseudo-random number generators
//!   ([`rng::SplitMix64`], [`rng::Xoshiro256`]). Every stochastic component in
//!   the workspace (workload generation, design-space sampling, neural-network
//!   initialization) draws from these so that experiments are bit-reproducible
//!   across runs and platforms.
//! * [`describe`] — online (Welford) accumulators and summaries for mean,
//!   variance, standard deviation and extrema.
//! * [`sampling`] — shuffling and sampling without replacement, including the
//!   incremental batch sampler that backs the paper's "collect 50 more
//!   simulations" refinement loop.
//! * [`kmeans`] — k-means clustering with k-means++ seeding and BIC model
//!   selection, used by the SimPoint reimplementation.
//! * [`plackett_burman`] — Plackett–Burman fractional-factorial designs with
//!   foldover, used to rank design-parameter significance (Yi et al.,
//!   HPCA 2003; paper §4).
//! * [`linear`] — ordinary least-squares linear regression, the ablation
//!   baseline against the paper's neural-network surrogate.
//! * [`fastmath`] — deterministic, autovectorizable elementary functions
//!   (currently `exp`), used by the neural-network kernels so hot loops
//!   containing the sigmoid still vectorize.
//! * [`hash`] — FNV-1a content hashing, used by the model registry for
//!   artifact addressing and design-space fingerprints.
//!
//! # Example
//!
//! ```
//! use archpredict_stats::rng::Xoshiro256;
//! use archpredict_stats::describe::Accumulator;
//!
//! let mut rng = Xoshiro256::seed_from(42);
//! let mut acc = Accumulator::new();
//! for _ in 0..10_000 {
//!     acc.add(rng.next_f64());
//! }
//! assert!((acc.mean() - 0.5).abs() < 0.02);
//! ```

pub mod describe;
pub mod fastmath;
pub mod hash;
pub mod json;
pub mod kmeans;
pub mod linear;
pub mod plackett_burman;
pub mod rng;
pub mod sampling;

pub use describe::{Accumulator, Summary};
pub use rng::{SplitMix64, Xoshiro256};
