//! Plackett–Burman fractional-factorial designs with foldover.
//!
//! Yi, Lilja & Hawkins (HPCA 2003) use Plackett–Burman designs to rank the
//! significance of architectural parameters before committing simulation
//! budget to a sensitivity study; the paper (§4) validates its choice of
//! varied parameters the same way. A PB design with `n` runs estimates the
//! main effect of up to `n - 1` two-level parameters; *foldover* (appending
//! the sign-flipped matrix) removes confounding of main effects with
//! two-factor interactions.

/// Generator first-rows for standard Plackett–Burman designs
/// (Plackett & Burman, 1946). `+` is `+1`, `-` is `-1`.
const GENERATORS: &[(usize, &str)] = &[
    (8, "+++-+--"),
    (12, "++-+++---+-"),
    (16, "++++-+-++--+---"),
    (20, "++--++++-+-+----++-"),
    (24, "+++++-+-++--++--+-+----"),
];

/// A two-level screening design: rows are runs, columns are parameters,
/// entries are `+1` (high level) or `-1` (low level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Design {
    rows: Vec<Vec<i8>>,
    columns: usize,
}

impl Design {
    /// Builds a Plackett–Burman design with at least `parameters` columns,
    /// using the smallest standard generator that fits.
    ///
    /// # Errors
    ///
    /// Returns [`DesignError::TooManyParameters`] when no built-in generator
    /// supports that many parameters (the largest supports 23).
    pub fn plackett_burman(parameters: usize) -> Result<Self, DesignError> {
        if parameters == 0 {
            return Err(DesignError::NoParameters);
        }
        let (n, gen) = GENERATORS
            .iter()
            .find(|(n, _)| *n > parameters)
            .ok_or(DesignError::TooManyParameters(parameters))?;
        let first: Vec<i8> = gen
            .bytes()
            .map(|b| if b == b'+' { 1 } else { -1 })
            .collect();
        debug_assert_eq!(first.len(), n - 1);
        let mut rows = Vec::with_capacity(*n);
        // Cyclic construction: each subsequent row is the previous row
        // rotated right by one; the final row is all -1.
        let mut row = first;
        for _ in 0..n - 1 {
            rows.push(row[..parameters].to_vec());
            row.rotate_right(1);
        }
        rows.push(vec![-1; parameters]);
        Ok(Self {
            rows,
            columns: parameters,
        })
    }

    /// Builds a Plackett–Burman design *with foldover*: the base design
    /// followed by its sign-flipped mirror, doubling the run count and
    /// de-confounding main effects from two-factor interactions (as used by
    /// Yi et al. and in the paper's §4).
    ///
    /// # Errors
    ///
    /// Same as [`Design::plackett_burman`].
    pub fn plackett_burman_foldover(parameters: usize) -> Result<Self, DesignError> {
        let base = Self::plackett_burman(parameters)?;
        let mut rows = base.rows.clone();
        rows.extend(
            base.rows
                .iter()
                .map(|r| r.iter().map(|&x| -x).collect::<Vec<i8>>()),
        );
        Ok(Self {
            rows,
            columns: parameters,
        })
    }

    /// Number of runs (rows).
    pub fn runs(&self) -> usize {
        self.rows.len()
    }

    /// Number of parameters (columns).
    pub fn parameters(&self) -> usize {
        self.columns
    }

    /// The level (`+1`/`-1`) of `parameter` in `run`.
    ///
    /// # Panics
    ///
    /// Panics if either index is out of range.
    pub fn level(&self, run: usize, parameter: usize) -> i8 {
        self.rows[run][parameter]
    }

    /// Iterates over runs as `&[i8]` level rows.
    pub fn iter(&self) -> impl Iterator<Item = &[i8]> {
        self.rows.iter().map(|r| r.as_slice())
    }

    /// Computes the main effect of each parameter from per-run responses:
    /// `effect_j = mean(response | level +1) - mean(response | level -1)`.
    ///
    /// # Panics
    ///
    /// Panics if `responses.len() != self.runs()`.
    pub fn effects(&self, responses: &[f64]) -> Vec<f64> {
        assert_eq!(responses.len(), self.runs(), "one response per run");
        let half = self.runs() as f64 / 2.0;
        (0..self.columns)
            .map(|j| {
                let mut hi = 0.0;
                let mut lo = 0.0;
                for (row, &y) in self.rows.iter().zip(responses) {
                    if row[j] > 0 {
                        hi += y;
                    } else {
                        lo += y;
                    }
                }
                (hi - lo) / half
            })
            .collect()
    }

    /// Ranks parameters by decreasing absolute main effect.
    ///
    /// Returns `(parameter_index, |effect|)` pairs, most significant first —
    /// the ranking Yi et al. use to decide which parameters deserve a full
    /// sensitivity study.
    ///
    /// # Panics
    ///
    /// Panics if `responses.len() != self.runs()`.
    pub fn rank(&self, responses: &[f64]) -> Vec<(usize, f64)> {
        let mut ranked: Vec<(usize, f64)> = self
            .effects(responses)
            .into_iter()
            .map(f64::abs)
            .enumerate()
            .collect();
        ranked.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite effects"));
        ranked
    }
}

/// Errors from design construction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DesignError {
    /// A design needs at least one parameter.
    NoParameters,
    /// No built-in generator supports this many parameters.
    TooManyParameters(usize),
}

impl std::fmt::Display for DesignError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DesignError::NoParameters => write!(f, "design requires at least one parameter"),
            DesignError::TooManyParameters(n) => {
                write!(
                    f,
                    "no Plackett-Burman generator supports {n} parameters (max 23)"
                )
            }
        }
    }
}

impl std::error::Error for DesignError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn columns_are_orthogonal_and_balanced() {
        for params in [3, 7, 11, 15, 19, 23] {
            let d = Design::plackett_burman(params).unwrap();
            let n = d.runs() as i32;
            for j in 0..params {
                // Balance: each column has equally many high and low levels.
                let sum: i32 = d.iter().map(|r| r[j] as i32).sum();
                assert_eq!(sum, 0, "column {j} of {params}-param design");
                // Orthogonality: distinct columns of a PB (Hadamard-derived)
                // design have zero dot product.
                for k in 0..j {
                    let dot: i32 = d.iter().map(|r| (r[j] * r[k]) as i32).sum();
                    assert_eq!(dot, 0, "columns {j},{k}, n={n}");
                }
            }
        }
    }

    #[test]
    fn foldover_doubles_runs_and_balances_columns() {
        let d = Design::plackett_burman_foldover(9).unwrap();
        assert_eq!(d.runs(), 24); // 12-run base, folded
        for j in 0..9 {
            let sum: i32 = d.iter().map(|r| r[j] as i32).sum();
            assert_eq!(sum, 0, "folded column {j} must be perfectly balanced");
        }
    }

    #[test]
    fn effects_recover_linear_model() {
        // response = 3*x0 - 2*x2 + noiseless constant
        let d = Design::plackett_burman_foldover(5).unwrap();
        let responses: Vec<f64> = d
            .iter()
            .map(|r| 10.0 + 3.0 * r[0] as f64 - 2.0 * r[2] as f64)
            .collect();
        let effects = d.effects(&responses);
        assert!((effects[0] - 6.0).abs() < 1e-9, "{:?}", effects);
        assert!((effects[2] + 4.0).abs() < 1e-9);
        for j in [1, 3, 4] {
            assert!(effects[j].abs() < 1e-9, "parameter {j} should be null");
        }
        let rank = d.rank(&responses);
        assert_eq!(rank[0].0, 0);
        assert_eq!(rank[1].0, 2);
    }

    #[test]
    fn foldover_cancels_even_interactions() {
        // response depends only on x0*x1; folded design must show zero main effects.
        let d = Design::plackett_burman_foldover(7).unwrap();
        let responses: Vec<f64> = d.iter().map(|r| (r[0] * r[1]) as f64).collect();
        for (j, e) in d.effects(&responses).into_iter().enumerate() {
            assert!(e.abs() < 1e-9, "main effect {j} contaminated: {e}");
        }
    }

    #[test]
    fn smallest_sufficient_generator_is_chosen() {
        assert_eq!(Design::plackett_burman(7).unwrap().runs(), 8);
        assert_eq!(Design::plackett_burman(8).unwrap().runs(), 12);
        assert_eq!(Design::plackett_burman(12).unwrap().runs(), 16);
        assert_eq!(Design::plackett_burman(23).unwrap().runs(), 24);
    }

    #[test]
    fn errors_are_reported() {
        assert_eq!(
            Design::plackett_burman(0).unwrap_err(),
            DesignError::NoParameters
        );
        assert_eq!(
            Design::plackett_burman(24).unwrap_err(),
            DesignError::TooManyParameters(24)
        );
    }
}
