//! Ordinary least-squares linear regression.
//!
//! The paper argues (§3) that ANNs beat simpler regressors on architectural
//! design spaces because the response surface is highly non-linear. This
//! module provides that simpler regressor so the claim can be tested: the
//! `ablation_linear` benchmark fits both models on identical samples and
//! compares their percentage error.

/// A fitted linear model `y = intercept + coefficients . x`.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearModel {
    intercept: f64,
    coefficients: Vec<f64>,
}

impl LinearModel {
    /// Fits ordinary least squares with an intercept term via the normal
    /// equations, solved by Gaussian elimination with partial pivoting and
    /// a small ridge term for numerical robustness on collinear inputs.
    ///
    /// # Errors
    ///
    /// Returns [`FitError`] when inputs are empty, ragged, or fewer rows than
    /// unknowns make the system unsolvable.
    pub fn fit(inputs: &[Vec<f64>], targets: &[f64]) -> Result<Self, FitError> {
        if inputs.is_empty() || targets.is_empty() {
            return Err(FitError::Empty);
        }
        if inputs.len() != targets.len() {
            return Err(FitError::LengthMismatch {
                inputs: inputs.len(),
                targets: targets.len(),
            });
        }
        let dim = inputs[0].len();
        if inputs.iter().any(|r| r.len() != dim) {
            return Err(FitError::Ragged);
        }
        let unknowns = dim + 1; // + intercept

        // Normal equations: (X^T X) beta = X^T y, with X's first column = 1.
        let mut xtx = vec![vec![0.0; unknowns]; unknowns];
        let mut xty = vec![0.0; unknowns];
        for (row, &y) in inputs.iter().zip(targets) {
            let mut aug = Vec::with_capacity(unknowns);
            aug.push(1.0);
            aug.extend_from_slice(row);
            for i in 0..unknowns {
                xty[i] += aug[i] * y;
                for j in 0..unknowns {
                    xtx[i][j] += aug[i] * aug[j];
                }
            }
        }
        // Tiny ridge keeps the system solvable under perfect collinearity.
        for (i, row) in xtx.iter_mut().enumerate() {
            row[i] += 1e-9;
        }

        let beta = solve(xtx, xty).ok_or(FitError::Singular)?;
        Ok(Self {
            intercept: beta[0],
            coefficients: beta[1..].to_vec(),
        })
    }

    /// Predicts the target for one input row.
    ///
    /// # Panics
    ///
    /// Panics if `input` has a different dimensionality than the training data.
    pub fn predict(&self, input: &[f64]) -> f64 {
        assert_eq!(
            input.len(),
            self.coefficients.len(),
            "input dimensionality mismatch"
        );
        self.intercept
            + self
                .coefficients
                .iter()
                .zip(input)
                .map(|(c, x)| c * x)
                .sum::<f64>()
    }

    /// The fitted intercept.
    pub fn intercept(&self) -> f64 {
        self.intercept
    }

    /// The fitted coefficients (one per input feature).
    pub fn coefficients(&self) -> &[f64] {
        &self.coefficients
    }
}

/// Gaussian elimination with partial pivoting; `None` if singular.
#[allow(clippy::needless_range_loop)]
fn solve(mut a: Vec<Vec<f64>>, mut b: Vec<f64>) -> Option<Vec<f64>> {
    let n = b.len();
    for col in 0..n {
        // Pivot.
        let pivot = (col..n).max_by(|&i, &j| {
            a[i][col]
                .abs()
                .partial_cmp(&a[j][col].abs())
                .expect("finite matrix")
        })?;
        if a[pivot][col].abs() < 1e-12 {
            return None;
        }
        a.swap(col, pivot);
        b.swap(col, pivot);
        // Eliminate below.
        for row in col + 1..n {
            let factor = a[row][col] / a[col][col];
            if factor == 0.0 {
                continue;
            }
            for k in col..n {
                a[row][k] -= factor * a[col][k];
            }
            b[row] -= factor * b[col];
        }
    }
    // Back-substitute.
    let mut x = vec![0.0; n];
    for row in (0..n).rev() {
        let mut sum = b[row];
        for k in row + 1..n {
            sum -= a[row][k] * x[k];
        }
        x[row] = sum / a[row][row];
    }
    Some(x)
}

/// Errors from [`LinearModel::fit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FitError {
    /// No training rows were supplied.
    Empty,
    /// Inputs and targets have different lengths.
    LengthMismatch {
        /// Number of input rows.
        inputs: usize,
        /// Number of target values.
        targets: usize,
    },
    /// Input rows have inconsistent dimensionality.
    Ragged,
    /// The normal equations were singular.
    Singular,
}

impl std::fmt::Display for FitError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            FitError::Empty => write!(f, "no training data"),
            FitError::LengthMismatch { inputs, targets } => {
                write!(f, "{inputs} input rows but {targets} targets")
            }
            FitError::Ragged => write!(f, "input rows have inconsistent dimensionality"),
            FitError::Singular => write!(f, "normal equations are singular"),
        }
    }
}

impl std::error::Error for FitError {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Xoshiro256;

    #[test]
    fn recovers_exact_linear_function() {
        let mut rng = Xoshiro256::seed_from(20);
        let inputs: Vec<Vec<f64>> = (0..50)
            .map(|_| vec![rng.next_f64(), rng.next_f64(), rng.next_f64()])
            .collect();
        let targets: Vec<f64> = inputs
            .iter()
            .map(|x| 2.0 + 3.0 * x[0] - 1.5 * x[1] + 0.25 * x[2])
            .collect();
        let m = LinearModel::fit(&inputs, &targets).unwrap();
        assert!((m.intercept() - 2.0).abs() < 1e-6);
        assert!((m.coefficients()[0] - 3.0).abs() < 1e-6);
        assert!((m.coefficients()[1] + 1.5).abs() < 1e-6);
        assert!((m.coefficients()[2] - 0.25).abs() < 1e-6);
        for (x, &y) in inputs.iter().zip(&targets) {
            assert!((m.predict(x) - y).abs() < 1e-6);
        }
    }

    #[test]
    fn averages_noise() {
        let mut rng = Xoshiro256::seed_from(21);
        let inputs: Vec<Vec<f64>> = (0..2000).map(|_| vec![rng.next_f64()]).collect();
        let targets: Vec<f64> = inputs
            .iter()
            .map(|x| 1.0 + 4.0 * x[0] + 0.1 * rng.next_gaussian())
            .collect();
        let m = LinearModel::fit(&inputs, &targets).unwrap();
        assert!((m.coefficients()[0] - 4.0).abs() < 0.05);
    }

    #[test]
    fn error_cases() {
        assert_eq!(LinearModel::fit(&[], &[]).unwrap_err(), FitError::Empty);
        assert_eq!(
            LinearModel::fit(&[vec![1.0]], &[1.0, 2.0]).unwrap_err(),
            FitError::LengthMismatch {
                inputs: 1,
                targets: 2
            }
        );
        assert_eq!(
            LinearModel::fit(&[vec![1.0], vec![1.0, 2.0]], &[1.0, 2.0]).unwrap_err(),
            FitError::Ragged
        );
    }

    #[test]
    fn collinear_inputs_survive_via_ridge() {
        // x1 == x0 exactly: ridge keeps the system solvable.
        let inputs: Vec<Vec<f64>> = (0..20)
            .map(|i| {
                let v = i as f64 / 20.0;
                vec![v, v]
            })
            .collect();
        let targets: Vec<f64> = inputs.iter().map(|x| 5.0 * x[0]).collect();
        let m = LinearModel::fit(&inputs, &targets).unwrap();
        // Predictions stay correct even though individual coefficients are not unique.
        for (x, &y) in inputs.iter().zip(&targets) {
            assert!((m.predict(x) - y).abs() < 1e-3);
        }
    }
}
