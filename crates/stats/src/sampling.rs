//! Shuffling and sampling without replacement.
//!
//! The paper's refinement loop repeatedly draws *additional* random design
//! points that have not been simulated yet ("repeat steps 2–6 with N
//! additional simulations", §3.3). [`IncrementalSampler`] implements exactly
//! that: a stream of indices drawn uniformly without replacement from
//! `0..population`, delivered in arbitrary-size batches.

use crate::rng::Xoshiro256;
use std::collections::HashMap;

/// Fisher–Yates shuffles `items` in place.
///
/// # Example
///
/// ```
/// use archpredict_stats::rng::Xoshiro256;
/// use archpredict_stats::sampling::shuffle;
/// let mut rng = Xoshiro256::seed_from(3);
/// let mut v = vec![1, 2, 3, 4, 5];
/// shuffle(&mut v, &mut rng);
/// v.sort();
/// assert_eq!(v, [1, 2, 3, 4, 5]);
/// ```
pub fn shuffle<T>(items: &mut [T], rng: &mut Xoshiro256) {
    for i in (1..items.len()).rev() {
        let j = rng.index(i + 1);
        items.swap(i, j);
    }
}

/// Partial Fisher–Yates: after this call, the first `k` elements of `items`
/// are a uniform random sample (in random order) of the whole slice. Costs
/// `k` swaps regardless of the slice length, so it is the cheap way to draw
/// a small random subset of a large materialized set.
///
/// # Panics
///
/// Panics if `k > items.len()`.
pub fn partial_shuffle<T>(items: &mut [T], k: usize, rng: &mut Xoshiro256) {
    assert!(k <= items.len(), "cannot shuffle {k} of {}", items.len());
    for i in 0..k {
        let j = i + rng.index(items.len() - i);
        items.swap(i, j);
    }
}

/// Draws `k` distinct indices uniformly from `0..population`.
///
/// Uses a sparse Fisher–Yates (hash-map backed) so it is efficient even when
/// `population` is large (e.g. a 23,040-point design space) and `k` is small.
/// The returned indices are in random order.
///
/// # Panics
///
/// Panics if `k > population`.
pub fn sample_without_replacement(population: usize, k: usize, rng: &mut Xoshiro256) -> Vec<usize> {
    assert!(k <= population, "cannot sample {k} from {population}");
    let mut swapped: HashMap<usize, usize> = HashMap::with_capacity(k * 2);
    let mut out = Vec::with_capacity(k);
    for i in 0..k {
        let j = i + rng.index(population - i);
        let vi = *swapped.get(&i).unwrap_or(&i);
        let vj = *swapped.get(&j).unwrap_or(&j);
        out.push(vj);
        swapped.insert(j, vi);
    }
    out
}

/// A stream of indices drawn without replacement from `0..population`,
/// delivered incrementally.
///
/// This backs the paper's incremental data collection: each call to
/// [`IncrementalSampler::next_batch`] returns design-point indices that have
/// never been returned before, so the training set can grow by (say) 50
/// simulations per round until the cross-validation error estimate is
/// acceptable.
///
/// # Example
///
/// ```
/// use archpredict_stats::rng::Xoshiro256;
/// use archpredict_stats::sampling::IncrementalSampler;
/// let mut s = IncrementalSampler::new(1000, Xoshiro256::seed_from(1));
/// let a = s.next_batch(50);
/// let b = s.next_batch(50);
/// assert_eq!(s.drawn(), 100);
/// assert!(a.iter().all(|i| !b.contains(i)));
/// ```
#[derive(Debug, Clone)]
pub struct IncrementalSampler {
    population: usize,
    swapped: HashMap<usize, usize>,
    drawn: usize,
    rng: Xoshiro256,
}

/// A portable snapshot of an [`IncrementalSampler`], for checkpointing.
///
/// `swapped` pairs are sorted by key so the snapshot is deterministic
/// regardless of hash-map iteration order; a sampler restored with
/// [`IncrementalSampler::from_state`] continues the exact same draw stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SamplerState {
    /// Population size the sampler was created over.
    pub population: usize,
    /// Number of indices drawn so far.
    pub drawn: usize,
    /// Sparse Fisher–Yates swap table as sorted `(slot, value)` pairs.
    pub swapped: Vec<(usize, usize)>,
    /// Raw RNG state.
    pub rng: [u64; 4],
}

impl IncrementalSampler {
    /// Creates a sampler over `0..population`.
    pub fn new(population: usize, rng: Xoshiro256) -> Self {
        Self {
            population,
            swapped: HashMap::new(),
            drawn: 0,
            rng,
        }
    }

    /// Total population size.
    pub fn population(&self) -> usize {
        self.population
    }

    /// Number of indices drawn so far.
    pub fn drawn(&self) -> usize {
        self.drawn
    }

    /// Number of indices still available.
    pub fn remaining(&self) -> usize {
        self.population - self.drawn
    }

    /// Draws up to `k` fresh indices (fewer if the population is nearly
    /// exhausted). Never repeats an index across the lifetime of the sampler.
    pub fn next_batch(&mut self, k: usize) -> Vec<usize> {
        let k = k.min(self.remaining());
        let mut out = Vec::with_capacity(k);
        for _ in 0..k {
            let i = self.drawn;
            let j = i + self.rng.index(self.population - i);
            let vi = *self.swapped.get(&i).unwrap_or(&i);
            let vj = *self.swapped.get(&j).unwrap_or(&j);
            out.push(vj);
            self.swapped.insert(j, vi);
            self.drawn += 1;
        }
        out
    }

    /// Captures a deterministic snapshot of the sampler for checkpointing.
    pub fn state(&self) -> SamplerState {
        let mut swapped: Vec<(usize, usize)> = self.swapped.iter().map(|(&k, &v)| (k, v)).collect();
        swapped.sort_unstable();
        SamplerState {
            population: self.population,
            drawn: self.drawn,
            swapped,
            rng: self.rng.state(),
        }
    }

    /// Rebuilds a sampler from a snapshot captured by
    /// [`IncrementalSampler::state`]; it continues the same draw stream.
    pub fn from_state(state: &SamplerState) -> Self {
        Self {
            population: state.population,
            swapped: state.swapped.iter().copied().collect(),
            drawn: state.drawn,
            rng: Xoshiro256::from_state(state.rng),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn partial_shuffle_prefix_is_a_distinct_sample() {
        let mut rng = Xoshiro256::seed_from(11);
        let mut items: Vec<usize> = (0..500).collect();
        partial_shuffle(&mut items, 40, &mut rng);
        let prefix: HashSet<usize> = items[..40].iter().copied().collect();
        assert_eq!(prefix.len(), 40);
        // Still a permutation of the original slice.
        let mut sorted = items.clone();
        sorted.sort();
        assert_eq!(sorted, (0..500).collect::<Vec<_>>());
        // Deterministic given the seed.
        let mut rng2 = Xoshiro256::seed_from(11);
        let mut items2: Vec<usize> = (0..500).collect();
        partial_shuffle(&mut items2, 40, &mut rng2);
        assert_eq!(items[..40], items2[..40]);
    }

    #[test]
    fn sample_without_replacement_is_distinct_and_in_range() {
        let mut rng = Xoshiro256::seed_from(4);
        let s = sample_without_replacement(100, 40, &mut rng);
        assert_eq!(s.len(), 40);
        let set: HashSet<_> = s.iter().copied().collect();
        assert_eq!(set.len(), 40);
        assert!(s.iter().all(|&i| i < 100));
    }

    #[test]
    fn sample_full_population_is_permutation() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut s = sample_without_replacement(64, 64, &mut rng);
        s.sort();
        assert_eq!(s, (0..64).collect::<Vec<_>>());
    }

    #[test]
    fn sampling_is_roughly_uniform() {
        // Each of 10 items should appear in a 3-element sample ~30% of the time.
        let mut rng = Xoshiro256::seed_from(6);
        let mut counts = [0usize; 10];
        let trials = 30_000;
        for _ in 0..trials {
            for i in sample_without_replacement(10, 3, &mut rng) {
                counts[i] += 1;
            }
        }
        for &c in &counts {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.3).abs() < 0.02, "fraction {frac}");
        }
    }

    #[test]
    fn incremental_sampler_never_repeats_and_exhausts() {
        let mut s = IncrementalSampler::new(500, Xoshiro256::seed_from(7));
        let mut seen = HashSet::new();
        loop {
            let batch = s.next_batch(64);
            if batch.is_empty() {
                break;
            }
            for i in batch {
                assert!(seen.insert(i), "repeated index {i}");
                assert!(i < 500);
            }
        }
        assert_eq!(seen.len(), 500);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn sampler_state_round_trip_continues_the_stream() {
        let mut s = IncrementalSampler::new(500, Xoshiro256::seed_from(19));
        let first = s.next_batch(37);
        let state = s.state();
        let mut restored = IncrementalSampler::from_state(&state);
        // Restored and original continue identically and never repeat.
        let a = s.next_batch(50);
        let b = restored.next_batch(50);
        assert_eq!(a, b);
        assert!(a.iter().all(|i| !first.contains(i)));
        assert_eq!(restored.drawn(), 87);
        // State snapshots are deterministic (sorted pairs).
        assert_eq!(state, IncrementalSampler::from_state(&state).state());
    }

    #[test]
    fn incremental_sampler_matches_one_shot_distributionally() {
        // First batch of k from the incremental sampler should be uniform:
        // check per-item inclusion frequency.
        let trials = 20_000;
        let mut counts = [0usize; 20];
        for t in 0..trials {
            let mut s = IncrementalSampler::new(20, Xoshiro256::seed_from(t as u64));
            for i in s.next_batch(5) {
                counts[i] += 1;
            }
        }
        for &c in &counts {
            let frac = c as f64 / trials as f64;
            assert!((frac - 0.25).abs() < 0.03, "fraction {frac}");
        }
    }

    #[test]
    #[should_panic(expected = "cannot sample")]
    fn oversampling_panics() {
        let mut rng = Xoshiro256::seed_from(1);
        sample_without_replacement(3, 4, &mut rng);
    }
}

/// Walker alias table for O(1) sampling from a fixed discrete distribution.
///
/// The paper trains for *percentage* error by presenting each training
/// point at a frequency proportional to the inverse of its target value
/// (§3.3); with thousands of presentations per epoch, sampling must be
/// constant-time.
///
/// # Example
///
/// ```
/// use archpredict_stats::rng::Xoshiro256;
/// use archpredict_stats::sampling::WeightedAlias;
/// let table = WeightedAlias::new(&[1.0, 0.0, 3.0]);
/// let mut rng = Xoshiro256::seed_from(1);
/// let i = table.sample(&mut rng);
/// assert!(i == 0 || i == 2);
/// ```
#[derive(Debug, Clone)]
pub struct WeightedAlias {
    prob: Vec<f64>,
    alias: Vec<usize>,
}

impl WeightedAlias {
    /// Builds the table from (unnormalized) non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to zero.
    pub fn new(weights: &[f64]) -> Self {
        assert!(!weights.is_empty(), "empty weights");
        assert!(
            weights.iter().all(|&w| w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "weights must sum to a positive value");
        let n = weights.len();
        let mut prob: Vec<f64> = weights.iter().map(|w| w * n as f64 / total).collect();
        let mut alias = vec![0usize; n];
        let mut small: Vec<usize> = (0..n).filter(|&i| prob[i] < 1.0).collect();
        let mut large: Vec<usize> = (0..n).filter(|&i| prob[i] >= 1.0).collect();
        while let (Some(s), Some(l)) = (small.pop(), large.pop()) {
            alias[s] = l;
            prob[l] = prob[l] + prob[s] - 1.0;
            if prob[l] < 1.0 {
                small.push(l);
            } else {
                large.push(l);
            }
        }
        // Numerical slack: leftovers are certain.
        for i in small.into_iter().chain(large) {
            prob[i] = 1.0;
        }
        Self { prob, alias }
    }

    /// Number of outcomes.
    pub fn len(&self) -> usize {
        self.prob.len()
    }

    /// Whether the table is empty (never true for a constructed table).
    pub fn is_empty(&self) -> bool {
        self.prob.is_empty()
    }

    /// Draws one index according to the weights.
    #[inline]
    pub fn sample(&self, rng: &mut Xoshiro256) -> usize {
        let i = rng.index(self.prob.len());
        if rng.next_f64() < self.prob[i] {
            i
        } else {
            self.alias[i]
        }
    }
}

#[cfg(test)]
mod alias_tests {
    use super::*;

    #[test]
    fn matches_weights_statistically() {
        let weights = [1.0, 2.0, 3.0, 4.0];
        let table = WeightedAlias::new(&weights);
        let mut rng = Xoshiro256::seed_from(31);
        let mut counts = [0usize; 4];
        let n = 100_000;
        for _ in 0..n {
            counts[table.sample(&mut rng)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let expect = weights[i] / 10.0;
            let got = c as f64 / n as f64;
            assert!((got - expect).abs() < 0.01, "bucket {i}: {got} vs {expect}");
        }
    }

    #[test]
    fn zero_weight_entries_never_drawn() {
        let table = WeightedAlias::new(&[0.0, 5.0, 0.0]);
        let mut rng = Xoshiro256::seed_from(32);
        for _ in 0..10_000 {
            assert_eq!(table.sample(&mut rng), 1);
        }
    }

    #[test]
    fn single_outcome() {
        let table = WeightedAlias::new(&[7.0]);
        let mut rng = Xoshiro256::seed_from(33);
        assert_eq!(table.sample(&mut rng), 0);
        assert_eq!(table.len(), 1);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_weights_panic() {
        WeightedAlias::new(&[0.0, 0.0]);
    }
}
