//! Deterministic, dependency-free content hashing (FNV-1a, 64-bit).
//!
//! The model registry keys artifacts by the hash of their bytes and
//! fingerprints design spaces by folding their structure through the same
//! function, so the choice here is part of the on-disk format: FNV-1a is
//! simple enough to re-derive from the spec, stable across platforms, and
//! plenty for content addressing (collisions are detected downstream by
//! comparing the stored bytes' hash on load, not assumed away).

/// FNV-1a 64-bit offset basis.
pub const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a 64-bit prime.
pub const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// FNV-1a hash of `bytes`.
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    fnv1a_64_extend(FNV_OFFSET, bytes)
}

/// Folds `bytes` into an in-progress FNV-1a state — the building block
/// for hashing structured data as a sequence of byte runs without
/// materializing one buffer.
pub fn fnv1a_64_extend(state: u64, bytes: &[u8]) -> u64 {
    let mut h = state;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(FNV_PRIME);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_reference_vectors() {
        // Published FNV-1a 64 test vectors.
        assert_eq!(fnv1a_64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a_64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a_64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn extend_composes_with_one_shot() {
        let whole = fnv1a_64(b"hello world");
        let split = fnv1a_64_extend(fnv1a_64(b"hello "), b"world");
        assert_eq!(whole, split);
    }

    #[test]
    fn distinct_inputs_hash_differently() {
        assert_ne!(fnv1a_64(b"model-a"), fnv1a_64(b"model-b"));
    }
}
