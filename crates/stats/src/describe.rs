//! Online descriptive statistics.
//!
//! The central type is [`Accumulator`], a Welford-style online accumulator
//! that tracks count, mean, variance, and extrema in a single pass with good
//! numerical stability. The paper's evaluation reports the *mean* and
//! *standard deviation* of percentage error over a design space; every such
//! number in this workspace flows through an `Accumulator`.

/// Single-pass (Welford) accumulator for mean, variance, and extrema.
///
/// # Example
///
/// ```
/// use archpredict_stats::describe::Accumulator;
/// let acc: Accumulator = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0].into_iter().collect();
/// assert_eq!(acc.mean(), 5.0);
/// assert_eq!(acc.population_std_dev(), 2.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Accumulator {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Accumulator {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        Self {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    #[inline]
    pub fn add(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Merges another accumulator into this one (parallel Welford merge).
    pub fn merge(&mut self, other: &Accumulator) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = (self.n + other.n) as f64;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n;
        self.m2 += other.m2 + delta * delta * self.n as f64 * other.n as f64 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Arithmetic mean; `0.0` when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (dividing by `n`); `0.0` when fewer than one
    /// observation has been added.
    pub fn population_variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    /// Sample variance (dividing by `n - 1`); `0.0` when fewer than two
    /// observations have been added.
    pub fn sample_variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Population standard deviation.
    pub fn population_std_dev(&self) -> f64 {
        self.population_variance().sqrt()
    }

    /// Sample standard deviation.
    pub fn sample_std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `+inf` when empty.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `-inf` when empty.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Snapshot of the accumulated statistics.
    pub fn summary(&self) -> Summary {
        Summary {
            count: self.n,
            mean: self.mean(),
            std_dev: self.population_std_dev(),
            min: self.min,
            max: self.max,
        }
    }
}

impl FromIterator<f64> for Accumulator {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut acc = Accumulator::new();
        for x in iter {
            acc.add(x);
        }
        acc
    }
}

impl Extend<f64> for Accumulator {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for x in iter {
            self.add(x);
        }
    }
}

/// Immutable snapshot of an [`Accumulator`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of observations.
    pub count: u64,
    /// Arithmetic mean.
    pub mean: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum observation.
    pub min: f64,
    /// Maximum observation.
    pub max: f64,
}

/// Returns the `q`-quantile (`0.0 ..= 1.0`) of `data` using linear
/// interpolation between order statistics. `data` does not need to be sorted.
///
/// # Panics
///
/// Panics if `data` is empty or `q` is outside `[0, 1]`.
///
/// # Example
///
/// ```
/// use archpredict_stats::describe::quantile;
/// let median = quantile(&[3.0, 1.0, 2.0], 0.5);
/// assert_eq!(median, 2.0);
/// ```
pub fn quantile(data: &[f64], q: f64) -> f64 {
    assert!(!data.is_empty(), "quantile of empty data");
    assert!((0.0..=1.0).contains(&q), "quantile fraction out of range");
    let mut sorted = data.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    if lo == hi {
        sorted[lo]
    } else {
        let frac = pos - lo as f64;
        sorted[lo] * (1.0 - frac) + sorted[hi] * frac
    }
}

/// Mean absolute percentage error (in percent) between predictions and
/// true values: `mean(|pred - actual| / |actual|) * 100`.
///
/// This is the error metric the paper reports throughout its evaluation.
///
/// # Panics
///
/// Panics if the slices have different lengths or are empty.
pub fn mean_absolute_percentage_error(predicted: &[f64], actual: &[f64]) -> f64 {
    percentage_errors(predicted, actual).mean()
}

/// Accumulates the per-point absolute percentage errors (in percent).
///
/// Returns the filled [`Accumulator`], from which both the mean and the
/// standard deviation of percentage error — the two series in every figure of
/// the paper — can be read.
///
/// # Panics
///
/// Panics if the slices have different lengths, are empty, or any `actual`
/// value is zero.
pub fn percentage_errors(predicted: &[f64], actual: &[f64]) -> Accumulator {
    assert_eq!(predicted.len(), actual.len(), "length mismatch");
    assert!(!predicted.is_empty(), "empty inputs");
    let mut acc = Accumulator::new();
    for (&p, &a) in predicted.iter().zip(actual) {
        assert!(a != 0.0, "actual value is zero; percentage error undefined");
        acc.add(100.0 * (p - a).abs() / a.abs());
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulator_basic_moments() {
        let acc: Accumulator = [1.0, 2.0, 3.0, 4.0].into_iter().collect();
        assert_eq!(acc.count(), 4);
        assert_eq!(acc.mean(), 2.5);
        assert!((acc.population_variance() - 1.25).abs() < 1e-12);
        assert!((acc.sample_variance() - 5.0 / 3.0).abs() < 1e-12);
        assert_eq!(acc.min(), 1.0);
        assert_eq!(acc.max(), 4.0);
    }

    #[test]
    fn empty_accumulator_is_safe() {
        let acc = Accumulator::new();
        assert_eq!(acc.count(), 0);
        assert_eq!(acc.mean(), 0.0);
        assert_eq!(acc.population_variance(), 0.0);
        assert_eq!(acc.sample_variance(), 0.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let seq: Accumulator = xs.iter().copied().collect();
        let mut a: Accumulator = xs[..37].iter().copied().collect();
        let b: Accumulator = xs[37..].iter().copied().collect();
        a.merge(&b);
        assert_eq!(a.count(), seq.count());
        assert!((a.mean() - seq.mean()).abs() < 1e-10);
        assert!((a.population_variance() - seq.population_variance()).abs() < 1e-10);
        assert_eq!(a.min(), seq.min());
        assert_eq!(a.max(), seq.max());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: Accumulator = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&Accumulator::new());
        assert_eq!(a, before);
        let mut e = Accumulator::new();
        e.merge(&before);
        assert_eq!(e, before);
    }

    #[test]
    fn quantile_interpolates() {
        let data = [10.0, 20.0, 30.0, 40.0];
        assert_eq!(quantile(&data, 0.0), 10.0);
        assert_eq!(quantile(&data, 1.0), 40.0);
        assert_eq!(quantile(&data, 0.5), 25.0);
        assert!((quantile(&data, 0.25) - 17.5).abs() < 1e-12);
    }

    #[test]
    fn mape_matches_hand_computation() {
        let pred = [110.0, 90.0];
        let act = [100.0, 100.0];
        assert!((mean_absolute_percentage_error(&pred, &act) - 10.0).abs() < 1e-12);
    }

    #[test]
    fn percentage_errors_std_dev() {
        let pred = [102.0, 98.0, 100.0];
        let act = [100.0, 100.0, 100.0];
        let acc = percentage_errors(&pred, &act);
        // errors: 2, 2, 0 -> mean 4/3, pop var = (2*(2-4/3)^2 + (4/3)^2)/3
        assert!((acc.mean() - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn mape_length_mismatch_panics() {
        mean_absolute_percentage_error(&[1.0], &[1.0, 2.0]);
    }
}
