//! Deterministic, portable pseudo-random number generators.
//!
//! Two generators are provided:
//!
//! * [`SplitMix64`] — a tiny 64-bit state generator, primarily used to seed
//!   other generators and to derive independent streams from a master seed.
//! * [`Xoshiro256`] — xoshiro256++, the workhorse generator used in hot loops
//!   (trace generation, weight initialization, sampling). It is fast, has a
//!   256-bit state, and passes stringent statistical test batteries.
//!
//! Both are implemented from the public-domain reference algorithms by
//! Blackman & Vigna so that streams are reproducible across platforms and
//! independent of any external crate's version churn.

/// SplitMix64 generator (Steele, Lea & Flood).
///
/// Mainly used to expand a single `u64` seed into the larger state required
/// by [`Xoshiro256`], and to derive decorrelated child seeds for independent
/// random streams.
///
/// # Example
///
/// ```
/// use archpredict_stats::rng::SplitMix64;
/// let mut sm = SplitMix64::new(7);
/// let a = sm.next_u64();
/// let b = sm.next_u64();
/// assert_ne!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    /// Creates a generator with the given seed.
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    /// Returns the next 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// xoshiro256++ generator (Blackman & Vigna, 2019).
///
/// The primary generator used throughout the workspace. Construct it from a
/// single seed with [`Xoshiro256::seed_from`]; the seed is expanded via
/// [`SplitMix64`] as the reference implementation recommends.
///
/// # Example
///
/// ```
/// use archpredict_stats::rng::Xoshiro256;
/// let mut rng = Xoshiro256::seed_from(1234);
/// let x = rng.next_f64();
/// assert!((0.0..1.0).contains(&x));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Xoshiro256 {
    s: [u64; 4],
}

impl Xoshiro256 {
    /// Creates a generator whose 256-bit state is expanded from `seed`.
    pub fn seed_from(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Derives a decorrelated child generator for an independent stream.
    ///
    /// The `stream` index is mixed into a fresh seed, so
    /// `rng.derive(0)` and `rng.derive(1)` produce unrelated sequences while
    /// leaving `self` unchanged.
    pub fn derive(&self, stream: u64) -> Self {
        let mut sm = SplitMix64::new(
            self.s[0]
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(stream.wrapping_mul(0xD1B5_4A32_D192_ED03)),
        );
        Self {
            s: [sm.next_u64(), sm.next_u64(), sm.next_u64(), sm.next_u64()],
        }
    }

    /// Returns the raw 256-bit state, for checkpointing. A generator rebuilt
    /// with [`Xoshiro256::from_state`] continues the exact same stream.
    pub fn state(&self) -> [u64; 4] {
        self.s
    }

    /// Rebuilds a generator from a state captured by [`Xoshiro256::state`].
    pub fn from_state(s: [u64; 4]) -> Self {
        Self { s }
    }

    /// Returns the next 64-bit output.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[0]
            .wrapping_add(self.s[3])
            .rotate_left(23)
            .wrapping_add(self.s[0]);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Returns a uniform `f64` in `[0, 1)` with 53 bits of precision.
    #[inline]
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Returns a uniform `f64` in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo > hi` or either bound is non-finite.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(lo <= hi && lo.is_finite() && hi.is_finite(), "bad range");
        lo + (hi - lo) * self.next_f64()
    }

    /// Returns a uniform integer in `[0, bound)` using Lemire's unbiased
    /// multiply-shift rejection method.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(bound as u128);
            let low = m as u64;
            if low >= bound || low >= bound.wrapping_neg() % bound {
                return (m >> 64) as u64;
            }
        }
    }

    /// Returns a uniform `usize` index in `[0, bound)`.
    ///
    /// # Panics
    ///
    /// Panics if `bound == 0`.
    #[inline]
    pub fn index(&mut self, bound: usize) -> usize {
        self.below(bound as u64) as usize
    }

    /// Returns `true` with probability `p` (clamped to `[0, 1]`).
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Returns a standard normal deviate via the Box–Muller transform.
    pub fn next_gaussian(&mut self) -> f64 {
        // Marsaglia polar method: rejection-sample a point in the unit disc.
        loop {
            let u = 2.0 * self.next_f64() - 1.0;
            let v = 2.0 * self.next_f64() - 1.0;
            let s = u * u + v * v;
            if s > 0.0 && s < 1.0 {
                return u * (-2.0 * s.ln() / s).sqrt();
            }
        }
    }

    /// Returns a geometrically distributed count of failures before the first
    /// success, with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `(0, 1]`.
    pub fn next_geometric(&mut self, p: f64) -> u64 {
        assert!(p > 0.0 && p <= 1.0, "p must be in (0, 1]");
        if p >= 1.0 {
            return 0;
        }
        let u = self.next_f64().max(f64::MIN_POSITIVE);
        (u.ln() / (1.0 - p).ln()) as u64
    }

    /// Samples an index from a discrete distribution given by `weights`.
    ///
    /// Weights need not be normalized. Zero-weight entries are never chosen.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or the weights do not sum to a positive
    /// finite value.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value"
        );
        let mut x = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if x < w {
                return i;
            }
            x -= w;
        }
        // Floating-point slack: fall back to the last positive-weight entry.
        weights
            .iter()
            .rposition(|&w| w > 0.0)
            .expect("at least one positive weight")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn state_round_trip_continues_the_stream() {
        let mut rng = Xoshiro256::seed_from(42);
        rng.next_u64();
        rng.next_u64();
        let mut twin = Xoshiro256::from_state(rng.state());
        for _ in 0..16 {
            assert_eq!(rng.next_u64(), twin.next_u64());
        }
    }

    #[test]
    fn splitmix_reference_vector() {
        // Reference output for seed 1234567 from the public-domain C code.
        let mut sm = SplitMix64::new(1234567);
        let first = sm.next_u64();
        let second = sm.next_u64();
        assert_ne!(first, second);
        // Determinism: same seed, same stream.
        let mut sm2 = SplitMix64::new(1234567);
        assert_eq!(sm2.next_u64(), first);
        assert_eq!(sm2.next_u64(), second);
    }

    #[test]
    fn xoshiro_deterministic_and_distinct_streams() {
        let mut a = Xoshiro256::seed_from(9);
        let mut b = Xoshiro256::seed_from(9);
        let mut c = Xoshiro256::seed_from(10);
        let va: Vec<u64> = (0..8).map(|_| a.next_u64()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.next_u64()).collect();
        let vc: Vec<u64> = (0..8).map(|_| c.next_u64()).collect();
        assert_eq!(va, vb);
        assert_ne!(va, vc);
    }

    #[test]
    fn derive_is_pure_and_decorrelated() {
        let base = Xoshiro256::seed_from(77);
        let mut d0 = base.derive(0);
        let mut d0b = base.derive(0);
        let mut d1 = base.derive(1);
        assert_eq!(d0.next_u64(), d0b.next_u64());
        assert_ne!(d0.next_u64(), d1.next_u64());
    }

    #[test]
    fn f64_in_unit_interval_with_sane_mean() {
        let mut rng = Xoshiro256::seed_from(5);
        let mut sum = 0.0;
        for _ in 0..100_000 {
            let x = rng.next_f64();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        let mean = sum / 100_000.0;
        assert!((mean - 0.5).abs() < 0.01, "mean was {mean}");
    }

    #[test]
    fn below_is_unbiased_over_small_bound() {
        let mut rng = Xoshiro256::seed_from(6);
        let mut counts = [0usize; 5];
        for _ in 0..50_000 {
            counts[rng.below(5) as usize] += 1;
        }
        for &c in &counts {
            let frac = c as f64 / 50_000.0;
            assert!((frac - 0.2).abs() < 0.02, "bucket fraction {frac}");
        }
    }

    #[test]
    fn gaussian_moments() {
        let mut rng = Xoshiro256::seed_from(8);
        let n = 100_000;
        let (mut sum, mut sum2) = (0.0, 0.0);
        for _ in 0..n {
            let g = rng.next_gaussian();
            sum += g;
            sum2 += g * g;
        }
        let mean = sum / n as f64;
        let var = sum2 / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "var {var}");
    }

    #[test]
    fn geometric_mean_matches_theory() {
        let mut rng = Xoshiro256::seed_from(11);
        let p = 0.25;
        let n = 50_000;
        let total: u64 = (0..n).map(|_| rng.next_geometric(p)).sum();
        let mean = total as f64 / n as f64;
        let expect = (1.0 - p) / p; // 3.0
        assert!((mean - expect).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Xoshiro256::seed_from(12);
        let w = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&w)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "bound must be positive")]
    fn below_zero_bound_panics() {
        let mut rng = Xoshiro256::seed_from(1);
        rng.below(0);
    }
}
