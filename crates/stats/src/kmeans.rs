//! k-means clustering with k-means++ seeding and BIC model selection.
//!
//! This is the clustering engine behind the SimPoint reimplementation
//! (`archpredict-simpoint`): per-interval basic-block vectors are projected
//! to a low dimension and clustered here; the Bayesian Information Criterion
//! picks the number of clusters, exactly as in Sherwood et al. (ASPLOS 2002).

use crate::rng::Xoshiro256;

/// Result of a k-means run.
#[derive(Debug, Clone, PartialEq)]
pub struct Clustering {
    /// Cluster centroids, one `Vec<f64>` per cluster.
    pub centroids: Vec<Vec<f64>>,
    /// Cluster assignment for each input point.
    pub assignments: Vec<usize>,
    /// Sum of squared distances of points to their assigned centroid.
    pub inertia: f64,
}

impl Clustering {
    /// Number of clusters.
    pub fn k(&self) -> usize {
        self.centroids.len()
    }

    /// Number of points assigned to each cluster.
    pub fn cluster_sizes(&self) -> Vec<usize> {
        let mut sizes = vec![0usize; self.k()];
        for &a in &self.assignments {
            sizes[a] += 1;
        }
        sizes
    }

    /// Index of the point closest to each centroid (the "representative").
    ///
    /// Returns one point index per cluster; empty clusters (which Lloyd's
    /// algorithm here never produces for `k <= n`) would yield `usize::MAX`.
    pub fn representatives(&self, points: &[Vec<f64>]) -> Vec<usize> {
        let mut best = vec![(f64::INFINITY, usize::MAX); self.k()];
        for (i, p) in points.iter().enumerate() {
            let c = self.assignments[i];
            let d = squared_distance(p, &self.centroids[c]);
            if d < best[c].0 {
                best[c] = (d, i);
            }
        }
        best.into_iter().map(|(_, i)| i).collect()
    }
}

/// Squared Euclidean distance between equal-length vectors.
#[inline]
fn squared_distance(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| (x - y) * (x - y)).sum()
}

/// Runs k-means with k-means++ initialization and Lloyd iterations.
///
/// Iterates until assignments stabilize or `max_iters` is reached.
///
/// # Panics
///
/// Panics if `points` is empty, `k` is zero, `k > points.len()`, or points
/// have inconsistent dimensionality.
///
/// # Example
///
/// ```
/// use archpredict_stats::kmeans::kmeans;
/// use archpredict_stats::rng::Xoshiro256;
/// let pts = vec![vec![0.0], vec![0.1], vec![10.0], vec![10.1]];
/// let c = kmeans(&pts, 2, 100, &mut Xoshiro256::seed_from(1));
/// assert_eq!(c.assignments[0], c.assignments[1]);
/// assert_eq!(c.assignments[2], c.assignments[3]);
/// assert_ne!(c.assignments[0], c.assignments[2]);
/// ```
pub fn kmeans(points: &[Vec<f64>], k: usize, max_iters: usize, rng: &mut Xoshiro256) -> Clustering {
    assert!(!points.is_empty(), "kmeans on empty data");
    assert!(k > 0 && k <= points.len(), "k must be in 1..=n");
    let dim = points[0].len();
    assert!(
        points.iter().all(|p| p.len() == dim),
        "inconsistent point dimensionality"
    );

    let mut centroids = plus_plus_init(points, k, rng);
    let mut assignments = vec![0usize; points.len()];
    let mut inertia = f64::INFINITY;

    for _ in 0..max_iters {
        // Assignment step.
        let mut changed = false;
        let mut new_inertia = 0.0;
        for (i, p) in points.iter().enumerate() {
            let (best, dist) = nearest(p, &centroids);
            if assignments[i] != best {
                assignments[i] = best;
                changed = true;
            }
            new_inertia += dist;
        }
        inertia = new_inertia;
        if !changed {
            break;
        }
        // Update step.
        let mut sums = vec![vec![0.0; dim]; k];
        let mut counts = vec![0usize; k];
        for (i, p) in points.iter().enumerate() {
            let c = assignments[i];
            counts[c] += 1;
            for (s, &x) in sums[c].iter_mut().zip(p) {
                *s += x;
            }
        }
        for c in 0..k {
            if counts[c] == 0 {
                // Re-seed an empty cluster at a random point.
                centroids[c] = points[rng.index(points.len())].clone();
            } else {
                for (cc, s) in centroids[c].iter_mut().zip(&sums[c]) {
                    *cc = s / counts[c] as f64;
                }
            }
        }
    }

    Clustering {
        centroids,
        assignments,
        inertia,
    }
}

fn nearest(p: &[f64], centroids: &[Vec<f64>]) -> (usize, f64) {
    let mut best = 0;
    let mut best_d = f64::INFINITY;
    for (c, centroid) in centroids.iter().enumerate() {
        let d = squared_distance(p, centroid);
        if d < best_d {
            best_d = d;
            best = c;
        }
    }
    (best, best_d)
}

fn plus_plus_init(points: &[Vec<f64>], k: usize, rng: &mut Xoshiro256) -> Vec<Vec<f64>> {
    let mut centroids = Vec::with_capacity(k);
    centroids.push(points[rng.index(points.len())].clone());
    let mut dists: Vec<f64> = points
        .iter()
        .map(|p| squared_distance(p, &centroids[0]))
        .collect();
    while centroids.len() < k {
        let total: f64 = dists.iter().sum();
        let next = if total <= 0.0 {
            // All points coincide with existing centroids: pick uniformly.
            rng.index(points.len())
        } else {
            rng.weighted_index(&dists)
        };
        centroids.push(points[next].clone());
        for (d, p) in dists.iter_mut().zip(points) {
            *d = d.min(squared_distance(p, centroids.last().expect("nonempty")));
        }
    }
    centroids
}

/// Bayesian Information Criterion score of a clustering (higher is better).
///
/// Uses the spherical-Gaussian formulation from Pelleg & Moore (X-means),
/// the same criterion SimPoint uses to select its cluster count.
pub fn bic_score(points: &[Vec<f64>], clustering: &Clustering) -> f64 {
    let n = points.len() as f64;
    let k = clustering.k() as f64;
    let d = points[0].len() as f64;
    // Maximum-likelihood variance estimate (guard against zero).
    let variance = (clustering.inertia / ((n - k).max(1.0) * d)).max(1e-12);
    let sizes = clustering.cluster_sizes();
    let mut log_likelihood = 0.0;
    for &sz in &sizes {
        if sz == 0 {
            continue;
        }
        let ni = sz as f64;
        log_likelihood += ni * (ni / n).ln()
            - ni * d / 2.0 * (2.0 * std::f64::consts::PI * variance).ln()
            - (ni - 1.0) * d / 2.0;
    }
    let free_params = k * (d + 1.0);
    log_likelihood - free_params / 2.0 * n.ln()
}

/// Runs k-means for every `k` in `1..=max_k` and returns the clustering with
/// the best (highest) BIC score, along with that `k`.
///
/// SimPoint's "max K" selection: this caps the number of representative
/// simulation points per application.
///
/// # Panics
///
/// Panics under the same conditions as [`kmeans`].
pub fn kmeans_best_bic(
    points: &[Vec<f64>],
    max_k: usize,
    max_iters: usize,
    rng: &mut Xoshiro256,
) -> (usize, Clustering) {
    let max_k = max_k.min(points.len());
    assert!(max_k >= 1, "max_k must be at least 1");
    let mut best: Option<(f64, usize, Clustering)> = None;
    for k in 1..=max_k {
        let c = kmeans(points, k, max_iters, rng);
        let score = bic_score(points, &c);
        if best.as_ref().is_none_or(|(s, _, _)| score > *s) {
            best = Some((score, k, c));
        }
    }
    let (_, k, c) = best.expect("at least one k evaluated");
    (k, c)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn blobs(rng: &mut Xoshiro256) -> (Vec<Vec<f64>>, Vec<usize>) {
        // Three well-separated 2-D blobs of 30 points each.
        let centers = [[0.0, 0.0], [10.0, 0.0], [0.0, 10.0]];
        let mut pts = Vec::new();
        let mut labels = Vec::new();
        for (li, c) in centers.iter().enumerate() {
            for _ in 0..30 {
                pts.push(vec![
                    c[0] + rng.next_gaussian() * 0.5,
                    c[1] + rng.next_gaussian() * 0.5,
                ]);
                labels.push(li);
            }
        }
        (pts, labels)
    }

    #[test]
    fn recovers_separated_blobs() {
        let mut rng = Xoshiro256::seed_from(10);
        let (pts, labels) = blobs(&mut rng);
        let c = kmeans(&pts, 3, 100, &mut rng);
        // All points with the same true label must share a cluster.
        for group in 0..3 {
            let ids: Vec<usize> = (0..pts.len()).filter(|&i| labels[i] == group).collect();
            let first = c.assignments[ids[0]];
            assert!(ids.iter().all(|&i| c.assignments[i] == first));
        }
    }

    #[test]
    fn inertia_decreases_with_k() {
        let mut rng = Xoshiro256::seed_from(11);
        let (pts, _) = blobs(&mut rng);
        let i1 = kmeans(&pts, 1, 100, &mut rng).inertia;
        let i3 = kmeans(&pts, 3, 100, &mut rng).inertia;
        let i9 = kmeans(&pts, 9, 100, &mut rng).inertia;
        assert!(i1 > i3, "{i1} !> {i3}");
        assert!(i3 > i9, "{i3} !> {i9}");
    }

    #[test]
    fn bic_selects_true_cluster_count() {
        let mut rng = Xoshiro256::seed_from(12);
        let (pts, _) = blobs(&mut rng);
        let (k, _) = kmeans_best_bic(&pts, 8, 100, &mut rng);
        assert_eq!(k, 3, "BIC picked k={k}");
    }

    #[test]
    fn representatives_are_members_of_their_cluster() {
        let mut rng = Xoshiro256::seed_from(13);
        let (pts, _) = blobs(&mut rng);
        let c = kmeans(&pts, 3, 100, &mut rng);
        for (cluster, &rep) in c.representatives(&pts).iter().enumerate() {
            assert_eq!(c.assignments[rep], cluster);
        }
    }

    #[test]
    fn k_equals_n_gives_zero_inertia() {
        let pts = vec![vec![1.0], vec![2.0], vec![5.0]];
        let mut rng = Xoshiro256::seed_from(14);
        let c = kmeans(&pts, 3, 100, &mut rng);
        assert!(c.inertia < 1e-12);
    }

    #[test]
    fn degenerate_identical_points() {
        let pts = vec![vec![1.0, 1.0]; 10];
        let mut rng = Xoshiro256::seed_from(15);
        let c = kmeans(&pts, 3, 100, &mut rng);
        assert!(c.inertia < 1e-12);
        assert_eq!(c.assignments.len(), 10);
    }

    #[test]
    #[should_panic(expected = "k must be in 1..=n")]
    fn k_zero_panics() {
        let mut rng = Xoshiro256::seed_from(1);
        kmeans(&[vec![0.0]], 0, 10, &mut rng);
    }
}
