//! Deterministic, autovectorizable elementary functions.
//!
//! The workspace's inference kernels spend most of their cycles in the
//! sigmoid's `e^x` (sixteen hidden units per member per point), and libm's
//! `exp` is an opaque scalar call: LLVM cannot vectorize a loop that
//! contains it, so the blocked batch kernels were stuck at the scalar
//! exponential's throughput. [`exp`] replaces it with a branch-free
//! polynomial implementation built only from IEEE-754 arithmetic and
//! integer bit manipulation — operations LLVM *can* autovectorize — with
//! one additional guarantee libm does not make: the result for a given
//! input is the same sequence of IEEE operations on every platform and at
//! every vector width, so scalar and lane-blocked evaluations are
//! bit-for-bit identical. That property is what lets the blocked kernels
//! stay exactly equal to their scalar reference paths while running wide.
//!
//! Accuracy is ~0.26 ulp-ish in relative terms (observed worst over a dense
//! sweep of `[-700, 700]`: < 6e-14 relative vs libm), far below the noise
//! floor of network training, and monotonicity of the derived sigmoid is
//! covered by tests in `archpredict-ann`.

/// Arguments beyond ±708 are clamped before evaluation. `e^708`
/// is within the normal f64 range, so the clamped result saturates without
/// producing infinities or subnormal scale factors; a sigmoid built on top
/// therefore rounds cleanly to 1.0 / tiny at the extremes.
const EXP_CLAMP: f64 = 708.0;
/// `log2(e)`, to express `x` as `n * ln 2 + r`.
const LOG2E: f64 = std::f64::consts::LOG2_E;
/// `1.5 * 2^52`: adding it forces round-to-nearest-integer in the f64
/// mantissa (the classic "magic number" rounding, branch-free and
/// vectorizable where `round()` is a libm call on baseline x86-64).
const MAGIC: f64 = 6_755_399_441_055_744.0;
/// `ln 2` split high/low (Cody–Waite) so `x - n*ln2` loses almost no
/// precision: the high part is the f64 rounding of `ln 2`, the low part
/// is the real value's remainder below that rounding.
const LN2_HI: f64 = std::f64::consts::LN_2;
const LN2_LO: f64 = 2.371_231_394_796_339_4e-17;

/// `e^x` as a branch-free polynomial: range-reduce to
/// `r in [-ln2/2, ln2/2]`, evaluate a degree-11 Taylor polynomial by
/// Horner's rule (truncation error `r^12/12! < 7e-15` relative, below the
/// range reduction's own rounding), and rescale by `2^n` via
/// exponent-field bit assembly.
///
/// Not a drop-in libm replacement: arguments are clamped to ±708
/// (`EXP_CLAMP`, so `exp(f64::MAX)` is a huge finite number, not
/// infinity) and NaN handling is whatever the clamp produces. Every use in
/// this workspace (sigmoid activations) is insensitive to both.
#[inline]
pub fn exp(x: f64) -> f64 {
    let x = x.clamp(-EXP_CLAMP, EXP_CLAMP);
    let k = x * LOG2E + MAGIC;
    let n = k - MAGIC; // round(x / ln 2), exactly representable
    let r = x - n * LN2_HI - n * LN2_LO;
    let p = 1.0
        + r * (1.0
            + r * (0.5
                + r * (1.0 / 6.0
                    + r * (1.0 / 24.0
                        + r * (1.0 / 120.0
                            + r * (1.0 / 720.0
                                + r * (1.0 / 5040.0
                                    + r * (1.0 / 40320.0
                                        + r * (1.0 / 362_880.0
                                            + r * (1.0 / 3_628_800.0
                                                + r * (1.0 / 39_916_800.0)))))))))));
    // The magic-number trick leaves n's integer value recoverable by exact
    // bit subtraction; (n + 1023) << 52 is then the bit pattern of 2^n.
    let ni = (k.to_bits() as i64).wrapping_sub(MAGIC.to_bits() as i64);
    let scale = f64::from_bits(((ni + 1023) << 52) as u64);
    p * scale
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_libm_closely() {
        let mut x = -700.0;
        while x < 700.0 {
            let (a, b) = (exp(x), x.exp());
            let rel = ((a - b) / b).abs();
            assert!(rel < 1e-13, "exp({x}): {a} vs libm {b} (rel {rel:e})");
            x += 0.0317;
        }
    }

    #[test]
    fn exact_anchor_points() {
        assert_eq!(exp(0.0), 1.0);
        // Powers of two scale exactly: exp(n*ln2) reduces to r ~ 0.
        assert!((exp(std::f64::consts::LN_2) - 2.0).abs() < 1e-15);
    }

    #[test]
    fn extremes_saturate_finite() {
        assert!(exp(f64::MAX).is_finite());
        assert!(exp(1000.0) > 1e300);
        assert!(exp(-1000.0) > 0.0);
        assert!(exp(-1000.0) < 1e-300);
        assert!(exp(f64::MIN) < 1e-300);
    }

    #[test]
    fn monotone_on_grid() {
        let mut prev = exp(-80.0);
        let mut x = -79.75;
        while x <= 80.0 {
            let y = exp(x);
            assert!(y > prev, "exp not increasing at {x}");
            prev = y;
            x += 0.25;
        }
    }

    #[test]
    fn lane_blocked_equals_scalar_bit_for_bit() {
        // The property the kernels rely on: evaluating through a fixed-size
        // lane array (the shape LLVM vectorizes) is the identical IEEE
        // operation sequence per element.
        let xs: Vec<f64> = (0..4096).map(|i| (i as f64) * 0.37 - 757.0).collect();
        for chunk in xs.chunks_exact(8) {
            let mut lanes = [0.0; 8];
            for (l, &x) in lanes.iter_mut().zip(chunk) {
                *l = exp(x);
            }
            for (&l, &x) in lanes.iter().zip(chunk) {
                assert_eq!(l, exp(x), "lane diverged at {x}");
            }
        }
    }
}
