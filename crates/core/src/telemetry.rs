//! Unified observability: process-wide metric counters, lightweight
//! spans, and cross-process trace-ID propagation.
//!
//! Before this module the stack's telemetry was a pile of ad-hoc
//! plumbing: `SimStats` hand-merged at every call site, `ServeStats`
//! hand-building its own JSON, bespoke `AtomicU64` fields on the
//! registry and the process pool, and nothing correlating a daemon
//! request with the registry fit, inference sweep, or worker span it
//! triggered. This module is the one place all of that lives now:
//!
//! * **Counters** ([`Counter`]) — named, monotonic, lock-free
//!   (`fetch_add(Relaxed)` on the hot path). The process-wide registry
//!   ([`counters`]) is a fixed set of statics rendered by
//!   [`render_metrics`] in a stable text format (the daemon's
//!   `GET /metrics`). Instance-scoped stats (one server's `/stats`, one
//!   registry handle's `fits_performed`) are `Counter`s too, built with
//!   [`Counter::mirroring`] so every instance increment also lands in
//!   the process-wide registry. The lint in `ci/telemetry_lint.sh`
//!   keeps new stats fields from growing raw `AtomicU64`s outside this
//!   module.
//! * **Spans** ([`span`]) — monotonic timings with parent links,
//!   emitted as JSONL events to the file named by the
//!   [`ENV_TRACE`] environment variable (`ARCHPREDICT_TRACE=path`).
//!   When no sink is installed a span is **one relaxed atomic load** —
//!   the same disarmed-cost discipline as [`crate::failpoint`]. Each
//!   event line is appended with a single `write` call, so concurrent
//!   writers (the daemon and its worker processes share one log) never
//!   interleave partial lines.
//! * **Trace IDs** — a `u64` stamped on each daemon request
//!   ([`fresh_trace_id`]), carried in thread-local context
//!   ([`set_trace`] / [`current_trace`]), propagated across the APWK
//!   wire protocol into worker processes, and written into every span
//!   event. One grep of the event log for a trace ID reconstructs the
//!   request's full causal tree across processes.
//!
//! # Determinism contract
//!
//! The counters that feed learning-curve CSVs and equivalence gates
//! (everything in [`SimStats`]) stay **deterministic per-round
//! records**, merged in input order exactly as before — this module
//! only *mirrors* their deltas into the process-wide registry (see
//! [`record_sim`]) after the deterministic bookkeeping is done.
//! Wall-clock time never enters a counter: timings live in spans and in
//! the CSV columns that `to_csv_deterministic` already drops. Arming or
//! disarming the trace sink changes no computed value anywhere.

use crate::simulate::SimStats;
use std::cell::Cell;
use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::{Instant, SystemTime};

/// Environment variable naming the JSONL span-event log. When set (and
/// the hosting binary calls [`install_trace_from_env`]), every span is
/// appended to this file; workers inherit it through the environment so
/// one file collects the whole process tree.
pub const ENV_TRACE: &str = "ARCHPREDICT_TRACE";

/// A named monotonic counter: the only sanctioned shape for a stats
/// counter in this workspace. Increments are single relaxed atomic
/// adds; a mirrored counter ([`Counter::mirroring`]) pays exactly one
/// more.
#[derive(Debug)]
pub struct Counter {
    name: &'static str,
    value: AtomicU64,
    mirror: Option<&'static Counter>,
}

impl Counter {
    /// A standalone counter (instance-scoped, or one of the process-wide
    /// statics below).
    pub const fn new(name: &'static str) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            mirror: None,
        }
    }

    /// An instance-scoped counter whose every increment is also added to
    /// `mirror` (a process-wide static), so per-instance views (`/stats`)
    /// and the process-wide registry (`/metrics`) stay consistent without
    /// double bookkeeping at call sites.
    pub const fn mirroring(name: &'static str, mirror: &'static Counter) -> Self {
        Self {
            name,
            value: AtomicU64::new(0),
            mirror: Some(mirror),
        }
    }

    /// The counter's registered name (dotted, e.g. `serve.requests`).
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.value.fetch_add(n, Ordering::Relaxed);
        if let Some(mirror) = self.mirror {
            mirror.value.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds 1.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.value.load(Ordering::Relaxed)
    }
}

macro_rules! global_counters {
    ($($(#[$doc:meta])* $ident:ident => $name:literal),+ $(,)?) => {
        $($(#[$doc])* pub static $ident: Counter = Counter::new($name);)+

        /// Every process-wide counter, in the stable order
        /// [`render_metrics`] renders them.
        pub fn counters() -> &'static [&'static Counter] {
            static ALL: &[&Counter] = &[$(&$ident),+];
            ALL
        }
    };
}

global_counters! {
    /// Campaign refinement rounds completed.
    CAMPAIGN_ROUNDS => "campaign.rounds",
    /// Unique simulator invocations (mirror of the per-round [`SimStats`]).
    SIM_UNIQUE_SIMULATIONS => "sim.unique_simulations",
    /// Evaluations served without simulating.
    SIM_CACHE_HITS => "sim.cache_hits",
    /// Instructions simulated.
    SIM_SIMULATED_INSTRUCTIONS => "sim.simulated_instructions",
    /// Evaluation attempts that failed.
    SIM_FAILURES => "sim.failures",
    /// Retry attempts issued.
    SIM_RETRIES => "sim.retries",
    /// Indices quarantined.
    SIM_QUARANTINED => "sim.quarantined",
    /// Replacement draws backfilling failed points.
    SIM_RESAMPLED => "sim.resampled",
    /// Batched inference sweeps run.
    INFER_SWEEPS => "infer.sweeps",
    /// Design-point indices pushed through inference sweeps.
    INFER_POINTS => "infer.points",
    /// Model fits performed by registry handles.
    REGISTRY_FITS => "registry.fits",
    /// Worker processes replaced after a crash, desync, or deadline.
    DISTRIBUTED_RESPAWNS => "distributed.respawns",
    /// Worker spans whose deadline expired.
    DISTRIBUTED_TIMEOUTS => "distributed.timeouts",
    /// Faults injected by [`crate::fault::FaultInjectingOracle`].
    FAULT_INJECTED => "fault.injected",
    /// HTTP requests accepted by serving daemons.
    SERVE_REQUESTS => "serve.requests",
    /// Predictions served.
    SERVE_PREDICTIONS => "serve.predictions",
    /// Coalesced inference batches swept.
    SERVE_PREDICT_BATCHES => "serve.predict_batches",
    /// Prediction jobs merged into coalesced batches.
    SERVE_COALESCED_JOBS => "serve.coalesced_jobs",
    /// Warm in-memory model hits.
    SERVE_MODEL_CACHE_HITS => "serve.model_cache_hits",
    /// In-memory model misses.
    SERVE_MODEL_CACHE_MISSES => "serve.model_cache_misses",
    /// Models loaded warm from registry artifacts.
    SERVE_WARM_LOADS => "serve.warm_loads",
    /// Models evicted from daemon memory (LRU).
    SERVE_MODELS_EVICTED => "serve.models_evicted",
    /// Requests answered with an error status.
    SERVE_ERRORS => "serve.errors",
    /// Connections shed with 503 at a saturated gate.
    SERVE_REQUESTS_SHED => "serve.requests_shed",
    /// Handler panics contained by `catch_unwind`.
    SERVE_PANICS_CAUGHT => "serve.panics_caught",
    /// Span events appended to the trace log.
    TRACE_SPANS_EMITTED => "trace.spans_emitted",
}

/// Renders the process-wide counter registry in a stable text format:
/// one `name value` line per counter, in declaration order, under a
/// fixed header comment. This is the body of the daemon's
/// `GET /metrics`; scrapers may rely on the names and the ordering.
pub fn render_metrics() -> String {
    let all = counters();
    let mut out = String::with_capacity(32 * all.len() + 32);
    out.push_str("# archpredict metrics v1\n");
    for counter in all {
        out.push_str(counter.name());
        out.push(' ');
        out.push_str(&counter.get().to_string());
        out.push('\n');
    }
    out
}

/// Mirrors a **deterministic** [`SimStats`] delta into the process-wide
/// counters. Call this exactly once per accumulated delta (a campaign
/// round, a pooled cross-app round, a multi-task fit) *after* the
/// deterministic per-round bookkeeping is complete — the per-round
/// record stays the source of truth for CSVs and equivalence gates;
/// these counters are an observability view. `wall_seconds` is
/// deliberately not mirrored: wall-clock never enters a counter.
pub fn record_sim(delta: &SimStats) {
    SIM_UNIQUE_SIMULATIONS.add(delta.unique_simulations);
    SIM_CACHE_HITS.add(delta.cache_hits);
    SIM_SIMULATED_INSTRUCTIONS.add(delta.simulated_instructions);
    SIM_FAILURES.add(delta.failures);
    SIM_RETRIES.add(delta.retries);
    SIM_QUARANTINED.add(delta.quarantined);
    SIM_RESAMPLED.add(delta.resampled);
}

// ---------------------------------------------------------------------------
// Trace sink (the JSONL span-event log).

/// One relaxed load of this decides the disarmed fast path; it is `true`
/// exactly while [`SINK`] holds an open file.
static ARMED: AtomicBool = AtomicBool::new(false);

/// The open event log. Lines are serialized through this mutex within
/// the process; across processes each line is a single appended write.
static SINK: Mutex<Option<TraceSink>> = Mutex::new(None);

struct TraceSink {
    path: PathBuf,
    file: File,
}

/// Whether a trace sink is installed (spans are being recorded).
pub fn trace_armed() -> bool {
    ARMED.load(Ordering::Relaxed)
}

/// The event log's path, if a sink is installed.
pub fn trace_path() -> Option<PathBuf> {
    sink_lock().as_ref().map(|s| s.path.clone())
}

fn sink_lock() -> std::sync::MutexGuard<'static, Option<TraceSink>> {
    // A panic while holding the sink lock (e.g. a panicking handler that
    // was mid-span) must not wedge telemetry for the rest of the process.
    SINK.lock().unwrap_or_else(|poison| poison.into_inner())
}

/// Opens (append mode, creating parents) the JSONL event log at `path`
/// and arms span recording. Replaces any previously installed sink.
///
/// # Errors
///
/// Fails if the file cannot be created or opened for append.
pub fn install_trace(path: impl AsRef<Path>) -> std::io::Result<()> {
    let path = path.as_ref().to_path_buf();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let file = OpenOptions::new().create(true).append(true).open(&path)?;
    let mut sink = sink_lock();
    *sink = Some(TraceSink { path, file });
    ARMED.store(true, Ordering::SeqCst);
    Ok(())
}

/// Installs the trace sink from [`ENV_TRACE`] if set. Returns whether a
/// sink was installed. A set-but-unusable path is an error, never a
/// silently untraced run (same contract as the failpoint env install).
///
/// # Errors
///
/// Fails if [`ENV_TRACE`] is set but the file cannot be opened.
pub fn install_trace_from_env() -> std::io::Result<bool> {
    match std::env::var(ENV_TRACE) {
        Ok(path) if !path.trim().is_empty() => {
            install_trace(path.trim())?;
            Ok(true)
        }
        _ => Ok(false),
    }
}

/// Disarms span recording and closes the event log.
pub fn clear_trace() {
    ARMED.store(false, Ordering::SeqCst);
    *sink_lock() = None;
}

/// Appends one complete event line. A single `write_all` on an
/// append-mode descriptor, so concurrent writers (other threads, worker
/// processes sharing the file) never interleave partial lines — the
/// event-log analogue of `persist::write_atomic`'s all-or-nothing
/// discipline.
fn emit_line(line: &str) {
    let mut sink = sink_lock();
    if let Some(sink) = sink.as_mut() {
        let _ = sink.file.write_all(line.as_bytes());
        TRACE_SPANS_EMITTED.incr();
    }
}

// ---------------------------------------------------------------------------
// Trace-ID context and spans.

thread_local! {
    /// (current trace ID, current span ID) for this thread. 0 = none.
    static CONTEXT: Cell<(u64, u64)> = const { Cell::new((0, 0)) };
}

/// A fresh process-unique (and practically cluster-unique) trace ID:
/// FNV-1a over the pid and a process-wide counter, never zero (zero
/// means "no trace").
pub fn fresh_trace_id() -> u64 {
    static NEXT: AtomicU64 = AtomicU64::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed) + 1;
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for byte in u64::from(std::process::id())
        .to_le_bytes()
        .into_iter()
        .chain(n.to_le_bytes())
    {
        h = (h ^ u64::from(byte)).wrapping_mul(0x0000_0100_0000_01B3);
    }
    h | 1
}

/// The trace ID attached to the current thread (0 = none).
pub fn current_trace() -> u64 {
    CONTEXT.with(|c| c.get().0)
}

/// Attaches `trace` to the current thread until the returned guard
/// drops (restoring the previous context). Use this to propagate a
/// trace across thread boundaries: read [`current_trace`] before
/// spawning, call `set_trace` inside the new thread.
pub fn set_trace(trace: u64) -> TraceScope {
    let previous = CONTEXT.with(|c| c.replace((trace, 0)));
    TraceScope { previous }
}

/// Guard restoring the thread's previous trace context on drop.
#[must_use = "dropping the scope immediately detaches the trace"]
pub struct TraceScope {
    previous: (u64, u64),
}

impl Drop for TraceScope {
    fn drop(&mut self) {
        let previous = self.previous;
        CONTEXT.with(|c| c.set(previous));
    }
}

/// Opens a span named `name` (use stable dotted names: `campaign.fit`,
/// `registry.get_or_fit`, `serve.request`, `worker.span`). The span
/// carries the thread's current trace ID and parent span, times itself
/// monotonically, and emits one JSONL event line when dropped. With no
/// trace sink installed this is a single relaxed atomic load and an
/// inert guard.
pub fn span(name: &'static str) -> Span {
    if !ARMED.load(Ordering::Relaxed) {
        return Span { active: None };
    }
    static SPAN_IDS: AtomicU64 = AtomicU64::new(0);
    let id = SPAN_IDS.fetch_add(1, Ordering::Relaxed) + 1;
    let (trace, parent) = CONTEXT.with(|c| {
        let (trace, parent) = c.get();
        c.set((trace, id));
        (trace, parent)
    });
    Span {
        active: Some(SpanData {
            name,
            trace,
            id,
            parent,
            started: Instant::now(),
        }),
    }
}

/// An open span; see [`span`]. Emits its event (and restores the
/// thread's parent-span context) on drop, so it must be dropped on the
/// thread that opened it.
#[must_use = "dropping the span immediately records zero elapsed time"]
pub struct Span {
    active: Option<SpanData>,
}

struct SpanData {
    name: &'static str,
    trace: u64,
    id: u64,
    parent: u64,
    started: Instant,
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(data) = self.active.take() else {
            return;
        };
        let (trace, id, parent) = (data.trace, data.id, data.parent);
        CONTEXT.with(|c| {
            let (current_trace, current_span) = c.get();
            if current_span == id {
                c.set((current_trace, parent));
            }
        });
        let elapsed_us = data.started.elapsed().as_micros();
        let start_us = SystemTime::now()
            .duration_since(SystemTime::UNIX_EPOCH)
            .map(|d| d.as_micros().saturating_sub(elapsed_us))
            .unwrap_or(0);
        let line = format!(
            "{{\"event\":\"span\",\"name\":\"{}\",\"trace\":\"{trace:016x}\",\"span\":{id},\
             \"parent\":{parent},\"pid\":{},\"start_us\":{start_us},\"elapsed_us\":{elapsed_us}}}\n",
            data.name,
            std::process::id(),
        );
        emit_line(&line);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::MutexGuard;

    /// Trace state is process-global; tests touching it serialize here
    /// and disarm on drop (the `failpoint` test-lock pattern).
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct Armed<'a>(#[allow(dead_code)] MutexGuard<'a, ()>);

    impl Drop for Armed<'_> {
        fn drop(&mut self) {
            clear_trace();
        }
    }

    fn arm(path: &Path) -> Armed<'_> {
        let guard = TEST_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        install_trace(path).expect("install trace sink");
        Armed(guard)
    }

    fn temp_log(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!(
            "archpredict_telemetry_{tag}_{}.jsonl",
            std::process::id()
        ))
    }

    #[test]
    fn counters_add_and_mirror() {
        static GLOBAL: Counter = Counter::new("test.mirror_target");
        let local = Counter::mirroring("test.local", &GLOBAL);
        let before = GLOBAL.get();
        local.add(3);
        local.incr();
        assert_eq!(local.get(), 4);
        assert_eq!(GLOBAL.get(), before + 4);
        assert_eq!(local.name(), "test.local");
    }

    #[test]
    fn render_metrics_is_stable_and_complete() {
        let text = render_metrics();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# archpredict metrics v1");
        assert_eq!(lines.len(), counters().len() + 1);
        for (line, counter) in lines[1..].iter().zip(counters()) {
            let (name, value) = line.split_once(' ').expect("name value");
            assert_eq!(name, counter.name());
            assert!(value.parse::<u64>().is_ok(), "unparsable value {value:?}");
        }
        // The registry's order is declaration order — stable across calls.
        assert_eq!(text, render_metrics());
    }

    #[test]
    fn record_sim_mirrors_every_deterministic_field_and_skips_wall_clock() {
        let before: Vec<u64> = [
            &SIM_UNIQUE_SIMULATIONS,
            &SIM_CACHE_HITS,
            &SIM_SIMULATED_INSTRUCTIONS,
            &SIM_FAILURES,
            &SIM_RETRIES,
            &SIM_QUARANTINED,
            &SIM_RESAMPLED,
        ]
        .iter()
        .map(|c| c.get())
        .collect();
        let delta = SimStats {
            unique_simulations: 1,
            cache_hits: 2,
            simulated_instructions: 3,
            wall_seconds: 99.0,
            failures: 4,
            retries: 5,
            quarantined: 6,
            resampled: 7,
        };
        record_sim(&delta);
        let after: Vec<u64> = [
            &SIM_UNIQUE_SIMULATIONS,
            &SIM_CACHE_HITS,
            &SIM_SIMULATED_INSTRUCTIONS,
            &SIM_FAILURES,
            &SIM_RETRIES,
            &SIM_QUARANTINED,
            &SIM_RESAMPLED,
        ]
        .iter()
        .map(|c| c.get())
        .collect();
        let gained: Vec<u64> = after.iter().zip(&before).map(|(a, b)| a - b).collect();
        // Concurrent tests may also bump these, so assert >= the delta.
        for (gain, expect) in gained.iter().zip([1u64, 2, 3, 4, 5, 6, 7]) {
            assert!(*gain >= expect, "gained {gain} < {expect}");
        }
    }

    #[test]
    fn disarmed_spans_are_inert_and_armed_spans_emit_jsonl() {
        let path = temp_log("spans");
        let _ = std::fs::remove_file(&path);
        {
            // Disarmed: no sink, no event, no panic.
            let _quiet = span("test.disarmed");
        }
        let armed = arm(&path);
        {
            let _scope = set_trace(0xABCD);
            let _outer = span("test.outer");
            let _inner = span("test.inner");
        }
        drop(armed);
        let text = std::fs::read_to_string(&path).expect("trace log written");
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2, "two spans, two lines: {text}");
        // Inner drops first; both carry the scope's trace id.
        assert!(lines[0].contains("\"name\":\"test.inner\""));
        assert!(lines[1].contains("\"name\":\"test.outer\""));
        for line in &lines {
            assert!(line.contains("\"trace\":\"000000000000abcd\""), "{line}");
        }
        // Parent links: inner's parent is outer's span id.
        let field = |line: &str, key: &str| -> u64 {
            let tail = line.split(&format!("\"{key}\":")).nth(1).expect("field");
            tail.split(|c: char| !c.is_ascii_digit())
                .next()
                .expect("digits")
                .parse()
                .expect("number")
        };
        assert_eq!(field(lines[0], "parent"), field(lines[1], "span"));
        assert_eq!(field(lines[1], "parent"), 0);
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn trace_scope_nests_and_restores() {
        assert_eq!(current_trace(), 0);
        {
            let _outer = set_trace(7);
            assert_eq!(current_trace(), 7);
            {
                let _inner = set_trace(9);
                assert_eq!(current_trace(), 9);
            }
            assert_eq!(current_trace(), 7);
        }
        assert_eq!(current_trace(), 0);
    }

    #[test]
    fn fresh_trace_ids_are_distinct_and_nonzero() {
        let a = fresh_trace_id();
        let b = fresh_trace_id();
        assert_ne!(a, 0);
        assert_ne!(b, 0);
        assert_ne!(a, b);
    }
}
