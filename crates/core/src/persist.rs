//! Crash-safe file writes shared by every persist path in the workspace.
//!
//! A study killed mid-write (`kill -9`, OOM, power loss) must never leave
//! a torn `results/` artifact: resumption depends on every persisted file
//! being either the complete old version or the complete new one. The
//! standard recipe is write-to-sibling-temp, fsync, rename — rename within
//! one directory is atomic on POSIX filesystems.
//!
//! Temp names are unique per writer (pid plus a process-wide counter), so
//! concurrent [`write_atomic`] calls on the *same* destination never share
//! a temp file: each writer renames its own complete bytes into place and
//! the destination is always one writer's full contents, never a mix. A
//! writer killed mid-write leaves its uniquely-named temp behind; the
//! orphan is never referenced and never mistaken for live data.

use crate::failpoint;
use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

/// Failpoint site evaluated on every [`write_atomic`] call. `error`
/// fails the write cleanly (nothing on disk changes); `torn` leaves a
/// half-written, uniquely-named temp behind and then fails — the exact
/// on-disk shape of a writer killed mid-write, which downstream code
/// must treat as inert debris.
pub const FP_WRITE_ATOMIC: &str = "persist.write_atomic";

/// Writer-unique sibling temp path for `path`
/// (`<name>.<pid>.<seq>.tmp` in the same directory, so the final rename
/// never crosses a filesystem boundary and never collides with a
/// concurrent writer's in-flight temp).
fn temp_sibling(path: &Path) -> PathBuf {
    static SEQ: AtomicU64 = AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, Ordering::Relaxed);
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(format!(".{}.{}.tmp", std::process::id(), seq));
    path.with_file_name(name)
}

/// Atomically replaces the file at `path` with `contents`.
///
/// Creates parent directories as needed, writes a writer-unique
/// `<path>.<pid>.<seq>.tmp`, fsyncs it, then renames over `path`. The
/// directory entry is fsynced best-effort (not all platforms allow
/// opening directories), which is the standard durability/portability
/// trade-off. Concurrent callers on one path are each atomic; the
/// survivor is whichever rename lands last.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    match failpoint::check(FP_WRITE_ATOMIC) {
        Some(failpoint::Failure::Error(err)) => return Err(err),
        Some(failpoint::Failure::Torn) => {
            let tmp = temp_sibling(path);
            let half = contents.len() / 2;
            let _ = fs::write(&tmp, &contents.as_bytes()[..half]);
            return Err(std::io::Error::other(format!(
                "failpoint `{FP_WRITE_ATOMIC}`: torn write to {}",
                tmp.display()
            )));
        }
        None => {}
    }
    let tmp = temp_sibling(path);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            // Durability of the rename itself; failure is not fatal.
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmp_residue(dir: &Path) -> Vec<PathBuf> {
        fs::read_dir(dir)
            .map(|entries| {
                entries
                    .filter_map(|e| e.ok())
                    .map(|e| e.path())
                    .filter(|p| p.extension().is_some_and(|ext| ext == "tmp"))
                    .collect()
            })
            .unwrap_or_default()
    }

    #[test]
    fn writes_and_replaces_contents() {
        let dir = std::env::temp_dir().join(format!("archpredict_persist_{}", std::process::id()));
        let path = dir.join("nested/artifact.csv");
        write_atomic(&path, "a,b\n1,2\n").expect("first write");
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        write_atomic(&path, "a,b\n3,4\n").expect("replace");
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n3,4\n");
        // No temp residue after successful writes.
        assert!(tmp_residue(path.parent().unwrap()).is_empty());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_temp_from_killed_writer_is_inert() {
        let dir =
            std::env::temp_dir().join(format!("archpredict_persist_stale_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.csv");
        // Simulate a kill mid-write from a previous run: a torn temp in
        // the old and new naming schemes. Neither is ever read or renamed.
        fs::write(dir.join("artifact.csv.tmp"), "torn garba").unwrap();
        fs::write(dir.join("artifact.csv.999999.0.tmp"), "torn garba").unwrap();
        write_atomic(&path, "complete\n").expect("write alongside stale temps");
        assert_eq!(fs::read_to_string(&path).unwrap(), "complete\n");
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_writers_on_one_path_never_tear_the_file() {
        let dir = std::env::temp_dir().join(format!(
            "archpredict_persist_concurrent_{}",
            std::process::id()
        ));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("contended.json");
        // Each writer's payload is self-describing and large enough that a
        // shared temp file would tear visibly.
        let payloads: Vec<String> = (0..8)
            .map(|w| format!("writer-{w}-{}", "x".repeat(4096 + w)))
            .collect();
        std::thread::scope(|scope| {
            for payload in &payloads {
                scope.spawn(|| {
                    for _ in 0..25 {
                        write_atomic(&path, payload).expect("atomic write");
                        let seen = fs::read_to_string(&path).expect("readable");
                        assert!(payloads.contains(&seen), "file holds a torn mix of writers");
                    }
                });
            }
        });
        let seen = fs::read_to_string(&path).unwrap();
        assert!(payloads.contains(&seen));
        assert!(tmp_residue(&dir).is_empty());
        fs::remove_dir_all(&dir).ok();
    }
}
