//! Crash-safe file writes shared by every persist path in the workspace.
//!
//! A study killed mid-write (`kill -9`, OOM, power loss) must never leave
//! a torn `results/` artifact: resumption depends on every persisted file
//! being either the complete old version or the complete new one. The
//! standard recipe is write-to-sibling-temp, fsync, rename — rename within
//! one directory is atomic on POSIX filesystems.

use std::fs;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Sibling temp path for `path` (`<name>.tmp` in the same directory, so
/// the final rename never crosses a filesystem boundary).
fn temp_sibling(path: &Path) -> PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Atomically replaces the file at `path` with `contents`.
///
/// Creates parent directories as needed, writes `<path>.tmp`, fsyncs it,
/// then renames over `path`. The directory entry is fsynced best-effort
/// (not all platforms allow opening directories), which is the standard
/// durability/portability trade-off.
pub fn write_atomic(path: &Path, contents: &str) -> std::io::Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            fs::create_dir_all(parent)?;
        }
    }
    let tmp = temp_sibling(path);
    {
        let mut file = fs::File::create(&tmp)?;
        file.write_all(contents.as_bytes())?;
        file.sync_all()?;
    }
    fs::rename(&tmp, path)?;
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            // Durability of the rename itself; failure is not fatal.
            if let Ok(dir) = fs::File::open(parent) {
                let _ = dir.sync_all();
            }
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_and_replaces_contents() {
        let dir = std::env::temp_dir().join(format!("archpredict_persist_{}", std::process::id()));
        let path = dir.join("nested/artifact.csv");
        write_atomic(&path, "a,b\n1,2\n").expect("first write");
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n1,2\n");
        write_atomic(&path, "a,b\n3,4\n").expect("replace");
        assert_eq!(fs::read_to_string(&path).unwrap(), "a,b\n3,4\n");
        // No temp residue after a successful write.
        assert!(!temp_sibling(&path).exists());
        fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn stale_temp_file_is_overwritten_not_fatal() {
        let dir =
            std::env::temp_dir().join(format!("archpredict_persist_stale_{}", std::process::id()));
        fs::create_dir_all(&dir).unwrap();
        let path = dir.join("artifact.csv");
        // Simulate a kill mid-write from a previous run: a torn temp file.
        fs::write(temp_sibling(&path), "torn garba").unwrap();
        write_atomic(&path, "complete\n").expect("write over stale temp");
        assert_eq!(fs::read_to_string(&path).unwrap(), "complete\n");
        fs::remove_dir_all(&dir).ok();
    }
}
