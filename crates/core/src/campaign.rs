//! The campaign engine: one canonical train–estimate–refine loop shared by
//! every driver in the crate.
//!
//! The paper's contribution is a single procedure — sample, simulate, fit a
//! cross-validation ensemble, estimate error, refine (§3.3). A
//! [`Campaign`] owns that loop once, parameterized by two small knobs:
//!
//! * an [`Encoder`] mapping design-point indices to feature rows —
//!   [`PlainEncoder`] for single-application studies, [`AppEncoder`] for
//!   the cross-application model's one-hot application id
//!   ([`crate::crossapp`]);
//! * the point-selection [`crate::sampling::Strategy`] (uniform random, or
//!   query-by-committee active learning).
//!
//! [`crate::explorer::Explorer`] is a type alias for
//! `Campaign<_, PlainEncoder>`; [`crate::crossapp::CrossAppModel`] and
//! [`crate::multitask::fit_multitask_oracles`] drive their sampling
//! through the engine's [`collect_batch`] primitive. All of them share the
//! batch-first [`Oracle`] stack (caching, retries, quarantine, parallel
//! fan-out) and the audited [`seed_stream`] derivation map.
//!
//! Each [`Campaign::step`]:
//!
//! 1. selects a fresh batch of never-before-simulated design points;
//! 2. simulates them through the oracle, quarantining failures and drawing
//!    replacements until the round's budget is met ([`collect_batch`]);
//! 3. encodes the results and trains a k-fold cross-validation ensemble;
//! 4. records the cross-validation **estimate** of mean and standard
//!    deviation of percentage error over the full space.
//!
//! [`Campaign::run`] repeats until the estimated error reaches the target
//! or the sample budget is exhausted — the paper's "collect simulation
//! results until the error estimate is sufficiently low".
//!
//! # Fault tolerance
//!
//! The oracle is fallible: each batch returns one
//! [`crate::simulate::SimResult`] per point. Points whose evaluation fails
//! (after whatever retrying the oracle stack performs) are **quarantined**
//! — never drawn again, excluded from held-out sets — and the round draws
//! replacement points until its sample budget is met or the space runs
//! out, so a faulty backend degrades throughput, never correctness.
//!
//! # Checkpoint / resume
//!
//! With [`Campaign::enable_checkpoints`], the full exploration state is
//! atomically persisted after every round; [`Campaign::resume`] restores
//! it — RNG streams, sampler position, training set, quarantine, history —
//! and refits the last ensemble from its recorded seed, so a run killed at
//! any point continues bit-for-bit as if never interrupted.

// User-reachable failures must surface as typed `ExploreError`s, not
// panics; the lint holds this file to that (tests opt back out).
#![deny(clippy::unwrap_used)]

use crate::checkpoint::{ExplorerState, TrainSnapshot};
use crate::sampling::Strategy;
use crate::simulate::{Oracle, SimStats};
use crate::space::DesignSpace;
use crate::telemetry;
use archpredict_ann::cross_validation::{fit_ensemble, ErrorEstimate, FoldRecord};
use archpredict_ann::{Dataset, Ensemble, Parallelism, Sample, TrainConfig};
use archpredict_stats::describe::Accumulator;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::IncrementalSampler;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// The audited map of [`Xoshiro256::derive`] streams.
///
/// Every driver derives all of its decorrelated RNG streams from its one
/// master seed through `Xoshiro256::seed_from(seed).derive(stream)`, with
/// the stream numbers recorded here — no XOR'd magic constants scattered
/// through drivers. Streams are per-driver namespaces: two drivers may use
/// the same stream number because their master seeds differ.
pub mod seed_stream {
    /// Pooled-fit seed of the cross-application model
    /// ([`crate::crossapp::CrossAppModel::fit`]). Streams `1..=apps` of
    /// the same master seed belong to the per-application samplers
    /// ([`APP_SAMPLER_BASE`] + slot).
    pub const CROSSAPP_FIT: u64 = 0;
    /// Batch-selection sampler of a campaign (and of the multi-task
    /// driver, which samples through the same engine primitive).
    pub const SAMPLER: u64 = 1;
    /// Fit-seed stream: one `next_u64` per refinement round.
    pub const FIT: u64 = 2;
    /// Held-out evaluation-set draw ([`super::Campaign::held_out_set`]).
    pub const HELD_OUT: u64 = 3;
    /// The bench runner's truth evaluation-set draw.
    pub const BENCH_EVAL: u64 = 4;
    /// First per-application sampler stream of the cross-application
    /// model: application slot `s` samples from stream
    /// `APP_SAMPLER_BASE + s`.
    pub const APP_SAMPLER_BASE: u64 = 1;
}

/// Maps design-point indices to model feature rows.
///
/// The engine is generic over this so drivers that extend the plain
/// design-point encoding (the cross-application model's one-hot
/// application id, future context features) reuse the whole round loop,
/// prediction sweep, and checkpoint machinery unchanged. Implementations
/// must be pure functions of `(space, index)` — the parallel sweeps call
/// them from worker threads and the determinism contract depends on it.
pub trait Encoder: Sync {
    /// Features appended per index (the model's input width).
    fn width(&self, space: &DesignSpace) -> usize;

    /// Appends exactly [`Encoder::width`] features for `index` onto `out`.
    fn encode_into(&self, space: &DesignSpace, index: usize, out: &mut Vec<f64>);

    /// Convenience: the feature row for `index` as a fresh vector.
    fn encode(&self, space: &DesignSpace, index: usize) -> Vec<f64> {
        let mut out = Vec::with_capacity(self.width(space));
        self.encode_into(space, index, &mut out);
        out
    }

    /// A stable fingerprint of this encoding over `space` — the identity
    /// persisted model artifacts are stamped with
    /// ([`archpredict_ann::ModelHeader`]). The default folds the space's
    /// structural fingerprint with the encoded width; encoders whose
    /// output depends on more state than the space (the one-hot
    /// application slot, say) must fold that state in too, so two
    /// encoders that encode differently never fingerprint equal.
    fn fingerprint(&self, space: &DesignSpace) -> u64 {
        use archpredict_stats::hash::fnv1a_64_extend;
        let h = fnv1a_64_extend(
            archpredict_stats::hash::FNV_OFFSET,
            &space.fingerprint().to_le_bytes(),
        );
        fnv1a_64_extend(h, &(self.width(space) as u64).to_le_bytes())
    }
}

/// The paper's encoding: the design point's own normalized features,
/// nothing else.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PlainEncoder;

impl Encoder for PlainEncoder {
    fn width(&self, space: &DesignSpace) -> usize {
        space.encoded_width()
    }

    fn encode_into(&self, space: &DesignSpace, index: usize, out: &mut Vec<f64>) {
        space.encode_index_into(index, out);
    }
}

/// Design-point features plus a one-hot application id — the
/// cross-application model's encoding (§4.4): one pooled model over
/// several applications, told which application each row came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppEncoder {
    /// This application's slot in the one-hot block.
    pub slot: usize,
    /// Total applications (the one-hot block's width).
    pub apps: usize,
}

impl Encoder for AppEncoder {
    fn width(&self, space: &DesignSpace) -> usize {
        space.encoded_width() + self.apps
    }

    fn encode_into(&self, space: &DesignSpace, index: usize, out: &mut Vec<f64>) {
        space.encode_index_into(index, out);
        for slot in 0..self.apps {
            out.push(if slot == self.slot { 1.0 } else { 0.0 });
        }
    }

    fn fingerprint(&self, space: &DesignSpace) -> u64 {
        use archpredict_stats::hash::fnv1a_64_extend;
        let mut h = fnv1a_64_extend(
            archpredict_stats::hash::FNV_OFFSET,
            &space.fingerprint().to_le_bytes(),
        );
        h = fnv1a_64_extend(h, b"app-onehot");
        h = fnv1a_64_extend(h, &(self.slot as u64).to_le_bytes());
        h = fnv1a_64_extend(h, &(self.apps as u64).to_le_bytes());
        h
    }
}

/// Evaluates `initial` through the oracle, quarantining failures and
/// drawing replacements until the batch's budget is met or the sampler
/// runs dry — the engine's one shared evaluation primitive.
///
/// Every surviving `(index, value)` is handed to `on_success` in oracle
/// order; every failed index (after whatever retrying the oracle stack
/// performed) goes to `on_failure` and is replaced by a fresh draw from
/// `sampler`, with the replacement count recorded in
/// [`SimStats::resampled`]. Replacements come from the plain sampler
/// stream even under active learning — re-scoring a handful of fill-ins
/// is not worth a second committee sweep.
pub fn collect_batch<O: Oracle + ?Sized>(
    oracle: &O,
    space: &DesignSpace,
    sampler: &mut IncrementalSampler,
    initial: Vec<usize>,
    stats: &mut SimStats,
    mut on_success: impl FnMut(usize, f64),
    mut on_failure: impl FnMut(usize),
) {
    let mut pending = initial;
    loop {
        let results = oracle.evaluate_batch(space, &pending, stats);
        let mut failed = 0usize;
        for (&index, result) in pending.iter().zip(&results) {
            match result {
                Ok(value) => on_success(index, *value),
                Err(_) => {
                    on_failure(index);
                    failed += 1;
                }
            }
        }
        if failed == 0 {
            break;
        }
        let replacements = sampler.next_batch(failed);
        if replacements.is_empty() {
            break;
        }
        stats.resampled += replacements.len() as u64;
        pending = replacements;
    }
}

/// Why a refinement round (or model query) could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The training set (after drawing whatever points remained) is still
    /// smaller than the three folds cross-validation needs. Configure a
    /// larger batch, or step again once more points are available.
    TooFewSamples {
        /// Samples collected so far.
        have: usize,
    },
    /// Every point in the design space has been simulated and the training
    /// set is empty — there is nothing to train on.
    SpaceExhausted,
    /// A prediction was requested before any round trained an ensemble.
    NoEnsemble,
    /// A true-error measurement was requested with no held-out points (or
    /// every held-out evaluation failed).
    EmptyHeldOut,
    /// Checkpoint persistence or restoration failed.
    Checkpoint(String),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::TooFewSamples { have } => write!(
                f,
                "training set has {have} sample(s); cross-validation needs at least 3"
            ),
            ExploreError::SpaceExhausted => {
                write!(f, "design space exhausted with no training data")
            }
            ExploreError::NoEnsemble => write!(f, "no ensemble trained yet"),
            ExploreError::EmptyHeldOut => write!(f, "need held-out points"),
            ExploreError::Checkpoint(message) => write!(f, "checkpoint failed: {message}"),
        }
    }
}

impl std::error::Error for ExploreError {}

/// Campaign policy (exploration policy of one driver run).
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Simulations added per refinement round (the paper uses 50).
    pub batch: usize,
    /// Cross-validation folds (the paper uses 10).
    pub folds: usize,
    /// Stop once the estimated mean percentage error falls below this.
    pub target_error: f64,
    /// Hard cap on total simulations.
    pub max_samples: usize,
    /// Network training hyperparameters.
    pub train: TrainConfig,
    /// How new design points are chosen each round.
    pub strategy: Strategy,
    /// Master seed for sampling and training (streams derived per
    /// [`seed_stream`]).
    pub seed: u64,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        Self {
            batch: 50,
            folds: 10,
            target_error: 1.0,
            max_samples: 2_000,
            train: TrainConfig::default(),
            strategy: Strategy::Random,
            seed: 0x00A5_CEED,
        }
    }
}

/// One refinement round's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Round {
    /// Training-set size after this round.
    pub samples: usize,
    /// Fraction of the full space simulated so far.
    pub fraction_sampled: f64,
    /// Cross-validation error estimate.
    pub estimate: ErrorEstimate,
    /// Wall-clock seconds spent training this round's ensemble (all folds,
    /// as observed by the caller — folds training in parallel overlap here).
    pub training_seconds: f64,
    /// Wall-clock seconds spent simulating this round's batch.
    pub simulation_seconds: f64,
    /// Simulation telemetry for this round's batch: unique simulations,
    /// cache hits, and simulated instructions, as reported by the oracle.
    /// Keeps the Figs. 5.6/5.7 reduction-factor accounting honest when
    /// the oracle caches or deduplicates.
    pub simulation: SimStats,
    /// Wall-clock seconds spent in ensemble prediction this round —
    /// query-by-committee candidate scoring under the active-learning
    /// strategy (0 for random sampling, which predicts nothing).
    pub prediction_seconds: f64,
    /// Per-fold training telemetry (epochs, best early-stopping error,
    /// per-fold wall seconds), in fold order.
    pub folds: Vec<FoldRecord>,
}

impl Round {
    /// Mean epochs per fold this round (0 if telemetry is empty).
    pub fn mean_epochs(&self) -> f64 {
        if self.folds.is_empty() {
            return 0.0;
        }
        self.folds.iter().map(|f| f.epochs as f64).sum::<f64>() / self.folds.len() as f64
    }
}

/// True (measured) model error on held-out points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrueError {
    /// Mean absolute percentage error.
    pub mean: f64,
    /// Standard deviation of the percentage error.
    pub std_dev: f64,
    /// Held-out points measured.
    pub points: u64,
}

/// The train–estimate–refine engine, generic over the oracle backend and
/// the feature [`Encoder`].
pub struct Campaign<'a, O: Oracle, C: Encoder = PlainEncoder> {
    space: &'a DesignSpace,
    evaluator: &'a O,
    encoder: C,
    config: CampaignConfig,
    sampler: IncrementalSampler,
    rng: Xoshiro256,
    dataset: Dataset,
    sampled_indices: Vec<usize>,
    /// Measured metric per entry of `sampled_indices` (kept so checkpoints
    /// can rebuild the training set without re-simulating).
    sample_values: Vec<f64>,
    /// Indices whose evaluation failed for good; never drawn again.
    quarantined: BTreeSet<usize>,
    ensemble: Option<Ensemble>,
    history: Vec<Round>,
    checkpoint_dir: Option<PathBuf>,
    /// Seed and hyperparameters of the most recent `fit_ensemble`, so a
    /// resume can refit the identical ensemble.
    last_fit_seed: Option<u64>,
    last_train: Option<TrainSnapshot>,
}

impl<'a, O: Oracle> Campaign<'a, O, PlainEncoder> {
    /// Creates a campaign over `space` backed by `evaluator`, with the
    /// paper's plain design-point encoding.
    pub fn new(space: &'a DesignSpace, evaluator: &'a O, config: CampaignConfig) -> Self {
        Self::with_encoder(space, evaluator, config, PlainEncoder)
    }

    /// Restores a campaign from the checkpoint directory written by a
    /// previous run with [`Campaign::enable_checkpoints`].
    ///
    /// Every stochastic stream (sampler, training seeds) resumes exactly
    /// where the checkpoint froze it, the last round's ensemble is refit
    /// from its recorded seed (bit-for-bit identical at any thread count),
    /// and checkpointing stays enabled on the same directory — so the
    /// resumed run's remaining rounds are indistinguishable from an
    /// uninterrupted run's.
    ///
    /// `config` must carry the same `seed` the checkpointed run used and
    /// `space` must have the same size; both are validated. Fields that do
    /// not affect results (e.g. `train.parallelism`) may differ.
    pub fn resume(
        space: &'a DesignSpace,
        evaluator: &'a O,
        config: CampaignConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, ExploreError> {
        Self::resume_with_encoder(space, evaluator, config, PlainEncoder, dir)
    }
}

impl<'a, O: Oracle, C: Encoder> Campaign<'a, O, C> {
    /// Creates a campaign with a caller-supplied feature encoder (the
    /// checkpoint records only `(index, value)` pairs, so a resume must
    /// pass the same encoder).
    pub fn with_encoder(
        space: &'a DesignSpace,
        evaluator: &'a O,
        config: CampaignConfig,
        encoder: C,
    ) -> Self {
        let rng = Xoshiro256::seed_from(config.seed);
        Self {
            sampler: IncrementalSampler::new(space.size(), rng.derive(seed_stream::SAMPLER)),
            rng: rng.derive(seed_stream::FIT),
            space,
            evaluator,
            encoder,
            config,
            dataset: Dataset::new(),
            sampled_indices: Vec::new(),
            sample_values: Vec::new(),
            quarantined: BTreeSet::new(),
            ensemble: None,
            history: Vec::new(),
            checkpoint_dir: None,
            last_fit_seed: None,
            last_train: None,
        }
    }

    /// [`Campaign::resume`] with a caller-supplied encoder — it must be
    /// the encoder the checkpointed run used, since the training set is
    /// re-encoded from the checkpoint's `(index, value)` pairs.
    pub fn resume_with_encoder(
        space: &'a DesignSpace,
        evaluator: &'a O,
        config: CampaignConfig,
        encoder: C,
        dir: impl AsRef<Path>,
    ) -> Result<Self, ExploreError> {
        let dir = dir.as_ref();
        let state =
            ExplorerState::load(dir).map_err(|e| ExploreError::Checkpoint(e.to_string()))?;
        if state.seed != config.seed {
            return Err(ExploreError::Checkpoint(format!(
                "checkpoint was taken under seed {:#018x}, config has {:#018x}",
                state.seed, config.seed
            )));
        }
        if state.space_size != space.size() {
            return Err(ExploreError::Checkpoint(format!(
                "checkpoint space has {} points, this space has {}",
                state.space_size,
                space.size()
            )));
        }
        let mut dataset = Dataset::new();
        let mut sampled_indices = Vec::with_capacity(state.samples.len());
        let mut sample_values = Vec::with_capacity(state.samples.len());
        for &(index, value) in &state.samples {
            if index >= space.size() {
                return Err(ExploreError::Checkpoint(format!(
                    "checkpoint sample index {index} out of space"
                )));
            }
            dataset.push(Sample::new(encoder.encode(space, index), value));
            sampled_indices.push(index);
            sample_values.push(value);
        }
        let ensemble = match (state.last_fit_seed, &state.last_train, state.rounds.last()) {
            (Some(fit_seed), Some(train), Some(last_round)) => {
                let folds = last_round.folds.len();
                let train = train.to_config(config.train.parallelism);
                Some(fit_ensemble(&dataset, folds, &train, fit_seed).ensemble)
            }
            _ => None,
        };
        Ok(Self {
            sampler: IncrementalSampler::from_state(&state.sampler),
            rng: Xoshiro256::from_state(state.rng),
            space,
            evaluator,
            encoder,
            config,
            dataset,
            sampled_indices,
            sample_values,
            quarantined: state.quarantined.iter().copied().collect(),
            ensemble,
            history: state.rounds,
            checkpoint_dir: Some(dir.to_path_buf()),
            last_fit_seed: state.last_fit_seed,
            last_train: state.last_train,
        })
    }

    /// Enables crash-safe checkpointing: after every completed round the
    /// full exploration state is atomically written to `dir/state.json`
    /// (see [`crate::checkpoint`]). Returns the campaign for chaining.
    pub fn enable_checkpoints(&mut self, dir: impl Into<PathBuf>) -> &mut Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// The checkpoint directory, when checkpointing is enabled.
    pub fn checkpoint_dir(&self) -> Option<&Path> {
        self.checkpoint_dir.as_deref()
    }

    /// A restorable snapshot of the current exploration state.
    pub fn snapshot(&self) -> ExplorerState {
        ExplorerState {
            seed: self.config.seed,
            space_size: self.space.size(),
            rng: self.rng.state(),
            sampler: self.sampler.state(),
            samples: self
                .sampled_indices
                .iter()
                .copied()
                .zip(self.sample_values.iter().copied())
                .collect(),
            quarantined: self.quarantined.iter().copied().collect(),
            last_fit_seed: self.last_fit_seed,
            last_train: self.last_train.clone(),
            rounds: self.history.clone(),
        }
    }

    /// The exploration history so far (one [`Round`] per step).
    pub fn history(&self) -> &[Round] {
        &self.history
    }

    /// Indices of all design points simulated so far.
    pub fn sampled_indices(&self) -> &[usize] {
        &self.sampled_indices
    }

    /// Indices whose evaluation failed permanently, in ascending order.
    /// These are excluded from future batches and held-out sets.
    pub fn quarantined(&self) -> Vec<usize> {
        self.quarantined.iter().copied().collect()
    }

    /// The current ensemble, once at least one round has run.
    pub fn ensemble(&self) -> Option<&Ensemble> {
        self.ensemble.as_ref()
    }

    /// Training-set size so far.
    pub fn samples(&self) -> usize {
        self.dataset.len()
    }

    /// Replaces the network-training hyperparameters used by subsequent
    /// rounds (e.g. to scale epoch budgets to the growing training set).
    pub fn set_train_config(&mut self, train: TrainConfig) {
        self.config.train = train;
    }

    /// The trained ensemble, or [`ExploreError::NoEnsemble`] before the
    /// first round.
    fn require_ensemble(&self) -> Result<&Ensemble, ExploreError> {
        self.ensemble.as_ref().ok_or(ExploreError::NoEnsemble)
    }

    /// Predicts the metric at an arbitrary design point, or
    /// [`ExploreError::NoEnsemble`] before the first round.
    pub fn try_predict(&self, index: usize) -> Result<f64, ExploreError> {
        let ensemble = self.require_ensemble()?;
        Ok(ensemble.predict(&self.encoder.encode(self.space, index)))
    }

    /// Predicts the metric at an arbitrary design point.
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet ([`Campaign::try_predict`] returns
    /// the condition as a typed error instead).
    pub fn predict(&self, index: usize) -> f64 {
        self.try_predict(index).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Predicts the metric at each of the given design-point indices via
    /// the batched inference path, parallelized per the configured
    /// [`Parallelism`] knob. Bit-for-bit identical to calling
    /// [`Campaign::predict`] per index, at any thread count. Errors with
    /// [`ExploreError::NoEnsemble`] before the first round.
    pub fn try_predict_indices(&self, indices: &[usize]) -> Result<Vec<f64>, ExploreError> {
        let ensemble = self.require_ensemble()?;
        Ok(crate::infer::sweep_encoded(
            ensemble,
            indices,
            self.parallelism(),
            |index, rows| self.encoder.encode_into(self.space, index, rows),
            self.encoder.width(self.space),
        ))
    }

    /// Infallible [`Campaign::try_predict_indices`].
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn predict_indices(&self, indices: &[usize]) -> Vec<f64> {
        self.try_predict_indices(indices)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Predicts the metric over the **entire** design space, in index
    /// order — the paper's payoff step. Chunked and parallelized per the
    /// configured [`Parallelism`] knob; the output is bit-for-bit
    /// identical for every setting. Errors with
    /// [`ExploreError::NoEnsemble`] before the first round.
    pub fn try_predict_space(&self) -> Result<Vec<f64>, ExploreError> {
        self.try_predict_space_with(self.parallelism())
    }

    /// Infallible [`Campaign::try_predict_space`].
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn predict_space(&self) -> Vec<f64> {
        self.try_predict_space().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Campaign::try_predict_space`] with an explicit worker policy
    /// (exposed so callers and tests can pin or sweep thread counts).
    pub fn try_predict_space_with(
        &self,
        parallelism: Parallelism,
    ) -> Result<Vec<f64>, ExploreError> {
        let ensemble = self.require_ensemble()?;
        let indices: Vec<usize> = (0..self.space.size()).collect();
        Ok(crate::infer::sweep_encoded(
            ensemble,
            &indices,
            parallelism,
            |index, rows| self.encoder.encode_into(self.space, index, rows),
            self.encoder.width(self.space),
        ))
    }

    /// Infallible [`Campaign::try_predict_space_with`].
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn predict_space_with(&self, parallelism: Parallelism) -> Vec<f64> {
        self.try_predict_space_with(parallelism)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Ranks every design point by predicted metric, best (highest)
    /// first, with ties broken by index so the ranking is deterministic.
    /// This is "find the best configuration without simulating the
    /// space": a full-space sweep plus one sort. Errors with
    /// [`ExploreError::NoEnsemble`] before the first round.
    pub fn try_rank_space(&self) -> Result<Vec<usize>, ExploreError> {
        let predictions = self.try_predict_space()?;
        let mut order: Vec<usize> = (0..predictions.len()).collect();
        order.sort_by(|&a, &b| predictions[b].total_cmp(&predictions[a]).then(a.cmp(&b)));
        Ok(order)
    }

    /// Infallible [`Campaign::try_rank_space`].
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn rank_space(&self) -> Vec<usize> {
        self.try_rank_space().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The worker policy governing batched prediction sweeps (shared with
    /// fold training).
    fn parallelism(&self) -> Parallelism {
        self.config.train.parallelism
    }

    /// Runs one refinement round; returns the new round's record.
    ///
    /// Any points drawn and simulated are kept in the training set even on
    /// error, so a failed round wastes no simulations — stepping again with
    /// more points available can succeed.
    pub fn try_step(&mut self) -> Result<&Round, ExploreError> {
        let _round_span = telemetry::span("campaign.round");
        // 1. Choose fresh points. Under active learning with a trained
        // ensemble this scores candidates through the batched inference
        // path — that is the round's prediction work, so time it.
        let scoring =
            self.ensemble.is_some() && matches!(self.config.strategy, Strategy::Active { .. });
        let selection_started = std::time::Instant::now();
        let select_span = telemetry::span("campaign.select");
        let parallelism = self.parallelism();
        let batch = match self.config.strategy {
            Strategy::Random => self.sampler.next_batch(self.config.batch),
            Strategy::Active { pool_factor } => {
                let (space, encoder) = (self.space, &self.encoder);
                crate::sampling::active_batch(
                    &mut self.sampler,
                    self.ensemble.as_ref(),
                    self.config.batch,
                    pool_factor,
                    parallelism,
                    |index, rows| encoder.encode_into(space, index, rows),
                    encoder.width(space),
                )
            }
        };
        drop(select_span);
        let prediction_seconds = if scoring {
            selection_started.elapsed().as_secs_f64()
        } else {
            0.0
        };
        if batch.is_empty() && self.dataset.is_empty() {
            return Err(ExploreError::SpaceExhausted);
        }
        // 2. Simulate them through the batch-first oracle, keeping its
        // telemetry for the round record. Failed points are quarantined
        // and replaced by fresh draws until the round's budget is met or
        // the space runs dry, so a faulty backend cannot starve the
        // training set.
        let sim_started = std::time::Instant::now();
        let collect_span = telemetry::span("campaign.collect");
        let mut simulation = SimStats::default();
        let Self {
            evaluator,
            space,
            encoder,
            sampler,
            dataset,
            sampled_indices,
            sample_values,
            quarantined,
            ..
        } = self;
        collect_batch(
            *evaluator,
            space,
            sampler,
            batch,
            &mut simulation,
            |index, value| {
                dataset.push(Sample::new(encoder.encode(space, index), value));
                sampled_indices.push(index);
                sample_values.push(value);
            },
            |index| {
                quarantined.insert(index);
            },
        );
        drop(collect_span);
        let simulation_seconds = sim_started.elapsed().as_secs_f64();
        // 3. Train the cross-validation ensemble, with the fold count
        // clamped to the training-set size (a tiny first batch would
        // otherwise request more folds than there are samples).
        let folds = self.config.folds.min(self.dataset.len());
        if folds < 3 {
            return Err(ExploreError::TooFewSamples {
                have: self.dataset.len(),
            });
        }
        let started = std::time::Instant::now();
        let fit_span = telemetry::span("campaign.fit");
        let fit_seed = self.rng.next_u64();
        let fit = fit_ensemble(&self.dataset, folds, &self.config.train, fit_seed);
        drop(fit_span);
        let training_seconds = started.elapsed().as_secs_f64();
        self.ensemble = Some(fit.ensemble);
        self.last_fit_seed = Some(fit_seed);
        self.last_train = Some(TrainSnapshot::of(&self.config.train));
        // 4. Record the estimate. The round's deterministic SimStats delta
        // is mirrored into the process-wide telemetry counters here — once
        // per round, after the per-round bookkeeping is final.
        telemetry::record_sim(&simulation);
        telemetry::CAMPAIGN_ROUNDS.incr();
        self.history.push(Round {
            samples: self.dataset.len(),
            fraction_sampled: self.dataset.len() as f64 / self.space.size() as f64,
            estimate: fit.estimate,
            training_seconds,
            simulation_seconds,
            simulation,
            prediction_seconds,
            folds: fit.folds,
        });
        // 5. Persist the post-round state (atomic, so a kill at any moment
        // leaves either the previous complete checkpoint or this one).
        if let Some(dir) = self.checkpoint_dir.clone() {
            self.snapshot()
                .save(&dir)
                .map_err(|e| ExploreError::Checkpoint(e.to_string()))?;
        }
        Ok(self.history.last().expect("just pushed"))
    }

    /// Runs one refinement round; returns the new round's record.
    ///
    /// # Panics
    ///
    /// Panics if the round cannot run ([`Campaign::try_step`] returns the
    /// condition as a typed error instead).
    pub fn step(&mut self) -> &Round {
        if let Err(e) = self.try_step() {
            panic!("exploration step failed: {e}");
        }
        self.history.last().expect("just stepped")
    }

    /// Steps until the estimated mean error reaches the configured target,
    /// the sample cap is hit, or the space is exhausted. Returns the final
    /// round.
    pub fn try_run(&mut self) -> Result<&Round, ExploreError> {
        loop {
            self.try_step()?;
            let round = self.history.last().expect("stepped");
            let done = round.estimate.mean <= self.config.target_error
                || self.dataset.len() >= self.config.max_samples
                || self.sampler.remaining() == 0;
            if done {
                break;
            }
        }
        Ok(self.history.last().expect("at least one round ran"))
    }

    /// Steps until the estimated mean error reaches the configured target,
    /// the sample cap is hit, or the space is exhausted. Returns the final
    /// round.
    ///
    /// # Panics
    ///
    /// Panics if a round cannot run (empty space, or batches too small to
    /// ever reach three samples); [`Campaign::try_run`] surfaces the typed
    /// error instead.
    pub fn run(&mut self) -> &Round {
        if let Err(e) = self.try_run() {
            panic!("exploration failed: {e}");
        }
        self.history.last().expect("at least one round ran")
    }

    /// Measures the model's *true* error on `held_out` point indices
    /// (simulating any that were never simulated — callers typically pass a
    /// fixed random evaluation set disjoint from the training set).
    /// Held-out points whose evaluation fails are skipped — the error is
    /// measured over the surviving points, reported in
    /// [`TrueError::points`].
    ///
    /// Errors if `held_out` is empty, every evaluation failed, or no round
    /// has run yet.
    pub fn try_true_error(&self, held_out: &[usize]) -> Result<TrueError, ExploreError> {
        if held_out.is_empty() {
            return Err(ExploreError::EmptyHeldOut);
        }
        let mut stats = SimStats::default();
        let actuals = self
            .evaluator
            .evaluate_batch(self.space, held_out, &mut stats);
        let predictions = self.try_predict_indices(held_out)?;
        let mut acc = Accumulator::new();
        for (&predicted, actual) in predictions.iter().zip(&actuals) {
            if let Ok(actual) = actual {
                acc.add(100.0 * (predicted - actual).abs() / actual.abs().max(1e-12));
            }
        }
        if acc.count() == 0 {
            return Err(ExploreError::EmptyHeldOut);
        }
        Ok(TrueError {
            mean: acc.mean(),
            std_dev: acc.population_std_dev(),
            points: acc.count(),
        })
    }

    /// Infallible [`Campaign::try_true_error`].
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet or `held_out` is empty.
    pub fn true_error(&self, held_out: &[usize]) -> TrueError {
        self.try_true_error(held_out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Draws `count` indices that have *not* been simulated, for true-error
    /// evaluation. Deterministic given the campaign's seed (drawn from the
    /// [`seed_stream::HELD_OUT`] stream).
    ///
    /// The complement of the sampled set is built directly and a random
    /// prefix of it is returned, so cost stays `O(space + count)` even when
    /// nearly every point has been simulated (a rejection loop would
    /// degenerate into coupon collecting there). When fewer than `count`
    /// unsimulated points remain, all of them are returned — callers must
    /// not assume the result has exactly `count` elements.
    pub fn held_out_set(&self, count: usize) -> Vec<usize> {
        let sampled: std::collections::HashSet<usize> =
            self.sampled_indices.iter().copied().collect();
        let mut complement: Vec<usize> = (0..self.space.size())
            .filter(|i| !sampled.contains(i) && !self.quarantined.contains(i))
            .collect();
        let want = count.min(complement.len());
        let mut rng = Xoshiro256::seed_from(self.config.seed).derive(seed_stream::HELD_OUT);
        archpredict_stats::sampling::partial_shuffle(&mut complement, want, &mut rng);
        complement.truncate(want);
        complement
    }
}
