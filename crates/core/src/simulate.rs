//! The simulation oracle: the bridge between design points and the
//! simulator.
//!
//! The paper views the simulator as a function `SIM(p0..pM, A)` (§2). This
//! module makes **batch evaluation the primitive**: an [`Oracle`] answers
//! "what is the metric at each of these design-point indices?" in one
//! call, recording [`SimStats`] telemetry (unique simulations, cache hits,
//! simulated instructions, wall seconds) as it goes. Point-at-a-time
//! simulators implement the leaf trait [`PointEvaluator`] — the literal
//! `SIM(p, A)` function — and become batch-first oracles automatically via
//! a blanket impl whose fan-out respects the shared [`Parallelism`] knob
//! (with an `ARCHPREDICT_SIM_THREADS` override, mirroring training's
//! `ARCHPREDICT_TRAIN_THREADS`).
//!
//! Three leaf evaluators are provided: the full [`StudyEvaluator`], the
//! noisy-but-cheap [`SimPointEvaluator`] (§5.3), and — in sibling modules —
//! the SMARTS and multi-task evaluators. [`CachedEvaluator`] wraps any of
//! them in a **sharded** memo cache with in-batch deduplication, so a
//! batch containing duplicates — or parallel worker threads — never
//! simulates the same configuration twice, and offers a plain-CSV
//! [`CachedEvaluator::persist`]/[`CachedEvaluator::load`] path so
//! interrupted experiments resume without re-simulating.
//!
//! # Fallibility
//!
//! Real simulator backends crash, hang, and emit garbage. Batch results
//! are therefore **per-index [`SimResult`]s**: a fault at one index
//! ([`SimError`]) never poisons its batchmates. [`RetryingOracle`] wraps
//! any oracle with a bounded, deterministically-seeded retry policy and a
//! persistent quarantine set for permanently failing points;
//! [`crate::fault::FaultInjectingOracle`] injects seeded faults for
//! testing the whole stack. Indices that still fail after the stack's
//! retries are replaced with fresh draws by the campaign engine's
//! [`crate::campaign::collect_batch`] loop, which every driver —
//! single-application, cross-application and multi-task — samples
//! through.
//!
//! # Determinism contract
//!
//! Batch results are **bit-for-bit identical** at every [`Parallelism`]
//! setting: each output depends only on its own design-point index,
//! workers own disjoint contiguous spans of the (deduplicated) work list,
//! and spans are merged in input order — the same contract parallel fold
//! training and the batched inference sweep already honor. The guarantee
//! covers errors too: which indices fail, and how, is independent of the
//! thread count.

use crate::persist::write_atomic;
use crate::space::{DesignPoint, DesignSpace};
use crate::studies::Study;
use crate::telemetry::Counter;
use archpredict_ann::Parallelism;
use archpredict_sim::simulate_with_warmup;
use archpredict_simpoint::SimPointPlan;
use archpredict_stats::rng::Xoshiro256;
use archpredict_workloads::{Benchmark, TraceGenerator};
use std::collections::{BTreeSet, HashMap};
use std::path::Path;
use std::sync::Mutex;
use std::time::Instant;

/// Why a single design-point evaluation failed.
///
/// The taxonomy mirrors what flaky cycle-accurate backends actually do:
/// transient infrastructure hiccups, hard crashes, garbage output, and
/// hangs. [`SimError::is_retriable`] encodes the retry policy's view of
/// each mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SimError {
    /// A transient infrastructure failure (I/O blip, lost worker); the
    /// same point may well succeed on retry.
    Transient,
    /// The simulator process crashed on this configuration.
    Crashed,
    /// The simulator returned a non-finite metric (NaN/Inf). Deterministic
    /// simulators return the same garbage again, so this is not retried.
    NonFinite,
    /// The simulation exceeded its time budget.
    TimedOut,
    /// The point is in a [`RetryingOracle`]'s quarantine set and was not
    /// re-attempted.
    Quarantined,
}

impl SimError {
    /// Whether a retry can plausibly succeed. `NonFinite` (deterministic
    /// garbage) and `Quarantined` (already given up) are permanent;
    /// everything else is worth re-attempting.
    pub fn is_retriable(self) -> bool {
        matches!(
            self,
            SimError::Transient | SimError::Crashed | SimError::TimedOut
        )
    }
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Transient => write!(f, "transient simulation failure"),
            SimError::Crashed => write!(f, "simulator crashed"),
            SimError::NonFinite => write!(f, "simulator returned a non-finite metric"),
            SimError::TimedOut => write!(f, "simulation timed out"),
            SimError::Quarantined => write!(f, "design point is quarantined"),
        }
    }
}

impl std::error::Error for SimError {}

/// Per-index outcome of a batch evaluation.
pub type SimResult = Result<f64, SimError>;

/// Environment variable overriding the `Parallelism::Auto` worker count
/// for batch simulation (the simulation leg's analogue of training's
/// `ARCHPREDICT_TRAIN_THREADS`).
pub const ENV_SIM_THREADS: &str = "ARCHPREDICT_SIM_THREADS";

/// Telemetry for one or more oracle calls: how much simulation actually
/// happened, and how much the cache saved.
///
/// Counters are additive — pass the same record through several calls to
/// accumulate, or [`SimStats::merge`] records from independent calls.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct SimStats {
    /// Simulator invocations: configurations actually simulated. Under
    /// [`CachedEvaluator`] this counts *unique* points only (duplicates
    /// and cached points are served without simulating).
    pub unique_simulations: u64,
    /// Evaluations served without simulating: memo-cache hits plus
    /// in-batch duplicates of a point already being simulated.
    pub cache_hits: u64,
    /// Instructions simulated (evaluation *attempts* × the evaluator's
    /// per-evaluation budget — failed attempts burn simulator work too) —
    /// the Figs. 5.6/5.7 reduction-factor currency.
    pub simulated_instructions: u64,
    /// Wall-clock seconds spent inside the oracle.
    pub wall_seconds: f64,
    /// Evaluation attempts that returned a [`SimError`], counted where the
    /// error originated (the faulty backend or injector, not the retry
    /// wrapper). Quarantine short-circuits are not counted here.
    pub failures: u64,
    /// Re-attempts issued by [`RetryingOracle`] after retriable failures.
    pub retries: u64,
    /// Indices a [`RetryingOracle`] gave up on and quarantined.
    pub quarantined: u64,
    /// Replacement draws made by the explorer to backfill failed points so
    /// a round still reaches its sample budget.
    pub resampled: u64,
}

impl SimStats {
    /// Total evaluations answered (simulated + served from cache).
    pub fn evaluations(&self) -> u64 {
        self.unique_simulations + self.cache_hits
    }

    /// Adds another record's counters into this one. This is the **only**
    /// way records combine — every accumulation site (campaign rounds,
    /// cross-app pooling, multi-task fits, distributed spans) goes through
    /// here. The exhaustive destructuring makes field coverage a compile
    /// error to miss: adding a field to [`SimStats`] breaks this function
    /// (and its coverage test) until the field is merged.
    pub fn merge(&mut self, other: &SimStats) {
        let SimStats {
            unique_simulations,
            cache_hits,
            simulated_instructions,
            wall_seconds,
            failures,
            retries,
            quarantined,
            resampled,
        } = *other;
        self.unique_simulations += unique_simulations;
        self.cache_hits += cache_hits;
        self.simulated_instructions += simulated_instructions;
        self.wall_seconds += wall_seconds;
        self.failures += failures;
        self.retries += retries;
        self.quarantined += quarantined;
        self.resampled += resampled;
    }
}

/// The batch-first simulation backend: the simulator-as-a-function
/// abstraction of §2, vectorized.
///
/// Implementors answer whole batches at once (fanning out across worker
/// threads, deduplicating, caching — whatever the backend does best) and
/// account for the work in the caller's [`SimStats`]. Point-at-a-time
/// simulators should implement [`PointEvaluator`] instead and inherit this
/// trait through the blanket impl.
pub trait Oracle: Sync {
    /// The target metric (IPC in the paper) at each design-point index of
    /// `space`, in input order — one [`SimResult`] per index, so a fault
    /// at one point never poisons its batchmates. Telemetry is added into
    /// `stats`.
    fn evaluate_batch(
        &self,
        space: &DesignSpace,
        indices: &[usize],
        stats: &mut SimStats,
    ) -> Vec<SimResult>;

    /// Single-point adapter: a one-element batch (telemetry discarded).
    fn evaluate_index(&self, space: &DesignSpace, index: usize) -> SimResult {
        let mut stats = SimStats::default();
        self.evaluate_batch(space, std::slice::from_ref(&index), &mut stats)
            .pop()
            // Invariant: evaluate_batch returns one result per index.
            .expect("one result for one index")
    }
}

/// A point-at-a-time simulator function — the literal `SIM(p, A)` of §2.
///
/// Every `PointEvaluator` is an [`Oracle`]: the blanket impl fans batches
/// out across scoped worker threads per [`PointEvaluator::parallelism`]
/// (deterministically — see the module docs). Implement this trait for
/// anything that simulates one configuration at a time; implement
/// [`Oracle`] directly only for backends with a smarter batch story
/// (e.g. [`CachedEvaluator`]).
pub trait PointEvaluator: Sync {
    /// The target metric (IPC in the paper) at `point`.
    fn evaluate(&self, point: &DesignPoint) -> f64;

    /// Fallible evaluation. The default wraps [`PointEvaluator::evaluate`]
    /// and converts a non-finite metric into [`SimError::NonFinite`], so
    /// every leaf gets garbage-output detection for free; backends with
    /// richer failure modes (crashes, timeouts) override this.
    fn try_evaluate(&self, point: &DesignPoint) -> SimResult {
        let value = self.evaluate(point);
        if value.is_finite() {
            Ok(value)
        } else {
            Err(SimError::NonFinite)
        }
    }

    /// Instructions one evaluation simulates (for the reduction-factor
    /// accounting of Figs. 5.6/5.7).
    fn instructions_per_evaluation(&self) -> u64;

    /// Worker policy for the batch fan-out (`Auto` honors
    /// [`ENV_SIM_THREADS`]). Results are identical for every setting; this
    /// only affects wall-clock time.
    fn parallelism(&self) -> Parallelism {
        Parallelism::Auto
    }

    /// Backends that distribute whole batches themselves — e.g. the
    /// multi-process [`crate::distributed::ProcessPoolOracle`] — override
    /// this to claim the span fan-out. Returning `Some(results)` (one
    /// [`SimResult`] per index, in input order) replaces the default
    /// scoped-thread fan-out entirely; returning `None` (the default)
    /// keeps it. Implementations must honor the module's determinism
    /// contract: results depend only on their own index, never on how the
    /// batch was split.
    fn dispatch_batch(&self, _space: &DesignSpace, _indices: &[usize]) -> Option<Vec<SimResult>> {
        None
    }
}

impl<E: PointEvaluator> Oracle for E {
    fn evaluate_batch(
        &self,
        space: &DesignSpace,
        indices: &[usize],
        stats: &mut SimStats,
    ) -> Vec<SimResult> {
        evaluate_indices(self, space, indices, self.parallelism(), stats)
    }
}

/// Evaluates `indices` through `evaluator` with an explicit worker policy,
/// fanning out across scoped threads and recording telemetry. Results are
/// in input order and bit-for-bit identical at every `parallelism`.
///
/// This is the raw fan-out (no caching, no deduplication): a batch with
/// duplicate indices simulates each occurrence. Wrap the evaluator in a
/// [`CachedEvaluator`] to get dedup and memoization, and a
/// [`RetryingOracle`] to get retry/quarantine handling of failures.
pub fn evaluate_indices<E: PointEvaluator + ?Sized>(
    evaluator: &E,
    space: &DesignSpace,
    indices: &[usize],
    parallelism: Parallelism,
    stats: &mut SimStats,
) -> Vec<SimResult> {
    let started = Instant::now();
    let results = fan_out(evaluator, space, indices, parallelism);
    let failed = results.iter().filter(|r| r.is_err()).count() as u64;
    stats.unique_simulations += indices.len() as u64 - failed;
    stats.failures += failed;
    // Failed attempts burn simulator work too.
    stats.simulated_instructions += indices.len() as u64 * evaluator.instructions_per_evaluation();
    stats.wall_seconds += started.elapsed().as_secs_f64();
    results
}

/// The scoped-thread fan-out shared by the blanket impl and the cached
/// oracle's miss path. Workers own disjoint contiguous spans of the output
/// and each result depends only on its own index, so the outcome — values
/// *and* errors — is identical at every worker count.
fn fan_out<E: PointEvaluator + ?Sized>(
    evaluator: &E,
    space: &DesignSpace,
    indices: &[usize],
    parallelism: Parallelism,
) -> Vec<SimResult> {
    // Self-distributing backends (process pools) claim the whole span
    // fan-out; the thread policy below only governs in-process workers.
    if let Some(results) = evaluator.dispatch_batch(space, indices) {
        assert_eq!(
            results.len(),
            indices.len(),
            "dispatch_batch must return one result per index"
        );
        return results;
    }
    let workers = parallelism.worker_count_with_env(indices.len(), ENV_SIM_THREADS);
    if workers <= 1 || indices.len() < 2 {
        return indices
            .iter()
            .map(|&i| evaluator.try_evaluate(&space.point(i)))
            .collect();
    }
    let mut results = vec![Ok(0.0); indices.len()];
    let chunk = indices.len().div_ceil(workers);
    std::thread::scope(|scope| {
        for (slot, work) in results.chunks_mut(chunk).zip(indices.chunks(chunk)) {
            scope.spawn(move || {
                for (out, &i) in slot.iter_mut().zip(work) {
                    *out = evaluator.try_evaluate(&space.point(i));
                }
            });
        }
    });
    results
}

/// How much simulation one full evaluation performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimBudget {
    /// Warmup instructions per interval (caches/predictors, unmeasured).
    pub warmup: u64,
    /// Measured instructions per interval.
    pub measured: u64,
    /// Which trace intervals to simulate (IPC is their mean).
    pub intervals: Vec<usize>,
}

impl SimBudget {
    /// Standard budget: four intervals spread across the program's phase
    /// schedule, 8K warmup + 16K measured each.
    pub fn standard(generator: &TraceGenerator) -> Self {
        Self::spread(generator, 4, 8_000, 16_000)
    }

    /// Quick budget for tests and examples: two intervals, 6K + 10K.
    pub fn quick(generator: &TraceGenerator) -> Self {
        Self::spread(generator, 2, 6_000, 10_000)
    }

    /// `count` intervals spread evenly across the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn spread(generator: &TraceGenerator, count: usize, warmup: u64, measured: u64) -> Self {
        assert!(count > 0, "need at least one interval");
        let n = generator.num_intervals();
        let count = count.min(n);
        let intervals = (0..count).map(|i| i * n / count).collect();
        Self {
            warmup,
            measured,
            intervals,
        }
    }

    /// Instructions simulated per evaluation under this budget.
    pub fn instructions(&self) -> u64 {
        (self.warmup + self.measured) * self.intervals.len() as u64
    }
}

/// Full detailed simulation of a study's design points for one benchmark.
#[derive(Debug)]
pub struct StudyEvaluator {
    study: Study,
    space: DesignSpace,
    generator: TraceGenerator,
    budget: SimBudget,
}

impl StudyEvaluator {
    /// Creates an evaluator with the standard budget.
    pub fn new(study: Study, benchmark: Benchmark) -> Self {
        let generator = TraceGenerator::new(benchmark);
        let budget = SimBudget::standard(&generator);
        Self::with_budget(study, benchmark, budget)
    }

    /// Creates an evaluator with an explicit budget.
    pub fn with_budget(study: Study, benchmark: Benchmark, budget: SimBudget) -> Self {
        Self {
            study,
            space: study.space(),
            generator: TraceGenerator::new(benchmark),
            budget,
        }
    }

    /// The study's design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The simulation budget in use.
    pub fn budget(&self) -> &SimBudget {
        &self.budget
    }
}

impl PointEvaluator for StudyEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        let config = self.study.config_at(&self.space, point);
        let sum: f64 = self
            .budget
            .intervals
            .iter()
            .map(|&i| {
                simulate_with_warmup(
                    &config,
                    self.generator.interval(i),
                    self.budget.warmup,
                    self.budget.measured,
                )
                .ipc()
            })
            .sum();
        sum / self.budget.intervals.len() as f64
    }

    fn instructions_per_evaluation(&self) -> u64 {
        self.budget.instructions()
    }
}

/// SimPoint-accelerated evaluation (§5.3): simulates only the plan's
/// representative intervals and returns the weighted IPC estimate — faster
/// per evaluation, but *noisy* relative to full simulation.
#[derive(Debug)]
pub struct SimPointEvaluator {
    study: Study,
    space: DesignSpace,
    generator: TraceGenerator,
    plan: SimPointPlan,
}

impl SimPointEvaluator {
    /// Builds the SimPoint plan for `benchmark` (out-of-the-box settings,
    /// as the paper runs SimPoint) and wraps it as an evaluator.
    pub fn new(study: Study, benchmark: Benchmark, interval_len: usize, max_k: usize) -> Self {
        let generator = TraceGenerator::new(benchmark);
        let plan = SimPointPlan::build(&generator, interval_len, max_k);
        Self {
            study,
            space: study.space(),
            generator,
            plan,
        }
    }

    /// The underlying SimPoint plan.
    pub fn plan(&self) -> &SimPointPlan {
        &self.plan
    }
}

impl PointEvaluator for SimPointEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        let config = self.study.config_at(&self.space, point);
        self.plan.estimate_ipc(&config, &self.generator)
    }

    fn instructions_per_evaluation(&self) -> u64 {
        self.plan.simulated_instructions()
    }
}

/// Shard count for [`CachedEvaluator`] (power of two; indexed by the top
/// bits of a Fibonacci hash so consecutive point indices spread evenly).
const CACHE_SHARDS: usize = 16;

/// Sharded memoizing oracle: each design point is simulated at most once
/// per cache, batches are deduplicated before the fan-out, and the whole
/// cache persists to / preloads from plain CSV.
///
/// Experiments repeatedly touch the same points (learning curves reuse the
/// growing training set; evaluation sets are fixed); caching makes those
/// reuses free and keeps the simulation count honest. The cache is split
/// across `CACHE_SHARDS` independently-mutexed shards so parallel
/// lookups and inserts don't serialize on one lock.
///
/// # Exactly-once guarantee
///
/// Within one [`Oracle::evaluate_batch`] call, every unique index is
/// simulated **exactly once**, no matter how many duplicates the batch
/// contains or how many worker threads fan it out: duplicates are folded
/// before the fan-out, and workers own disjoint spans of the unique miss
/// list. Inserts are per-shard insert-once (`entry().or_insert`), so even
/// two *concurrent* batch calls racing on the same point leave a single
/// consistent entry (the simulator is deterministic, so both compute the
/// same value; at most one redundant simulation can happen across
/// concurrent batches, never within one).
#[derive(Debug)]
pub struct CachedEvaluator<E> {
    inner: E,
    space: DesignSpace,
    shards: Vec<Mutex<HashMap<usize, f64>>>,
    parallelism: Parallelism,
    hits: Counter,
}

impl<E: PointEvaluator> CachedEvaluator<E> {
    /// Wraps `inner`, memoizing by point index within `space`, fanning
    /// batch misses out per `Parallelism::Auto`.
    pub fn new(inner: E, space: DesignSpace) -> Self {
        Self::with_parallelism(inner, space, Parallelism::Auto)
    }

    /// [`CachedEvaluator::new`] with an explicit worker policy for the
    /// batch-miss fan-out. Results are identical for every setting.
    pub fn with_parallelism(inner: E, space: DesignSpace, parallelism: Parallelism) -> Self {
        Self {
            inner,
            space,
            shards: (0..CACHE_SHARDS)
                .map(|_| Mutex::new(HashMap::new()))
                .collect(),
            parallelism,
            hits: Counter::new("sim.cache.hits"),
        }
    }

    /// Replaces the worker policy for subsequent batch fan-outs.
    pub fn set_parallelism(&mut self, parallelism: Parallelism) {
        self.parallelism = parallelism;
    }

    /// The shard holding `index`.
    fn shard(&self, index: usize) -> &Mutex<HashMap<usize, f64>> {
        // Fibonacci hashing: consecutive indices land on distinct shards.
        let h = (index as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
        &self.shards[(h >> 60) as usize % CACHE_SHARDS]
    }

    fn lookup(&self, index: usize) -> Option<f64> {
        self.shard(index)
            .lock()
            .expect("cache shard")
            .get(&index)
            .copied()
    }

    /// Inserts `value` for `index` unless a racing call got there first.
    fn insert_once(&self, index: usize, value: f64) {
        self.shard(index)
            .lock()
            .expect("cache shard")
            .entry(index)
            .or_insert(value);
    }

    /// Number of distinct points simulated (or preloaded) so far.
    pub fn unique_evaluations(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("cache shard").len())
            .sum()
    }

    /// Cumulative evaluations served without simulating, over the cache's
    /// lifetime.
    pub fn cache_hits(&self) -> u64 {
        self.hits.get()
    }

    /// Seeds the cache with previously computed results (e.g. loaded from
    /// disk by an experiment harness).
    pub fn preload(&self, entries: impl IntoIterator<Item = (usize, f64)>) {
        for (index, value) in entries {
            self.insert_once(index, value);
        }
    }

    /// Snapshot of all cached results, keyed by point index.
    pub fn snapshot(&self) -> HashMap<usize, f64> {
        let mut all = HashMap::with_capacity(self.unique_evaluations());
        for shard in &self.shards {
            all.extend(shard.lock().expect("cache shard").iter());
        }
        all
    }

    /// Writes every cached result to `path` as plain CSV
    /// (`index,value` rows under an `index,value` header, sorted by index
    /// so the file is deterministic). Values use Rust's shortest
    /// round-trip float formatting, so [`CachedEvaluator::load`] restores
    /// them bit-for-bit.
    pub fn persist(&self, path: &Path) -> std::io::Result<()> {
        if let Some(parent) = path.parent() {
            std::fs::create_dir_all(parent)?;
        }
        let mut entries: Vec<(usize, f64)> = self.snapshot().into_iter().collect();
        entries.sort_unstable_by_key(|&(i, _)| i);
        let mut out = String::with_capacity(16 * entries.len() + 12);
        out.push_str("index,value\n");
        for (index, value) in entries {
            out.push_str(&format!("{index},{value}\n"));
        }
        // tmp + fsync + rename: a kill mid-write never tears the cache.
        write_atomic(path, &out)
    }

    /// Preloads the cache from a CSV written by
    /// [`CachedEvaluator::persist`]; returns how many entries were loaded.
    /// Unparsable lines (beyond the header) are skipped and logged, so a
    /// truncated file from an interrupted run loads whatever survived
    /// instead of aborting the study.
    pub fn load(&self, path: &Path) -> std::io::Result<usize> {
        let text = std::fs::read_to_string(path)?;
        let mut loaded = 0;
        let mut skipped = 0usize;
        for (number, line) in text.lines().enumerate() {
            if number == 0 && line.trim() == "index,value" {
                continue; // header
            }
            let parsed = line.split_once(',').and_then(|(index, value)| {
                match (index.trim().parse::<usize>(), value.trim().parse::<f64>()) {
                    (Ok(index), Ok(value)) => Some((index, value)),
                    _ => None,
                }
            });
            match parsed {
                Some((index, value)) => {
                    self.insert_once(index, value);
                    loaded += 1;
                }
                None => {
                    skipped += 1;
                    eprintln!(
                        "simcache {}: skipping malformed line {}: {line:?}",
                        path.display(),
                        number + 1
                    );
                }
            }
        }
        if skipped > 0 {
            eprintln!(
                "simcache {}: loaded {loaded} entries, skipped {skipped} malformed lines",
                path.display()
            );
        }
        Ok(loaded)
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }

    /// Instructions one (uncached) evaluation simulates.
    pub fn instructions_per_evaluation(&self) -> u64 {
        self.inner.instructions_per_evaluation()
    }

    /// Point-at-a-time adapter through the cache, for callers holding a
    /// [`DesignPoint`] rather than an index. Only successful values enter
    /// the cache, so a transient fault is re-attempted on the next call.
    pub fn evaluate(&self, point: &DesignPoint) -> SimResult {
        let index = self.space.index(point);
        if let Some(v) = self.lookup(index) {
            self.hits.incr();
            return Ok(v);
        }
        let v = self.inner.try_evaluate(point)?;
        self.insert_once(index, v);
        Ok(v)
    }
}

impl<E: PointEvaluator> Oracle for CachedEvaluator<E> {
    fn evaluate_batch(
        &self,
        space: &DesignSpace,
        indices: &[usize],
        stats: &mut SimStats,
    ) -> Vec<SimResult> {
        let started = Instant::now();
        let mut results = vec![Ok(0.0); indices.len()];
        // In-batch dedup: `misses` keeps unique uncached indices in first-
        // occurrence order; `pending` remembers which result slots each
        // miss must fill (first occurrence and all its duplicates).
        let mut miss_slot: HashMap<usize, usize> = HashMap::new();
        let mut misses: Vec<usize> = Vec::new();
        let mut pending: Vec<(usize, usize)> = Vec::new();
        for (slot, &index) in indices.iter().enumerate() {
            if let Some(&m) = miss_slot.get(&index) {
                pending.push((slot, m));
            } else if let Some(v) = self.lookup(index) {
                results[slot] = Ok(v);
            } else {
                let m = misses.len();
                miss_slot.insert(index, m);
                misses.push(index);
                pending.push((slot, m));
            }
        }
        // Simulate each unique miss exactly once, fanned out per the
        // cache's worker policy (deterministic at every thread count).
        // Only successes are cached: a transient fault must be
        // re-attemptable in a later batch, and errors must never be
        // served as hits.
        let values = fan_out(&self.inner, space, &misses, self.parallelism);
        for (&index, value) in misses.iter().zip(&values) {
            if let Ok(v) = value {
                self.insert_once(index, *v);
            }
        }
        for (slot, m) in pending {
            results[slot] = values[m];
        }
        let hits = (indices.len() - misses.len()) as u64;
        let failed = values.iter().filter(|r| r.is_err()).count() as u64;
        self.hits.add(hits);
        stats.unique_simulations += misses.len() as u64 - failed;
        stats.failures += failed;
        stats.cache_hits += hits;
        stats.simulated_instructions +=
            misses.len() as u64 * self.inner.instructions_per_evaluation();
        stats.wall_seconds += started.elapsed().as_secs_f64();
        results
    }
}

/// Bounded retry policy for [`RetryingOracle`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Total attempts per index per batch (first try included). After
    /// this many retriable failures the index is quarantined.
    pub max_attempts: u32,
    /// Base of the exponential backoff schedule, in (virtual) seconds:
    /// attempt `k`'s backoff is `base × 2^(k-1) × jitter`.
    pub base_backoff_seconds: f64,
    /// Seed for the deterministic per-(index, attempt) backoff jitter.
    pub seed: u64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        Self {
            max_attempts: 3,
            base_backoff_seconds: 0.05,
            seed: 0x5EED_BACC,
        }
    }
}

impl RetryPolicy {
    /// Deterministic jittered backoff (in seconds) charged before retry
    /// attempt `attempt` (≥ 2) of `index`: exponential in the attempt
    /// number with a seeded jitter factor in `[0.5, 1.5)`.
    pub fn backoff_seconds(&self, index: usize, attempt: u32) -> f64 {
        let jitter = 0.5
            + Xoshiro256::seed_from(self.seed)
                .derive(index as u64 + 1)
                .derive(attempt as u64)
                .next_f64();
        self.base_backoff_seconds * f64::from(1u32 << (attempt.saturating_sub(2)).min(20)) * jitter
    }
}

/// Retry/quarantine wrapper: turns a flaky [`Oracle`] into one that
/// re-attempts retriable failures a bounded number of times and
/// permanently quarantines indices that never succeed.
///
/// * Retries re-batch all still-failing indices, so the inner oracle's
///   batch fan-out (and its determinism contract) applies to retries too.
/// * Backoff is **accounted, not slept**: this workspace's backends fail
///   deterministically, so sleeping would only slow tests. The schedule a
///   production deployment would sleep is accumulated in
///   [`RetryingOracle::virtual_backoff_seconds`], deterministically
///   seeded per (index, attempt).
/// * Quarantined indices short-circuit to [`SimError::Quarantined`] on
///   later batches without touching the inner oracle; the set can be
///   persisted/preloaded so a resumed study skips known-bad points
///   immediately.
///
/// Telemetry: `stats.retries` counts re-attempts issued here and
/// `stats.quarantined` counts indices given up on; `stats.failures` is
/// counted by whoever originates the errors (the inner oracle).
#[derive(Debug)]
pub struct RetryingOracle<O> {
    inner: O,
    policy: RetryPolicy,
    quarantine: Mutex<BTreeSet<usize>>,
    backoff_nanos: Counter,
}

impl<O: Oracle> RetryingOracle<O> {
    /// Wraps `inner` with the default [`RetryPolicy`].
    pub fn new(inner: O) -> Self {
        Self::with_policy(inner, RetryPolicy::default())
    }

    /// Wraps `inner` with an explicit policy.
    pub fn with_policy(inner: O, policy: RetryPolicy) -> Self {
        Self {
            inner,
            policy,
            quarantine: Mutex::new(BTreeSet::new()),
            backoff_nanos: Counter::new("sim.retry.virtual_backoff_nanos"),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The retry policy in force.
    pub fn policy(&self) -> &RetryPolicy {
        &self.policy
    }

    /// Snapshot of the quarantined indices, sorted.
    pub fn quarantined(&self) -> Vec<usize> {
        self.quarantine
            .lock()
            .expect("quarantine lock")
            .iter()
            .copied()
            .collect()
    }

    /// Total backoff the retry schedule *would* have slept, in seconds.
    pub fn virtual_backoff_seconds(&self) -> f64 {
        self.backoff_nanos.get() as f64 * 1e-9
    }

    /// Seeds the quarantine set (e.g. from a previous run's persisted
    /// file), so known-bad points are skipped without re-attempting.
    pub fn preload_quarantine(&self, indices: impl IntoIterator<Item = usize>) {
        let mut q = self.quarantine.lock().expect("quarantine lock");
        q.extend(indices);
    }

    /// Writes the quarantine set to `path` (one index per line under a
    /// header), atomically (tmp + fsync + rename).
    pub fn persist_quarantine(&self, path: &Path) -> std::io::Result<()> {
        let mut out = String::from("quarantined_index\n");
        for index in self.quarantined() {
            out.push_str(&format!("{index}\n"));
        }
        write_atomic(path, &out)
    }

    /// Preloads the quarantine set from a file written by
    /// [`RetryingOracle::persist_quarantine`]; returns how many indices
    /// were loaded. Malformed lines are skipped.
    pub fn load_quarantine(&self, path: &Path) -> std::io::Result<usize> {
        let text = std::fs::read_to_string(path)?;
        let indices: Vec<usize> = text
            .lines()
            .filter_map(|line| line.trim().parse::<usize>().ok())
            .collect();
        let loaded = indices.len();
        self.preload_quarantine(indices);
        Ok(loaded)
    }
}

impl<O: Oracle> Oracle for RetryingOracle<O> {
    fn evaluate_batch(
        &self,
        space: &DesignSpace,
        indices: &[usize],
        stats: &mut SimStats,
    ) -> Vec<SimResult> {
        let mut results: Vec<SimResult> = vec![Err(SimError::Quarantined); indices.len()];
        // Quarantined indices short-circuit without touching the inner
        // oracle (and without counting as fresh failures).
        let mut live: Vec<(usize, usize)> = {
            let q = self.quarantine.lock().expect("quarantine lock");
            indices
                .iter()
                .enumerate()
                .filter(|&(_, index)| !q.contains(index))
                .map(|(slot, &index)| (slot, index))
                .collect()
        };
        let mut backoff = 0.0f64;
        for attempt in 1..=self.policy.max_attempts.max(1) {
            if live.is_empty() {
                break;
            }
            let batch: Vec<usize> = live.iter().map(|&(_, index)| index).collect();
            let outcomes = self.inner.evaluate_batch(space, &batch, stats);
            let mut next: Vec<(usize, usize)> = Vec::new();
            for (&(slot, index), outcome) in live.iter().zip(&outcomes) {
                match *outcome {
                    Ok(v) => results[slot] = Ok(v),
                    Err(e) if e.is_retriable() && attempt < self.policy.max_attempts => {
                        backoff += self.policy.backoff_seconds(index, attempt + 1);
                        next.push((slot, index));
                    }
                    Err(e) => {
                        results[slot] = Err(e);
                        // `insert` dedups: a batch with duplicate copies of
                        // a permanently failing index quarantines it once.
                        if self
                            .quarantine
                            .lock()
                            .expect("quarantine lock")
                            .insert(index)
                        {
                            stats.quarantined += 1;
                        }
                    }
                }
            }
            stats.retries += next.len() as u64;
            live = next;
        }
        self.backoff_nanos.add((backoff * 1e9) as u64);
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingEvaluator {
        calls: AtomicUsize,
    }

    impl CountingEvaluator {
        fn new() -> Self {
            Self {
                calls: AtomicUsize::new(0),
            }
        }
    }

    impl PointEvaluator for CountingEvaluator {
        fn evaluate(&self, point: &DesignPoint) -> f64 {
            self.calls.fetch_add(1, Ordering::SeqCst);
            point.0.iter().sum::<usize>() as f64 + 1.0
        }
        fn instructions_per_evaluation(&self) -> u64 {
            100
        }
    }

    #[test]
    fn cached_evaluator_simulates_each_point_once() {
        let space = Study::MemorySystem.space();
        let cached = CachedEvaluator::new(CountingEvaluator::new(), space.clone());
        let p = space.point(17);
        let a = cached.evaluate(&p);
        let b = cached.evaluate(&p);
        assert_eq!(a, b);
        assert_eq!(cached.inner().calls.load(Ordering::SeqCst), 1);
        assert_eq!(cached.unique_evaluations(), 1);
        assert_eq!(cached.cache_hits(), 1);
        cached.evaluate(&space.point(18)).expect("fault-free");
        assert_eq!(cached.unique_evaluations(), 2);
    }

    #[test]
    fn batch_matches_sequential() {
        let space = Study::MemorySystem.space();
        let evaluator = CountingEvaluator::new();
        let indices: Vec<usize> = (0..40).map(|i| i * 13).collect();
        let mut stats = SimStats::default();
        let batch: Vec<f64> = evaluator
            .evaluate_batch(&space, &indices, &mut stats)
            .into_iter()
            .map(|r| r.expect("no faults"))
            .collect();
        let sequential: Vec<f64> = indices
            .iter()
            .map(|&i| evaluator.evaluate(&space.point(i)))
            .collect();
        assert_eq!(batch, sequential);
        assert_eq!(stats.unique_simulations, 40);
        assert_eq!(stats.cache_hits, 0);
        assert_eq!(stats.simulated_instructions, 4_000);
        assert!(stats.wall_seconds >= 0.0);
    }

    #[test]
    fn parallel_batch_with_duplicates_simulates_each_unique_index_exactly_once() {
        let space = Study::MemorySystem.space();
        // Force a genuinely parallel fan-out regardless of host cores.
        let cached = CachedEvaluator::with_parallelism(
            CountingEvaluator::new(),
            space.clone(),
            Parallelism::Fixed(4),
        );
        // 20 unique indices, each appearing 3 times, interleaved so
        // duplicates land in different worker spans.
        let unique: Vec<usize> = (0..20).map(|i| i * 7).collect();
        let mut indices = Vec::new();
        for round in 0..3 {
            for &i in &unique {
                indices.push(i);
                let _ = round;
            }
        }
        let mut stats = SimStats::default();
        let results = cached.evaluate_batch(&space, &indices, &mut stats);
        // Exactly once per unique index, despite duplicates + 4 threads.
        assert_eq!(cached.inner().calls.load(Ordering::SeqCst), 20);
        assert_eq!(cached.unique_evaluations(), 20);
        assert_eq!(stats.unique_simulations, 20);
        assert_eq!(stats.cache_hits, 40);
        assert_eq!(stats.evaluations(), indices.len() as u64);
        assert_eq!(stats.simulated_instructions, 2_000);
        // Every occurrence of an index got the same (correct) value.
        for (&i, v) in indices.iter().zip(&results) {
            assert_eq!(*v, Ok(space.point(i).0.iter().sum::<usize>() as f64 + 1.0));
        }
        // A second batch over the same points is pure cache hits.
        let mut stats2 = SimStats::default();
        let again = cached.evaluate_batch(&space, &unique, &mut stats2);
        assert_eq!(cached.inner().calls.load(Ordering::SeqCst), 20);
        assert_eq!(stats2.unique_simulations, 0);
        assert_eq!(stats2.cache_hits, 20);
        assert_eq!(&results[..20], &again[..]);
    }

    #[test]
    fn batch_results_identical_at_every_parallelism() {
        let space = Study::MemorySystem.space();
        let generator = TraceGenerator::new(Benchmark::Gzip);
        let budget = SimBudget::spread(&generator, 2, 2_000, 4_000);
        let indices: Vec<usize> = (0..23).map(|i| i * 101).collect();
        let run = |parallelism| {
            let cached = CachedEvaluator::with_parallelism(
                StudyEvaluator::with_budget(Study::MemorySystem, Benchmark::Gzip, budget.clone()),
                space.clone(),
                parallelism,
            );
            let mut stats = SimStats::default();
            cached.evaluate_batch(&space, &indices, &mut stats)
        };
        let reference = run(Parallelism::Fixed(1));
        for parallelism in [Parallelism::Fixed(4), Parallelism::Auto] {
            assert_eq!(reference, run(parallelism), "{parallelism:?}");
        }
        // The raw (uncached) fan-out honors the same contract.
        let evaluator =
            StudyEvaluator::with_budget(Study::MemorySystem, Benchmark::Gzip, budget.clone());
        let raw = |parallelism| {
            let mut stats = SimStats::default();
            evaluate_indices(&evaluator, &space, &indices, parallelism, &mut stats)
        };
        let raw_reference = raw(Parallelism::Fixed(1));
        assert_eq!(raw_reference, reference);
        for parallelism in [Parallelism::Fixed(4), Parallelism::Auto] {
            assert_eq!(raw_reference, raw(parallelism), "raw {parallelism:?}");
        }
    }

    #[test]
    fn persist_and_load_round_trip() {
        let space = Study::MemorySystem.space();
        let cached = CachedEvaluator::new(CountingEvaluator::new(), space.clone());
        let indices: Vec<usize> = (0..30).map(|i| i * 17 + 3).collect();
        let mut stats = SimStats::default();
        let original = cached.evaluate_batch(&space, &indices, &mut stats);
        let path = std::env::temp_dir().join(format!(
            "archpredict_simcache_roundtrip_{}.csv",
            std::process::id()
        ));
        cached.persist(&path).expect("persist cache");

        let resumed = CachedEvaluator::new(CountingEvaluator::new(), space.clone());
        let loaded = resumed.load(&path).expect("load cache");
        assert_eq!(loaded, 30);
        assert_eq!(resumed.unique_evaluations(), 30);
        // Every resumed value is bit-for-bit the original, with zero
        // fresh simulation.
        let mut stats2 = SimStats::default();
        let values = resumed.evaluate_batch(&space, &indices, &mut stats2);
        assert_eq!(values, original);
        assert_eq!(resumed.inner().calls.load(Ordering::SeqCst), 0);
        assert_eq!(stats2.unique_simulations, 0);
        assert_eq!(stats2.cache_hits, 30);
        assert_eq!(resumed.snapshot(), cached.snapshot());
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_skips_malformed_lines() {
        let space = Study::MemorySystem.space();
        let path = std::env::temp_dir().join(format!(
            "archpredict_simcache_malformed_{}.csv",
            std::process::id()
        ));
        std::fs::write(&path, "index,value\n5,1.25\nnot a row\n9,oops\n7,2.5\n").unwrap();
        let cached = CachedEvaluator::new(CountingEvaluator::new(), space.clone());
        assert_eq!(cached.load(&path).expect("load"), 2);
        assert_eq!(cached.unique_evaluations(), 2);
        assert_eq!(cached.evaluate_index(&space, 5), Ok(1.25));
        assert_eq!(cached.evaluate_index(&space, 7), Ok(2.5));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn stats_merge_accumulates() {
        let mut a = SimStats {
            unique_simulations: 3,
            cache_hits: 2,
            simulated_instructions: 300,
            wall_seconds: 0.5,
            failures: 1,
            retries: 2,
            quarantined: 1,
            resampled: 1,
        };
        a.merge(&SimStats {
            unique_simulations: 1,
            cache_hits: 4,
            simulated_instructions: 100,
            wall_seconds: 0.25,
            failures: 2,
            retries: 1,
            quarantined: 0,
            resampled: 3,
        });
        assert_eq!(a.unique_simulations, 4);
        assert_eq!(a.cache_hits, 6);
        assert_eq!(a.evaluations(), 10);
        assert_eq!(a.simulated_instructions, 400);
        assert!((a.wall_seconds - 0.75).abs() < 1e-12);
        assert_eq!(
            (a.failures, a.retries, a.quarantined, a.resampled),
            (3, 3, 1, 4)
        );
    }

    /// Field-coverage gate for [`SimStats::merge`]: every field is given a
    /// distinct value and every field of the result is checked through an
    /// exhaustive destructuring. Adding a [`SimStats`] field without
    /// merging it fails to compile here (and in `merge` itself) before it
    /// can silently drop telemetry.
    #[test]
    fn stats_merge_covers_every_field() {
        let lhs = SimStats {
            unique_simulations: 1,
            cache_hits: 2,
            simulated_instructions: 4,
            wall_seconds: 8.0,
            failures: 16,
            retries: 32,
            quarantined: 64,
            resampled: 128,
        };
        let rhs = SimStats {
            unique_simulations: 256,
            cache_hits: 512,
            simulated_instructions: 1024,
            wall_seconds: 2048.0,
            failures: 4096,
            retries: 8192,
            quarantined: 16384,
            resampled: 32768,
        };
        let mut merged = lhs;
        merged.merge(&rhs);
        // Exhaustive: a new field must appear here or this stops compiling.
        let SimStats {
            unique_simulations,
            cache_hits,
            simulated_instructions,
            wall_seconds,
            failures,
            retries,
            quarantined,
            resampled,
        } = merged;
        assert_eq!(unique_simulations, 1 + 256);
        assert_eq!(cache_hits, 2 + 512);
        assert_eq!(simulated_instructions, 4 + 1024);
        assert!((wall_seconds - (8.0 + 2048.0)).abs() < 1e-12);
        assert_eq!(failures, 16 + 4096);
        assert_eq!(retries, 32 + 8192);
        assert_eq!(quarantined, 64 + 16384);
        assert_eq!(resampled, 128 + 32768);
    }

    #[test]
    fn study_evaluator_is_deterministic_and_positive() {
        let generator = TraceGenerator::new(Benchmark::Gzip);
        let evaluator = StudyEvaluator::with_budget(
            Study::MemorySystem,
            Benchmark::Gzip,
            SimBudget::quick(&generator),
        );
        let p = evaluator.space().point(100);
        let a = evaluator.evaluate(&p);
        let b = evaluator.evaluate(&p);
        assert_eq!(a, b);
        assert!(a > 0.0 && a < 4.0, "ipc {a}");
    }

    #[test]
    fn study_evaluator_distinguishes_configurations() {
        let generator = TraceGenerator::new(Benchmark::Twolf);
        let evaluator = StudyEvaluator::with_budget(
            Study::MemorySystem,
            Benchmark::Twolf,
            SimBudget::quick(&generator),
        );
        let space = evaluator.space();
        // Extremes of the space should differ measurably.
        let low = evaluator.evaluate(&space.point(0));
        let high = evaluator.evaluate(&space.point(space.size() - 1));
        assert!(
            (low - high).abs() / high > 0.02,
            "extremes too similar: {low} vs {high}"
        );
    }

    #[test]
    fn simpoint_evaluator_tracks_full_evaluator() {
        let benchmark = Benchmark::Mgrid;
        let generator = TraceGenerator::new(benchmark);
        let n = generator.num_intervals();
        let interval_len = 4000;
        // Full reference: every interval.
        let full = StudyEvaluator::with_budget(
            Study::Processor,
            benchmark,
            SimBudget {
                warmup: (interval_len / 3) as u64,
                measured: interval_len as u64 - (interval_len / 3) as u64,
                intervals: (0..n).collect(),
            },
        );
        let sp = SimPointEvaluator::new(Study::Processor, benchmark, interval_len, 10);
        let space = full.space();
        let p = space.point(4321);
        let f = full.evaluate(&p);
        let e = sp.evaluate(&p);
        let err = (f - e).abs() / f;
        assert!(
            err < 0.15,
            "simpoint {e:.4} vs full {f:.4} ({:.1}%)",
            err * 100.0
        );
        assert!(sp.instructions_per_evaluation() < full.instructions_per_evaluation());
    }

    #[test]
    fn budget_spread_covers_schedule() {
        let generator = TraceGenerator::new(Benchmark::Mesa);
        let budget = SimBudget::spread(&generator, 4, 1000, 2000);
        assert_eq!(budget.intervals.len(), 4);
        assert_eq!(budget.instructions(), 12_000);
        let n = generator.num_intervals();
        assert!(budget.intervals.iter().all(|&i| i < n));
        assert!(budget.intervals.windows(2).all(|w| w[0] < w[1]));
    }

    /// An oracle that fails each index's first `failures_of(index)`
    /// attempts with `Transient`, then succeeds with `index as f64`.
    struct FlakyOracle {
        attempts: Mutex<HashMap<usize, u32>>,
        failures_of: fn(usize) -> u32,
    }

    impl FlakyOracle {
        fn new(failures_of: fn(usize) -> u32) -> Self {
            Self {
                attempts: Mutex::new(HashMap::new()),
                failures_of,
            }
        }
    }

    impl Oracle for FlakyOracle {
        fn evaluate_batch(
            &self,
            _space: &DesignSpace,
            indices: &[usize],
            stats: &mut SimStats,
        ) -> Vec<SimResult> {
            let mut attempts = self.attempts.lock().unwrap();
            indices
                .iter()
                .map(|&index| {
                    let n = attempts.entry(index).or_insert(0);
                    *n += 1;
                    if *n <= (self.failures_of)(index) {
                        stats.failures += 1;
                        Err(SimError::Transient)
                    } else {
                        stats.unique_simulations += 1;
                        Ok(index as f64)
                    }
                })
                .collect()
        }
    }

    #[test]
    fn retrying_oracle_recovers_transient_failures_and_quarantines_the_rest() {
        let space = Study::MemorySystem.space();
        // Index 3 fails once, index 7 twice, index 11 always; the rest
        // succeed immediately.
        let flaky = FlakyOracle::new(|i| match i {
            3 => 1,
            7 => 2,
            11 => u32::MAX,
            _ => 0,
        });
        let oracle = RetryingOracle::new(flaky); // max_attempts = 3
        let mut stats = SimStats::default();
        let results = oracle.evaluate_batch(&space, &[1, 3, 7, 11, 2], &mut stats);
        assert_eq!(results[0], Ok(1.0));
        assert_eq!(results[1], Ok(3.0)); // recovered after 1 retry
        assert_eq!(results[2], Ok(7.0)); // recovered after 2 retries
        assert_eq!(results[3], Err(SimError::Transient));
        assert_eq!(results[4], Ok(2.0));
        assert_eq!(stats.retries, 5); // 3→1, 7→2, 11→2 (then exhausted)
        assert_eq!(stats.failures, 6); // 3×1 + 7×2 + 11×3
        assert_eq!(stats.quarantined, 1);
        assert_eq!(oracle.quarantined(), vec![11]);
        assert!(oracle.virtual_backoff_seconds() > 0.0);

        // A later batch short-circuits the quarantined index without
        // touching the inner oracle again.
        let mut stats2 = SimStats::default();
        let again = oracle.evaluate_batch(&space, &[11, 4], &mut stats2);
        assert_eq!(again[0], Err(SimError::Quarantined));
        assert_eq!(again[1], Ok(4.0));
        assert_eq!(stats2.failures, 0);
        assert_eq!(stats2.quarantined, 0);
        assert_eq!(oracle.inner().attempts.lock().unwrap().get(&11), Some(&3));
    }

    #[test]
    fn non_finite_results_are_not_retried() {
        struct GarbageEvaluator;
        impl PointEvaluator for GarbageEvaluator {
            fn evaluate(&self, point: &DesignPoint) -> f64 {
                if point.0.iter().sum::<usize>() == 0 {
                    f64::NAN
                } else {
                    1.0
                }
            }
            fn instructions_per_evaluation(&self) -> u64 {
                10
            }
        }
        let space = Study::MemorySystem.space();
        let oracle = RetryingOracle::new(GarbageEvaluator);
        let mut stats = SimStats::default();
        let results = oracle.evaluate_batch(&space, &[0, 5], &mut stats);
        assert_eq!(results[0], Err(SimError::NonFinite));
        assert_eq!(results[1], Ok(1.0));
        // NonFinite is permanent: no retry, straight to quarantine.
        assert_eq!(stats.retries, 0);
        assert_eq!(stats.quarantined, 1);
        assert_eq!(oracle.quarantined(), vec![0]);
    }

    #[test]
    fn quarantine_persists_and_reloads() {
        let space = Study::MemorySystem.space();
        let flaky = FlakyOracle::new(|i| if i % 2 == 1 { u32::MAX } else { 0 });
        let oracle = RetryingOracle::new(flaky);
        let mut stats = SimStats::default();
        oracle.evaluate_batch(&space, &[1, 2, 3, 4], &mut stats);
        assert_eq!(oracle.quarantined(), vec![1, 3]);
        let path =
            std::env::temp_dir().join(format!("archpredict_quarantine_{}.csv", std::process::id()));
        oracle.persist_quarantine(&path).expect("persist");

        let fresh = RetryingOracle::new(FlakyOracle::new(|_| 0));
        assert_eq!(fresh.load_quarantine(&path).expect("load"), 2);
        let mut stats2 = SimStats::default();
        let results = fresh.evaluate_batch(&space, &[1, 2, 3], &mut stats2);
        assert_eq!(results[0], Err(SimError::Quarantined));
        assert_eq!(results[1], Ok(2.0));
        assert_eq!(results[2], Err(SimError::Quarantined));
        // The quarantined indices never reached the inner oracle.
        assert!(!fresh.inner().attempts.lock().unwrap().contains_key(&1));
        std::fs::remove_file(&path).ok();
    }
}
