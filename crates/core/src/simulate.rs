//! Evaluators: the bridge between design points and the simulator.
//!
//! The paper views the simulator as a function `SIM(p0..pM, A)` (§2). An
//! [`Evaluator`] is exactly that function for a fixed application `A`:
//! hand it a design point, get the target metric back. Three evaluators are
//! provided: the full [`StudyEvaluator`], the noisy-but-cheap
//! [`SimPointEvaluator`] (§5.3), and a memoizing [`CachedEvaluator`]
//! wrapper so repeated experiments never re-simulate a configuration.
//! [`evaluate_batch`] fans a batch out across CPU cores.

use crate::space::{DesignPoint, DesignSpace};
use crate::studies::Study;
use archpredict_sim::simulate_with_warmup;
use archpredict_simpoint::SimPointPlan;
use archpredict_workloads::{Benchmark, TraceGenerator};
use std::collections::HashMap;
use std::sync::Mutex;

/// The simulator-as-a-function abstraction of §2.
pub trait Evaluator: Sync {
    /// The target metric (IPC in the paper) at `point`.
    fn evaluate(&self, point: &DesignPoint) -> f64;

    /// Instructions one evaluation simulates (for the reduction-factor
    /// accounting of Figs. 5.6/5.7).
    fn instructions_per_evaluation(&self) -> u64;
}

/// How much simulation one full evaluation performs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SimBudget {
    /// Warmup instructions per interval (caches/predictors, unmeasured).
    pub warmup: u64,
    /// Measured instructions per interval.
    pub measured: u64,
    /// Which trace intervals to simulate (IPC is their mean).
    pub intervals: Vec<usize>,
}

impl SimBudget {
    /// Standard budget: four intervals spread across the program's phase
    /// schedule, 8K warmup + 16K measured each.
    pub fn standard(generator: &TraceGenerator) -> Self {
        Self::spread(generator, 4, 8_000, 16_000)
    }

    /// Quick budget for tests and examples: two intervals, 6K + 10K.
    pub fn quick(generator: &TraceGenerator) -> Self {
        Self::spread(generator, 2, 6_000, 10_000)
    }

    /// `count` intervals spread evenly across the schedule.
    ///
    /// # Panics
    ///
    /// Panics if `count` is zero.
    pub fn spread(generator: &TraceGenerator, count: usize, warmup: u64, measured: u64) -> Self {
        assert!(count > 0, "need at least one interval");
        let n = generator.num_intervals();
        let count = count.min(n);
        let intervals = (0..count).map(|i| i * n / count).collect();
        Self {
            warmup,
            measured,
            intervals,
        }
    }

    /// Instructions simulated per evaluation under this budget.
    pub fn instructions(&self) -> u64 {
        (self.warmup + self.measured) * self.intervals.len() as u64
    }
}

/// Full detailed simulation of a study's design points for one benchmark.
#[derive(Debug)]
pub struct StudyEvaluator {
    study: Study,
    space: DesignSpace,
    generator: TraceGenerator,
    budget: SimBudget,
}

impl StudyEvaluator {
    /// Creates an evaluator with the standard budget.
    pub fn new(study: Study, benchmark: Benchmark) -> Self {
        let generator = TraceGenerator::new(benchmark);
        let budget = SimBudget::standard(&generator);
        Self::with_budget(study, benchmark, budget)
    }

    /// Creates an evaluator with an explicit budget.
    pub fn with_budget(study: Study, benchmark: Benchmark, budget: SimBudget) -> Self {
        Self {
            study,
            space: study.space(),
            generator: TraceGenerator::new(benchmark),
            budget,
        }
    }

    /// The study's design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// The simulation budget in use.
    pub fn budget(&self) -> &SimBudget {
        &self.budget
    }
}

impl Evaluator for StudyEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        let config = self.study.config_at(&self.space, point);
        let sum: f64 = self
            .budget
            .intervals
            .iter()
            .map(|&i| {
                simulate_with_warmup(
                    &config,
                    self.generator.interval(i),
                    self.budget.warmup,
                    self.budget.measured,
                )
                .ipc()
            })
            .sum();
        sum / self.budget.intervals.len() as f64
    }

    fn instructions_per_evaluation(&self) -> u64 {
        self.budget.instructions()
    }
}

/// SimPoint-accelerated evaluation (§5.3): simulates only the plan's
/// representative intervals and returns the weighted IPC estimate — faster
/// per evaluation, but *noisy* relative to full simulation.
#[derive(Debug)]
pub struct SimPointEvaluator {
    study: Study,
    space: DesignSpace,
    generator: TraceGenerator,
    plan: SimPointPlan,
}

impl SimPointEvaluator {
    /// Builds the SimPoint plan for `benchmark` (out-of-the-box settings,
    /// as the paper runs SimPoint) and wraps it as an evaluator.
    pub fn new(study: Study, benchmark: Benchmark, interval_len: usize, max_k: usize) -> Self {
        let generator = TraceGenerator::new(benchmark);
        let plan = SimPointPlan::build(&generator, interval_len, max_k);
        Self {
            study,
            space: study.space(),
            generator,
            plan,
        }
    }

    /// The underlying SimPoint plan.
    pub fn plan(&self) -> &SimPointPlan {
        &self.plan
    }
}

impl Evaluator for SimPointEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        let config = self.study.config_at(&self.space, point);
        self.plan.estimate_ipc(&config, &self.generator)
    }

    fn instructions_per_evaluation(&self) -> u64 {
        self.plan.simulated_instructions()
    }
}

/// Memoizing wrapper: each design point is simulated at most once.
///
/// Experiments repeatedly touch the same points (learning curves reuse the
/// growing training set; evaluation sets are fixed); caching makes those
/// reuses free and keeps the simulation count honest.
#[derive(Debug)]
pub struct CachedEvaluator<E> {
    inner: E,
    space: DesignSpace,
    cache: Mutex<HashMap<usize, f64>>,
}

impl<E: Evaluator> CachedEvaluator<E> {
    /// Wraps `inner`, memoizing by point index within `space`.
    pub fn new(inner: E, space: DesignSpace) -> Self {
        Self {
            inner,
            space,
            cache: Mutex::new(HashMap::new()),
        }
    }

    /// Number of distinct points simulated so far.
    pub fn unique_evaluations(&self) -> usize {
        self.cache.lock().expect("cache lock").len()
    }

    /// Seeds the cache with previously computed results (e.g. loaded from
    /// disk by an experiment harness).
    pub fn preload(&self, entries: impl IntoIterator<Item = (usize, f64)>) {
        self.cache.lock().expect("cache lock").extend(entries);
    }

    /// Snapshot of all cached results, keyed by point index.
    pub fn snapshot(&self) -> HashMap<usize, f64> {
        self.cache.lock().expect("cache lock").clone()
    }

    /// The wrapped evaluator.
    pub fn inner(&self) -> &E {
        &self.inner
    }
}

impl<E: Evaluator> Evaluator for CachedEvaluator<E> {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        let index = self.space.index(point);
        if let Some(&v) = self.cache.lock().expect("cache lock").get(&index) {
            return v;
        }
        let v = self.inner.evaluate(point);
        self.cache.lock().expect("cache lock").insert(index, v);
        v
    }

    fn instructions_per_evaluation(&self) -> u64 {
        self.inner.instructions_per_evaluation()
    }
}

/// Evaluates many points, fanning out across available CPU cores with
/// scoped threads. Results are returned in input order.
pub fn evaluate_batch<E: Evaluator>(
    evaluator: &E,
    space: &DesignSpace,
    indices: &[usize],
) -> Vec<f64> {
    let threads = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(indices.len().max(1));
    if threads <= 1 || indices.len() < 4 {
        return indices
            .iter()
            .map(|&i| evaluator.evaluate(&space.point(i)))
            .collect();
    }
    let mut results = vec![0.0; indices.len()];
    let chunk = indices.len().div_ceil(threads);
    std::thread::scope(|scope| {
        for (slot, work) in results.chunks_mut(chunk).zip(indices.chunks(chunk)) {
            scope.spawn(move || {
                for (out, &i) in slot.iter_mut().zip(work) {
                    *out = evaluator.evaluate(&space.point(i));
                }
            });
        }
    });
    results
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingEvaluator {
        calls: AtomicUsize,
    }

    impl Evaluator for CountingEvaluator {
        fn evaluate(&self, point: &DesignPoint) -> f64 {
            self.calls.fetch_add(1, Ordering::SeqCst);
            point.0.iter().sum::<usize>() as f64 + 1.0
        }
        fn instructions_per_evaluation(&self) -> u64 {
            100
        }
    }

    #[test]
    fn cached_evaluator_simulates_each_point_once() {
        let space = Study::MemorySystem.space();
        let cached = CachedEvaluator::new(
            CountingEvaluator {
                calls: AtomicUsize::new(0),
            },
            space.clone(),
        );
        let p = space.point(17);
        let a = cached.evaluate(&p);
        let b = cached.evaluate(&p);
        assert_eq!(a, b);
        assert_eq!(cached.inner().calls.load(Ordering::SeqCst), 1);
        assert_eq!(cached.unique_evaluations(), 1);
        cached.evaluate(&space.point(18));
        assert_eq!(cached.unique_evaluations(), 2);
    }

    #[test]
    fn batch_matches_sequential() {
        let space = Study::MemorySystem.space();
        let evaluator = CountingEvaluator {
            calls: AtomicUsize::new(0),
        };
        let indices: Vec<usize> = (0..40).map(|i| i * 13).collect();
        let batch = evaluate_batch(&evaluator, &space, &indices);
        let sequential: Vec<f64> = indices
            .iter()
            .map(|&i| evaluator.evaluate(&space.point(i)))
            .collect();
        assert_eq!(batch, sequential);
    }

    #[test]
    fn study_evaluator_is_deterministic_and_positive() {
        let generator = TraceGenerator::new(Benchmark::Gzip);
        let evaluator = StudyEvaluator::with_budget(
            Study::MemorySystem,
            Benchmark::Gzip,
            SimBudget::quick(&generator),
        );
        let p = evaluator.space().point(100);
        let a = evaluator.evaluate(&p);
        let b = evaluator.evaluate(&p);
        assert_eq!(a, b);
        assert!(a > 0.0 && a < 4.0, "ipc {a}");
    }

    #[test]
    fn study_evaluator_distinguishes_configurations() {
        let generator = TraceGenerator::new(Benchmark::Twolf);
        let evaluator = StudyEvaluator::with_budget(
            Study::MemorySystem,
            Benchmark::Twolf,
            SimBudget::quick(&generator),
        );
        let space = evaluator.space();
        // Extremes of the space should differ measurably.
        let low = evaluator.evaluate(&space.point(0));
        let high = evaluator.evaluate(&space.point(space.size() - 1));
        assert!(
            (low - high).abs() / high > 0.02,
            "extremes too similar: {low} vs {high}"
        );
    }

    #[test]
    fn simpoint_evaluator_tracks_full_evaluator() {
        let benchmark = Benchmark::Mgrid;
        let generator = TraceGenerator::new(benchmark);
        let n = generator.num_intervals();
        let interval_len = 4000;
        // Full reference: every interval.
        let full = StudyEvaluator::with_budget(
            Study::Processor,
            benchmark,
            SimBudget {
                warmup: (interval_len / 3) as u64,
                measured: interval_len as u64 - (interval_len / 3) as u64,
                intervals: (0..n).collect(),
            },
        );
        let sp = SimPointEvaluator::new(Study::Processor, benchmark, interval_len, 10);
        let space = full.space();
        let p = space.point(4321);
        let f = full.evaluate(&p);
        let e = sp.evaluate(&p);
        let err = (f - e).abs() / f;
        assert!(
            err < 0.15,
            "simpoint {e:.4} vs full {f:.4} ({:.1}%)",
            err * 100.0
        );
        assert!(sp.instructions_per_evaluation() < full.instructions_per_evaluation());
    }

    #[test]
    fn budget_spread_covers_schedule() {
        let generator = TraceGenerator::new(Benchmark::Mesa);
        let budget = SimBudget::spread(&generator, 4, 1000, 2000);
        assert_eq!(budget.intervals.len(), 4);
        assert_eq!(budget.instructions(), 12_000);
        let n = generator.num_intervals();
        assert!(budget.intervals.iter().all(|&i| i < n));
        assert!(budget.intervals.windows(2).all(|w| w[0] < w[1]));
    }
}
