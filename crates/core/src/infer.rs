//! Batched, parallel inference over design-point indices.
//!
//! The paper's payoff step is predicting the metric over the *entire*
//! exponential design space from a model trained on 1–4 % of it. This
//! module is the engine for that sweep: indices are encoded into row-major
//! feature matrices chunk by chunk and pushed through the ensemble's
//! blocked matrix-matrix batch kernels ([`Ensemble::predict_batch_into`],
//! [`Ensemble::disagreement_batch_into`] for query-by-committee scores),
//! with chunks fanned out across scoped worker threads per the existing
//! [`Parallelism`] knob. The `CHUNK` size here is also the block size the
//! network kernel tiles internally, so each chunk is transposed once and
//! streamed straight through.
//!
//! # Determinism contract
//!
//! Each output depends only on its own design-point index: workers own
//! disjoint contiguous spans of the output, every worker computes the same
//! arithmetic the sequential path would, and spans are merged in index
//! order. The result is therefore **bit-for-bit identical** for every
//! `Parallelism` setting — the same contract parallel fold training
//! established for `fit_ensemble`.

use crate::space::DesignSpace;
use crate::telemetry;
use archpredict_ann::{Ensemble, Parallelism, PredictBuffer};

/// Points encoded and predicted per inner batch. Bounds each worker's
/// feature-matrix buffer while amortizing the batch-call overhead.
const CHUNK: usize = 256;

/// Predicts the metric at each design-point index, in input order.
///
/// Work is split into contiguous spans across up to
/// `parallelism.worker_count(..)` scoped threads; each worker owns one
/// [`PredictBuffer`] and one feature-matrix buffer for its whole span, so
/// the steady-state sweep performs no per-point allocation.
pub fn predict_indices(
    ensemble: &Ensemble,
    space: &DesignSpace,
    indices: &[usize],
    parallelism: Parallelism,
) -> Vec<f64> {
    sweep(
        indices,
        parallelism,
        |index, rows| space.encode_index_into(index, rows),
        space.encoded_width(),
        |rows, out, buf| ensemble.predict_batch_into(rows, out, buf),
    )
}

/// Full sweep with a caller-supplied encoder appending exactly `dims`
/// features per index — used by extensions whose feature vectors extend
/// the plain design-point encoding (e.g. the cross-application model's
/// one-hot application id).
pub(crate) fn sweep_encoded<E>(
    ensemble: &Ensemble,
    indices: &[usize],
    parallelism: Parallelism,
    encode: E,
    dims: usize,
) -> Vec<f64>
where
    E: Fn(usize, &mut Vec<f64>) + Sync,
{
    sweep(indices, parallelism, encode, dims, |rows, out, buf| {
        ensemble.predict_batch_into(rows, out, buf)
    })
}

/// Committee disagreement (member-prediction standard deviation) at each
/// design-point index, in input order — the query-by-committee score used
/// by active learning, batched and parallelized like [`predict_indices`].
pub fn disagreement_indices(
    ensemble: &Ensemble,
    space: &DesignSpace,
    indices: &[usize],
    parallelism: Parallelism,
) -> Vec<f64> {
    disagreement_encoded(
        ensemble,
        indices,
        parallelism,
        |index, rows| space.encode_index_into(index, rows),
        space.encoded_width(),
    )
}

/// Committee disagreement with a caller-supplied encoder — the
/// query-by-committee sweep for campaigns whose feature rows extend the
/// plain design-point encoding (see [`crate::campaign::Encoder`]).
pub(crate) fn disagreement_encoded<E>(
    ensemble: &Ensemble,
    indices: &[usize],
    parallelism: Parallelism,
    encode: E,
    dims: usize,
) -> Vec<f64>
where
    E: Fn(usize, &mut Vec<f64>) + Sync,
{
    sweep(indices, parallelism, encode, dims, |rows, out, buf| {
        ensemble.disagreement_batch_into(rows, out, buf)
    })
}

/// Shared sweep skeleton: `encode` appends `dims` features per index into
/// a row-major chunk matrix, `score` appends exactly one value per row.
/// Spans are contiguous and joined in index order.
fn sweep<E, F>(
    indices: &[usize],
    parallelism: Parallelism,
    encode: E,
    dims: usize,
    score: F,
) -> Vec<f64>
where
    E: Fn(usize, &mut Vec<f64>) + Sync,
    F: Fn(&[f64], &mut Vec<f64>, &mut PredictBuffer) + Sync,
{
    // Telemetry: counters are deterministic (sweep and point counts do
    // not depend on the worker split); timing lives in the span only.
    let _span = telemetry::span("infer.sweep");
    telemetry::INFER_SWEEPS.incr();
    telemetry::INFER_POINTS.add(indices.len() as u64);
    let mut out = vec![0.0; indices.len()];
    let workers = parallelism.worker_count(indices.len().div_ceil(CHUNK));
    if workers <= 1 {
        sweep_span(indices, &mut out, &encode, dims, &score);
    } else {
        let span = indices.len().div_ceil(workers);
        std::thread::scope(|scope| {
            for (index_span, out_span) in indices.chunks(span).zip(out.chunks_mut(span)) {
                let (encode, score) = (&encode, &score);
                scope.spawn(move || sweep_span(index_span, out_span, encode, dims, score));
            }
        });
    }
    out
}

/// One worker's contiguous span, processed in `CHUNK`-sized batches with
/// buffers reused across the whole span.
fn sweep_span<E, F>(indices: &[usize], out: &mut [f64], encode: &E, dims: usize, score: &F)
where
    E: Fn(usize, &mut Vec<f64>) + Sync,
    F: Fn(&[f64], &mut Vec<f64>, &mut PredictBuffer) + Sync,
{
    let mut rows: Vec<f64> = Vec::with_capacity(CHUNK.min(indices.len()) * dims);
    let mut values: Vec<f64> = Vec::with_capacity(CHUNK.min(indices.len()));
    let mut buf = PredictBuffer::default();
    for (index_chunk, out_chunk) in indices.chunks(CHUNK).zip(out.chunks_mut(CHUNK)) {
        rows.clear();
        for &i in index_chunk {
            encode(i, &mut rows);
        }
        // Hard asserts, not debug_asserts: a mis-sized encoder or scorer in
        // a release build must abort, not silently misalign the chunk
        // hand-off to the batch kernels (`copy_from_slice` would only catch
        // it when lengths happen to differ).
        assert_eq!(rows.len(), index_chunk.len() * dims, "encoder width");
        values.clear();
        score(&rows, &mut values, &mut buf);
        assert_eq!(values.len(), index_chunk.len(), "one value per row");
        out_chunk.copy_from_slice(&values);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use archpredict_ann::{fit_ensemble, Dataset, Sample, TrainConfig};

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            Param::cardinal("a", (0..9).map(f64::from).collect::<Vec<_>>()),
            Param::cardinal("b", (0..9).map(f64::from).collect::<Vec<_>>()),
            Param::nominal("mode", ["x", "y"]),
        ])
        .unwrap()
    }

    fn ensemble(space: &DesignSpace) -> Ensemble {
        let data: Dataset = (0..60)
            .map(|i| {
                let p = space.point(i * 2);
                let f = space.encode(&p);
                let t = 0.4 + 0.3 * f[0] + 0.2 * f[0] * f[1];
                Sample::new(f, t)
            })
            .collect();
        let config = TrainConfig {
            max_epochs: 40,
            ..TrainConfig::default()
        };
        fit_ensemble(&data, 5, &config, 11).ensemble
    }

    #[test]
    fn batched_sweep_matches_point_at_a_time_bit_for_bit() {
        let space = space();
        let ensemble = ensemble(&space);
        let indices: Vec<usize> = (0..space.size()).collect();
        let batched = predict_indices(&ensemble, &space, &indices, Parallelism::Fixed(1));
        for (&i, &b) in indices.iter().zip(&batched) {
            let sequential = ensemble.predict(&space.encode(&space.point(i)));
            assert_eq!(sequential, b, "index {i}");
        }
    }

    #[test]
    fn every_parallelism_setting_is_identical() {
        let space = space();
        let ensemble = ensemble(&space);
        let indices: Vec<usize> = (0..space.size()).collect();
        let reference = predict_indices(&ensemble, &space, &indices, Parallelism::Fixed(1));
        for parallelism in [
            Parallelism::Fixed(2),
            Parallelism::Fixed(4),
            Parallelism::Fixed(7),
            Parallelism::Auto,
        ] {
            let parallel = predict_indices(&ensemble, &space, &indices, parallelism);
            assert_eq!(reference, parallel, "{parallelism:?}");
        }
    }

    #[test]
    fn disagreement_sweep_matches_scalar_path() {
        let space = space();
        let ensemble = ensemble(&space);
        let indices: Vec<usize> = (0..space.size()).step_by(3).collect();
        let reference: Vec<f64> = indices
            .iter()
            .map(|&i| ensemble.disagreement(&space.encode(&space.point(i))))
            .collect();
        for parallelism in [
            Parallelism::Fixed(1),
            Parallelism::Fixed(3),
            Parallelism::Auto,
        ] {
            let scores = disagreement_indices(&ensemble, &space, &indices, parallelism);
            assert_eq!(reference, scores, "{parallelism:?}");
        }
    }

    #[test]
    fn empty_index_list_is_fine() {
        let space = space();
        let ensemble = ensemble(&space);
        assert!(predict_indices(&ensemble, &space, &[], Parallelism::Auto).is_empty());
    }

    #[test]
    fn uneven_spans_cover_every_index() {
        // 2 workers over an odd count exercises the chunk/span remainders.
        let space = space();
        let ensemble = ensemble(&space);
        let indices: Vec<usize> = (0..123).collect();
        let a = predict_indices(&ensemble, &space, &indices, Parallelism::Fixed(2));
        let b = predict_indices(&ensemble, &space, &indices, Parallelism::Fixed(1));
        assert_eq!(a.len(), 123);
        assert_eq!(a, b);
    }
}
