//! # archpredict
//!
//! Predictive modeling of architectural design spaces via neural-network
//! ensembles — a from-scratch reproduction of Ïpek et al., *Efficiently
//! Exploring Architectural Design Spaces via Predictive Modeling*
//! (ASPLOS 2006).
//!
//! Detailed cycle-level simulation of a single design point is expensive,
//! and design spaces are exponential in the number of parameters. This
//! crate trains **ensembles of artificial neural networks** on a sparse
//! random sample of the space (typically 1–4 %), predicts the metric (IPC)
//! everywhere else, and — crucially — uses cross-validation to *estimate
//! its own error* so simulation can stop as soon as the model is accurate
//! enough.
//!
//! The moving parts:
//!
//! * [`param`] / [`space`] — design-space algebra: cardinal, nominal,
//!   boolean and linked parameters; point indexing; the §3.3 encoding.
//! * [`studies`] — the paper's two concrete spaces (Tables 4.1/4.2) and
//!   their mapping onto the cycle-level simulator.
//! * [`simulate`] — the batch-first simulation oracle: full simulation,
//!   SimPoint-accelerated (noisy) simulation, a sharded deduplicating
//!   cache with CSV persist/preload, parallel batch fan-out, and
//!   [`simulate::SimStats`] telemetry.
//! * [`fault`] — deterministic, seeded fault injection for exercising the
//!   retry/quarantine stack under reproducible failure schedules.
//! * [`failpoint`] — named, seeded fault sites compiled into the persist,
//!   registry, serve and distributed paths; every chaos schedule is a
//!   pure function of `(seed, site, hit count)` and therefore replayable.
//! * [`distributed`] — the multi-process simulation oracle: a coordinator
//!   that fork/execs `archpredict-worker` processes and speaks a
//!   length-prefixed pipe protocol, bit-for-bit identical to the
//!   in-process oracle at every worker count.
//! * [`campaign`] — the train–estimate–refine engine shared by every
//!   driver: the canonical round loop (§3.3's procedure, steps 1–8),
//!   generic over an [`campaign::Encoder`] and the sampling strategy,
//!   with crash-safe checkpoint / resume via [`checkpoint`] and the
//!   audited [`campaign::seed_stream`] derivation map.
//! * [`explorer`] — the single-application driver: a thin façade aliasing
//!   the engine with the paper's plain design-point encoding.
//! * [`persist`] — atomic (write-temp, fsync, rename) file persistence
//!   shared by caches, checkpoints and reports.
//! * [`registry`] — the on-disk model registry: content-hashed,
//!   versioned artifacts keyed by `(study, encoder, app, seed, budget)`,
//!   with [`registry::Registry::get_or_fit`] loading warm ensembles
//!   (zero fits, zero simulations) or driving a campaign exactly once.
//! * [`serve`] — the prediction daemon behind `archpredict-served`:
//!   HTTP/1.1 over `std::net`, multiplexing campaigns and prediction
//!   requests, coalescing concurrent predictions into one batched
//!   `infer` sweep per tick.
//! * [`sampling`] — random (paper) and active-learning (§7) strategies.
//! * [`infer`] — the batched, allocation-free, parallel inference engine
//!   behind full-space sweeps and committee scoring.
//! * [`multitask`] — the §7 multi-task extension (IPC + auxiliary
//!   metrics through a shared hidden layer).
//! * [`crossapp`] — the §7 cross-application extension (one pooled model
//!   over several benchmarks, with a one-hot application input).
//! * [`smarts`] — a SMARTS-style systematic-sampling estimator (§2 names
//!   the combination as future work), another noisy evaluator the
//!   ensembles can train on.
//! * [`report`] — learning curves, CSV/tables for regenerating the
//!   paper's figures.
//! * [`telemetry`] — the unified observability layer: process-wide
//!   metric counters behind the daemon's `GET /metrics`, JSONL span
//!   events (`ARCHPREDICT_TRACE=path`), and cross-process trace-ID
//!   propagation through the APWK wire protocol.
//!
//! # Quickstart
//!
//! ```no_run
//! use archpredict::explorer::{Explorer, ExplorerConfig};
//! use archpredict::simulate::{SimBudget, StudyEvaluator};
//! use archpredict::studies::Study;
//! use archpredict_workloads::Benchmark;
//!
//! // Predict gzip's IPC across the 23,040-point memory-system space.
//! let evaluator = StudyEvaluator::new(Study::MemorySystem, Benchmark::Gzip);
//! let space = Study::MemorySystem.space();
//! let config = ExplorerConfig { target_error: 2.0, ..ExplorerConfig::default() };
//! let mut explorer = Explorer::new(&space, &evaluator, config);
//! let round = explorer.run();
//! println!(
//!     "{} simulations ({:.2}% of space): estimated error {:.2}%",
//!     round.samples,
//!     100.0 * round.fraction_sampled,
//!     round.estimate.mean
//! );
//! let best = (0..space.size()).max_by(|&a, &b| {
//!     explorer.predict(a).total_cmp(&explorer.predict(b))
//! });
//! ```

pub mod campaign;
pub mod checkpoint;
pub mod crossapp;
pub mod distributed;
pub mod explorer;
pub mod failpoint;
pub mod fault;
pub mod infer;
pub mod multitask;
pub mod param;
pub mod persist;
pub mod registry;
pub mod report;
pub mod sampling;
pub mod serve;
pub mod simulate;
pub mod smarts;
pub mod space;
pub mod studies;
pub mod telemetry;

pub use campaign::{AppEncoder, Campaign, CampaignConfig, Encoder, PlainEncoder};
pub use checkpoint::{CheckpointError, ExplorerState};
pub use distributed::{ProcessPoolOracle, SleepyEvaluator, SpecEvaluator, WorkerSpec};
pub use explorer::{ExploreError, Explorer, ExplorerConfig, Round, TrueError};
pub use fault::{FaultConfig, FaultInjectingOracle};
pub use param::{Param, ParamKind, ParamValue};
pub use registry::{FitOutcome, ModelKey, Registry, RegistryError, StudyFitSpec, SweepReport};
pub use serve::{install_signal_handlers, shutdown_signaled, ServeConfig, Server, ServerHandle};
pub use simulate::{
    CachedEvaluator, Oracle, PointEvaluator, RetryPolicy, RetryingOracle, SimBudget, SimError,
    SimPointEvaluator, SimResult, SimStats, StudyEvaluator,
};
pub use space::{DesignPoint, DesignSpace, SpaceError};
pub use studies::Study;
