//! Deterministic fault injection for testing the fault-tolerant oracle
//! stack.
//!
//! [`FaultInjectingOracle`] wraps any [`Oracle`] and injects seeded,
//! per-(index, attempt) faults with a configurable probability and mode
//! mix. The fault schedule is a *pure function* of the configured seed,
//! the design-point index, and how many times that index has been
//! attempted — never of thread timing — so an injected-fault run is
//! bit-for-bit reproducible at every [`archpredict_ann::Parallelism`]
//! setting, which is exactly what the CI smoke gate asserts.

use crate::simulate::{Oracle, SimError, SimResult, SimStats};
use crate::space::DesignSpace;
use crate::telemetry::{self, Counter};
use archpredict_stats::rng::Xoshiro256;
use std::collections::HashMap;
use std::sync::Mutex;

/// Fault schedule configuration for [`FaultInjectingOracle`].
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Probability that any single (index, attempt) evaluation faults.
    pub probability: f64,
    /// Seed of the deterministic fault schedule.
    pub seed: u64,
    /// Fault mode mix: `(mode, weight)` pairs, weights need not sum to 1.
    pub modes: Vec<(SimError, f64)>,
}

impl Default for FaultConfig {
    fn default() -> Self {
        Self {
            probability: 0.1,
            seed: 0xFA_17ED,
            modes: vec![
                (SimError::Transient, 0.5),
                (SimError::Crashed, 0.2),
                (SimError::TimedOut, 0.2),
                (SimError::NonFinite, 0.1),
            ],
        }
    }
}

impl FaultConfig {
    /// A schedule that only injects retriable faults — useful when a test
    /// must guarantee every index eventually succeeds within the retry
    /// budget's reach (no deterministic `NonFinite` garbage).
    pub fn retriable_only(probability: f64, seed: u64) -> Self {
        Self {
            probability,
            seed,
            modes: vec![
                (SimError::Transient, 0.6),
                (SimError::Crashed, 0.2),
                (SimError::TimedOut, 0.2),
            ],
        }
    }

    /// The fault decision for attempt number `attempt` (1-based) at
    /// `index`: a pure function of `(seed, index, attempt)`.
    pub fn fault_for(&self, index: usize, attempt: u64) -> Option<SimError> {
        let mut rng = Xoshiro256::seed_from(self.seed)
            .derive(index as u64 + 1)
            .derive(attempt);
        if rng.next_f64() >= self.probability {
            return None;
        }
        let total: f64 = self.modes.iter().map(|&(_, w)| w).sum();
        if total <= 0.0 {
            return None;
        }
        let mut pick = rng.next_f64() * total;
        for &(mode, weight) in &self.modes {
            pick -= weight;
            if pick < 0.0 {
                return Some(mode);
            }
        }
        self.modes.last().map(|&(mode, _)| mode)
    }
}

/// Wraps any oracle with a seeded, deterministic fault schedule.
///
/// Faulted (index, attempt) pairs never reach the inner oracle — the
/// injector simulates the backend dying *before* it produces a value — so
/// wrapping a [`crate::simulate::CachedEvaluator`] keeps the cache free of
/// injected garbage, and the exactly-once-per-surviving-index property of
/// the stack is preserved.
///
/// Fault decisions are computed sequentially in input order before the
/// surviving subset is delegated to the inner oracle, so injection is
/// independent of the inner oracle's thread count.
#[derive(Debug)]
pub struct FaultInjectingOracle<O> {
    inner: O,
    config: FaultConfig,
    /// Attempts seen per index (shared across batches, so retries of an
    /// index advance its schedule).
    attempts: Mutex<HashMap<usize, u64>>,
    injected: Counter,
}

impl<O: Oracle> FaultInjectingOracle<O> {
    /// Wraps `inner` with the default 10% mixed-mode schedule.
    pub fn new(inner: O) -> Self {
        Self::with_config(inner, FaultConfig::default())
    }

    /// Wraps `inner` with an explicit schedule.
    pub fn with_config(inner: O, config: FaultConfig) -> Self {
        Self {
            inner,
            config,
            attempts: Mutex::new(HashMap::new()),
            injected: Counter::mirroring("fault.injected", &telemetry::FAULT_INJECTED),
        }
    }

    /// The wrapped oracle.
    pub fn inner(&self) -> &O {
        &self.inner
    }

    /// The fault schedule in force.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Total faults injected so far.
    pub fn injected(&self) -> u64 {
        self.injected.get()
    }
}

impl<O: Oracle> Oracle for FaultInjectingOracle<O> {
    fn evaluate_batch(
        &self,
        space: &DesignSpace,
        indices: &[usize],
        stats: &mut SimStats,
    ) -> Vec<SimResult> {
        // Phase 1 (sequential, input order): decide each occurrence's
        // fate. Duplicate occurrences of an index advance its attempt
        // counter independently, in input order, so the schedule does not
        // depend on how the inner oracle parallelizes.
        let mut results: Vec<SimResult> = Vec::with_capacity(indices.len());
        let mut passing: Vec<usize> = Vec::new();
        let mut passing_slots: Vec<usize> = Vec::new();
        {
            let mut attempts = self.attempts.lock().expect("attempt counter lock");
            for (slot, &index) in indices.iter().enumerate() {
                let attempt = attempts.entry(index).or_insert(0);
                *attempt += 1;
                match self.config.fault_for(index, *attempt) {
                    Some(error) => {
                        stats.failures += 1;
                        self.injected.incr();
                        results.push(Err(error));
                    }
                    None => {
                        passing.push(index);
                        passing_slots.push(slot);
                        results.push(Ok(0.0)); // placeholder, filled below
                    }
                }
            }
        }
        // Phase 2: the surviving subset goes to the inner oracle as one
        // batch, preserving its dedup/fan-out behavior.
        let inner_results = self.inner.evaluate_batch(space, &passing, stats);
        for (slot, outcome) in passing_slots.into_iter().zip(inner_results) {
            results[slot] = outcome;
        }
        results
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{PointEvaluator, RetryingOracle};
    use crate::space::DesignPoint;
    use crate::studies::Study;
    use std::sync::atomic::{AtomicUsize, Ordering};

    struct CountingEvaluator {
        calls: AtomicUsize,
    }

    impl PointEvaluator for CountingEvaluator {
        fn evaluate(&self, point: &DesignPoint) -> f64 {
            self.calls.fetch_add(1, Ordering::SeqCst);
            point.0.iter().sum::<usize>() as f64 + 1.0
        }
        fn instructions_per_evaluation(&self) -> u64 {
            100
        }
    }

    fn counting() -> CountingEvaluator {
        CountingEvaluator {
            calls: AtomicUsize::new(0),
        }
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_index_attempt() {
        let config = FaultConfig::default();
        for index in 0..200 {
            for attempt in 1..4 {
                assert_eq!(
                    config.fault_for(index, attempt),
                    config.fault_for(index, attempt)
                );
            }
        }
        // ~10% of first attempts fault (loose statistical bound).
        let faults = (0..2000)
            .filter(|&i| config.fault_for(i, 1).is_some())
            .count();
        assert!((100..300).contains(&faults), "fault count {faults}");
    }

    #[test]
    fn faulted_attempts_never_reach_the_inner_oracle() {
        let space = Study::MemorySystem.space();
        let injector = FaultInjectingOracle::with_config(
            counting(),
            FaultConfig {
                probability: 0.5,
                ..FaultConfig::default()
            },
        );
        let indices: Vec<usize> = (0..100).collect();
        let mut stats = SimStats::default();
        let results = injector.evaluate_batch(&space, &indices, &mut stats);
        let ok = results.iter().filter(|r| r.is_ok()).count();
        let failed = results.len() - ok;
        assert_eq!(injector.inner().calls.load(Ordering::SeqCst), ok);
        assert_eq!(injector.injected() as usize, failed);
        assert_eq!(stats.failures as usize, failed);
        assert_eq!(stats.unique_simulations as usize, ok);
        assert!(failed > 10 && ok > 10, "ok {ok} / failed {failed}");
    }

    #[test]
    fn retry_stack_recovers_retriable_injected_faults_deterministically() {
        let space = Study::MemorySystem.space();
        let run = || {
            let oracle = RetryingOracle::new(FaultInjectingOracle::with_config(
                counting(),
                FaultConfig::retriable_only(0.3, 77),
            ));
            let mut stats = SimStats::default();
            let results = oracle.evaluate_batch(&space, &(0..50).collect::<Vec<_>>(), &mut stats);
            (results, stats.retries, stats.quarantined)
        };
        let (a, retries, _) = run();
        let (b, _, _) = run();
        assert_eq!(a, b, "same seed, same outcome");
        assert!(retries > 0, "0.3 fault rate should trigger retries");
        // With p = 0.3 and 3 attempts, perma-failure is ~2.7% per index.
        let ok = a.iter().filter(|r| r.is_ok()).count();
        assert!(ok >= 40, "only {ok}/50 survived");
    }
}
