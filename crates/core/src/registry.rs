//! The on-disk model registry: warm ensembles keyed by what produced them.
//!
//! Every driver used to refit its ensemble from scratch on each
//! invocation even though the artifacts round-trip through JSON exactly.
//! The registry closes that loop: a [`ModelKey`] — `(study, encoder, app,
//! seed, budget)` — names one training run's outcome, and
//! [`Registry::get_or_fit`] either loads the persisted artifact (zero
//! fits, zero simulations) or runs the caller's fit exactly once and
//! persists the result for every future caller.
//!
//! # On-disk layout
//!
//! ```text
//! <root>/
//!   entries/<slug>.json    one index record per key
//!   objects/<hash>.json    content-addressed model artifacts
//!   leases/<slug>.lock     cross-process fit leases
//! ```
//!
//! Artifacts are the versioned-header serializations of
//! [`Ensemble`]/[`MultiTrainedModel`] (format version + space/encoder
//! fingerprint), named by the FNV-1a hash of their bytes. Each entry
//! file maps one key to its object name and carries a caller-defined
//! JSON payload (figure bins store their learning-curve rows there, so a
//! warm re-run reconstructs the whole curve without simulating).
//!
//! # Crash safety and concurrency
//!
//! The index is **one file per key**, not a monolithic manifest: a
//! commit is two independent atomic writes (object, then entry — both
//! through [`persist::write_atomic`]) and never a read-modify-write of
//! shared state. Concurrent commits of different keys touch different
//! files and cannot clobber each other *by construction*; concurrent
//! commits of the same key are deterministic duplicates (same key ⇒
//! bit-identical artifact), so last-writer-wins is also correct. The
//! commit order — object first, entry second — means a kill between the
//! two leaves an orphan object (harmless, unreferenced); an entry never
//! references a torn or missing artifact. Loads still verify the
//! object's content hash against the entry before trusting it.
//!
//! Fit *deduplication* is layered on top. Within a process, a per-key
//! mutex collapses concurrent `get_or_fit` calls into exactly one fit
//! (the losers block, then load warm). Across processes, a lease file
//! serializes fitters per key: the lease is published with its contents
//! (`pid nonce`) in one atomic step — write a private claim file, then
//! `hard_link` it to the lock path, which fails if the lock exists — so
//! a lease is never observed empty or half-written. A dead holder's
//! lease is stolen by renaming it to a stealer-unique name and
//! re-verifying the renamed bytes (same token, pid still dead) before
//! discarding; a concurrently-replaced lease is restored via
//! `hard_link`. This closes the observable steal races; the one
//! theoretically unclosable window (two stealers plus two fresh
//! acquisitions interleaving within syscalls) can at worst run a
//! duplicate fit — never corrupt the store, because correctness rests on
//! the commit structure above, not on the lease.
//!
//! Crashes leave debris — torn writer temps, orphaned lease claims and
//! graves — that is inert by construction but accumulates forever.
//! [`Registry::open`] sweeps it ([`Registry::sweep_debris`]), removing
//! only files whose embedded writer pid is dead (live writers are never
//! swept). The commit and lease paths also carry [`crate::failpoint`]
//! sites ([`FP_COMMIT_OBJECT`], [`FP_COMMIT_ENTRY`],
//! [`FP_LEASE_ACQUIRE`]) so chaos schedules can inject I/O failures at
//! the exact points the crash-safety argument hinges on.

use crate::campaign::{Campaign, CampaignConfig, Encoder, PlainEncoder};
use crate::failpoint;
use crate::persist;
use crate::sampling::Strategy;
use crate::simulate::{CachedEvaluator, SimBudget, StudyEvaluator};
use crate::studies::Study;
use crate::telemetry::{self, Counter};
use archpredict_ann::{Ensemble, MultiTrainedModel};
use archpredict_stats::hash::fnv1a_64;
use archpredict_stats::json::{JsonError, Value};
use archpredict_workloads::{Benchmark, TraceGenerator};
use std::collections::HashMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex, OnceLock};
use std::time::{Duration, Instant};

/// How long a writer waits on another process's live lease before giving
/// up (a fit can legitimately take minutes; a poll is cheap).
const LEASE_WAIT: Duration = Duration::from_secs(600);
/// Lease poll interval.
const LEASE_POLL: Duration = Duration::from_millis(50);
/// Age before a pid-less legacy `*.tmp` is treated as abandoned debris.
/// Pid-carrying debris is judged by writer liveness instead, so live
/// writers are never swept regardless of how long a write takes.
const LEGACY_DEBRIS_AGE: Duration = Duration::from_secs(600);

/// Failpoint site evaluated at the top of a commit, before the object
/// write: firing fails the commit with nothing durable on disk.
pub const FP_COMMIT_OBJECT: &str = "registry.commit.object";
/// Failpoint site evaluated between the commit's two atomic writes —
/// the "kill -9 after the object, before the entry" shape: the object
/// is durable but unreferenced, the entry untouched, and the next
/// reader sees a clean miss.
pub const FP_COMMIT_ENTRY: &str = "registry.commit.entry";
/// Failpoint site evaluated on lease acquisition (before the claim file
/// is staged); firing fails `get_or_fit` with an I/O error.
pub const FP_LEASE_ACQUIRE: &str = "registry.lease.acquire";

/// What produced a model: the coordinates of one training run.
///
/// Two runs with equal keys produce bit-identical artifacts (the whole
/// pipeline is deterministic in the seed), so the key is also the cache
/// identity. The `encoder` string names the feature encoding *and* any
/// training-pipeline variant that changes the artifact — `"plain"`,
/// `"plain-qbc4"` (active learning, pool factor 4), `"plain-quick"`
/// (quick simulation budget), `"plain-simpoint"`, …
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct ModelKey {
    /// Study name (`"memory"` / `"processor"` / a caller-defined space).
    pub study: String,
    /// Encoding + pipeline variant (see type docs).
    pub encoder: String,
    /// Application/benchmark name.
    pub app: String,
    /// Master seed of the campaign.
    pub seed: u64,
    /// Sample budget (the campaign's `max_samples`).
    pub budget: usize,
}

impl ModelKey {
    /// Builds a key, taking anything string-like for the text fields.
    pub fn new(
        study: impl Into<String>,
        encoder: impl Into<String>,
        app: impl Into<String>,
        seed: u64,
        budget: usize,
    ) -> Self {
        Self {
            study: study.into(),
            encoder: encoder.into(),
            app: app.into(),
            seed,
            budget,
        }
    }

    /// Filesystem-safe identity: lowercased fields with anything outside
    /// `[a-z0-9._-]` mapped to `_`, joined with the seed (hex) and budget.
    pub fn slug(&self) -> String {
        fn clean(s: &str) -> String {
            s.chars()
                .map(|c| match c.to_ascii_lowercase() {
                    c @ ('a'..='z' | '0'..='9' | '.' | '-') => c,
                    _ => '_',
                })
                .collect()
        }
        format!(
            "{}-{}-{}-{:016x}-{}",
            clean(&self.study),
            clean(&self.encoder),
            clean(&self.app),
            self.seed,
            self.budget
        )
    }
}

impl std::fmt::Display for ModelKey {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{}/{} seed={:#x} budget={}",
            self.study, self.encoder, self.app, self.seed, self.budget
        )
    }
}

/// Errors from registry operations.
#[derive(Debug)]
pub enum RegistryError {
    /// Filesystem trouble (unreadable entry, failed persist, …).
    Io(std::io::Error),
    /// An on-disk structure exists but cannot be trusted: unparsable
    /// entry, object bytes that don't match their recorded hash, a
    /// model that fails to deserialize, two keys colliding on one slug.
    Corrupt(String),
    /// The artifact exists but was produced for a different space,
    /// encoding, or format era — refitting is required, silently
    /// mispredicting is not an option.
    Incompatible(String),
    /// Another live process held the key's write lease past the wait
    /// budget.
    LeaseHeld {
        /// The contended key.
        key: ModelKey,
        /// Pid recorded in the lease file.
        holder: u32,
    },
    /// The caller's fit failed (campaign error, degenerate data, …).
    Fit(String),
}

impl std::fmt::Display for RegistryError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RegistryError::Io(e) => write!(f, "registry I/O error: {e}"),
            RegistryError::Corrupt(msg) => write!(f, "registry corrupt: {msg}"),
            RegistryError::Incompatible(msg) => write!(f, "registry artifact incompatible: {msg}"),
            RegistryError::LeaseHeld { key, holder } => write!(
                f,
                "write lease for {key} held by live process {holder} past the wait budget"
            ),
            RegistryError::Fit(msg) => write!(f, "fit failed: {msg}"),
        }
    }
}

impl std::error::Error for RegistryError {}

impl From<std::io::Error> for RegistryError {
    fn from(e: std::io::Error) -> Self {
        RegistryError::Io(e)
    }
}

/// A model loaded or fitted through the registry.
#[derive(Debug, Clone)]
pub struct FitOutcome<M> {
    /// The model (an [`Ensemble`] or [`MultiTrainedModel`]).
    pub model: M,
    /// The caller-defined payload persisted alongside it
    /// ([`Value::Null`] when the fit stored none).
    pub payload: Value,
    /// `true` when the artifact came off disk — zero fits and zero
    /// simulations were performed by this call.
    pub warm: bool,
}

/// A campaign-driven fit specification for the paper's studies — the
/// stack assembly (space, oracle, campaign) that every binary used to
/// copy-paste, now behind [`Registry::get_or_fit_study`].
#[derive(Debug, Clone, PartialEq)]
pub struct StudyFitSpec {
    /// Which study's space to model.
    pub study: Study,
    /// Which application to model.
    pub benchmark: Benchmark,
    /// Campaign policy (`seed` and `max_samples` become key fields).
    pub config: CampaignConfig,
    /// Use the quick simulation budget ([`SimBudget::quick`]) instead of
    /// the evaluator's standard budget — for tests and smoke gates; the
    /// variant is part of the key, so quick and standard artifacts never
    /// alias.
    pub quick: bool,
}

impl StudyFitSpec {
    /// A standard-budget spec with the given campaign policy.
    pub fn new(study: Study, benchmark: Benchmark, config: CampaignConfig) -> Self {
        Self {
            study,
            benchmark,
            config,
            quick: false,
        }
    }

    /// The encoder/pipeline-variant string this spec trains under.
    pub fn encoder_name(&self) -> String {
        let mut name = String::from("plain");
        if let Strategy::Active { pool_factor } = self.config.strategy {
            name.push_str(&format!("-qbc{pool_factor}"));
        }
        if self.quick {
            name.push_str("-quick");
        }
        name
    }

    /// The registry key this spec resolves to.
    pub fn key(&self) -> ModelKey {
        ModelKey::new(
            self.study.name(),
            self.encoder_name(),
            self.benchmark.name(),
            self.config.seed,
            self.config.max_samples,
        )
    }

    /// The space/encoder fingerprint artifacts are stamped with.
    pub fn fingerprint(&self) -> u64 {
        PlainEncoder.fingerprint(&self.study.space())
    }
}

/// In-process per-key fit locks, shared by every `Registry` instance so
/// two handles onto the same directory still serialize their fits.
fn key_lock(root: &Path, slug: &str) -> Arc<Mutex<()>> {
    type LockMap = Mutex<HashMap<(PathBuf, String), Arc<Mutex<()>>>>;
    static LOCKS: OnceLock<LockMap> = OnceLock::new();
    let mut map = LOCKS
        .get_or_init(|| Mutex::new(HashMap::new()))
        .lock()
        .expect("key-lock map poisoned");
    map.entry((root.to_path_buf(), slug.to_owned()))
        .or_default()
        .clone()
}

/// What [`Registry::sweep_debris`] removed: crash leftovers from dead
/// writers, which would otherwise accumulate forever.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct SweepReport {
    /// Torn writer temps (`<name>.<pid>.<seq>.tmp` of dead writers, plus
    /// pid-less legacy `*.tmp` older than the age guard).
    pub temps: usize,
    /// Lease claim files (`<slug>.claim-<pid>-<nonce>`) of dead acquirers.
    pub claims: usize,
    /// Lease grave files (`<slug>.stale-<pid>-<nonce>`) of dead stealers.
    pub graves: usize,
}

impl SweepReport {
    /// Total files removed.
    pub fn total(&self) -> usize {
        self.temps + self.claims + self.graves
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum DebrisKind {
    Temp,
    Claim,
    Grave,
}

/// Classifies a filename as sweepable crash debris, extracting the
/// embedded writer pid when the name carries one. Lease claims and
/// graves only exist in `leases/`, so they are only recognized there —
/// an entry or object whose *slug* happens to contain `.claim-` is
/// never misclassified.
fn classify_debris(name: &str, in_leases: bool) -> Option<(DebrisKind, Option<u32>)> {
    if let Some(stem) = name.strip_suffix(".tmp") {
        // Writer temp: `<name>.<pid>.<seq>.tmp`; anything else ending in
        // `.tmp` is a pid-less legacy temp judged by age instead.
        let mut parts = stem.rsplit('.');
        let seq_ok = parts.next().is_some_and(|s| s.parse::<u64>().is_ok());
        let pid = parts.next().and_then(|s| s.parse::<u32>().ok());
        return Some((DebrisKind::Temp, if seq_ok { pid } else { None }));
    }
    if !in_leases {
        return None;
    }
    for (marker, kind) in [
        (".claim-", DebrisKind::Claim),
        (".stale-", DebrisKind::Grave),
    ] {
        if let Some(idx) = name.rfind(marker) {
            // The tail must be exactly `<pid>-<nonce>`: a live lock file
            // (`<slug>.lock`) or any other suffix never matches.
            let mut tail = name[idx + marker.len()..].split('-');
            let pid = tail.next().and_then(|s| s.parse::<u32>().ok());
            let nonce_ok = tail.next().is_some_and(|s| s.parse::<u64>().is_ok());
            if pid.is_some() && nonce_ok && tail.next().is_none() {
                return Some((kind, pid));
            }
        }
    }
    None
}

/// The on-disk artifact store (see module docs for layout and
/// guarantees).
#[derive(Debug)]
pub struct Registry {
    root: PathBuf,
    /// Fits this instance actually performed (warm loads excluded) — the
    /// telemetry the zero-fit warm-rerun gates assert on. Mirrored into
    /// the process-wide `registry.fits` counter.
    fits: Counter,
}

/// One index record (internal representation of an entry file).
#[derive(Debug, Clone)]
struct Entry {
    key: ModelKey,
    kind: &'static str,
    fingerprint: u64,
    object: String,
    hash: u64,
    payload: Value,
}

fn hex(x: u64) -> Value {
    Value::Str(format!("{x:016x}"))
}

fn from_hex(value: &Value) -> Result<u64, JsonError> {
    let s = value.as_str()?;
    u64::from_str_radix(s, 16).map_err(|_| JsonError::custom(format!("bad hex u64 {s:?}")))
}

impl Registry {
    /// Opens (creating if necessary) a registry rooted at `root`.
    ///
    /// # Errors
    ///
    /// Fails if the directory tree cannot be created.
    pub fn open(root: impl Into<PathBuf>) -> std::io::Result<Self> {
        let root = root.into();
        std::fs::create_dir_all(root.join("entries"))?;
        std::fs::create_dir_all(root.join("objects"))?;
        std::fs::create_dir_all(root.join("leases"))?;
        let registry = Self {
            root,
            fits: Counter::mirroring("registry.fits", &telemetry::REGISTRY_FITS),
        };
        // Crashed writers leave torn temps and orphaned lease files that
        // nothing ever reads or renames; sweep them (best-effort) so they
        // don't pile up forever. Live writers are never swept — debris is
        // only removed when its embedded writer pid is dead.
        let _ = registry.sweep_debris();
        Ok(registry)
    }

    /// Removes crash debris left by dead writers: torn `*.tmp` temps in
    /// every registry directory, plus orphaned lease claim and grave
    /// files in `leases/`. Files whose name embeds a still-live pid are
    /// never touched (a live writer's in-flight temp, a claim mid-poll);
    /// pid-less legacy temps are removed only past an age guard. Runs
    /// automatically on [`Registry::open`]; exposed so harnesses can
    /// sweep and report after a chaos run.
    ///
    /// # Errors
    ///
    /// Never fails on individual files (they may vanish concurrently);
    /// errors only if a registry directory itself is unreadable.
    pub fn sweep_debris(&self) -> std::io::Result<SweepReport> {
        let mut report = SweepReport::default();
        for dir in ["entries", "objects", "leases"] {
            let in_leases = dir == "leases";
            for item in std::fs::read_dir(self.root.join(dir))? {
                let Ok(item) = item else { continue };
                let name = item.file_name();
                let Some(name) = name.to_str() else { continue };
                let Some((kind, pid)) = classify_debris(name, in_leases) else {
                    continue;
                };
                let abandoned = match pid {
                    Some(pid) => !process_alive(pid),
                    None => item
                        .metadata()
                        .and_then(|m| m.modified())
                        .ok()
                        .and_then(|m| m.elapsed().ok())
                        .is_some_and(|age| age >= LEGACY_DEBRIS_AGE),
                };
                if abandoned && std::fs::remove_file(item.path()).is_ok() {
                    match kind {
                        DebrisKind::Temp => report.temps += 1,
                        DebrisKind::Claim => report.claims += 1,
                        DebrisKind::Grave => report.graves += 1,
                    }
                }
            }
        }
        Ok(report)
    }

    /// The registry's root directory.
    pub fn root(&self) -> &Path {
        &self.root
    }

    /// Fits this instance has actually run (warm loads don't count).
    pub fn fits_performed(&self) -> u64 {
        self.fits.get()
    }

    fn entry_path(&self, slug: &str) -> PathBuf {
        self.root.join("entries").join(format!("{slug}.json"))
    }

    fn object_path(&self, object: &str) -> PathBuf {
        self.root.join("objects").join(object)
    }

    fn lease_path(&self, slug: &str) -> PathBuf {
        self.root.join("leases").join(format!("{slug}.lock"))
    }

    /// Reads the index record for `key`, `Ok(None)` on a clean miss.
    /// Rejects a record whose stored key differs from the requested one
    /// (two distinct keys sanitizing to one slug).
    fn read_entry(&self, key: &ModelKey, slug: &str) -> Result<Option<Entry>, RegistryError> {
        let path = self.entry_path(slug);
        let text = match std::fs::read_to_string(&path) {
            Ok(text) => text,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Ok(None),
            Err(e) => return Err(e.into()),
        };
        let entry = parse_entry(&text).map_err(|e| {
            RegistryError::Corrupt(format!("entry {} unparsable: {e}", path.display()))
        })?;
        if entry.key != *key {
            return Err(RegistryError::Corrupt(format!(
                "slug collision: {} holds the record for {} but {key} was requested \
                 (rename the study/encoder/app so the sanitized slugs differ)",
                path.display(),
                entry.key
            )));
        }
        Ok(Some(entry))
    }

    /// Loads the warm artifact for `key` if one exists, verifying the
    /// content hash and the versioned header against `fingerprint`.
    ///
    /// # Errors
    ///
    /// `Incompatible` when an artifact exists but was produced for a
    /// different space/encoding/format; `Corrupt` when the on-disk state
    /// fails verification; `Io` on filesystem trouble.
    pub fn get(
        &self,
        key: &ModelKey,
        fingerprint: u64,
    ) -> Result<Option<FitOutcome<Ensemble>>, RegistryError> {
        self.get_with(key, fingerprint, "ensemble", |text, fp| {
            Ensemble::from_json_checked(text, fp)
        })
    }

    /// [`Registry::get`] for multi-task models.
    ///
    /// # Errors
    ///
    /// As [`Registry::get`].
    pub fn get_multi(
        &self,
        key: &ModelKey,
        fingerprint: u64,
    ) -> Result<Option<FitOutcome<MultiTrainedModel>>, RegistryError> {
        self.get_with(key, fingerprint, "multi", |text, fp| {
            MultiTrainedModel::from_json_checked(text, fp)
        })
    }

    fn get_with<M>(
        &self,
        key: &ModelKey,
        fingerprint: u64,
        kind: &str,
        load: impl Fn(&str, u64) -> Result<M, JsonError>,
    ) -> Result<Option<FitOutcome<M>>, RegistryError> {
        let Some(entry) = self.read_entry(key, &key.slug())? else {
            return Ok(None);
        };
        if entry.kind != kind {
            return Err(RegistryError::Incompatible(format!(
                "{key} is a {} artifact, requested as {kind}",
                entry.kind
            )));
        }
        if entry.fingerprint != fingerprint {
            return Err(RegistryError::Incompatible(format!(
                "{key} was trained on space/encoding {:016x}, requested {fingerprint:016x}; refit",
                entry.fingerprint
            )));
        }
        let path = self.object_path(&entry.object);
        let text = std::fs::read_to_string(&path).map_err(|e| {
            RegistryError::Corrupt(format!(
                "entry references missing/unreadable object {}: {e}",
                path.display()
            ))
        })?;
        let hash = fnv1a_64(text.as_bytes());
        if hash != entry.hash {
            return Err(RegistryError::Corrupt(format!(
                "object {} content hash {hash:016x} != recorded {:016x}",
                path.display(),
                entry.hash
            )));
        }
        let model = load(&text, fingerprint).map_err(|e| {
            RegistryError::Incompatible(format!("object {} rejected: {e}", path.display()))
        })?;
        Ok(Some(FitOutcome {
            model,
            payload: entry.payload.clone(),
            warm: true,
        }))
    }

    /// Loads the warm artifact for `key` or runs `fit` exactly once and
    /// persists its result. Concurrent callers (threads or processes) of
    /// the same key collapse into one fit; the rest load warm.
    ///
    /// `fit` returns the model plus a JSON payload persisted with it
    /// (learning-curve rows, telemetry — whatever a warm caller needs to
    /// skip recomputation; [`Value::Null`] for none).
    ///
    /// # Errors
    ///
    /// As [`Registry::get`], plus `Fit` when the closure fails and
    /// `LeaseHeld` when another live process wedges the key's lease.
    pub fn get_or_fit(
        &self,
        key: &ModelKey,
        fingerprint: u64,
        fit: impl FnOnce() -> Result<(Ensemble, Value), String>,
    ) -> Result<FitOutcome<Ensemble>, RegistryError> {
        self.get_or_fit_with(
            key,
            fingerprint,
            "ensemble",
            Ensemble::from_json_checked,
            |model, fp| model.to_json_fingerprinted(fp),
            fit,
        )
    }

    /// [`Registry::get_or_fit`] for multi-task models.
    ///
    /// # Errors
    ///
    /// As [`Registry::get_or_fit`].
    pub fn get_or_fit_multi(
        &self,
        key: &ModelKey,
        fingerprint: u64,
        fit: impl FnOnce() -> Result<(MultiTrainedModel, Value), String>,
    ) -> Result<FitOutcome<MultiTrainedModel>, RegistryError> {
        self.get_or_fit_with(
            key,
            fingerprint,
            "multi",
            MultiTrainedModel::from_json_checked,
            |model, fp| model.to_json_fingerprinted(fp),
            fit,
        )
    }

    fn get_or_fit_with<M>(
        &self,
        key: &ModelKey,
        fingerprint: u64,
        kind: &'static str,
        load: impl Fn(&str, u64) -> Result<M, JsonError>,
        store: impl Fn(&M, u64) -> String,
        fit: impl FnOnce() -> Result<(M, Value), String>,
    ) -> Result<FitOutcome<M>, RegistryError> {
        let _span = telemetry::span("registry.get_or_fit");
        // Fast path: warm artifact, no locks.
        if let Some(outcome) = self.get_with(key, fingerprint, kind, &load)? {
            return Ok(outcome);
        }
        let slug = key.slug();
        // One fit per key per process: losers block here, then find the
        // winner's artifact in the re-check.
        let lock = key_lock(&self.root, &slug);
        let _in_process = lock.lock().expect("registry key lock poisoned");
        if let Some(outcome) = self.get_with(key, fingerprint, kind, &load)? {
            return Ok(outcome);
        }
        // One fitter per key across processes.
        let lease = self.acquire_lease(key, &slug)?;
        // A process that beat us to the lease may have committed while we
        // waited for it.
        if let Some(outcome) = self.get_with(key, fingerprint, kind, &load)? {
            drop(lease);
            return Ok(outcome);
        }
        let fit_span = telemetry::span("registry.fit");
        let (model, payload) = fit().map_err(RegistryError::Fit)?;
        drop(fit_span);
        self.fits.incr();
        let text = store(&model, fingerprint);
        self.commit(key, kind, fingerprint, &text, payload.clone())?;
        drop(lease);
        Ok(FitOutcome {
            model,
            payload,
            warm: false,
        })
    }

    /// Loads or campaign-fits a study model: the one-stop stack assembly
    /// behind the figure binaries, the examples, and the serving daemon.
    /// On a miss it builds the study's cached oracle, drives a
    /// [`Campaign`] to the spec's budget, and persists the ensemble with
    /// a telemetry payload (`samples`, `estimated_error`, `rounds`,
    /// `unique_simulations`, `cache_hits`, `simulated_instructions`).
    ///
    /// # Errors
    ///
    /// As [`Registry::get_or_fit`].
    pub fn get_or_fit_study(
        &self,
        spec: &StudyFitSpec,
    ) -> Result<FitOutcome<Ensemble>, RegistryError> {
        let key = spec.key();
        let fingerprint = spec.fingerprint();
        self.get_or_fit(&key, fingerprint, || {
            let space = spec.study.space();
            let oracle = if spec.quick {
                let generator = TraceGenerator::new(spec.benchmark);
                CachedEvaluator::new(
                    StudyEvaluator::with_budget(
                        spec.study,
                        spec.benchmark,
                        SimBudget::quick(&generator),
                    ),
                    space.clone(),
                )
            } else {
                spec.study.oracle(spec.benchmark)
            };
            let mut campaign = Campaign::new(&space, &oracle, spec.config.clone());
            campaign.try_run().map_err(|e| e.to_string())?;
            let ensemble = campaign
                .ensemble()
                .ok_or_else(|| "campaign produced no ensemble".to_owned())?
                .clone();
            let (mut unique, mut hits, mut instructions) = (0u64, 0u64, 0u64);
            for round in campaign.history() {
                unique += round.simulation.unique_simulations;
                hits += round.simulation.cache_hits;
                instructions += round.simulation.simulated_instructions;
            }
            let last = campaign.history().last().expect("ran at least one round");
            let payload = Value::Object(vec![
                ("samples".into(), Value::num(last.samples as f64)),
                ("estimated_error".into(), Value::num(last.estimate.mean)),
                ("rounds".into(), Value::num(campaign.history().len() as f64)),
                ("unique_simulations".into(), Value::num(unique as f64)),
                ("cache_hits".into(), Value::num(hits as f64)),
                (
                    "simulated_instructions".into(),
                    Value::num(instructions as f64),
                ),
            ]);
            Ok((ensemble, payload))
        })
    }

    /// Commits one artifact: object first (atomic), then the entry file
    /// (atomic) — the order the crash-safety guarantee rests on. No
    /// shared state is read back or merged, so commits of different keys
    /// are independent by construction (see module docs).
    ///
    /// Failpoints [`FP_COMMIT_OBJECT`] and [`FP_COMMIT_ENTRY`] bracket
    /// the object write, so chaos schedules can fail a commit with
    /// nothing durable or with an orphaned-but-unreferenced object.
    fn commit(
        &self,
        key: &ModelKey,
        kind: &'static str,
        fingerprint: u64,
        text: &str,
        payload: Value,
    ) -> Result<(), RegistryError> {
        if let Some(failure) = failpoint::check(FP_COMMIT_OBJECT) {
            return Err(failure.into_io_error(FP_COMMIT_OBJECT).into());
        }
        let hash = fnv1a_64(text.as_bytes());
        let object = format!("{hash:016x}.json");
        persist::write_atomic(&self.object_path(&object), text)?;
        if let Some(failure) = failpoint::check(FP_COMMIT_ENTRY) {
            return Err(failure.into_io_error(FP_COMMIT_ENTRY).into());
        }
        let entry = Entry {
            key: key.clone(),
            kind,
            fingerprint,
            object,
            hash,
            payload,
        };
        persist::write_atomic(&self.entry_path(&key.slug()), &render_entry(&entry))?;
        Ok(())
    }

    /// Acquires the cross-process fit lease for `slug` (see module docs
    /// for the publish-by-hard-link and steal-by-rename protocol).
    fn acquire_lease(&self, key: &ModelKey, slug: &str) -> Result<Lease, RegistryError> {
        static NONCE: AtomicU64 = AtomicU64::new(0);
        if let Some(failure) = failpoint::check(FP_LEASE_ACQUIRE) {
            return Err(failure.into_io_error(FP_LEASE_ACQUIRE).into());
        }
        let path = self.lease_path(slug);
        let token = format!(
            "{} {}",
            std::process::id(),
            NONCE.fetch_add(1, Ordering::Relaxed)
        );
        // Private claim file: the lease's contents, staged under a name
        // no other writer uses.
        let claim = self
            .root
            .join("leases")
            .join(format!("{slug}.claim-{}", token.replace(' ', "-")));
        std::fs::write(&claim, &token)?;
        let deadline = Instant::now() + LEASE_WAIT;
        loop {
            // Publish atomically: link(claim, lock) fails if the lock
            // exists, and the lock appears with its full contents — it is
            // never observable empty or half-written.
            match std::fs::hard_link(&claim, &path) {
                Ok(()) => {
                    let _ = std::fs::remove_file(&claim);
                    return Ok(Lease { path, token });
                }
                Err(e) if e.kind() == std::io::ErrorKind::AlreadyExists => {
                    let contents = std::fs::read_to_string(&path).unwrap_or_default();
                    let holder: Option<u32> = contents
                        .split_whitespace()
                        .next()
                        .and_then(|s| s.parse().ok());
                    match holder {
                        Some(pid) if process_alive(pid) => {
                            if Instant::now() >= deadline {
                                let _ = std::fs::remove_file(&claim);
                                return Err(RegistryError::LeaseHeld {
                                    key: key.clone(),
                                    holder: pid,
                                });
                            }
                            std::thread::sleep(LEASE_POLL);
                        }
                        // Dead holder (or an unreadable legacy lease):
                        // steal it, carefully.
                        _ => self.steal_stale_lease(&path, slug, &token, &contents),
                    }
                }
                Err(e) => {
                    let _ = std::fs::remove_file(&claim);
                    return Err(e.into());
                }
            }
        }
    }

    /// Removes a lease observed stale (`observed` bytes named a dead
    /// pid). Claims the file by renaming it to a stealer-unique name —
    /// rename is atomic, so of N concurrent stealers exactly one gets
    /// the inode — then re-verifies the renamed bytes. If they changed
    /// (the lease was released and re-acquired between our read and our
    /// rename), the freshly-acquired lease is put back via `hard_link`.
    fn steal_stale_lease(&self, path: &Path, slug: &str, token: &str, observed: &str) {
        let grave = self
            .root
            .join("leases")
            .join(format!("{slug}.stale-{}", token.replace(' ', "-")));
        if std::fs::rename(path, &grave).is_err() {
            // Someone else stole or released it first; retry the acquire.
            return;
        }
        let yanked = std::fs::read_to_string(&grave).unwrap_or_default();
        let still_stale = yanked == observed
            && !yanked
                .split_whitespace()
                .next()
                .and_then(|s| s.parse().ok())
                .is_some_and(process_alive);
        if !still_stale {
            // We yanked a live writer's fresh lease: restore it. If the
            // restore loses a race with yet another acquirer, the worst
            // case is a duplicate fit — commits stay safe regardless
            // (module docs).
            let _ = std::fs::hard_link(&grave, path);
        }
        let _ = std::fs::remove_file(&grave);
    }
}

/// Held write lease; releasing is dropping (also on panic unwind).
struct Lease {
    path: PathBuf,
    token: String,
}

impl Drop for Lease {
    fn drop(&mut self) {
        // Remove only our own lease: if a stealer raced us and the path
        // now holds someone else's token, leave it alone.
        let ours = std::fs::read_to_string(&self.path)
            .map(|s| s == self.token)
            .unwrap_or(false);
        if ours {
            let _ = std::fs::remove_file(&self.path);
        }
    }
}

/// Whether `pid` is a live process (Linux `/proc` probe; elsewhere,
/// assume live and let the wait budget decide).
fn process_alive(pid: u32) -> bool {
    if cfg!(target_os = "linux") {
        Path::new(&format!("/proc/{pid}")).exists()
    } else {
        true
    }
}

const ENTRY_FORMAT: f64 = 2.0;

fn render_entry(entry: &Entry) -> String {
    Value::Object(vec![
        ("format".into(), Value::num(ENTRY_FORMAT)),
        ("study".into(), Value::Str(entry.key.study.clone())),
        ("encoder".into(), Value::Str(entry.key.encoder.clone())),
        ("app".into(), Value::Str(entry.key.app.clone())),
        ("seed".into(), hex(entry.key.seed)),
        ("budget".into(), Value::num(entry.key.budget as f64)),
        ("kind".into(), Value::Str(entry.kind.into())),
        ("fingerprint".into(), hex(entry.fingerprint)),
        ("object".into(), Value::Str(entry.object.clone())),
        ("hash".into(), hex(entry.hash)),
        ("payload".into(), entry.payload.clone()),
    ])
    .to_json()
}

fn parse_entry(text: &str) -> Result<Entry, JsonError> {
    let value = Value::parse(text)?;
    let format = value.get("format")?.as_f64()?;
    if format != ENTRY_FORMAT {
        return Err(JsonError::custom(format!(
            "entry format {format} unsupported (this build reads {ENTRY_FORMAT})"
        )));
    }
    let kind = match value.get("kind")?.as_str()? {
        "ensemble" => "ensemble",
        "multi" => "multi",
        other => {
            return Err(JsonError::custom(format!(
                "unknown artifact kind {other:?}"
            )))
        }
    };
    Ok(Entry {
        key: ModelKey {
            study: value.get("study")?.as_str()?.to_owned(),
            encoder: value.get("encoder")?.as_str()?.to_owned(),
            app: value.get("app")?.as_str()?.to_owned(),
            seed: from_hex(value.get("seed")?)?,
            budget: value.get("budget")?.as_usize()?,
        },
        kind,
        fingerprint: from_hex(value.get("fingerprint")?)?,
        object: value.get("object")?.as_str()?.to_owned(),
        hash: from_hex(value.get("hash")?)?,
        payload: value.get("payload").ok().cloned().unwrap_or(Value::Null),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("archpredict_registry_{tag}_{}", std::process::id()))
    }

    #[test]
    fn slug_is_filesystem_safe() {
        let key = ModelKey::new("Memory System", "plain/qbc", "gzip", 0xBEEF, 100);
        assert_eq!(
            key.slug(),
            "memory_system-plain_qbc-gzip-000000000000beef-100"
        );
    }

    #[test]
    fn entry_round_trips() {
        let entry = Entry {
            key: ModelKey::new("memory", "plain", "gzip", 0x1BEC, 150),
            kind: "ensemble",
            fingerprint: 0xABCD_EF01_2345_6789,
            object: "0011223344556677.json".into(),
            hash: 0x0011_2233_4455_6677,
            payload: Value::Object(vec![("samples".into(), Value::num(150.0))]),
        };
        let parsed = parse_entry(&render_entry(&entry)).unwrap();
        assert_eq!(parsed.key, entry.key);
        assert_eq!(parsed.kind, "ensemble");
        assert_eq!(parsed.fingerprint, 0xABCD_EF01_2345_6789);
        assert_eq!(parsed.hash, 0x0011_2233_4455_6677);
        assert_eq!(
            parsed.payload.get("samples").unwrap().as_usize().unwrap(),
            150
        );
    }

    #[test]
    fn empty_registry_misses_cleanly() {
        let root = temp_root("miss");
        let registry = Registry::open(&root).unwrap();
        let key = ModelKey::new("memory", "plain", "gzip", 1, 10);
        assert!(registry.get(&key, 42).unwrap().is_none());
        assert_eq!(registry.fits_performed(), 0);
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn debris_classification_is_precise() {
        // Writer temps carry a pid; legacy temps don't.
        assert_eq!(
            classify_debris("entry.json.4000000.3.tmp", false),
            Some((DebrisKind::Temp, Some(4_000_000)))
        );
        assert_eq!(
            classify_debris("entry.json.tmp", false),
            Some((DebrisKind::Temp, None))
        );
        // Claims and graves exist only under leases/.
        assert_eq!(
            classify_debris("slug.claim-4000000-7", true),
            Some((DebrisKind::Claim, Some(4_000_000)))
        );
        assert_eq!(
            classify_debris("slug.stale-4000000-7", true),
            Some((DebrisKind::Grave, Some(4_000_000)))
        );
        assert_eq!(classify_debris("slug.claim-4000000-7", false), None);
        // Live locks and ordinary artifacts are never debris, even when
        // a slug pathologically contains the claim marker.
        assert_eq!(classify_debris("slug.lock", true), None);
        assert_eq!(classify_debris("slug.claim-4-0.lock", true), None);
        assert_eq!(classify_debris("entry.json", false), None);
        assert_eq!(classify_debris("0011223344556677.json", false), None);
    }

    #[test]
    fn open_sweeps_dead_writers_but_never_live_ones() {
        let root = temp_root("sweep");
        {
            let registry = Registry::open(&root).unwrap();
            let me = std::process::id();
            let leases = registry.root().join("leases");
            let entries = registry.root().join("entries");
            // Dead-writer debris (pid 4M is beyond this container's pid
            // space): a torn temp, an orphaned claim, an orphaned grave.
            std::fs::write(entries.join("e.json.4000000.0.tmp"), "torn").unwrap();
            std::fs::write(leases.join("k.claim-4000000-0"), "4000000 0").unwrap();
            std::fs::write(leases.join("k.stale-4000000-1"), "4000000 1").unwrap();
            // Live-writer files that must survive: our own in-flight
            // temp, our own claim, a fresh legacy temp (age guard), and
            // a held lock.
            std::fs::write(entries.join(format!("f.json.{me}.0.tmp")), "mine").unwrap();
            std::fs::write(leases.join(format!("k.claim-{me}-1")), "live").unwrap();
            std::fs::write(entries.join("legacy.json.tmp"), "fresh").unwrap();
            std::fs::write(leases.join("k.lock"), format!("{me} 0")).unwrap();

            let report = registry.sweep_debris().unwrap();
            assert_eq!(
                report,
                SweepReport {
                    temps: 1,
                    claims: 1,
                    graves: 1
                }
            );
            assert_eq!(report.total(), 3);
            assert!(!entries.join("e.json.4000000.0.tmp").exists());
            assert!(!leases.join("k.claim-4000000-0").exists());
            assert!(!leases.join("k.stale-4000000-1").exists());
            assert!(entries.join(format!("f.json.{me}.0.tmp")).exists());
            assert!(leases.join(format!("k.claim-{me}-1")).exists());
            assert!(entries.join("legacy.json.tmp").exists());
            assert!(leases.join("k.lock").exists());
        }
        // Reopening sweeps automatically; the survivors still survive.
        let reopened = Registry::open(&root).unwrap();
        assert!(reopened
            .root()
            .join("entries")
            .join("legacy.json.tmp")
            .exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn stale_lease_of_dead_process_is_stolen() {
        let root = temp_root("lease");
        let registry = Registry::open(&root).unwrap();
        let key = ModelKey::new("memory", "plain", "gzip", 1, 10);
        // Pid 4_000_000 is far beyond this container's pid space.
        std::fs::write(registry.lease_path(&key.slug()), "4000000 0").unwrap();
        let lease = registry.acquire_lease(&key, &key.slug()).unwrap();
        drop(lease);
        assert!(!registry.lease_path(&key.slug()).exists());
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn lease_is_published_with_contents_and_released_only_by_owner() {
        let root = temp_root("lease_token");
        let registry = Registry::open(&root).unwrap();
        let key = ModelKey::new("memory", "plain", "gzip", 2, 10);
        let lease = registry.acquire_lease(&key, &key.slug()).unwrap();
        let contents = std::fs::read_to_string(registry.lease_path(&key.slug())).unwrap();
        let pid: u32 = contents.split_whitespace().next().unwrap().parse().unwrap();
        assert_eq!(pid, std::process::id(), "lease names its holder");
        // A stealer replaced the lease (simulating the ghost window):
        // the original holder's release must not delete the new lease.
        std::fs::write(registry.lease_path(&key.slug()), "4000001 9").unwrap();
        drop(lease);
        assert_eq!(
            std::fs::read_to_string(registry.lease_path(&key.slug())).unwrap(),
            "4000001 9",
            "drop must not remove a lease it no longer owns"
        );
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn concurrent_stealers_of_one_stale_lease_converge_to_one_holder() {
        let root = temp_root("steal_race");
        let registry = Arc::new(Registry::open(&root).unwrap());
        let key = ModelKey::new("memory", "plain", "gzip", 3, 10);
        let slug = key.slug();
        for _ in 0..20 {
            std::fs::write(registry.lease_path(&slug), "4000000 0").unwrap();
            let winners: Vec<bool> = std::thread::scope(|scope| {
                (0..4)
                    .map(|_| {
                        let registry = Arc::clone(&registry);
                        let key = &key;
                        let slug = &slug;
                        scope.spawn(move || {
                            // Everyone must eventually acquire (they
                            // serialize); each holds momentarily.
                            let lease = registry.acquire_lease(key, slug).unwrap();
                            let held = std::fs::read_to_string(registry.lease_path(slug))
                                .unwrap_or_default();
                            drop(lease);
                            held.starts_with(&std::process::id().to_string())
                        })
                    })
                    .collect::<Vec<_>>()
                    .into_iter()
                    .map(|h| h.join().unwrap())
                    .collect()
            });
            assert!(winners.iter().all(|&w| w), "every acquirer saw its own pid");
            assert!(!registry.lease_path(&slug).exists(), "all leases released");
        }
        std::fs::remove_dir_all(&root).ok();
    }
}
