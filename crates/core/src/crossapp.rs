//! Cross-application predictive modeling (paper §7, future work).
//!
//! The paper's studies train one model per benchmark. Its future-work
//! section proposes exploiting similarity *between* benchmarks: "make the
//! application name an input into the models and train one large model for
//! all of the benchmarks". This module implements that idea: design-point
//! features are extended with a one-hot application identifier (the
//! engine's [`AppEncoder`]), training samples from several applications
//! are pooled through the campaign engine's quarantine-and-resample
//! primitive ([`crate::campaign::collect_batch`]), and a single
//! cross-validation ensemble models them all — reducing the
//! per-application sampling requirement when response surfaces share
//! structure.
//!
//! Seeds follow the audited [`seed_stream`] map: application slot `s`
//! samples from stream [`seed_stream::APP_SAMPLER_BASE`]` + s`, and the
//! pooled fit seed comes from stream [`seed_stream::CROSSAPP_FIT`].

use crate::campaign::{collect_batch, seed_stream, AppEncoder, Encoder, Round};
use crate::simulate::{Oracle, SimStats};
use crate::space::DesignSpace;
use archpredict_ann::cross_validation::{fit_ensemble, ErrorEstimate, FoldRecord};
use archpredict_ann::{Dataset, Ensemble, Parallelism, Sample, TrainConfig};
use archpredict_stats::describe::Accumulator;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::IncrementalSampler;
use archpredict_workloads::Benchmark;

/// A single model spanning several applications over one design space.
///
/// # Example
///
/// See `CrossAppModel::fit` and the crate's integration tests; fitting
/// requires evaluators, so a self-contained doctest would be misleadingly
/// synthetic.
#[derive(Debug, Clone, PartialEq)]
pub struct CrossAppModel {
    ensemble: Ensemble,
    apps: Vec<Benchmark>,
    /// Pooled cross-validation error estimate.
    pub estimate: ErrorEstimate,
    /// Per-fold training telemetry from the pooled fit.
    pub folds: Vec<FoldRecord>,
    /// Simulation telemetry pooled over every application's sampling.
    pub simulation: SimStats,
    /// Pooled training-set size (short of `apps × per_app_samples` only
    /// when faults exhaust an application's sampler).
    pub samples: usize,
    /// Wall-clock seconds spent simulating the pooled sample.
    pub simulation_seconds: f64,
    /// Wall-clock seconds spent fitting the pooled ensemble.
    pub training_seconds: f64,
    /// Fraction of the pooled (space × applications) population simulated.
    pub fraction_sampled: f64,
}

impl CrossAppModel {
    /// Pools `per_app_samples` random simulations from each `(benchmark,
    /// evaluator)` pair and fits one ensemble over the joint input space
    /// (design-point encoding ⧺ one-hot application id).
    ///
    /// Failed evaluations are dropped and replaced with fresh draws (the
    /// engine's quarantine-and-resample policy, via
    /// [`crate::campaign::collect_batch`]) so every application still
    /// contributes its full sample quota under a faulty backend.
    ///
    /// # Panics
    ///
    /// Panics if `evaluators` is empty or `per_app_samples` is zero.
    pub fn fit<E: Oracle>(
        space: &DesignSpace,
        evaluators: &[(Benchmark, E)],
        per_app_samples: usize,
        train: &TrainConfig,
        seed: u64,
    ) -> Self {
        assert!(!evaluators.is_empty(), "need at least one application");
        assert!(per_app_samples > 0, "need samples per application");
        let apps: Vec<Benchmark> = evaluators.iter().map(|(b, _)| *b).collect();
        let mut dataset = Dataset::new();
        let mut simulation = SimStats::default();
        let sim_started = std::time::Instant::now();
        for (slot, (_, evaluator)) in evaluators.iter().enumerate() {
            let encoder = AppEncoder {
                slot,
                apps: apps.len(),
            };
            let rng =
                Xoshiro256::seed_from(seed).derive(seed_stream::APP_SAMPLER_BASE + slot as u64);
            let mut sampler = IncrementalSampler::new(space.size(), rng);
            let initial = sampler.next_batch(per_app_samples);
            collect_batch(
                evaluator,
                space,
                &mut sampler,
                initial,
                &mut simulation,
                |index, value| dataset.push(Sample::new(encoder.encode(space, index), value)),
                |_| {},
            );
        }
        let simulation_seconds = sim_started.elapsed().as_secs_f64();
        // One deterministic delta per pooled fit, mirrored after the
        // per-fit bookkeeping is final (see `telemetry::record_sim`).
        crate::telemetry::record_sim(&simulation);
        let fit_seed = Xoshiro256::seed_from(seed)
            .derive(seed_stream::CROSSAPP_FIT)
            .next_u64();
        let train_started = std::time::Instant::now();
        let fit = fit_ensemble(&dataset, 10.min(dataset.len()), train, fit_seed);
        let training_seconds = train_started.elapsed().as_secs_f64();
        let samples = dataset.len();
        Self {
            ensemble: fit.ensemble,
            estimate: fit.estimate,
            folds: fit.folds,
            simulation,
            samples,
            simulation_seconds,
            training_seconds,
            fraction_sampled: samples as f64 / (space.size() * apps.len()) as f64,
            apps,
        }
    }

    /// The applications this model covers, in input-slot order.
    pub fn apps(&self) -> &[Benchmark] {
        &self.apps
    }

    /// The pooled ensemble itself — the persistable artifact (the rest of
    /// the struct is fit telemetry). [`crate::registry`] callers store
    /// this and rebuild predictions with [`encode_with_app`].
    pub fn ensemble(&self) -> &Ensemble {
        &self.ensemble
    }

    /// This fit as a campaign [`Round`] record, so cross-application runs
    /// flow into the same learning-curve CSVs
    /// ([`crate::report::LearningCurve`]) as explorer rounds —
    /// single-round, with no prediction work during selection.
    pub fn round(&self) -> Round {
        Round {
            samples: self.samples,
            fraction_sampled: self.fraction_sampled,
            estimate: self.estimate,
            training_seconds: self.training_seconds,
            simulation_seconds: self.simulation_seconds,
            simulation: self.simulation,
            prediction_seconds: 0.0,
            folds: self.folds.clone(),
        }
    }

    /// The one-hot slot of `benchmark`, panicking like the predict paths.
    fn slot(&self, benchmark: Benchmark) -> usize {
        self.apps
            .iter()
            .position(|&b| b == benchmark)
            .unwrap_or_else(|| panic!("{benchmark} was not in the training set"))
    }

    /// Predicts the metric for `benchmark` at design-point `index`.
    ///
    /// # Panics
    ///
    /// Panics if `benchmark` was not part of the training set.
    pub fn predict(&self, space: &DesignSpace, index: usize, benchmark: Benchmark) -> f64 {
        let encoder = AppEncoder {
            slot: self.slot(benchmark),
            apps: self.apps.len(),
        };
        self.ensemble.predict(&encoder.encode(space, index))
    }

    /// Predicts the metric for `benchmark` at each design-point index via
    /// the batched inference path, parallelized per `parallelism`.
    /// Bit-for-bit identical to per-index [`CrossAppModel::predict`] at
    /// every thread count.
    ///
    /// # Panics
    ///
    /// Panics if `benchmark` was not part of the training set.
    pub fn predict_indices(
        &self,
        space: &DesignSpace,
        indices: &[usize],
        benchmark: Benchmark,
        parallelism: Parallelism,
    ) -> Vec<f64> {
        let encoder = AppEncoder {
            slot: self.slot(benchmark),
            apps: self.apps.len(),
        };
        crate::infer::sweep_encoded(
            &self.ensemble,
            indices,
            parallelism,
            |index, features| encoder.encode_into(space, index, features),
            encoder.width(space),
        )
    }

    /// Predicts the metric for `benchmark` over the **entire** design
    /// space, in index order — the cross-application full-space sweep.
    pub fn predict_space(
        &self,
        space: &DesignSpace,
        benchmark: Benchmark,
        parallelism: Parallelism,
    ) -> Vec<f64> {
        let indices: Vec<usize> = (0..space.size()).collect();
        self.predict_indices(space, &indices, benchmark, parallelism)
    }

    /// Measures true percentage error for one application on held-out
    /// design-point indices (predictions run through the batched sweep).
    /// Held-out points whose evaluation fails are skipped.
    pub fn true_error<E: Oracle>(
        &self,
        space: &DesignSpace,
        benchmark: Benchmark,
        evaluator: &E,
        held_out: &[usize],
    ) -> (f64, f64) {
        let mut stats = SimStats::default();
        let actuals = evaluator.evaluate_batch(space, held_out, &mut stats);
        let predictions = self.predict_indices(space, held_out, benchmark, Parallelism::Auto);
        let mut acc = Accumulator::new();
        for (&predicted, actual) in predictions.iter().zip(&actuals) {
            if let Ok(actual) = actual {
                acc.add(100.0 * (predicted - actual).abs() / actual.abs().max(1e-12));
            }
        }
        (acc.mean(), acc.population_std_dev())
    }
}

/// Design-point encoding with a one-hot application identifier appended —
/// the exact §7 construction (the application is a *nominal* parameter).
/// Equivalent to [`AppEncoder`]`{ slot: app_slot, apps: n_apps }`.
pub fn encode_with_app(
    space: &DesignSpace,
    index: usize,
    app_slot: usize,
    n_apps: usize,
) -> Vec<f64> {
    AppEncoder {
        slot: app_slot,
        apps: n_apps,
    }
    .encode(space, index)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::simulate::PointEvaluator;
    use crate::space::DesignPoint;

    /// Two synthetic "applications" sharing surface structure: same
    /// functional form, different scales — the regime where pooling helps.
    struct SyntheticApp {
        space: DesignSpace,
        scale: f64,
        offset: f64,
    }

    impl PointEvaluator for SyntheticApp {
        fn evaluate(&self, point: &DesignPoint) -> f64 {
            let a = self.space.number(point, "a") / 9.0;
            let b = self.space.number(point, "b") / 9.0;
            self.offset + self.scale * (0.4 * (a * 2.0).sin().abs() + 0.3 * a * b)
        }
        fn instructions_per_evaluation(&self) -> u64 {
            1
        }
    }

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            Param::cardinal("a", (0..10).map(f64::from).collect::<Vec<_>>()),
            Param::cardinal("b", (0..10).map(f64::from).collect::<Vec<_>>()),
        ])
        .unwrap()
    }

    fn apps(space: &DesignSpace) -> Vec<(Benchmark, SyntheticApp)> {
        vec![
            (
                Benchmark::Gzip,
                SyntheticApp {
                    space: space.clone(),
                    scale: 1.0,
                    offset: 0.5,
                },
            ),
            (
                Benchmark::Mcf,
                SyntheticApp {
                    space: space.clone(),
                    scale: 0.4,
                    offset: 0.2,
                },
            ),
        ]
    }

    #[test]
    fn pooled_model_predicts_each_app() {
        let space = space();
        let evaluators = apps(&space);
        let model = CrossAppModel::fit(&space, &evaluators, 40, &TrainConfig::scaled_to(80), 7);
        assert_eq!(model.apps(), &[Benchmark::Gzip, Benchmark::Mcf]);
        assert_eq!(model.folds.len(), 10);
        assert!(model.folds.iter().all(|f| f.epochs > 0));
        // 40 samples per application, pooled over two applications.
        assert_eq!(model.simulation.unique_simulations, 80);
        assert_eq!(model.simulation.cache_hits, 0);
        assert_eq!(model.samples, 80);
        assert!((model.fraction_sampled - 80.0 / 200.0).abs() < 1e-12);
        let held_out: Vec<usize> = (0..space.size()).step_by(7).collect();
        for (benchmark, evaluator) in &evaluators {
            let (mean, _) = model.true_error(&space, *benchmark, evaluator, &held_out);
            assert!(mean < 5.0, "{benchmark}: pooled error {mean:.2}%");
        }
    }

    #[test]
    fn apps_get_distinct_predictions() {
        let space = space();
        let evaluators = apps(&space);
        let model = CrossAppModel::fit(&space, &evaluators, 40, &TrainConfig::scaled_to(80), 8);
        let gzip = model.predict(&space, 50, Benchmark::Gzip);
        let mcf = model.predict(&space, 50, Benchmark::Mcf);
        assert!(
            (gzip - mcf).abs() > 0.1,
            "one-hot app id must separate the surfaces: {gzip} vs {mcf}"
        );
    }

    #[test]
    #[should_panic(expected = "was not in the training set")]
    fn unknown_app_panics() {
        let space = space();
        let evaluators = apps(&space);
        let model = CrossAppModel::fit(
            &space,
            &evaluators,
            20,
            &TrainConfig {
                max_epochs: 30,
                ..TrainConfig::default()
            },
            9,
        );
        model.predict(&space, 0, Benchmark::Twolf);
    }

    #[test]
    fn encode_appends_one_hot() {
        let space = space();
        let base = space.encode(&space.point(3));
        let with = encode_with_app(&space, 3, 1, 3);
        assert_eq!(with.len(), base.len() + 3);
        assert_eq!(&with[base.len()..], &[0.0, 1.0, 0.0]);
    }

    #[test]
    fn round_record_mirrors_fit_telemetry() {
        let space = space();
        let evaluators = apps(&space);
        let model = CrossAppModel::fit(&space, &evaluators, 30, &TrainConfig::scaled_to(60), 5);
        let round = model.round();
        assert_eq!(round.samples, model.samples);
        assert_eq!(round.estimate, model.estimate);
        assert_eq!(round.simulation, model.simulation);
        assert_eq!(round.prediction_seconds, 0.0);
        assert_eq!(round.folds.len(), model.folds.len());
        // Round records feed straight into learning-curve CSVs.
        let mut curve = crate::report::LearningCurve::new("crossapp");
        curve.push(&round, None);
        assert_eq!(curve.to_csv_deterministic().lines().count(), 2);
    }
}
