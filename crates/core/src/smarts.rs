//! SMARTS-style systematic sampling (paper §2: "combining our approach
//! with the SMARTS framework is another interesting future work").
//!
//! SMARTS (Wunderlich et al., ISCA 2003) estimates whole-program metrics by
//! simulating many *tiny* measurement units spread systematically through
//! the execution, each preceded by a warming window, and attaches a
//! confidence interval from the between-unit variance. This module provides
//! that estimator as another fast-but-noisy [`PointEvaluator`] the ANN
//! ensembles can train on — structurally different noise than SimPoint's
//! (variance from tiny units rather than bias from unrepresented behavior).

use crate::simulate::PointEvaluator;
use crate::space::{DesignPoint, DesignSpace};
use crate::studies::Study;
use archpredict_sim::simulate_with_warmup;
use archpredict_stats::describe::Accumulator;
use archpredict_workloads::{Benchmark, TraceGenerator};

/// SMARTS-style estimator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SmartsConfig {
    /// Systematic sampling period: one unit per `period` intervals.
    pub period: usize,
    /// Warm-up instructions before each measurement unit.
    pub warmup: u64,
    /// Measured instructions per unit (SMARTS uses ~1000).
    pub measured: u64,
}

impl Default for SmartsConfig {
    fn default() -> Self {
        Self {
            period: 3,
            warmup: 3_000,
            measured: 1_000,
        }
    }
}

/// A SMARTS estimate with its sampling confidence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SmartsEstimate {
    /// Mean IPC across measurement units.
    pub ipc: f64,
    /// Half-width of the ~95 % confidence interval (2σ/√n).
    pub confidence: f64,
    /// Number of measurement units.
    pub units: usize,
}

/// Systematic-sampling evaluator over a study's design space.
#[derive(Debug)]
pub struct SmartsEvaluator {
    study: Study,
    space: DesignSpace,
    generator: TraceGenerator,
    config: SmartsConfig,
    units: Vec<usize>,
}

impl SmartsEvaluator {
    /// Creates an evaluator taking one measurement unit every
    /// `config.period` intervals of the program.
    ///
    /// # Panics
    ///
    /// Panics if the period is zero or leaves no measurement units.
    pub fn new(study: Study, benchmark: Benchmark, config: SmartsConfig) -> Self {
        assert!(config.period > 0, "period must be positive");
        let generator = TraceGenerator::new(benchmark);
        let units: Vec<usize> = (0..generator.num_intervals())
            .step_by(config.period)
            .collect();
        assert!(!units.is_empty(), "no measurement units");
        Self {
            study,
            space: study.space(),
            generator,
            config,
            units,
        }
    }

    /// The study's design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Full estimate (mean + confidence interval), the SMARTS deliverable.
    pub fn estimate(&self, point: &DesignPoint) -> SmartsEstimate {
        let sim_config = self.study.config_at(&self.space, point);
        let mut acc = Accumulator::new();
        for &interval in &self.units {
            let r = simulate_with_warmup(
                &sim_config,
                self.generator.interval(interval),
                self.config.warmup,
                self.config.measured,
            );
            acc.add(r.ipc());
        }
        let n = acc.count() as f64;
        SmartsEstimate {
            ipc: acc.mean(),
            confidence: 2.0 * acc.sample_std_dev() / n.sqrt(),
            units: acc.count() as usize,
        }
    }
}

impl PointEvaluator for SmartsEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        self.estimate(point).ipc
    }

    fn instructions_per_evaluation(&self) -> u64 {
        (self.config.warmup + self.config.measured) * self.units.len() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::simulate::{SimBudget, StudyEvaluator};

    #[test]
    fn estimate_tracks_full_simulation() {
        let benchmark = Benchmark::Gzip;
        let study = Study::Processor;
        let smarts = SmartsEvaluator::new(study, benchmark, SmartsConfig::default());
        // Reference: all intervals, full-length windows.
        let generator = TraceGenerator::new(benchmark);
        let full = StudyEvaluator::with_budget(
            study,
            benchmark,
            SimBudget {
                warmup: 3_000,
                measured: 1_000,
                intervals: (0..generator.num_intervals()).collect(),
            },
        );
        let point = smarts.space().point(777);
        let est = smarts.estimate(&point);
        let reference = full.evaluate(&point);
        let err = (est.ipc - reference).abs() / reference;
        assert!(
            err < 0.10,
            "SMARTS {:.4} vs full {:.4} ({:.1}%)",
            est.ipc,
            reference,
            err * 100.0
        );
        assert!(est.confidence > 0.0);
        assert!(est.units >= 10);
    }

    #[test]
    fn cheaper_than_reference() {
        let smarts =
            SmartsEvaluator::new(Study::Processor, Benchmark::Mesa, SmartsConfig::default());
        let generator = TraceGenerator::new(Benchmark::Mesa);
        // One-third of the intervals, tiny units: far fewer instructions
        // than whole-program simulation at normal window sizes.
        let whole_program = generator.num_intervals() as u64 * 24_000;
        assert!(smarts.instructions_per_evaluation() * 4 < whole_program);
    }

    #[test]
    fn confidence_shrinks_with_more_units() {
        let dense = SmartsEvaluator::new(
            Study::Processor,
            Benchmark::Applu,
            SmartsConfig {
                period: 1,
                ..SmartsConfig::default()
            },
        );
        let sparse = SmartsEvaluator::new(
            Study::Processor,
            Benchmark::Applu,
            SmartsConfig {
                period: 10,
                ..SmartsConfig::default()
            },
        );
        let point = dense.space().point(123);
        let d = dense.estimate(&point);
        let s = sparse.estimate(&point);
        assert!(d.units > s.units);
        assert!(
            d.confidence < s.confidence * 1.5,
            "denser sampling should not be less confident: {} vs {}",
            d.confidence,
            s.confidence
        );
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        SmartsEvaluator::new(
            Study::Processor,
            Benchmark::Gzip,
            SmartsConfig {
                period: 0,
                ..SmartsConfig::default()
            },
        );
    }
}
