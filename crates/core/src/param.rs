//! Design-space parameters and their neural-network encodings (§3.3).
//!
//! The paper distinguishes **cardinal** parameters (quantitative levels:
//! cache sizes, ROB entries), **nominal** parameters (unordered choices:
//! write policy, fetch policy), **boolean** parameters, and **continuous**
//! ones (frequency). Cardinal/continuous parameters are encoded as one
//! minimax-scaled input; nominal parameters are one-hot encoded; booleans
//! are a single 0/1 input. [`LinkedCardinal`](ParamKind::LinkedCardinal)
//! captures Table 4.2's register-file rule, where the two allowed sizes
//! depend on the chosen ROB size.

/// The kind (and levels) of one design parameter.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamKind {
    /// Quantitative discrete levels (e.g. L1 size ∈ {8, 16, 32, 64} KB).
    /// Encoded as a single input scaled by the level range.
    Cardinal(Vec<f64>),
    /// Unordered categorical settings (e.g. {WT, WB}). One-hot encoded.
    Nominal(Vec<String>),
    /// On/off. Encoded as a single 0/1 input.
    Boolean,
    /// Quantitative levels that depend on an earlier cardinal parameter's
    /// setting: `choices[parent_level]` lists this parameter's levels when
    /// the parent is at `parent_level`. All rows must have equal length.
    /// (Table 4.2: "Register File … 2 choices per ROB Size".)
    LinkedCardinal {
        /// Index of the parent parameter within the space.
        parent: usize,
        /// Per-parent-level value lists, all the same length.
        choices: Vec<Vec<f64>>,
    },
}

impl ParamKind {
    /// Number of selectable settings (independent of any parent's setting).
    pub fn levels(&self) -> usize {
        match self {
            ParamKind::Cardinal(v) => v.len(),
            ParamKind::Nominal(v) => v.len(),
            ParamKind::Boolean => 2,
            ParamKind::LinkedCardinal { choices, .. } => choices.first().map_or(0, |c| c.len()),
        }
    }

    /// Number of network inputs this parameter occupies.
    pub fn encoded_width(&self) -> usize {
        match self {
            ParamKind::Nominal(v) => v.len(),
            _ => 1,
        }
    }
}

/// A named design parameter.
#[derive(Debug, Clone, PartialEq)]
pub struct Param {
    name: String,
    kind: ParamKind,
}

impl Param {
    /// Creates a cardinal parameter from its levels.
    ///
    /// # Panics
    ///
    /// Panics if `levels` is empty or contains non-finite values.
    pub fn cardinal(name: impl Into<String>, levels: impl Into<Vec<f64>>) -> Self {
        let levels = levels.into();
        assert!(!levels.is_empty(), "cardinal parameter needs levels");
        assert!(
            levels.iter().all(|v| v.is_finite()),
            "cardinal levels must be finite"
        );
        Self {
            name: name.into(),
            kind: ParamKind::Cardinal(levels),
        }
    }

    /// Creates a nominal parameter from its settings.
    ///
    /// # Panics
    ///
    /// Panics if `settings` is empty.
    pub fn nominal<S: Into<String>>(
        name: impl Into<String>,
        settings: impl IntoIterator<Item = S>,
    ) -> Self {
        let settings: Vec<String> = settings.into_iter().map(Into::into).collect();
        assert!(!settings.is_empty(), "nominal parameter needs settings");
        Self {
            name: name.into(),
            kind: ParamKind::Nominal(settings),
        }
    }

    /// Creates a boolean parameter.
    pub fn boolean(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            kind: ParamKind::Boolean,
        }
    }

    /// Creates a linked cardinal parameter (see
    /// [`ParamKind::LinkedCardinal`]).
    ///
    /// # Panics
    ///
    /// Panics if `choices` is empty, ragged, or contains non-finite values.
    pub fn linked_cardinal(name: impl Into<String>, parent: usize, choices: Vec<Vec<f64>>) -> Self {
        assert!(!choices.is_empty(), "linked parameter needs choice rows");
        let width = choices[0].len();
        assert!(width > 0, "linked parameter needs at least one level");
        assert!(
            choices.iter().all(|c| c.len() == width),
            "linked choice rows must have equal length"
        );
        assert!(
            choices.iter().flatten().all(|v| v.is_finite()),
            "linked levels must be finite"
        );
        Self {
            name: name.into(),
            kind: ParamKind::LinkedCardinal { parent, choices },
        }
    }

    /// Parameter name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Parameter kind.
    pub fn kind(&self) -> &ParamKind {
        &self.kind
    }

    /// Number of selectable settings.
    pub fn levels(&self) -> usize {
        self.kind.levels()
    }
}

/// The concrete value a parameter takes at a design point.
#[derive(Debug, Clone, PartialEq)]
pub enum ParamValue {
    /// A quantitative value (cardinal, linked, or continuous).
    Number(f64),
    /// A categorical setting.
    Choice(String),
    /// A boolean flag.
    Flag(bool),
}

impl ParamValue {
    /// The numeric value, if quantitative.
    pub fn as_number(&self) -> Option<f64> {
        match self {
            ParamValue::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The categorical setting, if nominal.
    pub fn as_choice(&self) -> Option<&str> {
        match self {
            ParamValue::Choice(s) => Some(s),
            _ => None,
        }
    }

    /// The flag, if boolean.
    pub fn as_flag(&self) -> Option<bool> {
        match self {
            ParamValue::Flag(b) => Some(*b),
            _ => None,
        }
    }
}

impl std::fmt::Display for ParamValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParamValue::Number(v) => write!(f, "{v}"),
            ParamValue::Choice(s) => f.write_str(s),
            ParamValue::Flag(b) => write!(f, "{b}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_counts() {
        assert_eq!(Param::cardinal("x", [1.0, 2.0, 4.0]).levels(), 3);
        assert_eq!(Param::nominal("p", ["WT", "WB"]).levels(), 2);
        assert_eq!(Param::boolean("b").levels(), 2);
        let linked = Param::linked_cardinal("regs", 0, vec![vec![64.0, 80.0], vec![80.0, 96.0]]);
        assert_eq!(linked.levels(), 2);
    }

    #[test]
    fn encoded_widths() {
        assert_eq!(Param::cardinal("x", [1.0]).kind().encoded_width(), 1);
        assert_eq!(
            Param::nominal("p", ["a", "b", "c"]).kind().encoded_width(),
            3
        );
        assert_eq!(Param::boolean("b").kind().encoded_width(), 1);
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_linked_choices_panic() {
        Param::linked_cardinal("r", 0, vec![vec![1.0], vec![1.0, 2.0]]);
    }

    #[test]
    fn value_accessors() {
        assert_eq!(ParamValue::Number(3.0).as_number(), Some(3.0));
        assert_eq!(ParamValue::Choice("WB".into()).as_choice(), Some("WB"));
        assert_eq!(ParamValue::Flag(true).as_flag(), Some(true));
        assert_eq!(ParamValue::Flag(true).as_number(), None);
    }
}
