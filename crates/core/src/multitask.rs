//! Multi-task learning extension (paper §7, future work).
//!
//! Simulators report many statistics besides IPC (miss rates, misprediction
//! rates, bus occupancies). Those cannot be model *inputs* — they are
//! unknown until a point is simulated — but a network with one output per
//! metric can exploit their correlation with IPC through the shared hidden
//! layer. This module trains such a network: the **primary** head (IPC) is
//! what early stopping and prediction use; the auxiliary heads act as an
//! inductive bias.

use crate::simulate::{PointEvaluator, SimBudget};
use crate::space::{DesignPoint, DesignSpace};
use crate::studies::Study;
use archpredict_ann::network::Network;
use archpredict_ann::scaling::{MinMaxScaler, TargetScaler};
use archpredict_ann::TrainConfig;
use archpredict_sim::simulate_with_warmup;
use archpredict_stats::rng::Xoshiro256;
use archpredict_workloads::{Benchmark, TraceGenerator};

/// The metric vector a detailed simulation yields for multi-task training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Instructions per cycle (the primary target).
    pub ipc: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
}

impl Metrics {
    /// Metric count.
    pub const COUNT: usize = 4;

    /// As an ordered vector (IPC first — the primary task).
    pub fn to_vec(self) -> Vec<f64> {
        vec![self.ipc, self.l2_mpki, self.mispredict_rate, self.l1d_mpki]
    }

    /// The component `target` selects.
    pub fn get(self, target: TargetMetric) -> f64 {
        match target {
            TargetMetric::Ipc => self.ipc,
            TargetMetric::L2Mpki => self.l2_mpki,
            TargetMetric::MispredictRate => self.mispredict_rate,
            TargetMetric::L1dMpki => self.l1d_mpki,
        }
    }
}

/// Which simulator statistic a [`MetricsEvaluator`] exposes through the
/// scalar [`PointEvaluator`] interface — the selector that unifies the
/// multi-metric evaluator with the single-metric oracle stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TargetMetric {
    /// Instructions per cycle (the paper's target).
    #[default]
    Ipc,
    /// L2 misses per kilo-instruction.
    L2Mpki,
    /// Branch misprediction rate.
    MispredictRate,
    /// L1D misses per kilo-instruction.
    L1dMpki,
}

/// Evaluates the full metric vector for multi-task training.
///
/// Also a [`PointEvaluator`]: through the scalar interface it exposes the
/// configured [`TargetMetric`] (IPC by default), so the same evaluator
/// plugs into the oracle stack — explorer, cache, batch fan-out — as any
/// single-metric simulator.
#[derive(Debug)]
pub struct MetricsEvaluator {
    study: Study,
    space: DesignSpace,
    generator: TraceGenerator,
    budget: SimBudget,
    target: TargetMetric,
}

impl MetricsEvaluator {
    /// Creates a metrics evaluator with an explicit budget (scalar target:
    /// IPC).
    pub fn new(study: Study, benchmark: Benchmark, budget: SimBudget) -> Self {
        Self {
            study,
            space: study.space(),
            generator: TraceGenerator::new(benchmark),
            budget,
            target: TargetMetric::default(),
        }
    }

    /// Selects which metric the scalar [`PointEvaluator`] interface
    /// reports.
    pub fn with_target(mut self, target: TargetMetric) -> Self {
        self.target = target;
        self
    }

    /// The metric the scalar interface reports.
    pub fn target(&self) -> TargetMetric {
        self.target
    }

    /// The study's design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Simulates `point` and returns all metrics.
    pub fn evaluate_metrics(&self, point: &DesignPoint) -> Metrics {
        let config = self.study.config_at(&self.space, point);
        let mut ipc = 0.0;
        let mut l2 = 0.0;
        let mut mispredict = 0.0;
        let mut l1d = 0.0;
        for &i in &self.budget.intervals {
            let r = simulate_with_warmup(
                &config,
                self.generator.interval(i),
                self.budget.warmup,
                self.budget.measured,
            );
            ipc += r.ipc();
            l2 += 1000.0 * r.l2_misses as f64 / r.instructions.max(1) as f64;
            mispredict += r.mispredict_rate();
            l1d += 1000.0 * r.l1d_misses as f64 / r.instructions.max(1) as f64;
        }
        let n = self.budget.intervals.len() as f64;
        Metrics {
            ipc: ipc / n,
            l2_mpki: l2 / n,
            mispredict_rate: mispredict / n,
            l1d_mpki: l1d / n,
        }
    }
}

impl PointEvaluator for MetricsEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        self.evaluate_metrics(point).get(self.target)
    }

    fn instructions_per_evaluation(&self) -> u64 {
        self.budget.instructions()
    }
}

/// A trained multi-output network with its scalers.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTaskModel {
    network: Network,
    input_scaler: MinMaxScaler,
    target_scalers: Vec<TargetScaler>,
    /// Index of the primary task among the outputs.
    pub primary: usize,
    /// Epochs actually run.
    pub epochs: usize,
}

impl MultiTaskModel {
    /// Predicts the primary metric (raw scale) for raw features.
    pub fn predict_primary(&self, features: &[f64]) -> f64 {
        let x = self.input_scaler.transform(features);
        let y = self.network.predict(&x);
        self.target_scalers[self.primary].unscale(y[self.primary])
    }

    /// Predicts all metrics (raw scale).
    pub fn predict_all(&self, features: &[f64]) -> Vec<f64> {
        let x = self.input_scaler.transform(features);
        self.network
            .predict(&x)
            .into_iter()
            .zip(&self.target_scalers)
            .map(|(y, s)| s.unscale(y))
            .collect()
    }
}

/// Trains a multi-task network on raw feature rows and metric-vector
/// targets. The final 20 % of the (shuffled) data is the early-stopping
/// set; stopping tracks percentage error on the `primary` head only.
///
/// # Panics
///
/// Panics if inputs are empty/ragged, targets are ragged, or `primary` is
/// out of range.
pub fn fit_multitask(
    features: &[Vec<f64>],
    targets: &[Vec<f64>],
    primary: usize,
    config: &TrainConfig,
    seed: u64,
) -> MultiTaskModel {
    assert!(!features.is_empty(), "no training data");
    assert_eq!(features.len(), targets.len(), "feature/target mismatch");
    let tasks = targets[0].len();
    assert!(primary < tasks, "primary task out of range");
    assert!(
        targets.iter().all(|t| t.len() == tasks),
        "ragged target rows"
    );

    let mut rng = Xoshiro256::seed_from(seed);
    let mut order: Vec<usize> = (0..features.len()).collect();
    archpredict_stats::sampling::shuffle(&mut order, &mut rng);
    let es_len = (features.len() / 5).max(1);
    let (train_ids, es_ids) = order.split_at(features.len() - es_len);

    let input_scaler = MinMaxScaler::fit(features.iter().map(|f| f.as_slice()));
    let target_scalers: Vec<TargetScaler> = (0..tasks)
        .map(|t| TargetScaler::fit(&targets.iter().map(|row| row[t]).collect::<Vec<_>>()))
        .collect();

    let scale_row = |row: &[f64]| -> Vec<f64> {
        row.iter()
            .zip(&target_scalers)
            .map(|(&v, s)| s.scale(v))
            .collect()
    };
    let train_x: Vec<Vec<f64>> = train_ids
        .iter()
        .map(|&i| input_scaler.transform(&features[i]))
        .collect();
    let train_y: Vec<Vec<f64>> = train_ids.iter().map(|&i| scale_row(&targets[i])).collect();

    let mut network = Network::new(&[features[0].len(), config.hidden_units, tasks], &mut rng);
    let mut best = network.clone();
    let mut best_error = f64::INFINITY;
    let mut best_epoch = 0;
    let mut epochs = 0;

    let es_error = |network: &Network| -> f64 {
        let mut total = 0.0;
        for &i in es_ids {
            let x = input_scaler.transform(&features[i]);
            let y = target_scalers[primary].unscale(network.predict(&x)[primary]);
            let t = targets[i][primary];
            total += 100.0 * (y - t).abs() / t.abs().max(1e-12);
        }
        total / es_ids.len() as f64
    };

    for epoch in 0..config.max_epochs {
        epochs = epoch + 1;
        for _ in 0..train_x.len() {
            let i = rng.index(train_x.len());
            network.train_example(
                &train_x[i],
                &train_y[i],
                config.learning_rate,
                config.momentum,
            );
        }
        let err = es_error(&network);
        if err < best_error {
            best_error = err;
            best = network.clone();
            best_epoch = epoch;
        } else if epoch - best_epoch >= config.patience {
            break;
        }
    }

    MultiTaskModel {
        network: best,
        input_scaler,
        target_scalers,
        primary,
        epochs,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Correlated synthetic tasks: aux = smooth transforms of the primary.
    fn make_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.next_f64();
            let b = rng.next_f64();
            let primary = 0.3 + 0.5 * (a * 2.2).sin().abs() + 0.2 * a * b;
            let aux1 = 2.0 - primary; // perfectly anti-correlated
            let aux2 = primary * primary;
            xs.push(vec![a, b]);
            ys.push(vec![primary, aux1, aux2]);
        }
        (xs, ys)
    }

    #[test]
    fn learns_primary_task() {
        let (xs, ys) = make_data(300, 1);
        let model = fit_multitask(&xs, &ys, 0, &TrainConfig::default(), 2);
        let (test_x, test_y) = make_data(150, 3);
        let mut total = 0.0;
        for (x, y) in test_x.iter().zip(&test_y) {
            total += 100.0 * (model.predict_primary(x) - y[0]).abs() / y[0];
        }
        let mape = total / test_x.len() as f64;
        assert!(mape < 6.0, "primary MAPE {mape:.2}%");
    }

    #[test]
    fn predicts_all_heads() {
        let (xs, ys) = make_data(300, 4);
        let model = fit_multitask(&xs, &ys, 0, &TrainConfig::default(), 5);
        let all = model.predict_all(&[0.5, 0.5]);
        assert_eq!(all.len(), 3);
        // Anti-correlated head should roughly mirror the primary.
        assert!((all[0] + all[1] - 2.0).abs() < 0.25, "{all:?}");
    }

    #[test]
    fn metrics_vector_layout() {
        let m = Metrics {
            ipc: 1.0,
            l2_mpki: 2.0,
            mispredict_rate: 0.05,
            l1d_mpki: 10.0,
        };
        assert_eq!(m.to_vec(), vec![1.0, 2.0, 0.05, 10.0]);
        assert_eq!(Metrics::COUNT, 4);
    }

    #[test]
    fn scalar_interface_reports_selected_metric() {
        let generator = TraceGenerator::new(Benchmark::Gzip);
        let budget = SimBudget::spread(&generator, 2, 2_000, 4_000);
        let ipc_eval = MetricsEvaluator::new(Study::MemorySystem, Benchmark::Gzip, budget.clone());
        let point = ipc_eval.space().point(42);
        let metrics = ipc_eval.evaluate_metrics(&point);
        // Default target is IPC; the selector switches heads; instruction
        // accounting matches the budget.
        assert_eq!(PointEvaluator::evaluate(&ipc_eval, &point), metrics.ipc);
        assert_eq!(
            ipc_eval.instructions_per_evaluation(),
            budget.instructions()
        );
        let l2_eval = MetricsEvaluator::new(Study::MemorySystem, Benchmark::Gzip, budget)
            .with_target(TargetMetric::L2Mpki);
        assert_eq!(l2_eval.target(), TargetMetric::L2Mpki);
        assert_eq!(PointEvaluator::evaluate(&l2_eval, &point), metrics.l2_mpki);
    }

    #[test]
    #[should_panic(expected = "primary task out of range")]
    fn bad_primary_panics() {
        let (xs, ys) = make_data(20, 6);
        fit_multitask(&xs, &ys, 9, &TrainConfig::default(), 7);
    }
}
