//! Multi-task learning extension (paper §7, future work).
//!
//! Simulators report many statistics besides IPC (miss rates, misprediction
//! rates, bus occupancies). Those cannot be model *inputs* — they are
//! unknown until a point is simulated — but a network with one output per
//! metric can exploit their correlation with IPC through the shared hidden
//! layer. This module trains such a network: the **primary** head (IPC) is
//! what early stopping and prediction use; the auxiliary heads act as an
//! inductive bias.
//!
//! Training data comes in through the same batch-first [`Oracle`] stack as
//! every other driver ([`fit_multitask_oracles`]): one oracle per metric
//! head, so multi-task fits get deduplicating caches, retry/quarantine,
//! [`SimStats`] telemetry and batch fan-out for free, and the primary
//! head's sampling runs through the campaign engine's [`collect_batch`]
//! quarantine/resample loop with seeds derived from the audited
//! [`seed_stream`] map.

use crate::campaign::{collect_batch, seed_stream, Encoder, PlainEncoder};
use crate::simulate::{Oracle, PointEvaluator, SimBudget, SimStats};
use crate::space::{DesignPoint, DesignSpace};
use crate::studies::Study;
use archpredict_ann::{train_multi_network, MultiTrainedModel, TrainConfig};
use archpredict_sim::simulate_with_warmup;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::IncrementalSampler;
use archpredict_workloads::{Benchmark, TraceGenerator};

/// The metric vector a detailed simulation yields for multi-task training.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Metrics {
    /// Instructions per cycle (the primary target).
    pub ipc: f64,
    /// L2 misses per kilo-instruction.
    pub l2_mpki: f64,
    /// Branch misprediction rate.
    pub mispredict_rate: f64,
    /// L1D misses per kilo-instruction.
    pub l1d_mpki: f64,
}

impl Metrics {
    /// Metric count.
    pub const COUNT: usize = 4;

    /// As an ordered vector (IPC first — the primary task).
    pub fn to_vec(self) -> Vec<f64> {
        vec![self.ipc, self.l2_mpki, self.mispredict_rate, self.l1d_mpki]
    }

    /// The component `target` selects.
    pub fn get(self, target: TargetMetric) -> f64 {
        match target {
            TargetMetric::Ipc => self.ipc,
            TargetMetric::L2Mpki => self.l2_mpki,
            TargetMetric::MispredictRate => self.mispredict_rate,
            TargetMetric::L1dMpki => self.l1d_mpki,
        }
    }
}

/// Which simulator statistic a [`MetricsEvaluator`] exposes through the
/// scalar [`PointEvaluator`] interface — the selector that unifies the
/// multi-metric evaluator with the single-metric oracle stack.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub enum TargetMetric {
    /// Instructions per cycle (the paper's target).
    #[default]
    Ipc,
    /// L2 misses per kilo-instruction.
    L2Mpki,
    /// Branch misprediction rate.
    MispredictRate,
    /// L1D misses per kilo-instruction.
    L1dMpki,
}

/// Evaluates the full metric vector for multi-task training.
///
/// Also a [`PointEvaluator`]: through the scalar interface it exposes the
/// configured [`TargetMetric`] (IPC by default), so the same evaluator
/// plugs into the oracle stack — explorer, cache, batch fan-out — as any
/// single-metric simulator.
#[derive(Debug)]
pub struct MetricsEvaluator {
    study: Study,
    space: DesignSpace,
    generator: TraceGenerator,
    budget: SimBudget,
    target: TargetMetric,
}

impl MetricsEvaluator {
    /// Creates a metrics evaluator with an explicit budget (scalar target:
    /// IPC).
    pub fn new(study: Study, benchmark: Benchmark, budget: SimBudget) -> Self {
        Self {
            study,
            space: study.space(),
            generator: TraceGenerator::new(benchmark),
            budget,
            target: TargetMetric::default(),
        }
    }

    /// Selects which metric the scalar [`PointEvaluator`] interface
    /// reports.
    pub fn with_target(mut self, target: TargetMetric) -> Self {
        self.target = target;
        self
    }

    /// The metric the scalar interface reports.
    pub fn target(&self) -> TargetMetric {
        self.target
    }

    /// The study's design space.
    pub fn space(&self) -> &DesignSpace {
        &self.space
    }

    /// Simulates `point` and returns all metrics.
    pub fn evaluate_metrics(&self, point: &DesignPoint) -> Metrics {
        let config = self.study.config_at(&self.space, point);
        let mut ipc = 0.0;
        let mut l2 = 0.0;
        let mut mispredict = 0.0;
        let mut l1d = 0.0;
        for &i in &self.budget.intervals {
            let r = simulate_with_warmup(
                &config,
                self.generator.interval(i),
                self.budget.warmup,
                self.budget.measured,
            );
            ipc += r.ipc();
            l2 += 1000.0 * r.l2_misses as f64 / r.instructions.max(1) as f64;
            mispredict += r.mispredict_rate();
            l1d += 1000.0 * r.l1d_misses as f64 / r.instructions.max(1) as f64;
        }
        let n = self.budget.intervals.len() as f64;
        Metrics {
            ipc: ipc / n,
            l2_mpki: l2 / n,
            mispredict_rate: mispredict / n,
            l1d_mpki: l1d / n,
        }
    }
}

impl PointEvaluator for MetricsEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        self.evaluate_metrics(point).get(self.target)
    }

    fn instructions_per_evaluation(&self) -> u64 {
        self.budget.instructions()
    }
}

/// A trained multi-output network with its scalers — a thin wrapper over
/// the ann crate's [`MultiTrainedModel`], which carries the snapshot/
/// restore best-epoch bookkeeping and divergence detection the
/// single-output trainer has.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiTaskModel {
    model: MultiTrainedModel,
    /// Index of the primary task among the outputs.
    pub primary: usize,
    /// Epochs actually run.
    pub epochs: usize,
}

impl MultiTaskModel {
    /// Wraps a trained multi-output network loaded from elsewhere (e.g. a
    /// [`crate::registry`] artifact); the primary-head index and epoch
    /// count ride inside the model itself.
    pub fn from_trained(model: MultiTrainedModel) -> Self {
        Self {
            primary: model.primary,
            epochs: model.epochs,
            model,
        }
    }

    /// The underlying trained network — the persistable artifact that
    /// [`crate::registry`] stores and [`Self::from_trained`] restores.
    pub fn trained(&self) -> &MultiTrainedModel {
        &self.model
    }

    /// Predicts the primary metric (raw scale) for raw features.
    pub fn predict_primary(&self, features: &[f64]) -> f64 {
        self.model.predict_primary(features)
    }

    /// Predicts all metrics (raw scale).
    pub fn predict_all(&self, features: &[f64]) -> Vec<f64> {
        self.model.predict_all(features)
    }

    /// Number of output heads.
    pub fn tasks(&self) -> usize {
        self.model.tasks()
    }

    /// Whether training diverged (non-finite early-stopping error); the
    /// weights are still the best finite snapshot.
    pub fn diverged(&self) -> bool {
        self.model.diverged
    }

    /// Best primary-head percentage error seen on the early-stopping set.
    pub fn best_es_error(&self) -> f64 {
        self.model.best_es_error
    }
}

/// Trains a multi-task network on raw feature rows and metric-vector
/// targets. The final 20 % of the (shuffled) data is the early-stopping
/// set; stopping tracks percentage error on the `primary` head only.
///
/// # Panics
///
/// Panics if inputs are empty/ragged, targets are ragged, or `primary` is
/// out of range.
pub fn fit_multitask(
    features: &[Vec<f64>],
    targets: &[Vec<f64>],
    primary: usize,
    config: &TrainConfig,
    seed: u64,
) -> MultiTaskModel {
    assert!(!features.is_empty(), "no training data");
    assert_eq!(features.len(), targets.len(), "feature/target mismatch");

    let mut rng = Xoshiro256::seed_from(seed);
    let mut order: Vec<usize> = (0..features.len()).collect();
    archpredict_stats::sampling::shuffle(&mut order, &mut rng);
    let es_len = (features.len() / 5).max(1);
    let (train_ids, es_ids) = order.split_at(features.len() - es_len);

    let pairs = |ids: &[usize]| -> Vec<(&[f64], &[f64])> {
        ids.iter()
            .map(|&i| (features[i].as_slice(), targets[i].as_slice()))
            .collect()
    };
    let model = train_multi_network(&pairs(train_ids), &pairs(es_ids), primary, config, &mut rng);
    MultiTaskModel {
        primary: model.primary,
        epochs: model.epochs,
        model,
    }
}

/// Everything a multi-task oracle fit produces: the model plus the
/// sampling outcome and the accumulated simulation telemetry.
#[derive(Debug)]
pub struct MultiTaskFit {
    /// The trained multi-output model.
    pub model: MultiTaskModel,
    /// Design-point indices whose full metric rows made it into training,
    /// in evaluation order.
    pub indices: Vec<usize>,
    /// Telemetry accumulated across every head's oracle — cache hits,
    /// retries, quarantines and resamples all land here.
    pub simulation: SimStats,
    /// Rows dropped because an auxiliary head failed on the index after
    /// whatever retrying its oracle stack performed.
    pub dropped: usize,
}

/// Trains a multi-task model through the batch-first [`Oracle`] stack:
/// one oracle per metric head, in head order.
///
/// The `primary` head drives point selection — `samples` indices are
/// drawn from the seeded sampler stream and evaluated through the
/// campaign engine's quarantine/resample loop, so a failing point is
/// replaced by a fresh draw exactly as in single-metric exploration. The
/// auxiliary heads then evaluate the surviving indices in one batch each;
/// an index any auxiliary head still fails on is dropped from training
/// (and counted in [`MultiTaskFit::dropped`]) rather than resampled,
/// since by then the primary target is already paid for.
///
/// Wrap each head in the usual stack
/// ([`CachedEvaluator`](crate::simulate::CachedEvaluator),
/// [`RetryingOracle`](crate::simulate::RetryingOracle), …) to get
/// deduplication, persistence and retries; all telemetry accumulates into
/// one [`SimStats`]. Sampling and fit seeds derive from `seed` through
/// [`seed_stream`], and results are identical for every parallelism
/// setting of the underlying oracles.
///
/// # Panics
///
/// Panics if `heads` is empty, `primary` is out of range, or every
/// sampled row is dropped.
pub fn fit_multitask_oracles<O: Oracle + ?Sized>(
    space: &DesignSpace,
    heads: &[&O],
    primary: usize,
    samples: usize,
    config: &TrainConfig,
    seed: u64,
) -> MultiTaskFit {
    assert!(!heads.is_empty(), "no metric heads");
    assert!(primary < heads.len(), "primary task out of range");

    let rng = Xoshiro256::seed_from(seed);
    let mut sampler = IncrementalSampler::new(space.size(), rng.derive(seed_stream::SAMPLER));
    let mut simulation = SimStats::default();

    // The primary head samples with quarantine/resample, exactly like a
    // campaign round.
    let initial = sampler.next_batch(samples);
    let mut indices: Vec<usize> = Vec::new();
    let mut rows: Vec<Vec<f64>> = Vec::new();
    collect_batch(
        heads[primary],
        space,
        &mut sampler,
        initial,
        &mut simulation,
        |index, value| {
            let mut row = vec![0.0; heads.len()];
            row[primary] = value;
            indices.push(index);
            rows.push(row);
        },
        |_| {},
    );

    // Auxiliary heads fill in their column over the surviving indices.
    let mut keep = vec![true; indices.len()];
    for (slot, head) in heads.iter().enumerate() {
        if slot == primary {
            continue;
        }
        let results = head.evaluate_batch(space, &indices, &mut simulation);
        for ((row, ok), result) in rows.iter_mut().zip(keep.iter_mut()).zip(results) {
            match result {
                Ok(value) => row[slot] = value,
                Err(_) => *ok = false,
            }
        }
    }

    let mut features = Vec::new();
    let mut targets = Vec::new();
    let mut kept = Vec::new();
    let mut dropped = 0;
    for ((index, row), ok) in indices.into_iter().zip(rows).zip(keep) {
        if ok {
            features.push(PlainEncoder.encode(space, index));
            targets.push(row);
            kept.push(index);
        } else {
            dropped += 1;
        }
    }

    // One deterministic delta per multi-task fit, mirrored after the
    // per-fit bookkeeping is final (see `telemetry::record_sim`).
    crate::telemetry::record_sim(&simulation);
    let fit_seed = Xoshiro256::seed_from(seed)
        .derive(seed_stream::FIT)
        .next_u64();
    let model = fit_multitask(&features, &targets, primary, config, fit_seed);
    MultiTaskFit {
        model,
        indices: kept,
        simulation,
        dropped,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Correlated synthetic tasks: aux = smooth transforms of the primary.
    fn make_data(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<Vec<f64>>) {
        let mut rng = Xoshiro256::seed_from(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for _ in 0..n {
            let a = rng.next_f64();
            let b = rng.next_f64();
            let primary = 0.3 + 0.5 * (a * 2.2).sin().abs() + 0.2 * a * b;
            let aux1 = 2.0 - primary; // perfectly anti-correlated
            let aux2 = primary * primary;
            xs.push(vec![a, b]);
            ys.push(vec![primary, aux1, aux2]);
        }
        (xs, ys)
    }

    #[test]
    fn learns_primary_task() {
        let (xs, ys) = make_data(300, 1);
        let model = fit_multitask(&xs, &ys, 0, &TrainConfig::default(), 2);
        let (test_x, test_y) = make_data(150, 3);
        let mut total = 0.0;
        for (x, y) in test_x.iter().zip(&test_y) {
            total += 100.0 * (model.predict_primary(x) - y[0]).abs() / y[0];
        }
        let mape = total / test_x.len() as f64;
        assert!(mape < 6.0, "primary MAPE {mape:.2}%");
    }

    #[test]
    fn predicts_all_heads() {
        let (xs, ys) = make_data(300, 4);
        let model = fit_multitask(&xs, &ys, 0, &TrainConfig::default(), 5);
        let all = model.predict_all(&[0.5, 0.5]);
        assert_eq!(all.len(), 3);
        // Anti-correlated head should roughly mirror the primary.
        assert!((all[0] + all[1] - 2.0).abs() < 0.25, "{all:?}");
    }

    #[test]
    fn metrics_vector_layout() {
        let m = Metrics {
            ipc: 1.0,
            l2_mpki: 2.0,
            mispredict_rate: 0.05,
            l1d_mpki: 10.0,
        };
        assert_eq!(m.to_vec(), vec![1.0, 2.0, 0.05, 10.0]);
        assert_eq!(Metrics::COUNT, 4);
    }

    #[test]
    fn scalar_interface_reports_selected_metric() {
        let generator = TraceGenerator::new(Benchmark::Gzip);
        let budget = SimBudget::spread(&generator, 2, 2_000, 4_000);
        let ipc_eval = MetricsEvaluator::new(Study::MemorySystem, Benchmark::Gzip, budget.clone());
        let point = ipc_eval.space().point(42);
        let metrics = ipc_eval.evaluate_metrics(&point);
        // Default target is IPC; the selector switches heads; instruction
        // accounting matches the budget.
        assert_eq!(PointEvaluator::evaluate(&ipc_eval, &point), metrics.ipc);
        assert_eq!(
            ipc_eval.instructions_per_evaluation(),
            budget.instructions()
        );
        let l2_eval = MetricsEvaluator::new(Study::MemorySystem, Benchmark::Gzip, budget)
            .with_target(TargetMetric::L2Mpki);
        assert_eq!(l2_eval.target(), TargetMetric::L2Mpki);
        assert_eq!(PointEvaluator::evaluate(&l2_eval, &point), metrics.l2_mpki);
    }

    #[test]
    #[should_panic(expected = "primary task out of range")]
    fn bad_primary_panics() {
        let (xs, ys) = make_data(20, 6);
        fit_multitask(&xs, &ys, 9, &TrainConfig::default(), 7);
    }
}
