//! The paper's two sensitivity studies (Tables 4.1 and 4.2).
//!
//! [`Study::MemorySystem`] spans the memory-hierarchy space of Table 4.1
//! (23,040 points per application); [`Study::Processor`] spans the
//! microprocessor space of Table 4.2 (20,736 points per application,
//! including the ROB-dependent register-file rule). [`Study::config_at`]
//! maps a design point to a full simulator configuration, applying every
//! fixed parameter and dependency the paper specifies (dependent cache
//! associativities, CACTI-derived latencies, frequency-derived
//! misprediction penalties).

use crate::param::Param;
use crate::space::{DesignPoint, DesignSpace};
use archpredict_sim::{CacheParams, SimConfig, WritePolicy};

const KB: f64 = 1024.0;

/// Which of the paper's studies a space/configuration belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Study {
    /// Table 4.1: memory-system parameters, fixed 4 GHz core.
    MemorySystem,
    /// Table 4.2: processor parameters.
    Processor,
}

impl Study {
    /// Both studies.
    pub const ALL: [Study; 2] = [Study::MemorySystem, Study::Processor];

    /// Human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Study::MemorySystem => "memory",
            Study::Processor => "processor",
        }
    }

    /// Parses a study from its lower-case name.
    pub fn from_name(name: &str) -> Option<Study> {
        Study::ALL.iter().copied().find(|s| s.name() == name)
    }

    /// The study's design space.
    pub fn space(self) -> DesignSpace {
        match self {
            Study::MemorySystem => memory_space(),
            Study::Processor => processor_space(),
        }
    }

    /// Maps a design point of this study's space to a simulator
    /// configuration (fixed parameters per the tables' right-hand sides).
    ///
    /// # Panics
    ///
    /// Panics if `point` does not belong to this study's `space`.
    pub fn config_at(self, space: &DesignSpace, point: &DesignPoint) -> SimConfig {
        match self {
            Study::MemorySystem => memory_config(space, point),
            Study::Processor => processor_config(space, point),
        }
    }

    /// The standard simulation oracle for this study and `benchmark`: the
    /// full-detail [`StudyEvaluator`](crate::simulate::StudyEvaluator)
    /// behind a sharded, deduplicating
    /// [`CachedEvaluator`](crate::simulate::CachedEvaluator).
    pub fn oracle(
        self,
        benchmark: archpredict_workloads::Benchmark,
    ) -> crate::simulate::CachedEvaluator<crate::simulate::StudyEvaluator> {
        crate::simulate::CachedEvaluator::new(
            crate::simulate::StudyEvaluator::new(self, benchmark),
            self.space(),
        )
    }

    /// The distributed variant of [`Study::oracle`]: the same sharded
    /// cache, but backed by a
    /// [`ProcessPoolOracle`](crate::distributed::ProcessPoolOracle) that
    /// fans cache misses out across `ARCHPREDICT_SIM_WORKERS` worker
    /// processes (0 = plain in-process fan-out, bit-for-bit identical).
    ///
    /// # Errors
    ///
    /// Fails when workers are requested but the `archpredict-worker`
    /// binary cannot be located (see
    /// [`locate_worker_binary`](crate::distributed::locate_worker_binary)).
    pub fn distributed_oracle(
        self,
        benchmark: archpredict_workloads::Benchmark,
    ) -> std::io::Result<crate::simulate::CachedEvaluator<crate::distributed::ProcessPoolOracle>>
    {
        let pool = crate::distributed::ProcessPoolOracle::from_env(
            crate::distributed::WorkerSpec::study(self, benchmark),
        )?;
        Ok(crate::simulate::CachedEvaluator::new(pool, self.space()))
    }
}

impl std::fmt::Display for Study {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// The memory-system design space of Table 4.1 (23,040 points).
pub fn memory_space() -> DesignSpace {
    DesignSpace::new(vec![
        Param::cardinal("l1d_size", [8.0 * KB, 16.0 * KB, 32.0 * KB, 64.0 * KB]),
        Param::cardinal("l1d_block", [32.0, 64.0]),
        Param::cardinal("l1d_assoc", [1.0, 2.0, 4.0, 8.0]),
        Param::nominal("l1_write_policy", ["WT", "WB"]),
        Param::cardinal(
            "l2_size",
            [256.0 * KB, 512.0 * KB, 1024.0 * KB, 2048.0 * KB],
        ),
        Param::cardinal("l2_block", [64.0, 128.0]),
        Param::cardinal("l2_assoc", [1.0, 2.0, 4.0, 8.0, 16.0]),
        Param::cardinal("l2_bus_bytes", [8.0, 16.0, 32.0]),
        Param::cardinal("fsb_ghz", [0.533, 0.8, 1.4]),
    ])
    .expect("static space is valid")
}

fn memory_config(space: &DesignSpace, point: &DesignPoint) -> SimConfig {
    let policy = if space.choice(point, "l1_write_policy") == "WT" {
        WritePolicy::WriteThrough
    } else {
        WritePolicy::WriteBack
    };
    SimConfig {
        l1d: CacheParams {
            capacity_bytes: space.number(point, "l1d_size") as u64,
            associativity: space.number(point, "l1d_assoc") as u32,
            block_bytes: space.number(point, "l1d_block") as u32,
            write_policy: policy,
        },
        l2: CacheParams::write_back(
            space.number(point, "l2_size") as u64,
            space.number(point, "l2_assoc") as u32,
            space.number(point, "l2_block") as u32,
        ),
        l2_bus_bytes: space.number(point, "l2_bus_bytes") as u32,
        fsb_ghz: space.number(point, "fsb_ghz"),
        // Fixed side of Table 4.1 is the simulator default machine.
        ..SimConfig::default()
    }
}

/// The processor design space of Table 4.2 (20,736 points).
pub fn processor_space() -> DesignSpace {
    DesignSpace::new(vec![
        Param::cardinal("width", [4.0, 6.0, 8.0]),
        Param::cardinal("freq_ghz", [2.0, 4.0]),
        Param::cardinal("max_branches", [16.0, 32.0]),
        Param::cardinal("predictor_entries", [1024.0, 2048.0, 4096.0]),
        Param::cardinal("btb_sets", [1024.0, 2048.0]),
        Param::cardinal("functional_units", [4.0, 8.0]),
        Param::cardinal("rob_size", [96.0, 128.0, 160.0]),
        // Register file: two choices per ROB size (Table 4.2).
        Param::linked_cardinal(
            "register_file",
            6,
            vec![vec![64.0, 80.0], vec![80.0, 96.0], vec![96.0, 112.0]],
        ),
        Param::cardinal("lsq_entries", [32.0, 48.0, 64.0]),
        Param::cardinal("l1i_size", [8.0 * KB, 32.0 * KB]),
        Param::cardinal("l1d_size", [8.0 * KB, 32.0 * KB]),
        Param::cardinal("l2_size", [256.0 * KB, 1024.0 * KB]),
    ])
    .expect("static space is valid")
}

fn processor_config(space: &DesignSpace, point: &DesignPoint) -> SimConfig {
    let l1i_size = space.number(point, "l1i_size") as u64;
    let l1d_size = space.number(point, "l1d_size") as u64;
    let l2_size = space.number(point, "l2_size") as u64;
    // Dependent associativities per Table 4.2's right-hand side.
    let l1_assoc = |size: u64| if size <= 8 * 1024 { 1 } else { 2 };
    let l2_assoc = if l2_size <= 256 * 1024 { 4 } else { 8 };
    let regs = space.number(point, "register_file") as u32;
    let lsq = space.number(point, "lsq_entries") as u32;
    SimConfig {
        freq_ghz: space.number(point, "freq_ghz"),
        width: space.number(point, "width") as u32,
        rob_size: space.number(point, "rob_size") as u32,
        int_regs: regs,
        fp_regs: regs,
        lsq_loads: lsq,
        lsq_stores: lsq,
        max_branches: space.number(point, "max_branches") as u32,
        functional_units: space.number(point, "functional_units") as u32,
        predictor_entries: space.number(point, "predictor_entries") as u32,
        btb_sets: space.number(point, "btb_sets") as u32,
        l1i: CacheParams::write_back(l1i_size, l1_assoc(l1i_size), 32),
        l1d: CacheParams::write_back(l1d_size, l1_assoc(l1d_size), 32),
        l2: CacheParams::write_back(l2_size, l2_assoc, 64),
        l2_bus_bytes: 32,
        fsb_ghz: 0.8,
        ..SimConfig::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn space_sizes_match_the_paper() {
        assert_eq!(memory_space().size(), 23_040, "Table 4.1");
        assert_eq!(processor_space().size(), 20_736, "Table 4.2");
    }

    #[test]
    fn every_memory_point_yields_a_valid_config() {
        let space = memory_space();
        // Exhaustively validating 23K configs is cheap (validation only).
        for i in (0..space.size()).step_by(7) {
            let point = space.point(i);
            let config = Study::MemorySystem.config_at(&space, &point);
            config.derive().unwrap_or_else(|e| panic!("point {i}: {e}"));
            assert_eq!(config.freq_ghz, 4.0, "core fixed at 4 GHz");
            assert_eq!(config.width, 4);
        }
    }

    #[test]
    fn every_processor_point_yields_a_valid_config() {
        let space = processor_space();
        for i in (0..space.size()).step_by(5) {
            let point = space.point(i);
            let config = Study::Processor.config_at(&space, &point);
            config.derive().unwrap_or_else(|e| panic!("point {i}: {e}"));
        }
    }

    #[test]
    fn register_file_respects_rob_link() {
        let space = processor_space();
        for i in (0..space.size()).step_by(11) {
            let point = space.point(i);
            let rob = space.number(&point, "rob_size");
            let regs = space.number(&point, "register_file");
            let allowed: &[f64] = match rob as u32 {
                96 => &[64.0, 80.0],
                128 => &[80.0, 96.0],
                160 => &[96.0, 112.0],
                _ => unreachable!(),
            };
            assert!(allowed.contains(&regs), "rob {rob} regs {regs}");
        }
    }

    #[test]
    fn dependent_associativities_follow_the_table() {
        let space = processor_space();
        let point = space.point(0);
        let config = Study::Processor.config_at(&space, &point);
        // 8KB L1s are direct-mapped; 256KB L2 is 4-way.
        if config.l1d.capacity_bytes == 8 * 1024 {
            assert_eq!(config.l1d.associativity, 1);
        }
        // Find a point with the big caches.
        let big = (0..space.size())
            .map(|i| space.point(i))
            .find(|p| {
                space.number(p, "l1d_size") == 32.0 * KB
                    && space.number(p, "l2_size") == 1024.0 * KB
            })
            .expect("exists");
        let config = Study::Processor.config_at(&space, &big);
        assert_eq!(config.l1d.associativity, 2);
        assert_eq!(config.l2.associativity, 8);
    }

    #[test]
    fn memory_point_maps_every_varied_field() {
        let space = memory_space();
        let point = space.point(space.size() - 1);
        let config = Study::MemorySystem.config_at(&space, &point);
        assert_eq!(config.l1d.capacity_bytes, 64 * 1024);
        assert_eq!(config.l1d.block_bytes, 64);
        assert_eq!(config.l1d.associativity, 8);
        assert_eq!(config.l1d.write_policy, WritePolicy::WriteBack);
        assert_eq!(config.l2.capacity_bytes, 2048 * 1024);
        assert_eq!(config.l2.block_bytes, 128);
        assert_eq!(config.l2.associativity, 16);
        assert_eq!(config.l2_bus_bytes, 32);
        assert_eq!(config.fsb_ghz, 1.4);
    }
}
