//! Point-selection strategies for the refinement loop.
//!
//! The paper samples the space uniformly at random ([`Strategy::Random`]).
//! Its future-work section (§7) proposes **active learning**: let the
//! model pick the points it would learn most from.
//! [`Strategy::Active`] implements query-by-committee — candidate points
//! are scored by the disagreement (standard deviation) among the
//! cross-validation ensemble's member networks, and the most contentious
//! candidates are simulated first.

use crate::space::DesignSpace;
use archpredict_ann::Ensemble;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::IncrementalSampler;

/// How each refinement round chooses its new design points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Uniform random sampling without replacement (the paper's method).
    Random,
    /// Query-by-committee active learning (§7 future work): draw
    /// `pool_factor × batch` random candidates and keep the `batch` with
    /// the highest ensemble disagreement.
    Active {
        /// Candidate pool multiplier (e.g. 4 ⇒ score 4× the batch size).
        pool_factor: usize,
    },
}

/// Draws the next batch under the active-learning strategy.
///
/// Falls back to plain random sampling for the first round (no ensemble
/// exists to disagree yet). A pool of `batch * pool_factor` fresh
/// candidates is drawn from the sampler and scored by committee
/// disagreement; the top `batch` are simulated. Rejected candidates are
/// permanently skipped (never simulated), trading a little coverage for
/// informativeness — acceptable because the pool is a vanishing fraction
/// of the space.
pub(crate) fn active_batch(
    sampler: &mut IncrementalSampler,
    ensemble: Option<&Ensemble>,
    space: &DesignSpace,
    batch: usize,
    pool_factor: usize,
    rng: &mut Xoshiro256,
) -> Vec<usize> {
    let Some(ensemble) = ensemble else {
        return sampler.next_batch(batch);
    };
    let pool = sampler.next_batch(batch * pool_factor.max(1));
    if pool.len() <= batch {
        return pool;
    }
    let mut scored: Vec<(f64, usize)> = pool
        .into_iter()
        .map(|i| {
            let features = space.encode(&space.point(i));
            (ensemble.disagreement(&features), i)
        })
        .collect();
    // Highest disagreement first; ties broken by shuffling beforehand is
    // unnecessary since the pool arrives in random order.
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite disagreement"));
    let _ = rng; // reserved for stochastic tie-breaking variants
    scored.into_iter().take(batch).map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            Param::cardinal("a", (0..10).map(f64::from).collect::<Vec<_>>()),
            Param::cardinal("b", (0..10).map(f64::from).collect::<Vec<_>>()),
        ])
        .unwrap()
    }

    #[test]
    fn first_round_falls_back_to_random() {
        let space = space();
        let mut sampler = IncrementalSampler::new(space.size(), Xoshiro256::seed_from(1));
        let mut rng = Xoshiro256::seed_from(2);
        let batch = active_batch(&mut sampler, None, &space, 10, 4, &mut rng);
        assert_eq!(batch.len(), 10);
    }

    #[test]
    fn active_batch_returns_requested_size_and_fresh_points() {
        use archpredict_ann::{fit_ensemble, Dataset, Sample, TrainConfig};
        let space = space();
        // Train a tiny ensemble so disagreement is defined.
        let data: Dataset = (0..40)
            .map(|i| {
                let p = space.point(i);
                Sample::new(space.encode(&p), 0.5 + 0.1 * (i % 7) as f64)
            })
            .collect();
        let config = TrainConfig {
            max_epochs: 30,
            ..TrainConfig::default()
        };
        let fit = fit_ensemble(&data, 5, &config, 3);
        let mut sampler = IncrementalSampler::new(space.size(), Xoshiro256::seed_from(4));
        let mut rng = Xoshiro256::seed_from(5);
        let batch = active_batch(&mut sampler, Some(&fit.ensemble), &space, 8, 3, &mut rng);
        assert_eq!(batch.len(), 8);
        let unique: std::collections::HashSet<_> = batch.iter().collect();
        assert_eq!(unique.len(), 8);
    }
}
