//! Point-selection strategies for the refinement loop.
//!
//! The paper samples the space uniformly at random ([`Strategy::Random`]).
//! Its future-work section (§7) proposes **active learning**: let the
//! model pick the points it would learn most from.
//! [`Strategy::Active`] implements query-by-committee — candidate points
//! are scored by the disagreement (standard deviation) among the
//! cross-validation ensemble's member networks, and the most contentious
//! candidates are simulated first.

use archpredict_ann::{Ensemble, Parallelism};
use archpredict_stats::sampling::IncrementalSampler;

/// How each refinement round chooses its new design points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Strategy {
    /// Uniform random sampling without replacement (the paper's method).
    Random,
    /// Query-by-committee active learning (§7 future work): draw
    /// `pool_factor × batch` random candidates and keep the `batch` with
    /// the highest ensemble disagreement.
    Active {
        /// Candidate pool multiplier (e.g. 4 ⇒ score 4× the batch size).
        pool_factor: usize,
    },
}

/// Draws the next batch under the active-learning strategy.
///
/// Falls back to plain random sampling for the first round (no ensemble
/// exists to disagree yet). A pool of `batch * pool_factor` fresh
/// candidates is drawn from the sampler, encoded through the campaign's
/// [`crate::campaign::Encoder`] (as the `encode` closure appending `dims`
/// features per index), and scored by committee disagreement through the
/// batched inference path, parallelized per `parallelism`; the top
/// `batch` are simulated. Scores are bit-for-bit identical at every
/// thread count, so the selected batch is too. Rejected candidates are
/// permanently skipped (never simulated), trading a little coverage for
/// informativeness — acceptable because the pool is a vanishing fraction
/// of the space.
pub(crate) fn active_batch<E>(
    sampler: &mut IncrementalSampler,
    ensemble: Option<&Ensemble>,
    batch: usize,
    pool_factor: usize,
    parallelism: Parallelism,
    encode: E,
    dims: usize,
) -> Vec<usize>
where
    E: Fn(usize, &mut Vec<f64>) + Sync,
{
    let Some(ensemble) = ensemble else {
        return sampler.next_batch(batch);
    };
    let pool = sampler.next_batch(batch * pool_factor.max(1));
    if pool.len() <= batch {
        return pool;
    }
    let scores = crate::infer::disagreement_encoded(ensemble, &pool, parallelism, encode, dims);
    let mut scored: Vec<(f64, usize)> = scores.into_iter().zip(pool).collect();
    // Highest disagreement first; the sort is stable, so ties keep the
    // pool's (random) draw order.
    scored.sort_by(|a, b| b.0.partial_cmp(&a.0).expect("finite disagreement"));
    scored.into_iter().take(batch).map(|(_, i)| i).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::space::DesignSpace;
    use archpredict_stats::rng::Xoshiro256;

    fn plain_encode(space: &DesignSpace) -> impl Fn(usize, &mut Vec<f64>) + Sync + '_ {
        |index, rows| space.encode_into(&space.point(index), rows)
    }

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            Param::cardinal("a", (0..10).map(f64::from).collect::<Vec<_>>()),
            Param::cardinal("b", (0..10).map(f64::from).collect::<Vec<_>>()),
        ])
        .unwrap()
    }

    #[test]
    fn first_round_falls_back_to_random() {
        let space = space();
        let mut sampler = IncrementalSampler::new(space.size(), Xoshiro256::seed_from(1));
        let batch = active_batch(
            &mut sampler,
            None,
            10,
            4,
            Parallelism::Auto,
            plain_encode(&space),
            space.encoded_width(),
        );
        assert_eq!(batch.len(), 10);
    }

    #[test]
    fn active_batch_returns_requested_size_and_fresh_points() {
        use archpredict_ann::{fit_ensemble, Dataset, Sample, TrainConfig};
        let space = space();
        // Train a tiny ensemble so disagreement is defined.
        let data: Dataset = (0..40)
            .map(|i| {
                let p = space.point(i);
                Sample::new(space.encode(&p), 0.5 + 0.1 * (i % 7) as f64)
            })
            .collect();
        let config = TrainConfig {
            max_epochs: 30,
            ..TrainConfig::default()
        };
        let fit = fit_ensemble(&data, 5, &config, 3);
        let mut sampler = IncrementalSampler::new(space.size(), Xoshiro256::seed_from(4));
        let batch = active_batch(
            &mut sampler,
            Some(&fit.ensemble),
            8,
            3,
            Parallelism::Auto,
            plain_encode(&space),
            space.encoded_width(),
        );
        assert_eq!(batch.len(), 8);
        let unique: std::collections::HashSet<_> = batch.iter().collect();
        assert_eq!(unique.len(), 8);
    }

    #[test]
    fn selection_is_identical_at_every_thread_count() {
        use archpredict_ann::{fit_ensemble, Dataset, Sample, TrainConfig};
        let space = space();
        let data: Dataset = (0..40)
            .map(|i| {
                let p = space.point(i);
                Sample::new(space.encode(&p), 0.5 + 0.1 * (i % 7) as f64)
            })
            .collect();
        let config = TrainConfig {
            max_epochs: 30,
            ..TrainConfig::default()
        };
        let fit = fit_ensemble(&data, 5, &config, 3);
        let run = |parallelism| {
            let mut sampler = IncrementalSampler::new(space.size(), Xoshiro256::seed_from(9));
            active_batch(
                &mut sampler,
                Some(&fit.ensemble),
                8,
                3,
                parallelism,
                plain_encode(&space),
                space.encoded_width(),
            )
        };
        let reference = run(Parallelism::Fixed(1));
        assert_eq!(reference, run(Parallelism::Fixed(4)));
        assert_eq!(reference, run(Parallelism::Auto));
    }
}
