//! The incremental design-space exploration loop (§3.3's procedure).
//!
//! An [`Explorer`] owns a design space, an evaluator (the simulator), and a
//! growing training set. Each [`Explorer::step`]:
//!
//! 1. draws a fresh batch of random, never-before-simulated design points;
//! 2. simulates them and appends the results to the training set;
//! 3. trains a k-fold cross-validation ensemble;
//! 4. records the cross-validation **estimate** of mean and standard
//!    deviation of percentage error over the full space.
//!
//! [`Explorer::run`] repeats until the estimated error reaches the target
//! or the sample budget is exhausted — the paper's "collect simulation
//! results until the error estimate is sufficiently low".

use crate::sampling::Strategy;
use crate::simulate::{Oracle, SimStats};
use crate::space::DesignSpace;
use archpredict_ann::cross_validation::{fit_ensemble, ErrorEstimate, FoldRecord};
use archpredict_ann::{Dataset, Ensemble, Parallelism, Sample, TrainConfig};
use archpredict_stats::describe::Accumulator;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::IncrementalSampler;

/// Why a refinement round could not run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExploreError {
    /// The training set (after drawing whatever points remained) is still
    /// smaller than the three folds cross-validation needs. Configure a
    /// larger batch, or step again once more points are available.
    TooFewSamples {
        /// Samples collected so far.
        have: usize,
    },
    /// Every point in the design space has been simulated and the training
    /// set is empty — there is nothing to train on.
    SpaceExhausted,
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::TooFewSamples { have } => write!(
                f,
                "training set has {have} sample(s); cross-validation needs at least 3"
            ),
            ExploreError::SpaceExhausted => {
                write!(f, "design space exhausted with no training data")
            }
        }
    }
}

impl std::error::Error for ExploreError {}

/// Exploration policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorerConfig {
    /// Simulations added per refinement round (the paper uses 50).
    pub batch: usize,
    /// Cross-validation folds (the paper uses 10).
    pub folds: usize,
    /// Stop once the estimated mean percentage error falls below this.
    pub target_error: f64,
    /// Hard cap on total simulations.
    pub max_samples: usize,
    /// Network training hyperparameters.
    pub train: TrainConfig,
    /// How new design points are chosen each round.
    pub strategy: Strategy,
    /// Master seed for sampling and training.
    pub seed: u64,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        Self {
            batch: 50,
            folds: 10,
            target_error: 1.0,
            max_samples: 2_000,
            train: TrainConfig::default(),
            strategy: Strategy::Random,
            seed: 0x00A5_CEED,
        }
    }
}

/// One refinement round's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Round {
    /// Training-set size after this round.
    pub samples: usize,
    /// Fraction of the full space simulated so far.
    pub fraction_sampled: f64,
    /// Cross-validation error estimate.
    pub estimate: ErrorEstimate,
    /// Wall-clock seconds spent training this round's ensemble (all folds,
    /// as observed by the caller — folds training in parallel overlap here).
    pub training_seconds: f64,
    /// Wall-clock seconds spent simulating this round's batch.
    pub simulation_seconds: f64,
    /// Simulation telemetry for this round's batch: unique simulations,
    /// cache hits, and simulated instructions, as reported by the oracle.
    /// Keeps the Figs. 5.6/5.7 reduction-factor accounting honest when
    /// the oracle caches or deduplicates.
    pub simulation: SimStats,
    /// Wall-clock seconds spent in ensemble prediction this round —
    /// query-by-committee candidate scoring under the active-learning
    /// strategy (0 for random sampling, which predicts nothing).
    pub prediction_seconds: f64,
    /// Per-fold training telemetry (epochs, best early-stopping error,
    /// per-fold wall seconds), in fold order.
    pub folds: Vec<FoldRecord>,
}

impl Round {
    /// Mean epochs per fold this round (0 if telemetry is empty).
    pub fn mean_epochs(&self) -> f64 {
        if self.folds.is_empty() {
            return 0.0;
        }
        self.folds.iter().map(|f| f.epochs as f64).sum::<f64>() / self.folds.len() as f64
    }
}

/// True (measured) model error on held-out points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrueError {
    /// Mean absolute percentage error.
    pub mean: f64,
    /// Standard deviation of the percentage error.
    pub std_dev: f64,
    /// Held-out points measured.
    pub points: u64,
}

/// The incremental explorer.
pub struct Explorer<'a, E: Oracle> {
    space: &'a DesignSpace,
    evaluator: &'a E,
    config: ExplorerConfig,
    sampler: IncrementalSampler,
    rng: Xoshiro256,
    dataset: Dataset,
    sampled_indices: Vec<usize>,
    ensemble: Option<Ensemble>,
    history: Vec<Round>,
}

impl<'a, E: Oracle> Explorer<'a, E> {
    /// Creates an explorer over `space` backed by `evaluator`.
    pub fn new(space: &'a DesignSpace, evaluator: &'a E, config: ExplorerConfig) -> Self {
        let rng = Xoshiro256::seed_from(config.seed);
        Self {
            sampler: IncrementalSampler::new(space.size(), rng.derive(1)),
            rng: rng.derive(2),
            space,
            evaluator,
            config,
            dataset: Dataset::new(),
            sampled_indices: Vec::new(),
            ensemble: None,
            history: Vec::new(),
        }
    }

    /// The exploration history so far (one [`Round`] per step).
    pub fn history(&self) -> &[Round] {
        &self.history
    }

    /// Indices of all design points simulated so far.
    pub fn sampled_indices(&self) -> &[usize] {
        &self.sampled_indices
    }

    /// The current ensemble, once at least one round has run.
    pub fn ensemble(&self) -> Option<&Ensemble> {
        self.ensemble.as_ref()
    }

    /// Training-set size so far.
    pub fn samples(&self) -> usize {
        self.dataset.len()
    }

    /// Replaces the network-training hyperparameters used by subsequent
    /// rounds (e.g. to scale epoch budgets to the growing training set).
    pub fn set_train_config(&mut self, train: TrainConfig) {
        self.config.train = train;
    }

    /// Predicts the metric at an arbitrary design point.
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn predict(&self, index: usize) -> f64 {
        let ensemble = self.ensemble.as_ref().expect("no ensemble trained yet");
        ensemble.predict(&self.space.encode(&self.space.point(index)))
    }

    /// Predicts the metric at each of the given design-point indices via
    /// the batched inference path, parallelized per the configured
    /// [`Parallelism`] knob. Bit-for-bit identical to calling
    /// [`Explorer::predict`] per index, at any thread count.
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn predict_indices(&self, indices: &[usize]) -> Vec<f64> {
        let ensemble = self.ensemble.as_ref().expect("no ensemble trained yet");
        crate::infer::predict_indices(ensemble, self.space, indices, self.parallelism())
    }

    /// Predicts the metric over the **entire** design space, in index
    /// order — the paper's payoff step. Chunked and parallelized per the
    /// configured [`Parallelism`] knob; the output is bit-for-bit
    /// identical for every setting.
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn predict_space(&self) -> Vec<f64> {
        self.predict_space_with(self.parallelism())
    }

    /// [`Explorer::predict_space`] with an explicit worker policy
    /// (exposed so callers and tests can pin or sweep thread counts).
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn predict_space_with(&self, parallelism: Parallelism) -> Vec<f64> {
        let ensemble = self.ensemble.as_ref().expect("no ensemble trained yet");
        let indices: Vec<usize> = (0..self.space.size()).collect();
        crate::infer::predict_indices(ensemble, self.space, &indices, parallelism)
    }

    /// Ranks every design point by predicted metric, best (highest)
    /// first, with ties broken by index so the ranking is deterministic.
    /// This is "find the best configuration without simulating the
    /// space": a full-space sweep plus one sort.
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn rank_space(&self) -> Vec<usize> {
        let predictions = self.predict_space();
        let mut order: Vec<usize> = (0..predictions.len()).collect();
        order.sort_by(|&a, &b| predictions[b].total_cmp(&predictions[a]).then(a.cmp(&b)));
        order
    }

    /// The worker policy governing batched prediction sweeps (shared with
    /// fold training).
    fn parallelism(&self) -> Parallelism {
        self.config.train.parallelism
    }

    /// Runs one refinement round; returns the new round's record.
    ///
    /// Any points drawn and simulated are kept in the training set even on
    /// error, so a failed round wastes no simulations — stepping again with
    /// more points available can succeed.
    pub fn try_step(&mut self) -> Result<&Round, ExploreError> {
        // 1. Choose fresh points. Under active learning with a trained
        // ensemble this scores candidates through the batched inference
        // path — that is the round's prediction work, so time it.
        let scoring =
            self.ensemble.is_some() && matches!(self.config.strategy, Strategy::Active { .. });
        let selection_started = std::time::Instant::now();
        let parallelism = self.parallelism();
        let batch = match self.config.strategy {
            Strategy::Random => self.sampler.next_batch(self.config.batch),
            Strategy::Active { pool_factor } => crate::sampling::active_batch(
                &mut self.sampler,
                self.ensemble.as_ref(),
                self.space,
                self.config.batch,
                pool_factor,
                parallelism,
            ),
        };
        let prediction_seconds = if scoring {
            selection_started.elapsed().as_secs_f64()
        } else {
            0.0
        };
        if batch.is_empty() && self.dataset.is_empty() {
            return Err(ExploreError::SpaceExhausted);
        }
        // 2. Simulate them through the batch-first oracle, keeping its
        // telemetry for the round record.
        let sim_started = std::time::Instant::now();
        let mut simulation = SimStats::default();
        let results = self
            .evaluator
            .evaluate_batch(self.space, &batch, &mut simulation);
        let simulation_seconds = sim_started.elapsed().as_secs_f64();
        for (&index, &ipc) in batch.iter().zip(&results) {
            self.dataset.push(Sample::new(
                self.space.encode(&self.space.point(index)),
                ipc,
            ));
            self.sampled_indices.push(index);
        }
        // 3. Train the cross-validation ensemble, with the fold count
        // clamped to the training-set size (a tiny first batch would
        // otherwise request more folds than there are samples).
        let folds = self.config.folds.min(self.dataset.len());
        if folds < 3 {
            return Err(ExploreError::TooFewSamples {
                have: self.dataset.len(),
            });
        }
        let started = std::time::Instant::now();
        let fit = fit_ensemble(
            &self.dataset,
            folds,
            &self.config.train,
            self.rng.next_u64(),
        );
        let training_seconds = started.elapsed().as_secs_f64();
        self.ensemble = Some(fit.ensemble);
        // 4. Record the estimate.
        self.history.push(Round {
            samples: self.dataset.len(),
            fraction_sampled: self.dataset.len() as f64 / self.space.size() as f64,
            estimate: fit.estimate,
            training_seconds,
            simulation_seconds,
            simulation,
            prediction_seconds,
            folds: fit.folds,
        });
        Ok(self.history.last().expect("just pushed"))
    }

    /// Runs one refinement round; returns the new round's record.
    ///
    /// # Panics
    ///
    /// Panics if the round cannot run ([`Explorer::try_step`] returns the
    /// condition as a typed error instead).
    pub fn step(&mut self) -> &Round {
        if let Err(e) = self.try_step() {
            panic!("exploration step failed: {e}");
        }
        self.history.last().expect("just stepped")
    }

    /// Steps until the estimated mean error reaches the configured target,
    /// the sample cap is hit, or the space is exhausted. Returns the final
    /// round.
    pub fn try_run(&mut self) -> Result<&Round, ExploreError> {
        loop {
            self.try_step()?;
            let round = self.history.last().expect("stepped");
            let done = round.estimate.mean <= self.config.target_error
                || self.dataset.len() >= self.config.max_samples
                || self.sampler.remaining() == 0;
            if done {
                break;
            }
        }
        Ok(self.history.last().expect("at least one round ran"))
    }

    /// Steps until the estimated mean error reaches the configured target,
    /// the sample cap is hit, or the space is exhausted. Returns the final
    /// round.
    ///
    /// # Panics
    ///
    /// Panics if a round cannot run (empty space, or batches too small to
    /// ever reach three samples); [`Explorer::try_run`] surfaces the typed
    /// error instead.
    pub fn run(&mut self) -> &Round {
        if let Err(e) = self.try_run() {
            panic!("exploration failed: {e}");
        }
        self.history.last().expect("at least one round ran")
    }

    /// Measures the model's *true* error on `held_out` point indices
    /// (simulating any that were never simulated — callers typically pass a
    /// fixed random evaluation set disjoint from the training set).
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet or `held_out` is empty.
    pub fn true_error(&self, held_out: &[usize]) -> TrueError {
        assert!(!held_out.is_empty(), "need held-out points");
        let mut stats = SimStats::default();
        let actuals = self
            .evaluator
            .evaluate_batch(self.space, held_out, &mut stats);
        let predictions = self.predict_indices(held_out);
        let mut acc = Accumulator::new();
        for (&predicted, &actual) in predictions.iter().zip(&actuals) {
            acc.add(100.0 * (predicted - actual).abs() / actual.abs().max(1e-12));
        }
        TrueError {
            mean: acc.mean(),
            std_dev: acc.population_std_dev(),
            points: acc.count(),
        }
    }

    /// Draws `count` indices that have *not* been simulated, for true-error
    /// evaluation. Deterministic given the explorer's seed.
    ///
    /// The complement of the sampled set is built directly and a random
    /// prefix of it is returned, so cost stays `O(space + count)` even when
    /// nearly every point has been simulated (a rejection loop would
    /// degenerate into coupon collecting there). When fewer than `count`
    /// unsimulated points remain, all of them are returned — callers must
    /// not assume the result has exactly `count` elements.
    pub fn held_out_set(&self, count: usize) -> Vec<usize> {
        let sampled: std::collections::HashSet<usize> =
            self.sampled_indices.iter().copied().collect();
        let mut complement: Vec<usize> = (0..self.space.size())
            .filter(|i| !sampled.contains(i))
            .collect();
        let want = count.min(complement.len());
        let mut rng = Xoshiro256::seed_from(self.config.seed ^ 0xE7A1);
        archpredict_stats::sampling::partial_shuffle(&mut complement, want, &mut rng);
        complement.truncate(want);
        complement
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::simulate::PointEvaluator;
    use crate::space::DesignPoint;

    /// A cheap synthetic "simulator" over a 3-parameter space.
    struct Synthetic {
        space: DesignSpace,
    }

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            Param::cardinal("a", (0..12).map(|i| i as f64).collect::<Vec<_>>()),
            Param::cardinal("b", (0..12).map(|i| i as f64).collect::<Vec<_>>()),
            Param::nominal("mode", ["x", "y", "z"]),
        ])
        .unwrap()
    }

    impl PointEvaluator for Synthetic {
        fn evaluate(&self, point: &DesignPoint) -> f64 {
            let a = self.space.number(point, "a") / 11.0;
            let b = self.space.number(point, "b") / 11.0;
            let mode = point.level(2) as f64;
            0.3 + 0.5 * (a * 2.0).sin().abs() + 0.3 * a * b + 0.1 * mode
        }
        fn instructions_per_evaluation(&self) -> u64 {
            1
        }
    }

    fn explorer_config() -> ExplorerConfig {
        ExplorerConfig {
            batch: 40,
            folds: 10,
            target_error: 1.0,
            max_samples: 240,
            ..ExplorerConfig::default()
        }
    }

    #[test]
    fn error_estimate_decreases_with_more_data() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        let first = explorer.step().estimate.mean;
        for _ in 0..4 {
            explorer.step();
        }
        let last = explorer.history().last().unwrap().estimate.mean;
        assert!(
            last < first,
            "estimate should fall: first {first:.2}%, last {last:.2}%"
        );
    }

    #[test]
    fn run_stops_at_target_or_cap() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        let final_round = explorer.run().clone();
        assert!(
            final_round.estimate.mean <= 1.0 || final_round.samples >= 240,
            "{final_round:?}"
        );
        assert_eq!(explorer.samples(), final_round.samples);
    }

    #[test]
    fn estimate_tracks_true_error() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        for _ in 0..4 {
            explorer.step();
        }
        let held_out = explorer.held_out_set(120);
        let true_error = explorer.true_error(&held_out);
        let estimate = explorer.history().last().unwrap().estimate;
        assert!(
            (true_error.mean - estimate.mean).abs() < estimate.mean.max(1.5),
            "true {:.2}% vs estimated {:.2}%",
            true_error.mean,
            estimate.mean
        );
    }

    #[test]
    fn held_out_set_is_disjoint_from_training() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        explorer.step();
        let held_out = explorer.held_out_set(100);
        let trained: std::collections::HashSet<_> =
            explorer.sampled_indices().iter().copied().collect();
        assert!(held_out.iter().all(|i| !trained.contains(i)));
        assert_eq!(held_out.len(), 100);
    }

    #[test]
    fn tiny_first_batch_errors_then_recovers() {
        // Regression: batch=2 used to panic inside fit_ensemble (folds
        // clamped to dataset len 2, tripping the folds >= 3 assertion).
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let config = ExplorerConfig {
            batch: 2,
            ..explorer_config()
        };
        let mut explorer = Explorer::new(&space, &synthetic, config);
        assert_eq!(
            explorer.try_step(),
            Err(ExploreError::TooFewSamples { have: 2 })
        );
        // The two simulated points were kept; the next batch reaches 4
        // samples and trains with the fold count clamped to 4.
        let round = explorer.try_step().expect("4 samples can train").clone();
        assert_eq!(round.samples, 4);
        assert_eq!(round.folds.len(), 4);
        assert!(explorer.ensemble().is_some());
    }

    #[test]
    #[should_panic(expected = "cross-validation needs at least 3")]
    fn step_panics_with_typed_message_on_tiny_batch() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let config = ExplorerConfig {
            batch: 1,
            ..explorer_config()
        };
        Explorer::new(&space, &synthetic, config).step();
    }

    #[test]
    fn held_out_set_truncates_near_space_exhaustion() {
        // Regression: the old rejection loop degenerated (and silently
        // under-filled) once most of the space was sampled.
        let space = space(); // 12 * 12 * 3 = 432 points
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let config = ExplorerConfig {
            batch: 100,
            max_samples: 400,
            target_error: 0.0,
            ..explorer_config()
        };
        let mut explorer = Explorer::new(&space, &synthetic, config);
        for _ in 0..4 {
            explorer.step(); // 400 of 432 points simulated
        }
        let trained: std::collections::HashSet<_> =
            explorer.sampled_indices().iter().copied().collect();
        assert_eq!(trained.len(), 400);

        // Asking for more than the 32 remaining points returns all 32.
        let held_out = explorer.held_out_set(100);
        assert_eq!(held_out.len(), 32);
        assert!(held_out.iter().all(|i| !trained.contains(i)));
        let distinct: std::collections::HashSet<_> = held_out.iter().copied().collect();
        assert_eq!(distinct.len(), 32);

        // A smaller request draws from the same deterministic stream.
        let smaller = explorer.held_out_set(10);
        assert_eq!(smaller.len(), 10);
        assert_eq!(smaller, explorer.held_out_set(10));
        assert!(smaller.iter().all(|i| !trained.contains(i)));
    }

    #[test]
    fn round_records_fold_telemetry() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        let round = explorer.step().clone();
        assert_eq!(round.folds.len(), 10);
        assert!(round.mean_epochs() > 0.0);
        assert!(round.simulation_seconds >= 0.0);
        // The oracle accounted for every point in the batch: a bare
        // evaluator simulates all of them, hitting no cache.
        assert_eq!(round.simulation.unique_simulations, round.samples as u64);
        assert_eq!(round.simulation.cache_hits, 0);
        assert_eq!(
            round.simulation.simulated_instructions,
            round.samples as u64
        );
        // Per-fold wall time is a breakdown of (overlapping) training work.
        assert!(round.folds.iter().all(|f| f.seconds >= 0.0 && f.epochs > 0));
        let pooled: usize = round.folds.iter().map(|f| f.test_samples).sum();
        assert_eq!(pooled, round.samples);
    }

    #[test]
    fn batches_never_repeat_points() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        for _ in 0..5 {
            explorer.step();
        }
        let mut seen = std::collections::HashSet::new();
        for &i in explorer.sampled_indices() {
            assert!(seen.insert(i), "index {i} simulated twice");
        }
    }

    #[test]
    fn predict_space_is_identical_at_every_thread_count() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        explorer.step();
        let reference = explorer.predict_space_with(Parallelism::Fixed(1));
        assert_eq!(reference.len(), space.size());
        for parallelism in [Parallelism::Fixed(4), Parallelism::Auto] {
            assert_eq!(
                reference,
                explorer.predict_space_with(parallelism),
                "{parallelism:?}"
            );
        }
        // And the batched sweep is bit-for-bit the point-at-a-time path.
        for (i, &batched) in reference.iter().enumerate().step_by(37) {
            assert_eq!(explorer.predict(i), batched, "index {i}");
        }
        assert_eq!(explorer.predict_space(), reference);
    }

    #[test]
    fn rank_space_orders_best_first_with_index_tiebreak() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        explorer.step();
        let predictions = explorer.predict_space();
        let order = explorer.rank_space();
        assert_eq!(order.len(), space.size());
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                predictions[a] > predictions[b] || (predictions[a] == predictions[b] && a < b),
                "rank order violated at {a} -> {b}"
            );
        }
    }

    #[test]
    fn prediction_seconds_recorded_only_when_scoring() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        // Random sampling never predicts during selection.
        let mut random = Explorer::new(&space, &synthetic, explorer_config());
        random.step();
        assert_eq!(random.history()[0].prediction_seconds, 0.0);
        // Active learning scores candidates from round 2 on.
        let config = ExplorerConfig {
            strategy: Strategy::Active { pool_factor: 3 },
            ..explorer_config()
        };
        let mut active = Explorer::new(&space, &synthetic, config);
        active.step();
        assert_eq!(active.history()[0].prediction_seconds, 0.0);
        active.step();
        assert!(active.history()[1].prediction_seconds > 0.0);
    }

    #[test]
    fn prediction_is_close_after_training() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        for _ in 0..5 {
            explorer.step();
        }
        let idx = explorer.held_out_set(1)[0];
        let predicted = explorer.predict(idx);
        let actual = synthetic.evaluate(&space.point(idx));
        assert!(
            (predicted - actual).abs() / actual < 0.10,
            "{predicted} vs {actual}"
        );
    }
}
