//! The incremental design-space exploration loop (§3.3's procedure).
//!
//! An [`Explorer`] owns a design space, an evaluator (the simulator), and a
//! growing training set. Each [`Explorer::step`]:
//!
//! 1. draws a fresh batch of random, never-before-simulated design points;
//! 2. simulates them and appends the results to the training set;
//! 3. trains a k-fold cross-validation ensemble;
//! 4. records the cross-validation **estimate** of mean and standard
//!    deviation of percentage error over the full space.
//!
//! [`Explorer::run`] repeats until the estimated error reaches the target
//! or the sample budget is exhausted — the paper's "collect simulation
//! results until the error estimate is sufficiently low".
//!
//! # Fault tolerance
//!
//! The oracle is fallible: each batch returns one
//! [`crate::simulate::SimResult`] per point. Points whose evaluation fails
//! (after whatever retrying the oracle stack performs) are **quarantined**
//! — never drawn again, excluded from held-out sets — and the round draws
//! replacement points until its sample budget is met or the space runs
//! out, so a faulty backend degrades throughput, never correctness.
//!
//! # Checkpoint / resume
//!
//! With [`Explorer::enable_checkpoints`], the full exploration state is
//! atomically persisted after every round; [`Explorer::resume`] restores
//! it — RNG streams, sampler position, training set, quarantine, history —
//! and refits the last ensemble from its recorded seed, so a run killed at
//! any point continues bit-for-bit as if never interrupted.

// User-reachable failures must surface as typed `ExploreError`s, not
// panics; the lint holds this file to that (tests opt back out).
#![deny(clippy::unwrap_used)]

use crate::checkpoint::{ExplorerState, TrainSnapshot};
use crate::sampling::Strategy;
use crate::simulate::{Oracle, SimStats};
use crate::space::DesignSpace;
use archpredict_ann::cross_validation::{fit_ensemble, ErrorEstimate, FoldRecord};
use archpredict_ann::{Dataset, Ensemble, Parallelism, Sample, TrainConfig};
use archpredict_stats::describe::Accumulator;
use archpredict_stats::rng::Xoshiro256;
use archpredict_stats::sampling::IncrementalSampler;
use std::collections::BTreeSet;
use std::path::{Path, PathBuf};

/// Why a refinement round (or model query) could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ExploreError {
    /// The training set (after drawing whatever points remained) is still
    /// smaller than the three folds cross-validation needs. Configure a
    /// larger batch, or step again once more points are available.
    TooFewSamples {
        /// Samples collected so far.
        have: usize,
    },
    /// Every point in the design space has been simulated and the training
    /// set is empty — there is nothing to train on.
    SpaceExhausted,
    /// A prediction was requested before any round trained an ensemble.
    NoEnsemble,
    /// A true-error measurement was requested with no held-out points (or
    /// every held-out evaluation failed).
    EmptyHeldOut,
    /// Checkpoint persistence or restoration failed.
    Checkpoint(String),
}

impl std::fmt::Display for ExploreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExploreError::TooFewSamples { have } => write!(
                f,
                "training set has {have} sample(s); cross-validation needs at least 3"
            ),
            ExploreError::SpaceExhausted => {
                write!(f, "design space exhausted with no training data")
            }
            ExploreError::NoEnsemble => write!(f, "no ensemble trained yet"),
            ExploreError::EmptyHeldOut => write!(f, "need held-out points"),
            ExploreError::Checkpoint(message) => write!(f, "checkpoint failed: {message}"),
        }
    }
}

impl std::error::Error for ExploreError {}

/// Exploration policy.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorerConfig {
    /// Simulations added per refinement round (the paper uses 50).
    pub batch: usize,
    /// Cross-validation folds (the paper uses 10).
    pub folds: usize,
    /// Stop once the estimated mean percentage error falls below this.
    pub target_error: f64,
    /// Hard cap on total simulations.
    pub max_samples: usize,
    /// Network training hyperparameters.
    pub train: TrainConfig,
    /// How new design points are chosen each round.
    pub strategy: Strategy,
    /// Master seed for sampling and training.
    pub seed: u64,
}

impl Default for ExplorerConfig {
    fn default() -> Self {
        Self {
            batch: 50,
            folds: 10,
            target_error: 1.0,
            max_samples: 2_000,
            train: TrainConfig::default(),
            strategy: Strategy::Random,
            seed: 0x00A5_CEED,
        }
    }
}

/// One refinement round's outcome.
#[derive(Debug, Clone, PartialEq)]
pub struct Round {
    /// Training-set size after this round.
    pub samples: usize,
    /// Fraction of the full space simulated so far.
    pub fraction_sampled: f64,
    /// Cross-validation error estimate.
    pub estimate: ErrorEstimate,
    /// Wall-clock seconds spent training this round's ensemble (all folds,
    /// as observed by the caller — folds training in parallel overlap here).
    pub training_seconds: f64,
    /// Wall-clock seconds spent simulating this round's batch.
    pub simulation_seconds: f64,
    /// Simulation telemetry for this round's batch: unique simulations,
    /// cache hits, and simulated instructions, as reported by the oracle.
    /// Keeps the Figs. 5.6/5.7 reduction-factor accounting honest when
    /// the oracle caches or deduplicates.
    pub simulation: SimStats,
    /// Wall-clock seconds spent in ensemble prediction this round —
    /// query-by-committee candidate scoring under the active-learning
    /// strategy (0 for random sampling, which predicts nothing).
    pub prediction_seconds: f64,
    /// Per-fold training telemetry (epochs, best early-stopping error,
    /// per-fold wall seconds), in fold order.
    pub folds: Vec<FoldRecord>,
}

impl Round {
    /// Mean epochs per fold this round (0 if telemetry is empty).
    pub fn mean_epochs(&self) -> f64 {
        if self.folds.is_empty() {
            return 0.0;
        }
        self.folds.iter().map(|f| f.epochs as f64).sum::<f64>() / self.folds.len() as f64
    }
}

/// True (measured) model error on held-out points.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TrueError {
    /// Mean absolute percentage error.
    pub mean: f64,
    /// Standard deviation of the percentage error.
    pub std_dev: f64,
    /// Held-out points measured.
    pub points: u64,
}

/// The incremental explorer.
pub struct Explorer<'a, E: Oracle> {
    space: &'a DesignSpace,
    evaluator: &'a E,
    config: ExplorerConfig,
    sampler: IncrementalSampler,
    rng: Xoshiro256,
    dataset: Dataset,
    sampled_indices: Vec<usize>,
    /// Measured metric per entry of `sampled_indices` (kept so checkpoints
    /// can rebuild the training set without re-simulating).
    sample_values: Vec<f64>,
    /// Indices whose evaluation failed for good; never drawn again.
    quarantined: BTreeSet<usize>,
    ensemble: Option<Ensemble>,
    history: Vec<Round>,
    checkpoint_dir: Option<PathBuf>,
    /// Seed and hyperparameters of the most recent `fit_ensemble`, so a
    /// resume can refit the identical ensemble.
    last_fit_seed: Option<u64>,
    last_train: Option<TrainSnapshot>,
}

impl<'a, E: Oracle> Explorer<'a, E> {
    /// Creates an explorer over `space` backed by `evaluator`.
    pub fn new(space: &'a DesignSpace, evaluator: &'a E, config: ExplorerConfig) -> Self {
        let rng = Xoshiro256::seed_from(config.seed);
        Self {
            sampler: IncrementalSampler::new(space.size(), rng.derive(1)),
            rng: rng.derive(2),
            space,
            evaluator,
            config,
            dataset: Dataset::new(),
            sampled_indices: Vec::new(),
            sample_values: Vec::new(),
            quarantined: BTreeSet::new(),
            ensemble: None,
            history: Vec::new(),
            checkpoint_dir: None,
            last_fit_seed: None,
            last_train: None,
        }
    }

    /// Restores an explorer from the checkpoint directory written by a
    /// previous run with [`Explorer::enable_checkpoints`].
    ///
    /// Every stochastic stream (sampler, training seeds) resumes exactly
    /// where the checkpoint froze it, the last round's ensemble is refit
    /// from its recorded seed (bit-for-bit identical at any thread count),
    /// and checkpointing stays enabled on the same directory — so the
    /// resumed run's remaining rounds are indistinguishable from an
    /// uninterrupted run's.
    ///
    /// `config` must carry the same `seed` the checkpointed run used and
    /// `space` must have the same size; both are validated. Fields that do
    /// not affect results (e.g. `train.parallelism`) may differ.
    pub fn resume(
        space: &'a DesignSpace,
        evaluator: &'a E,
        config: ExplorerConfig,
        dir: impl AsRef<Path>,
    ) -> Result<Self, ExploreError> {
        let dir = dir.as_ref();
        let state =
            ExplorerState::load(dir).map_err(|e| ExploreError::Checkpoint(e.to_string()))?;
        if state.seed != config.seed {
            return Err(ExploreError::Checkpoint(format!(
                "checkpoint was taken under seed {:#018x}, config has {:#018x}",
                state.seed, config.seed
            )));
        }
        if state.space_size != space.size() {
            return Err(ExploreError::Checkpoint(format!(
                "checkpoint space has {} points, this space has {}",
                state.space_size,
                space.size()
            )));
        }
        let mut dataset = Dataset::new();
        let mut sampled_indices = Vec::with_capacity(state.samples.len());
        let mut sample_values = Vec::with_capacity(state.samples.len());
        for &(index, value) in &state.samples {
            if index >= space.size() {
                return Err(ExploreError::Checkpoint(format!(
                    "checkpoint sample index {index} out of space"
                )));
            }
            dataset.push(Sample::new(space.encode(&space.point(index)), value));
            sampled_indices.push(index);
            sample_values.push(value);
        }
        let ensemble = match (state.last_fit_seed, &state.last_train, state.rounds.last()) {
            (Some(fit_seed), Some(train), Some(last_round)) => {
                let folds = last_round.folds.len();
                let train = train.to_config(config.train.parallelism);
                Some(fit_ensemble(&dataset, folds, &train, fit_seed).ensemble)
            }
            _ => None,
        };
        Ok(Self {
            sampler: IncrementalSampler::from_state(&state.sampler),
            rng: Xoshiro256::from_state(state.rng),
            space,
            evaluator,
            config,
            dataset,
            sampled_indices,
            sample_values,
            quarantined: state.quarantined.iter().copied().collect(),
            ensemble,
            history: state.rounds,
            checkpoint_dir: Some(dir.to_path_buf()),
            last_fit_seed: state.last_fit_seed,
            last_train: state.last_train,
        })
    }

    /// Enables crash-safe checkpointing: after every completed round the
    /// full exploration state is atomically written to `dir/state.json`
    /// (see [`crate::checkpoint`]). Returns the explorer for chaining.
    pub fn enable_checkpoints(&mut self, dir: impl Into<PathBuf>) -> &mut Self {
        self.checkpoint_dir = Some(dir.into());
        self
    }

    /// The checkpoint directory, when checkpointing is enabled.
    pub fn checkpoint_dir(&self) -> Option<&Path> {
        self.checkpoint_dir.as_deref()
    }

    /// A restorable snapshot of the current exploration state.
    pub fn snapshot(&self) -> ExplorerState {
        ExplorerState {
            seed: self.config.seed,
            space_size: self.space.size(),
            rng: self.rng.state(),
            sampler: self.sampler.state(),
            samples: self
                .sampled_indices
                .iter()
                .copied()
                .zip(self.sample_values.iter().copied())
                .collect(),
            quarantined: self.quarantined.iter().copied().collect(),
            last_fit_seed: self.last_fit_seed,
            last_train: self.last_train.clone(),
            rounds: self.history.clone(),
        }
    }

    /// The exploration history so far (one [`Round`] per step).
    pub fn history(&self) -> &[Round] {
        &self.history
    }

    /// Indices of all design points simulated so far.
    pub fn sampled_indices(&self) -> &[usize] {
        &self.sampled_indices
    }

    /// Indices whose evaluation failed permanently, in ascending order.
    /// These are excluded from future batches and held-out sets.
    pub fn quarantined(&self) -> Vec<usize> {
        self.quarantined.iter().copied().collect()
    }

    /// The current ensemble, once at least one round has run.
    pub fn ensemble(&self) -> Option<&Ensemble> {
        self.ensemble.as_ref()
    }

    /// Training-set size so far.
    pub fn samples(&self) -> usize {
        self.dataset.len()
    }

    /// Replaces the network-training hyperparameters used by subsequent
    /// rounds (e.g. to scale epoch budgets to the growing training set).
    pub fn set_train_config(&mut self, train: TrainConfig) {
        self.config.train = train;
    }

    /// The trained ensemble, or [`ExploreError::NoEnsemble`] before the
    /// first round.
    fn require_ensemble(&self) -> Result<&Ensemble, ExploreError> {
        self.ensemble.as_ref().ok_or(ExploreError::NoEnsemble)
    }

    /// Predicts the metric at an arbitrary design point, or
    /// [`ExploreError::NoEnsemble`] before the first round.
    pub fn try_predict(&self, index: usize) -> Result<f64, ExploreError> {
        let ensemble = self.require_ensemble()?;
        Ok(ensemble.predict(&self.space.encode(&self.space.point(index))))
    }

    /// Predicts the metric at an arbitrary design point.
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet ([`Explorer::try_predict`] returns
    /// the condition as a typed error instead).
    pub fn predict(&self, index: usize) -> f64 {
        self.try_predict(index).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Predicts the metric at each of the given design-point indices via
    /// the batched inference path, parallelized per the configured
    /// [`Parallelism`] knob. Bit-for-bit identical to calling
    /// [`Explorer::predict`] per index, at any thread count. Errors with
    /// [`ExploreError::NoEnsemble`] before the first round.
    pub fn try_predict_indices(&self, indices: &[usize]) -> Result<Vec<f64>, ExploreError> {
        let ensemble = self.require_ensemble()?;
        Ok(crate::infer::predict_indices(
            ensemble,
            self.space,
            indices,
            self.parallelism(),
        ))
    }

    /// Infallible [`Explorer::try_predict_indices`].
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn predict_indices(&self, indices: &[usize]) -> Vec<f64> {
        self.try_predict_indices(indices)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Predicts the metric over the **entire** design space, in index
    /// order — the paper's payoff step. Chunked and parallelized per the
    /// configured [`Parallelism`] knob; the output is bit-for-bit
    /// identical for every setting. Errors with
    /// [`ExploreError::NoEnsemble`] before the first round.
    pub fn try_predict_space(&self) -> Result<Vec<f64>, ExploreError> {
        self.try_predict_space_with(self.parallelism())
    }

    /// Infallible [`Explorer::try_predict_space`].
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn predict_space(&self) -> Vec<f64> {
        self.try_predict_space().unwrap_or_else(|e| panic!("{e}"))
    }

    /// [`Explorer::try_predict_space`] with an explicit worker policy
    /// (exposed so callers and tests can pin or sweep thread counts).
    pub fn try_predict_space_with(
        &self,
        parallelism: Parallelism,
    ) -> Result<Vec<f64>, ExploreError> {
        let ensemble = self.require_ensemble()?;
        let indices: Vec<usize> = (0..self.space.size()).collect();
        Ok(crate::infer::predict_indices(
            ensemble,
            self.space,
            &indices,
            parallelism,
        ))
    }

    /// Infallible [`Explorer::try_predict_space_with`].
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn predict_space_with(&self, parallelism: Parallelism) -> Vec<f64> {
        self.try_predict_space_with(parallelism)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Ranks every design point by predicted metric, best (highest)
    /// first, with ties broken by index so the ranking is deterministic.
    /// This is "find the best configuration without simulating the
    /// space": a full-space sweep plus one sort. Errors with
    /// [`ExploreError::NoEnsemble`] before the first round.
    pub fn try_rank_space(&self) -> Result<Vec<usize>, ExploreError> {
        let predictions = self.try_predict_space()?;
        let mut order: Vec<usize> = (0..predictions.len()).collect();
        order.sort_by(|&a, &b| predictions[b].total_cmp(&predictions[a]).then(a.cmp(&b)));
        Ok(order)
    }

    /// Infallible [`Explorer::try_rank_space`].
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet.
    pub fn rank_space(&self) -> Vec<usize> {
        self.try_rank_space().unwrap_or_else(|e| panic!("{e}"))
    }

    /// The worker policy governing batched prediction sweeps (shared with
    /// fold training).
    fn parallelism(&self) -> Parallelism {
        self.config.train.parallelism
    }

    /// Runs one refinement round; returns the new round's record.
    ///
    /// Any points drawn and simulated are kept in the training set even on
    /// error, so a failed round wastes no simulations — stepping again with
    /// more points available can succeed.
    pub fn try_step(&mut self) -> Result<&Round, ExploreError> {
        // 1. Choose fresh points. Under active learning with a trained
        // ensemble this scores candidates through the batched inference
        // path — that is the round's prediction work, so time it.
        let scoring =
            self.ensemble.is_some() && matches!(self.config.strategy, Strategy::Active { .. });
        let selection_started = std::time::Instant::now();
        let parallelism = self.parallelism();
        let batch = match self.config.strategy {
            Strategy::Random => self.sampler.next_batch(self.config.batch),
            Strategy::Active { pool_factor } => crate::sampling::active_batch(
                &mut self.sampler,
                self.ensemble.as_ref(),
                self.space,
                self.config.batch,
                pool_factor,
                parallelism,
            ),
        };
        let prediction_seconds = if scoring {
            selection_started.elapsed().as_secs_f64()
        } else {
            0.0
        };
        if batch.is_empty() && self.dataset.is_empty() {
            return Err(ExploreError::SpaceExhausted);
        }
        // 2. Simulate them through the batch-first oracle, keeping its
        // telemetry for the round record. Failed points (after whatever
        // retrying the oracle stack did) are quarantined and replaced by
        // fresh draws until the round's budget is met or the space runs
        // dry, so a faulty backend cannot starve the training set.
        let sim_started = std::time::Instant::now();
        let mut simulation = SimStats::default();
        let mut pending = batch;
        loop {
            let results = self
                .evaluator
                .evaluate_batch(self.space, &pending, &mut simulation);
            let mut failed = 0usize;
            for (&index, result) in pending.iter().zip(&results) {
                match result {
                    Ok(value) => {
                        self.dataset.push(Sample::new(
                            self.space.encode(&self.space.point(index)),
                            *value,
                        ));
                        self.sampled_indices.push(index);
                        self.sample_values.push(*value);
                    }
                    Err(_) => {
                        self.quarantined.insert(index);
                        failed += 1;
                    }
                }
            }
            if failed == 0 {
                break;
            }
            // Replacements come from the plain sampler stream (even under
            // active learning — re-scoring a handful of fill-ins is not
            // worth a second committee sweep) and are counted so the CSVs
            // show how much backfilling the faults caused.
            let replacements = self.sampler.next_batch(failed);
            if replacements.is_empty() {
                break;
            }
            simulation.resampled += replacements.len() as u64;
            pending = replacements;
        }
        let simulation_seconds = sim_started.elapsed().as_secs_f64();
        // 3. Train the cross-validation ensemble, with the fold count
        // clamped to the training-set size (a tiny first batch would
        // otherwise request more folds than there are samples).
        let folds = self.config.folds.min(self.dataset.len());
        if folds < 3 {
            return Err(ExploreError::TooFewSamples {
                have: self.dataset.len(),
            });
        }
        let started = std::time::Instant::now();
        let fit_seed = self.rng.next_u64();
        let fit = fit_ensemble(&self.dataset, folds, &self.config.train, fit_seed);
        let training_seconds = started.elapsed().as_secs_f64();
        self.ensemble = Some(fit.ensemble);
        self.last_fit_seed = Some(fit_seed);
        self.last_train = Some(TrainSnapshot::of(&self.config.train));
        // 4. Record the estimate.
        self.history.push(Round {
            samples: self.dataset.len(),
            fraction_sampled: self.dataset.len() as f64 / self.space.size() as f64,
            estimate: fit.estimate,
            training_seconds,
            simulation_seconds,
            simulation,
            prediction_seconds,
            folds: fit.folds,
        });
        // 5. Persist the post-round state (atomic, so a kill at any moment
        // leaves either the previous complete checkpoint or this one).
        if let Some(dir) = self.checkpoint_dir.clone() {
            self.snapshot()
                .save(&dir)
                .map_err(|e| ExploreError::Checkpoint(e.to_string()))?;
        }
        Ok(self.history.last().expect("just pushed"))
    }

    /// Runs one refinement round; returns the new round's record.
    ///
    /// # Panics
    ///
    /// Panics if the round cannot run ([`Explorer::try_step`] returns the
    /// condition as a typed error instead).
    pub fn step(&mut self) -> &Round {
        if let Err(e) = self.try_step() {
            panic!("exploration step failed: {e}");
        }
        self.history.last().expect("just stepped")
    }

    /// Steps until the estimated mean error reaches the configured target,
    /// the sample cap is hit, or the space is exhausted. Returns the final
    /// round.
    pub fn try_run(&mut self) -> Result<&Round, ExploreError> {
        loop {
            self.try_step()?;
            let round = self.history.last().expect("stepped");
            let done = round.estimate.mean <= self.config.target_error
                || self.dataset.len() >= self.config.max_samples
                || self.sampler.remaining() == 0;
            if done {
                break;
            }
        }
        Ok(self.history.last().expect("at least one round ran"))
    }

    /// Steps until the estimated mean error reaches the configured target,
    /// the sample cap is hit, or the space is exhausted. Returns the final
    /// round.
    ///
    /// # Panics
    ///
    /// Panics if a round cannot run (empty space, or batches too small to
    /// ever reach three samples); [`Explorer::try_run`] surfaces the typed
    /// error instead.
    pub fn run(&mut self) -> &Round {
        if let Err(e) = self.try_run() {
            panic!("exploration failed: {e}");
        }
        self.history.last().expect("at least one round ran")
    }

    /// Measures the model's *true* error on `held_out` point indices
    /// (simulating any that were never simulated — callers typically pass a
    /// fixed random evaluation set disjoint from the training set).
    /// Held-out points whose evaluation fails are skipped — the error is
    /// measured over the surviving points, reported in
    /// [`TrueError::points`].
    ///
    /// Errors if `held_out` is empty, every evaluation failed, or no round
    /// has run yet.
    pub fn try_true_error(&self, held_out: &[usize]) -> Result<TrueError, ExploreError> {
        if held_out.is_empty() {
            return Err(ExploreError::EmptyHeldOut);
        }
        let mut stats = SimStats::default();
        let actuals = self
            .evaluator
            .evaluate_batch(self.space, held_out, &mut stats);
        let predictions = self.try_predict_indices(held_out)?;
        let mut acc = Accumulator::new();
        for (&predicted, actual) in predictions.iter().zip(&actuals) {
            if let Ok(actual) = actual {
                acc.add(100.0 * (predicted - actual).abs() / actual.abs().max(1e-12));
            }
        }
        if acc.count() == 0 {
            return Err(ExploreError::EmptyHeldOut);
        }
        Ok(TrueError {
            mean: acc.mean(),
            std_dev: acc.population_std_dev(),
            points: acc.count(),
        })
    }

    /// Infallible [`Explorer::try_true_error`].
    ///
    /// # Panics
    ///
    /// Panics if no round has run yet or `held_out` is empty.
    pub fn true_error(&self, held_out: &[usize]) -> TrueError {
        self.try_true_error(held_out)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Draws `count` indices that have *not* been simulated, for true-error
    /// evaluation. Deterministic given the explorer's seed.
    ///
    /// The complement of the sampled set is built directly and a random
    /// prefix of it is returned, so cost stays `O(space + count)` even when
    /// nearly every point has been simulated (a rejection loop would
    /// degenerate into coupon collecting there). When fewer than `count`
    /// unsimulated points remain, all of them are returned — callers must
    /// not assume the result has exactly `count` elements.
    pub fn held_out_set(&self, count: usize) -> Vec<usize> {
        let sampled: std::collections::HashSet<usize> =
            self.sampled_indices.iter().copied().collect();
        let mut complement: Vec<usize> = (0..self.space.size())
            .filter(|i| !sampled.contains(i) && !self.quarantined.contains(i))
            .collect();
        let want = count.min(complement.len());
        let mut rng = Xoshiro256::seed_from(self.config.seed ^ 0xE7A1);
        archpredict_stats::sampling::partial_shuffle(&mut complement, want, &mut rng);
        complement.truncate(want);
        complement
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::simulate::{PointEvaluator, SimError, SimResult};
    use crate::space::DesignPoint;

    /// A cheap synthetic "simulator" over a 3-parameter space.
    struct Synthetic {
        space: DesignSpace,
    }

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            Param::cardinal("a", (0..12).map(|i| i as f64).collect::<Vec<_>>()),
            Param::cardinal("b", (0..12).map(|i| i as f64).collect::<Vec<_>>()),
            Param::nominal("mode", ["x", "y", "z"]),
        ])
        .unwrap()
    }

    impl PointEvaluator for Synthetic {
        fn evaluate(&self, point: &DesignPoint) -> f64 {
            let a = self.space.number(point, "a") / 11.0;
            let b = self.space.number(point, "b") / 11.0;
            let mode = point.level(2) as f64;
            0.3 + 0.5 * (a * 2.0).sin().abs() + 0.3 * a * b + 0.1 * mode
        }
        fn instructions_per_evaluation(&self) -> u64 {
            1
        }
    }

    fn explorer_config() -> ExplorerConfig {
        ExplorerConfig {
            batch: 40,
            folds: 10,
            target_error: 1.0,
            max_samples: 240,
            ..ExplorerConfig::default()
        }
    }

    #[test]
    fn error_estimate_decreases_with_more_data() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        let first = explorer.step().estimate.mean;
        for _ in 0..4 {
            explorer.step();
        }
        let last = explorer.history().last().unwrap().estimate.mean;
        assert!(
            last < first,
            "estimate should fall: first {first:.2}%, last {last:.2}%"
        );
    }

    #[test]
    fn run_stops_at_target_or_cap() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        let final_round = explorer.run().clone();
        assert!(
            final_round.estimate.mean <= 1.0 || final_round.samples >= 240,
            "{final_round:?}"
        );
        assert_eq!(explorer.samples(), final_round.samples);
    }

    #[test]
    fn estimate_tracks_true_error() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        for _ in 0..4 {
            explorer.step();
        }
        let held_out = explorer.held_out_set(120);
        let true_error = explorer.true_error(&held_out);
        let estimate = explorer.history().last().unwrap().estimate;
        assert!(
            (true_error.mean - estimate.mean).abs() < estimate.mean.max(1.5),
            "true {:.2}% vs estimated {:.2}%",
            true_error.mean,
            estimate.mean
        );
    }

    #[test]
    fn held_out_set_is_disjoint_from_training() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        explorer.step();
        let held_out = explorer.held_out_set(100);
        let trained: std::collections::HashSet<_> =
            explorer.sampled_indices().iter().copied().collect();
        assert!(held_out.iter().all(|i| !trained.contains(i)));
        assert_eq!(held_out.len(), 100);
    }

    #[test]
    fn tiny_first_batch_errors_then_recovers() {
        // Regression: batch=2 used to panic inside fit_ensemble (folds
        // clamped to dataset len 2, tripping the folds >= 3 assertion).
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let config = ExplorerConfig {
            batch: 2,
            ..explorer_config()
        };
        let mut explorer = Explorer::new(&space, &synthetic, config);
        assert_eq!(
            explorer.try_step(),
            Err(ExploreError::TooFewSamples { have: 2 })
        );
        // The two simulated points were kept; the next batch reaches 4
        // samples and trains with the fold count clamped to 4.
        let round = explorer.try_step().expect("4 samples can train").clone();
        assert_eq!(round.samples, 4);
        assert_eq!(round.folds.len(), 4);
        assert!(explorer.ensemble().is_some());
    }

    #[test]
    #[should_panic(expected = "cross-validation needs at least 3")]
    fn step_panics_with_typed_message_on_tiny_batch() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let config = ExplorerConfig {
            batch: 1,
            ..explorer_config()
        };
        Explorer::new(&space, &synthetic, config).step();
    }

    #[test]
    fn held_out_set_truncates_near_space_exhaustion() {
        // Regression: the old rejection loop degenerated (and silently
        // under-filled) once most of the space was sampled.
        let space = space(); // 12 * 12 * 3 = 432 points
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let config = ExplorerConfig {
            batch: 100,
            max_samples: 400,
            target_error: 0.0,
            ..explorer_config()
        };
        let mut explorer = Explorer::new(&space, &synthetic, config);
        for _ in 0..4 {
            explorer.step(); // 400 of 432 points simulated
        }
        let trained: std::collections::HashSet<_> =
            explorer.sampled_indices().iter().copied().collect();
        assert_eq!(trained.len(), 400);

        // Asking for more than the 32 remaining points returns all 32.
        let held_out = explorer.held_out_set(100);
        assert_eq!(held_out.len(), 32);
        assert!(held_out.iter().all(|i| !trained.contains(i)));
        let distinct: std::collections::HashSet<_> = held_out.iter().copied().collect();
        assert_eq!(distinct.len(), 32);

        // A smaller request draws from the same deterministic stream.
        let smaller = explorer.held_out_set(10);
        assert_eq!(smaller.len(), 10);
        assert_eq!(smaller, explorer.held_out_set(10));
        assert!(smaller.iter().all(|i| !trained.contains(i)));
    }

    #[test]
    fn round_records_fold_telemetry() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        let round = explorer.step().clone();
        assert_eq!(round.folds.len(), 10);
        assert!(round.mean_epochs() > 0.0);
        assert!(round.simulation_seconds >= 0.0);
        // The oracle accounted for every point in the batch: a bare
        // evaluator simulates all of them, hitting no cache.
        assert_eq!(round.simulation.unique_simulations, round.samples as u64);
        assert_eq!(round.simulation.cache_hits, 0);
        assert_eq!(
            round.simulation.simulated_instructions,
            round.samples as u64
        );
        // Per-fold wall time is a breakdown of (overlapping) training work.
        assert!(round.folds.iter().all(|f| f.seconds >= 0.0 && f.epochs > 0));
        let pooled: usize = round.folds.iter().map(|f| f.test_samples).sum();
        assert_eq!(pooled, round.samples);
    }

    #[test]
    fn batches_never_repeat_points() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        for _ in 0..5 {
            explorer.step();
        }
        let mut seen = std::collections::HashSet::new();
        for &i in explorer.sampled_indices() {
            assert!(seen.insert(i), "index {i} simulated twice");
        }
    }

    #[test]
    fn predict_space_is_identical_at_every_thread_count() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        explorer.step();
        let reference = explorer.predict_space_with(Parallelism::Fixed(1));
        assert_eq!(reference.len(), space.size());
        for parallelism in [Parallelism::Fixed(4), Parallelism::Auto] {
            assert_eq!(
                reference,
                explorer.predict_space_with(parallelism),
                "{parallelism:?}"
            );
        }
        // And the batched sweep is bit-for-bit the point-at-a-time path.
        for (i, &batched) in reference.iter().enumerate().step_by(37) {
            assert_eq!(explorer.predict(i), batched, "index {i}");
        }
        assert_eq!(explorer.predict_space(), reference);
    }

    #[test]
    fn rank_space_orders_best_first_with_index_tiebreak() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        explorer.step();
        let predictions = explorer.predict_space();
        let order = explorer.rank_space();
        assert_eq!(order.len(), space.size());
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                predictions[a] > predictions[b] || (predictions[a] == predictions[b] && a < b),
                "rank order violated at {a} -> {b}"
            );
        }
    }

    #[test]
    fn prediction_seconds_recorded_only_when_scoring() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        // Random sampling never predicts during selection.
        let mut random = Explorer::new(&space, &synthetic, explorer_config());
        random.step();
        assert_eq!(random.history()[0].prediction_seconds, 0.0);
        // Active learning scores candidates from round 2 on.
        let config = ExplorerConfig {
            strategy: Strategy::Active { pool_factor: 3 },
            ..explorer_config()
        };
        let mut active = Explorer::new(&space, &synthetic, config);
        active.step();
        assert_eq!(active.history()[0].prediction_seconds, 0.0);
        active.step();
        assert!(active.history()[1].prediction_seconds > 0.0);
    }

    /// A synthetic simulator that permanently fails on every 7th index.
    struct Faulty {
        space: DesignSpace,
    }

    impl PointEvaluator for Faulty {
        fn evaluate(&self, point: &DesignPoint) -> f64 {
            Synthetic {
                space: self.space.clone(),
            }
            .evaluate(point)
        }
        fn try_evaluate(&self, point: &DesignPoint) -> SimResult {
            if self.space.index(point).is_multiple_of(7) {
                Err(SimError::Crashed)
            } else {
                Ok(self.evaluate(point))
            }
        }
        fn instructions_per_evaluation(&self) -> u64 {
            1
        }
    }

    #[test]
    fn failed_points_are_quarantined_and_resampled_to_budget() {
        let space = space();
        let faulty = Faulty {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &faulty, explorer_config());
        let round = explorer.step().clone();
        // Every round still reaches its 40-point budget despite ~1/7 of
        // draws failing, via replacement draws.
        assert_eq!(round.samples, 40);
        assert!(round.simulation.failures > 0, "{:?}", round.simulation);
        assert!(round.simulation.resampled >= round.simulation.failures);
        let quarantined = explorer.quarantined();
        assert!(!quarantined.is_empty());
        assert!(quarantined.iter().all(|i| i % 7 == 0));
        // Quarantined points never enter the training set or held-out set
        // (the held-out filter can only know about *observed* failures).
        assert!(explorer.sampled_indices().iter().all(|i| i % 7 != 0));
        let held_out = explorer.held_out_set(200);
        assert!(held_out.iter().all(|i| !quarantined.contains(i)));
        // And the whole faulty run is deterministic.
        let mut again = Explorer::new(&space, &faulty, explorer_config());
        let round2 = again.step().clone();
        assert_eq!(round2.samples, round.samples);
        assert_eq!(round2.simulation.failures, round.simulation.failures);
        assert_eq!(again.sampled_indices(), explorer.sampled_indices());
    }

    #[test]
    fn true_error_skips_failed_held_out_points() {
        let space = space();
        let faulty = Faulty {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &faulty, explorer_config());
        explorer.step();
        // Hand-pick a held-out set that includes perma-failing indices not
        // yet quarantined (held_out_set already excludes known ones).
        let sampled: std::collections::HashSet<_> =
            explorer.sampled_indices().iter().copied().collect();
        let held_out: Vec<usize> = (0..space.size()).filter(|i| !sampled.contains(i)).collect();
        let failing = held_out.iter().filter(|i| *i % 7 == 0).count();
        assert!(failing > 0);
        let error = explorer.try_true_error(&held_out).expect("some survive");
        assert_eq!(error.points as usize, held_out.len() - failing);
        assert_eq!(
            explorer.try_true_error(&[]),
            Err(ExploreError::EmptyHeldOut)
        );
    }

    #[test]
    fn predict_before_first_round_is_a_typed_error() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let explorer = Explorer::new(&space, &synthetic, explorer_config());
        assert_eq!(explorer.try_predict(0), Err(ExploreError::NoEnsemble));
        assert_eq!(explorer.try_predict_space(), Err(ExploreError::NoEnsemble));
        assert_eq!(explorer.try_rank_space(), Err(ExploreError::NoEnsemble));
    }

    #[test]
    #[should_panic(expected = "no ensemble trained yet")]
    fn predict_before_first_round_panics_with_stable_message() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        Explorer::new(&space, &synthetic, explorer_config()).predict(0);
    }

    #[test]
    fn checkpointed_run_resumes_bit_for_bit() {
        let dir =
            std::env::temp_dir().join(format!("archpredict_explorer_ckpt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        // Reference: an uninterrupted 4-round run.
        let mut uninterrupted = Explorer::new(&space, &synthetic, explorer_config());
        for _ in 0..4 {
            uninterrupted.step();
        }
        // Crashed run: 2 rounds with checkpointing, then "kill" (drop).
        {
            let mut crashed = Explorer::new(&space, &synthetic, explorer_config());
            crashed.enable_checkpoints(&dir);
            crashed.step();
            crashed.step();
        }
        // Resume and finish the remaining rounds.
        let mut resumed = Explorer::resume(&space, &synthetic, explorer_config(), &dir)
            .expect("resume from checkpoint");
        assert_eq!(resumed.history().len(), 2);
        assert_eq!(resumed.samples(), uninterrupted.history()[1].samples);
        resumed.step();
        resumed.step();
        // Result-affecting state matches the uninterrupted run exactly.
        assert_eq!(resumed.sampled_indices(), uninterrupted.sampled_indices());
        for (a, b) in resumed.history().iter().zip(uninterrupted.history()) {
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(
                a.simulation.unique_simulations,
                b.simulation.unique_simulations
            );
            assert_eq!(a.folds.len(), b.folds.len());
            for (fa, fb) in a.folds.iter().zip(&b.folds) {
                assert_eq!(fa.epochs, fb.epochs);
                assert_eq!(fa.best_es_error, fb.best_es_error);
                assert_eq!(fa.reinits, fb.reinits);
            }
        }
        // The payoff sweep is bit-for-bit identical.
        assert_eq!(resumed.predict_space(), uninterrupted.predict_space());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_validates_seed_and_space() {
        let dir = std::env::temp_dir().join(format!(
            "archpredict_explorer_mismatch_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        explorer.enable_checkpoints(&dir);
        explorer.step();
        // Missing directory and wrong seed both surface as typed errors.
        let wrong_seed = ExplorerConfig {
            seed: 99,
            ..explorer_config()
        };
        assert!(matches!(
            Explorer::resume(&space, &synthetic, wrong_seed, &dir),
            Err(ExploreError::Checkpoint(_))
        ));
        assert!(matches!(
            Explorer::resume(&space, &synthetic, explorer_config(), dir.join("nope")),
            Err(ExploreError::Checkpoint(_))
        ));
        // Correct config resumes and predicts identically to the original.
        let resumed =
            Explorer::resume(&space, &synthetic, explorer_config(), &dir).expect("matching resume");
        assert_eq!(resumed.predict_space(), explorer.predict_space());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prediction_is_close_after_training() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        for _ in 0..5 {
            explorer.step();
        }
        let idx = explorer.held_out_set(1)[0];
        let predicted = explorer.predict(idx);
        let actual = synthetic.evaluate(&space.point(idx));
        assert!(
            (predicted - actual).abs() / actual < 0.10,
            "{predicted} vs {actual}"
        );
    }
}
