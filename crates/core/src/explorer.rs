//! The incremental design-space exploration loop (§3.3's procedure).
//!
//! Since the campaign-engine refactor this module is a thin façade over
//! [`crate::campaign`]: an [`Explorer`] *is* a [`Campaign`] running the
//! paper's plain design-point encoding ([`PlainEncoder`]), and
//! [`ExplorerConfig`] is the engine's [`CampaignConfig`]. The canonical
//! round loop — select batch, simulate with quarantine/resample, encode,
//! fit the cross-validation ensemble, record the error estimate — lives in
//! [`Campaign::try_step`]; every name here is an alias or re-export kept
//! so existing callers (and the checkpoint format, which predates the
//! refactor) are unaffected.

use crate::campaign::{Campaign, PlainEncoder};

pub use crate::campaign::{CampaignConfig, ExploreError, Round, TrueError};

/// Exploration policy (the engine's [`CampaignConfig`] under its
/// pre-refactor name).
pub type ExplorerConfig = CampaignConfig;

/// The incremental explorer: the campaign engine with the paper's plain
/// design-point encoding. See [`Campaign`] for every method.
pub type Explorer<'a, E> = Campaign<'a, E, PlainEncoder>;

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::param::Param;
    use crate::sampling::Strategy;
    use crate::simulate::{PointEvaluator, SimError, SimResult};
    use crate::space::{DesignPoint, DesignSpace};
    use archpredict_ann::Parallelism;

    /// A cheap synthetic "simulator" over a 3-parameter space.
    struct Synthetic {
        space: DesignSpace,
    }

    fn space() -> DesignSpace {
        DesignSpace::new(vec![
            Param::cardinal("a", (0..12).map(|i| i as f64).collect::<Vec<_>>()),
            Param::cardinal("b", (0..12).map(|i| i as f64).collect::<Vec<_>>()),
            Param::nominal("mode", ["x", "y", "z"]),
        ])
        .unwrap()
    }

    impl PointEvaluator for Synthetic {
        fn evaluate(&self, point: &DesignPoint) -> f64 {
            let a = self.space.number(point, "a") / 11.0;
            let b = self.space.number(point, "b") / 11.0;
            let mode = point.level(2) as f64;
            0.3 + 0.5 * (a * 2.0).sin().abs() + 0.3 * a * b + 0.1 * mode
        }
        fn instructions_per_evaluation(&self) -> u64 {
            1
        }
    }

    fn explorer_config() -> ExplorerConfig {
        ExplorerConfig {
            batch: 40,
            folds: 10,
            target_error: 1.0,
            max_samples: 240,
            ..ExplorerConfig::default()
        }
    }

    #[test]
    fn error_estimate_decreases_with_more_data() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        let first = explorer.step().estimate.mean;
        for _ in 0..4 {
            explorer.step();
        }
        let last = explorer.history().last().unwrap().estimate.mean;
        assert!(
            last < first,
            "estimate should fall: first {first:.2}%, last {last:.2}%"
        );
    }

    #[test]
    fn run_stops_at_target_or_cap() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        let final_round = explorer.run().clone();
        assert!(
            final_round.estimate.mean <= 1.0 || final_round.samples >= 240,
            "{final_round:?}"
        );
        assert_eq!(explorer.samples(), final_round.samples);
    }

    #[test]
    fn estimate_tracks_true_error() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        for _ in 0..4 {
            explorer.step();
        }
        let held_out = explorer.held_out_set(120);
        let true_error = explorer.true_error(&held_out);
        let estimate = explorer.history().last().unwrap().estimate;
        assert!(
            (true_error.mean - estimate.mean).abs() < estimate.mean.max(1.5),
            "true {:.2}% vs estimated {:.2}%",
            true_error.mean,
            estimate.mean
        );
    }

    #[test]
    fn held_out_set_is_disjoint_from_training() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        explorer.step();
        let held_out = explorer.held_out_set(100);
        let trained: std::collections::HashSet<_> =
            explorer.sampled_indices().iter().copied().collect();
        assert!(held_out.iter().all(|i| !trained.contains(i)));
        assert_eq!(held_out.len(), 100);
    }

    #[test]
    fn tiny_first_batch_errors_then_recovers() {
        // Regression: batch=2 used to panic inside fit_ensemble (folds
        // clamped to dataset len 2, tripping the folds >= 3 assertion).
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let config = ExplorerConfig {
            batch: 2,
            ..explorer_config()
        };
        let mut explorer = Explorer::new(&space, &synthetic, config);
        assert_eq!(
            explorer.try_step(),
            Err(ExploreError::TooFewSamples { have: 2 })
        );
        // The two simulated points were kept; the next batch reaches 4
        // samples and trains with the fold count clamped to 4.
        let round = explorer.try_step().expect("4 samples can train").clone();
        assert_eq!(round.samples, 4);
        assert_eq!(round.folds.len(), 4);
        assert!(explorer.ensemble().is_some());
    }

    #[test]
    #[should_panic(expected = "cross-validation needs at least 3")]
    fn step_panics_with_typed_message_on_tiny_batch() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let config = ExplorerConfig {
            batch: 1,
            ..explorer_config()
        };
        Explorer::new(&space, &synthetic, config).step();
    }

    #[test]
    fn held_out_set_truncates_near_space_exhaustion() {
        // Regression: the old rejection loop degenerated (and silently
        // under-filled) once most of the space was sampled.
        let space = space(); // 12 * 12 * 3 = 432 points
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let config = ExplorerConfig {
            batch: 100,
            max_samples: 400,
            target_error: 0.0,
            ..explorer_config()
        };
        let mut explorer = Explorer::new(&space, &synthetic, config);
        for _ in 0..4 {
            explorer.step(); // 400 of 432 points simulated
        }
        let trained: std::collections::HashSet<_> =
            explorer.sampled_indices().iter().copied().collect();
        assert_eq!(trained.len(), 400);

        // Asking for more than the 32 remaining points returns all 32.
        let held_out = explorer.held_out_set(100);
        assert_eq!(held_out.len(), 32);
        assert!(held_out.iter().all(|i| !trained.contains(i)));
        let distinct: std::collections::HashSet<_> = held_out.iter().copied().collect();
        assert_eq!(distinct.len(), 32);

        // A smaller request draws from the same deterministic stream.
        let smaller = explorer.held_out_set(10);
        assert_eq!(smaller.len(), 10);
        assert_eq!(smaller, explorer.held_out_set(10));
        assert!(smaller.iter().all(|i| !trained.contains(i)));
    }

    #[test]
    fn round_records_fold_telemetry() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        let round = explorer.step().clone();
        assert_eq!(round.folds.len(), 10);
        assert!(round.mean_epochs() > 0.0);
        assert!(round.simulation_seconds >= 0.0);
        // The oracle accounted for every point in the batch: a bare
        // evaluator simulates all of them, hitting no cache.
        assert_eq!(round.simulation.unique_simulations, round.samples as u64);
        assert_eq!(round.simulation.cache_hits, 0);
        assert_eq!(
            round.simulation.simulated_instructions,
            round.samples as u64
        );
        // Per-fold wall time is a breakdown of (overlapping) training work.
        assert!(round.folds.iter().all(|f| f.seconds >= 0.0 && f.epochs > 0));
        let pooled: usize = round.folds.iter().map(|f| f.test_samples).sum();
        assert_eq!(pooled, round.samples);
    }

    #[test]
    fn batches_never_repeat_points() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        for _ in 0..5 {
            explorer.step();
        }
        let mut seen = std::collections::HashSet::new();
        for &i in explorer.sampled_indices() {
            assert!(seen.insert(i), "index {i} simulated twice");
        }
    }

    #[test]
    fn predict_space_is_identical_at_every_thread_count() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        explorer.step();
        let reference = explorer.predict_space_with(Parallelism::Fixed(1));
        assert_eq!(reference.len(), space.size());
        for parallelism in [Parallelism::Fixed(4), Parallelism::Auto] {
            assert_eq!(
                reference,
                explorer.predict_space_with(parallelism),
                "{parallelism:?}"
            );
        }
        // And the batched sweep is bit-for-bit the point-at-a-time path.
        for (i, &batched) in reference.iter().enumerate().step_by(37) {
            assert_eq!(explorer.predict(i), batched, "index {i}");
        }
        assert_eq!(explorer.predict_space(), reference);
    }

    #[test]
    fn rank_space_orders_best_first_with_index_tiebreak() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        explorer.step();
        let predictions = explorer.predict_space();
        let order = explorer.rank_space();
        assert_eq!(order.len(), space.size());
        for pair in order.windows(2) {
            let (a, b) = (pair[0], pair[1]);
            assert!(
                predictions[a] > predictions[b] || (predictions[a] == predictions[b] && a < b),
                "rank order violated at {a} -> {b}"
            );
        }
    }

    #[test]
    fn prediction_seconds_recorded_only_when_scoring() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        // Random sampling never predicts during selection.
        let mut random = Explorer::new(&space, &synthetic, explorer_config());
        random.step();
        assert_eq!(random.history()[0].prediction_seconds, 0.0);
        // Active learning scores candidates from round 2 on.
        let config = ExplorerConfig {
            strategy: Strategy::Active { pool_factor: 3 },
            ..explorer_config()
        };
        let mut active = Explorer::new(&space, &synthetic, config);
        active.step();
        assert_eq!(active.history()[0].prediction_seconds, 0.0);
        active.step();
        assert!(active.history()[1].prediction_seconds > 0.0);
    }

    /// A synthetic simulator that permanently fails on every 7th index.
    struct Faulty {
        space: DesignSpace,
    }

    impl PointEvaluator for Faulty {
        fn evaluate(&self, point: &DesignPoint) -> f64 {
            Synthetic {
                space: self.space.clone(),
            }
            .evaluate(point)
        }
        fn try_evaluate(&self, point: &DesignPoint) -> SimResult {
            if self.space.index(point).is_multiple_of(7) {
                Err(SimError::Crashed)
            } else {
                Ok(self.evaluate(point))
            }
        }
        fn instructions_per_evaluation(&self) -> u64 {
            1
        }
    }

    #[test]
    fn failed_points_are_quarantined_and_resampled_to_budget() {
        let space = space();
        let faulty = Faulty {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &faulty, explorer_config());
        let round = explorer.step().clone();
        // Every round still reaches its 40-point budget despite ~1/7 of
        // draws failing, via replacement draws.
        assert_eq!(round.samples, 40);
        assert!(round.simulation.failures > 0, "{:?}", round.simulation);
        assert!(round.simulation.resampled >= round.simulation.failures);
        let quarantined = explorer.quarantined();
        assert!(!quarantined.is_empty());
        assert!(quarantined.iter().all(|i| i % 7 == 0));
        // Quarantined points never enter the training set or held-out set
        // (the held-out filter can only know about *observed* failures).
        assert!(explorer.sampled_indices().iter().all(|i| i % 7 != 0));
        let held_out = explorer.held_out_set(200);
        assert!(held_out.iter().all(|i| !quarantined.contains(i)));
        // And the whole faulty run is deterministic.
        let mut again = Explorer::new(&space, &faulty, explorer_config());
        let round2 = again.step().clone();
        assert_eq!(round2.samples, round.samples);
        assert_eq!(round2.simulation.failures, round.simulation.failures);
        assert_eq!(again.sampled_indices(), explorer.sampled_indices());
    }

    #[test]
    fn true_error_skips_failed_held_out_points() {
        let space = space();
        let faulty = Faulty {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &faulty, explorer_config());
        explorer.step();
        // Hand-pick a held-out set that includes perma-failing indices not
        // yet quarantined (held_out_set already excludes known ones).
        let sampled: std::collections::HashSet<_> =
            explorer.sampled_indices().iter().copied().collect();
        let held_out: Vec<usize> = (0..space.size()).filter(|i| !sampled.contains(i)).collect();
        let failing = held_out.iter().filter(|i| *i % 7 == 0).count();
        assert!(failing > 0);
        let error = explorer.try_true_error(&held_out).expect("some survive");
        assert_eq!(error.points as usize, held_out.len() - failing);
        assert_eq!(
            explorer.try_true_error(&[]),
            Err(ExploreError::EmptyHeldOut)
        );
    }

    #[test]
    fn predict_before_first_round_is_a_typed_error() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let explorer = Explorer::new(&space, &synthetic, explorer_config());
        assert_eq!(explorer.try_predict(0), Err(ExploreError::NoEnsemble));
        assert_eq!(explorer.try_predict_space(), Err(ExploreError::NoEnsemble));
        assert_eq!(explorer.try_rank_space(), Err(ExploreError::NoEnsemble));
    }

    #[test]
    #[should_panic(expected = "no ensemble trained yet")]
    fn predict_before_first_round_panics_with_stable_message() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        Explorer::new(&space, &synthetic, explorer_config()).predict(0);
    }

    #[test]
    fn checkpointed_run_resumes_bit_for_bit() {
        let dir =
            std::env::temp_dir().join(format!("archpredict_explorer_ckpt_{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        // Reference: an uninterrupted 4-round run.
        let mut uninterrupted = Explorer::new(&space, &synthetic, explorer_config());
        for _ in 0..4 {
            uninterrupted.step();
        }
        // Crashed run: 2 rounds with checkpointing, then "kill" (drop).
        {
            let mut crashed = Explorer::new(&space, &synthetic, explorer_config());
            crashed.enable_checkpoints(&dir);
            crashed.step();
            crashed.step();
        }
        // Resume and finish the remaining rounds.
        let mut resumed = Explorer::resume(&space, &synthetic, explorer_config(), &dir)
            .expect("resume from checkpoint");
        assert_eq!(resumed.history().len(), 2);
        assert_eq!(resumed.samples(), uninterrupted.history()[1].samples);
        resumed.step();
        resumed.step();
        // Result-affecting state matches the uninterrupted run exactly.
        assert_eq!(resumed.sampled_indices(), uninterrupted.sampled_indices());
        for (a, b) in resumed.history().iter().zip(uninterrupted.history()) {
            assert_eq!(a.samples, b.samples);
            assert_eq!(a.estimate, b.estimate);
            assert_eq!(
                a.simulation.unique_simulations,
                b.simulation.unique_simulations
            );
            assert_eq!(a.folds.len(), b.folds.len());
            for (fa, fb) in a.folds.iter().zip(&b.folds) {
                assert_eq!(fa.epochs, fb.epochs);
                assert_eq!(fa.best_es_error, fb.best_es_error);
                assert_eq!(fa.reinits, fb.reinits);
            }
        }
        // The payoff sweep is bit-for-bit identical.
        assert_eq!(resumed.predict_space(), uninterrupted.predict_space());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn resume_validates_seed_and_space() {
        let dir = std::env::temp_dir().join(format!(
            "archpredict_explorer_mismatch_{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        explorer.enable_checkpoints(&dir);
        explorer.step();
        // Missing directory and wrong seed both surface as typed errors.
        let wrong_seed = ExplorerConfig {
            seed: 99,
            ..explorer_config()
        };
        assert!(matches!(
            Explorer::resume(&space, &synthetic, wrong_seed, &dir),
            Err(ExploreError::Checkpoint(_))
        ));
        assert!(matches!(
            Explorer::resume(&space, &synthetic, explorer_config(), dir.join("nope")),
            Err(ExploreError::Checkpoint(_))
        ));
        // Correct config resumes and predicts identically to the original.
        let resumed =
            Explorer::resume(&space, &synthetic, explorer_config(), &dir).expect("matching resume");
        assert_eq!(resumed.predict_space(), explorer.predict_space());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn prediction_is_close_after_training() {
        let space = space();
        let synthetic = Synthetic {
            space: space.clone(),
        };
        let mut explorer = Explorer::new(&space, &synthetic, explorer_config());
        for _ in 0..5 {
            explorer.step();
        }
        let idx = explorer.held_out_set(1)[0];
        let predicted = explorer.predict(idx);
        let actual = synthetic.evaluate(&space.point(idx));
        assert!(
            (predicted - actual).abs() / actual < 0.10,
            "{predicted} vs {actual}"
        );
    }
}
