//! Deterministic, seeded fault injection for the serving stack.
//!
//! A chaos run is only debuggable if it is replayable: "the daemon died
//! after 4 000 requests" is useless unless the same seed reproduces the
//! same death at the same request. This module provides named **fault
//! sites** compiled into production code paths (`persist::write_atomic`,
//! the registry commit path, the serve request handler, distributed
//! worker dispatch). Whether a given site fires on a given hit is a pure
//! function of `(seed, site name, hit count)` — no wall clock, no OS
//! randomness — so every chaos schedule is bit-for-bit reproducible.
//!
//! The layer supersedes the one-off `CrashPoint` enum the registry used
//! to carry: instead of a bespoke hook per failure mode, any site can be
//! armed with any [`FailAction`] at any probability, programmatically
//! ([`install`]) or via the `ARCHPREDICT_FAILPOINTS` environment
//! variable ([`install_from_env`]) so spawned daemons and workers join
//! the same schedule.
//!
//! Cost when disarmed: one relaxed atomic load per site check. No site
//! ever fires unless a plan was explicitly installed, so production
//! binaries pay nothing and tests that do not opt in are unaffected.
//!
//! # Environment format
//!
//! ```text
//! ARCHPREDICT_FAILPOINTS="seed=0x5EED;registry.commit.entry=error@0.2;serve.handler=panic@1@1"
//! ```
//!
//! Clauses are `;`-separated. `seed=<u64, 0x-hex ok>` sets the schedule
//! seed (default 0). Every other clause is
//! `<site>=<action>@<probability>[@<max_fires>]` where `<action>` is one
//! of `error`, `torn`, `panic`, `abort`, `exit:<code>`, `delay:<ms>`.

use archpredict_stats::hash::fnv1a_64;
use archpredict_stats::rng::Xoshiro256;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, RwLock};
use std::time::Duration;

/// Environment variable read by [`install_from_env`]; set it on a
/// spawned daemon or worker to enroll the child in a chaos schedule.
pub const ENV_FAILPOINTS: &str = "ARCHPREDICT_FAILPOINTS";

/// What an armed site does when it fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum FailAction {
    /// The instrumented call returns an injected `io::Error`.
    Error,
    /// `persist::write_atomic` leaves a half-written temp file behind and
    /// errors — the on-disk shape of a writer killed mid-write. At sites
    /// without a partial-write notion this degrades to [`FailAction::Error`].
    Torn,
    /// The calling thread sleeps, then the call proceeds normally.
    /// Exercises timeout and drain paths without failing anything.
    Delay(Duration),
    /// The calling thread panics (`catch_unwind` isolation coverage).
    Panic,
    /// The whole process aborts — a real `kill -9`-shaped death.
    Abort,
    /// The process exits with this code, skipping destructors.
    Exit(i32),
}

/// One armed site: what to do, how often, and for how many fires.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SiteSpec {
    pub action: FailAction,
    /// Per-hit fire probability in `[0, 1]`; `1.0` fires every hit.
    pub probability: f64,
    /// Stop firing after this many fires (`None` = unbounded).
    pub max_fires: Option<u64>,
}

impl SiteSpec {
    /// A spec that fires `action` on the first hit and never again —
    /// the common "die exactly once, right here" configuration.
    pub fn once(action: FailAction) -> Self {
        SiteSpec {
            action,
            probability: 1.0,
            max_fires: Some(1),
        }
    }
}

/// What [`check`] hands back to the instrumented call site when a
/// returnable action fires. (`Delay`/`Panic`/`Abort`/`Exit` are executed
/// inside [`check`] itself and never surface here.)
#[derive(Debug)]
pub enum Failure {
    /// Fail the call with this error.
    Error(std::io::Error),
    /// Simulate a torn write: leave partial bytes, then fail the call.
    Torn,
}

impl Failure {
    /// Collapses the failure into its injected `io::Error`. Sites with
    /// no notion of a partial write use this so `Torn` degrades to a
    /// plain error instead of silently doing nothing.
    pub fn into_io_error(self, site: &str) -> std::io::Error {
        match self {
            Failure::Error(e) => e,
            Failure::Torn => std::io::Error::other(format!("failpoint `{site}` fired (torn)")),
        }
    }
}

struct Site {
    name: String,
    spec: SiteSpec,
    /// Times the site was evaluated (the hit counter the schedule keys on).
    hits: AtomicU64,
    /// Times the site actually fired.
    fires: AtomicU64,
}

struct Plan {
    seed: u64,
    sites: Vec<Site>,
}

static ARMED: AtomicBool = AtomicBool::new(false);
static PLAN: RwLock<Option<Arc<Plan>>> = RwLock::new(None);

/// Arms the given sites under `seed`, replacing any previous plan and
/// resetting all counters.
pub fn install(seed: u64, sites: &[(&str, SiteSpec)]) {
    let plan = Plan {
        seed,
        sites: sites
            .iter()
            .map(|(name, spec)| Site {
                name: (*name).to_string(),
                spec: *spec,
                hits: AtomicU64::new(0),
                fires: AtomicU64::new(0),
            })
            .collect(),
    };
    *PLAN.write().expect("failpoint plan lock") = Some(Arc::new(plan));
    ARMED.store(true, Ordering::SeqCst);
}

/// Disarms every site. Safe to call when nothing is installed.
pub fn clear() {
    ARMED.store(false, Ordering::SeqCst);
    *PLAN.write().expect("failpoint plan lock") = None;
}

/// Parses `ARCHPREDICT_FAILPOINTS` and arms the described plan.
///
/// Returns `Ok(true)` if a plan was installed, `Ok(false)` if the
/// variable is unset or empty, and `Err` (with nothing installed) if it
/// is malformed — callers should treat that as a fatal configuration
/// error rather than silently running an unfaulted "chaos" schedule.
pub fn install_from_env() -> Result<bool, String> {
    let raw = match std::env::var(ENV_FAILPOINTS) {
        Ok(v) if !v.trim().is_empty() => v,
        _ => return Ok(false),
    };
    let (seed, sites) = parse_plan(&raw)?;
    let borrowed: Vec<(&str, SiteSpec)> = sites.iter().map(|(n, s)| (n.as_str(), *s)).collect();
    install(seed, &borrowed);
    Ok(true)
}

/// Parses the `ARCHPREDICT_FAILPOINTS` clause syntax (see module docs).
pub fn parse_plan(text: &str) -> Result<(u64, Vec<(String, SiteSpec)>), String> {
    let mut seed = 0u64;
    let mut sites = Vec::new();
    for clause in text.split(';') {
        let clause = clause.trim();
        if clause.is_empty() {
            continue;
        }
        let (lhs, rhs) = clause
            .split_once('=')
            .ok_or_else(|| format!("failpoint clause `{clause}` is missing `=`"))?;
        let (lhs, rhs) = (lhs.trim(), rhs.trim());
        if lhs == "seed" {
            seed = parse_u64(rhs).ok_or_else(|| format!("bad failpoint seed `{rhs}`"))?;
            continue;
        }
        let mut parts = rhs.split('@');
        let action = parse_action(parts.next().unwrap_or_default())
            .ok_or_else(|| format!("bad failpoint action in `{clause}`"))?;
        let probability = match parts.next() {
            None => 1.0,
            Some(p) => p
                .parse::<f64>()
                .ok()
                .filter(|p| (0.0..=1.0).contains(p))
                .ok_or_else(|| format!("bad failpoint probability in `{clause}`"))?,
        };
        let max_fires = match parts.next() {
            None => None,
            Some(m) => Some(
                m.parse::<u64>()
                    .map_err(|_| format!("bad failpoint max_fires in `{clause}`"))?,
            ),
        };
        if parts.next().is_some() {
            return Err(format!(
                "too many `@` fields in failpoint clause `{clause}`"
            ));
        }
        sites.push((
            lhs.to_string(),
            SiteSpec {
                action,
                probability,
                max_fires,
            },
        ));
    }
    Ok((seed, sites))
}

fn parse_u64(text: &str) -> Option<u64> {
    if let Some(hex) = text.strip_prefix("0x").or_else(|| text.strip_prefix("0X")) {
        u64::from_str_radix(hex, 16).ok()
    } else {
        text.parse().ok()
    }
}

fn parse_action(text: &str) -> Option<FailAction> {
    match text {
        "error" => Some(FailAction::Error),
        "torn" => Some(FailAction::Torn),
        "panic" => Some(FailAction::Panic),
        "abort" => Some(FailAction::Abort),
        _ => {
            if let Some(code) = text.strip_prefix("exit:") {
                code.parse().ok().map(FailAction::Exit)
            } else if let Some(ms) = text.strip_prefix("delay:") {
                ms.parse()
                    .ok()
                    .map(|ms| FailAction::Delay(Duration::from_millis(ms)))
            } else {
                None
            }
        }
    }
}

/// Renders a plan back into `ARCHPREDICT_FAILPOINTS` clause syntax —
/// what a chaos harness sets on the daemons and workers it spawns.
pub fn render_plan(seed: u64, sites: &[(&str, SiteSpec)]) -> String {
    let mut out = format!("seed={seed:#x}");
    for (name, spec) in sites {
        let action = match spec.action {
            FailAction::Error => "error".to_string(),
            FailAction::Torn => "torn".to_string(),
            FailAction::Panic => "panic".to_string(),
            FailAction::Abort => "abort".to_string(),
            FailAction::Exit(code) => format!("exit:{code}"),
            FailAction::Delay(d) => format!("delay:{}", d.as_millis()),
        };
        out.push_str(&format!(";{name}={action}@{}", spec.probability));
        if let Some(max) = spec.max_fires {
            out.push_str(&format!("@{max}"));
        }
    }
    out
}

/// Evaluates the named site. Disarmed or unconfigured sites return
/// `None` at the cost of one atomic load. Armed sites decide purely from
/// `(seed, site, hit count)`: hit `n` of a site fires iff
/// `rng(seed, site, n) < probability`, identically on every run.
///
/// `Delay` sleeps then returns `None`; `Panic`/`Abort`/`Exit` never
/// return. `Error`/`Torn` hand a [`Failure`] back for the call site to
/// realize.
pub fn check(site: &str) -> Option<Failure> {
    if !ARMED.load(Ordering::Relaxed) {
        return None;
    }
    let plan = PLAN.read().expect("failpoint plan lock").clone()?;
    let entry = plan.sites.iter().find(|s| s.name == site)?;
    let hit = entry.hits.fetch_add(1, Ordering::Relaxed) + 1;
    let mut rng = Xoshiro256::seed_from(plan.seed)
        .derive(fnv1a_64(site.as_bytes()))
        .derive(hit);
    if rng.next_f64() >= entry.spec.probability {
        return None;
    }
    // Claim a fire slot; lose the race against max_fires and the site is
    // spent for this hit.
    let claimed = entry
        .fires
        .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |fired| {
            match entry.spec.max_fires {
                Some(max) if fired >= max => None,
                _ => Some(fired + 1),
            }
        });
    if claimed.is_err() {
        return None;
    }
    match entry.spec.action {
        FailAction::Error => Some(Failure::Error(std::io::Error::other(format!(
            "failpoint `{site}` fired (hit {hit})"
        )))),
        FailAction::Torn => Some(Failure::Torn),
        FailAction::Delay(d) => {
            std::thread::sleep(d);
            None
        }
        FailAction::Panic => panic!("failpoint `{site}` fired (hit {hit})"),
        FailAction::Abort => std::process::abort(),
        FailAction::Exit(code) => std::process::exit(code),
    }
}

/// Times the named site fired under the current plan (0 if unarmed).
pub fn fired(site: &str) -> u64 {
    counter(site, |s| s.fires.load(Ordering::Relaxed))
}

/// Times the named site was evaluated under the current plan.
pub fn hits(site: &str) -> u64 {
    counter(site, |s| s.hits.load(Ordering::Relaxed))
}

fn counter(site: &str, read: impl Fn(&Site) -> u64) -> u64 {
    PLAN.read()
        .expect("failpoint plan lock")
        .as_ref()
        .and_then(|plan| plan.sites.iter().find(|s| s.name == site).map(read))
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Mutex;

    /// Failpoint state is process-global; these tests serialize on this
    /// lock and clear the plan on drop so parallel test threads never
    /// see each other's schedules.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    struct Armed<'a>(#[allow(dead_code)] std::sync::MutexGuard<'a, ()>);
    impl Drop for Armed<'_> {
        fn drop(&mut self) {
            clear();
        }
    }

    fn arm(seed: u64, sites: &[(&str, SiteSpec)]) -> Armed<'static> {
        let guard = TEST_LOCK
            .lock()
            .unwrap_or_else(|poison| poison.into_inner());
        install(seed, sites);
        Armed(guard)
    }

    #[test]
    fn disarmed_sites_never_fire() {
        let _armed = arm(1, &[]);
        clear();
        for _ in 0..100 {
            assert!(check("persist.write_atomic").is_none());
        }
    }

    #[test]
    fn unconfigured_sites_are_inert_even_when_armed() {
        let _armed = arm(1, &[("some.other.site", SiteSpec::once(FailAction::Error))]);
        for _ in 0..100 {
            assert!(check("persist.write_atomic").is_none());
        }
        assert_eq!(fired("some.other.site"), 0);
    }

    #[test]
    fn once_spec_fires_exactly_once() {
        let _armed = arm(7, &[("site.a", SiteSpec::once(FailAction::Error))]);
        let outcomes: Vec<bool> = (0..50).map(|_| check("site.a").is_some()).collect();
        assert_eq!(outcomes.iter().filter(|f| **f).count(), 1);
        assert!(outcomes[0], "probability 1.0 fires on the first hit");
        assert_eq!(fired("site.a"), 1);
        assert_eq!(hits("site.a"), 50);
    }

    #[test]
    fn schedule_is_a_pure_function_of_seed_site_and_hit() {
        let spec = SiteSpec {
            action: FailAction::Error,
            probability: 0.3,
            max_fires: None,
        };
        let run = |seed: u64| -> Vec<bool> {
            let _armed = arm(seed, &[("site.det", spec)]);
            (0..200).map(|_| check("site.det").is_some()).collect()
        };
        let first = run(0x5EED);
        let second = run(0x5EED);
        assert_eq!(first, second, "same seed, same schedule");
        let fires = first.iter().filter(|f| **f).count();
        assert!((20..=120).contains(&fires), "p=0.3 over 200 hits: {fires}");
        let other = run(0x0DD);
        assert_ne!(first, other, "different seed, different schedule");
    }

    #[test]
    fn delay_action_sleeps_then_proceeds() {
        let _armed = arm(
            3,
            &[(
                "site.slow",
                SiteSpec::once(FailAction::Delay(Duration::from_millis(30))),
            )],
        );
        let start = std::time::Instant::now();
        assert!(check("site.slow").is_none(), "delay does not fail the call");
        assert!(start.elapsed() >= Duration::from_millis(25));
        assert_eq!(fired("site.slow"), 1);
    }

    #[test]
    fn env_syntax_round_trips() {
        let sites: Vec<(&str, SiteSpec)> = vec![
            (
                "registry.commit.entry",
                SiteSpec {
                    action: FailAction::Error,
                    probability: 0.25,
                    max_fires: Some(3),
                },
            ),
            ("persist.write_atomic", SiteSpec::once(FailAction::Torn)),
            (
                "serve.handler",
                SiteSpec {
                    action: FailAction::Delay(Duration::from_millis(15)),
                    probability: 0.5,
                    max_fires: None,
                },
            ),
            ("distributed.worker.eval", SiteSpec::once(FailAction::Abort)),
            (
                "site.exit",
                SiteSpec {
                    action: FailAction::Exit(9),
                    probability: 1.0,
                    max_fires: Some(2),
                },
            ),
        ];
        let text = render_plan(0xC0FFEE, &sites);
        let (seed, parsed) = parse_plan(&text).expect("rendered plan parses");
        assert_eq!(seed, 0xC0FFEE);
        assert_eq!(parsed.len(), sites.len());
        for ((name, spec), (pname, pspec)) in sites.iter().zip(&parsed) {
            assert_eq!(name, pname);
            assert_eq!(spec, pspec);
        }
    }

    #[test]
    fn malformed_plans_are_rejected() {
        for bad in [
            "no-equals-sign",
            "seed=zzz",
            "site=frobnicate@1",
            "site=error@1.5",
            "site=error@-0.1",
            "site=error@0.5@x",
            "site=error@0.5@1@extra",
            "site=delay:abc@1",
            "site=exit:abc@1",
        ] {
            assert!(parse_plan(bad).is_err(), "`{bad}` should be rejected");
        }
        // Empty clauses and whitespace are tolerated.
        let (seed, sites) = parse_plan(" seed=7 ; ; a.b=error@0.5 ").expect("valid");
        assert_eq!(seed, 7);
        assert_eq!(sites.len(), 1);
        assert_eq!(sites[0].0, "a.b");
    }
}
