//! Design spaces: ordered parameter sets, point indexing, and encoding.
//!
//! A [`DesignSpace`] spans the cross product of its parameters' levels.
//! Every point has a stable index in `0..size()` (mixed-radix order), which
//! is what the samplers draw from; [`DesignSpace::encode`] turns a point
//! into the normalized feature vector the networks consume (§3.3).

// User-reachable failures must surface as typed `SpaceError`s, not
// panics; the lint holds this file to that (tests opt back out).
#![deny(clippy::unwrap_used)]

use crate::param::{Param, ParamKind, ParamValue};

/// One configuration: a level index per parameter.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct DesignPoint(pub Vec<usize>);

impl DesignPoint {
    /// Level index chosen for parameter `p`.
    pub fn level(&self, p: usize) -> usize {
        self.0[p]
    }
}

/// Errors constructing or querying a design space.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpaceError {
    /// A space needs at least one parameter.
    Empty,
    /// A linked parameter referenced itself or a later parameter.
    BadParent {
        /// Offending parameter index.
        param: usize,
    },
    /// A linked parameter's choice rows don't match its parent's levels.
    ChoiceRowMismatch {
        /// Offending parameter index.
        param: usize,
        /// Rows provided.
        rows: usize,
        /// Parent's level count.
        parent_levels: usize,
    },
    /// A point index at or beyond [`DesignSpace::size`].
    IndexOutOfRange {
        /// The offending index.
        index: usize,
        /// The space's size.
        size: usize,
    },
    /// A point with the wrong number of levels for this space.
    ArityMismatch {
        /// Levels the point carries.
        got: usize,
        /// Parameters the space has.
        want: usize,
    },
    /// A point level at or beyond its parameter's level count.
    LevelOutOfRange {
        /// The offending parameter's name.
        param: String,
        /// The level requested.
        level: usize,
        /// Levels the parameter has.
        levels: usize,
    },
    /// No parameter has the requested name.
    NoSuchParam {
        /// The name looked up.
        name: String,
    },
    /// The named parameter has no numeric value.
    NotQuantitative {
        /// The parameter's name.
        name: String,
    },
    /// The named parameter has no categorical value.
    NotNominal {
        /// The parameter's name.
        name: String,
    },
}

impl std::fmt::Display for SpaceError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SpaceError::Empty => write!(f, "design space has no parameters"),
            SpaceError::BadParent { param } => {
                write!(f, "parameter {param} links to itself or a later parameter")
            }
            SpaceError::ChoiceRowMismatch {
                param,
                rows,
                parent_levels,
            } => write!(
                f,
                "parameter {param} has {rows} choice rows but its parent has {parent_levels} levels"
            ),
            SpaceError::IndexOutOfRange { index, size } => {
                write!(f, "index {index} out of space ({size} points)")
            }
            SpaceError::ArityMismatch { got, want } => {
                write!(
                    f,
                    "point arity mismatch: {got} levels for {want} parameters"
                )
            }
            SpaceError::LevelOutOfRange {
                param,
                level,
                levels,
            } => write!(
                f,
                "level {level} out of range for {param} ({levels} levels)"
            ),
            SpaceError::NoSuchParam { name } => write!(f, "no parameter named {name}"),
            SpaceError::NotQuantitative { name } => {
                write!(f, "parameter {name} is not quantitative")
            }
            SpaceError::NotNominal { name } => write!(f, "parameter {name} is not nominal"),
        }
    }
}

impl std::error::Error for SpaceError {}

/// An architectural design space (e.g. Table 4.1 or 4.2).
#[derive(Debug, Clone, PartialEq)]
pub struct DesignSpace {
    params: Vec<Param>,
    /// Per-parameter minimax range `(lo, hi)` over the space, precomputed
    /// at construction so encoding a point does not re-fold the level
    /// lists (the batched sweep encodes millions of points). `(0, 1)` for
    /// parameters whose encoding doesn't scale (nominal, boolean).
    ranges: Vec<(f64, f64)>,
    /// Mixed-radix stride per parameter: `level(index, p) =
    /// (index / strides[p]) % params[p].levels()`. Lets the hot sweep path
    /// encode straight from an index without materializing a
    /// [`DesignPoint`].
    strides: Vec<usize>,
}

impl DesignSpace {
    /// Builds and validates a space from its parameters.
    ///
    /// # Errors
    ///
    /// Returns a [`SpaceError`] if the space is empty or a linked
    /// parameter's structure is inconsistent.
    pub fn new(params: Vec<Param>) -> Result<Self, SpaceError> {
        if params.is_empty() {
            return Err(SpaceError::Empty);
        }
        for (i, p) in params.iter().enumerate() {
            if let ParamKind::LinkedCardinal { parent, choices } = p.kind() {
                if *parent >= i {
                    return Err(SpaceError::BadParent { param: i });
                }
                let parent_levels = params[*parent].levels();
                if choices.len() != parent_levels {
                    return Err(SpaceError::ChoiceRowMismatch {
                        param: i,
                        rows: choices.len(),
                        parent_levels,
                    });
                }
            }
        }
        let ranges = params
            .iter()
            .map(|p| match p.kind() {
                ParamKind::Cardinal(v) => fold_range(v.iter().copied()),
                ParamKind::LinkedCardinal { choices, .. } => {
                    fold_range(choices.iter().flatten().copied())
                }
                ParamKind::Nominal(_) | ParamKind::Boolean => (0.0, 1.0),
            })
            .collect();
        let mut stride = 1;
        let strides = params
            .iter()
            .map(|p| {
                let s = stride;
                stride *= p.levels();
                s
            })
            .collect();
        Ok(Self {
            params,
            ranges,
            strides,
        })
    }

    /// The parameters, in declaration order.
    pub fn params(&self) -> &[Param] {
        &self.params
    }

    /// Total number of design points (the cross product of level counts).
    pub fn size(&self) -> usize {
        self.params.iter().map(Param::levels).product()
    }

    /// Decodes a point from its index in `0..size()` (mixed-radix,
    /// first parameter fastest), or
    /// [`SpaceError::IndexOutOfRange`] beyond the space.
    pub fn try_point(&self, index: usize) -> Result<DesignPoint, SpaceError> {
        if index >= self.size() {
            return Err(SpaceError::IndexOutOfRange {
                index,
                size: self.size(),
            });
        }
        let mut rest = index;
        let levels = self
            .params
            .iter()
            .map(|p| {
                let l = p.levels();
                let choice = rest % l;
                rest /= l;
                choice
            })
            .collect();
        Ok(DesignPoint(levels))
    }

    /// Decodes a point from its index in `0..size()` (mixed-radix,
    /// first parameter fastest).
    ///
    /// # Panics
    ///
    /// Panics if `index >= size()` ([`DesignSpace::try_point`] returns the
    /// condition as a typed error instead).
    pub fn point(&self, index: usize) -> DesignPoint {
        self.try_point(index).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Encodes a point back to its index, or a typed error if the point's
    /// shape or any level is out of range.
    pub fn try_index(&self, point: &DesignPoint) -> Result<usize, SpaceError> {
        if point.0.len() != self.params.len() {
            return Err(SpaceError::ArityMismatch {
                got: point.0.len(),
                want: self.params.len(),
            });
        }
        let mut index = 0;
        let mut stride = 1;
        for (p, &level) in self.params.iter().zip(&point.0) {
            if level >= p.levels() {
                return Err(SpaceError::LevelOutOfRange {
                    param: p.name().to_owned(),
                    level,
                    levels: p.levels(),
                });
            }
            index += level * stride;
            stride *= p.levels();
        }
        Ok(index)
    }

    /// Encodes a point back to its index.
    ///
    /// # Panics
    ///
    /// Panics if the point's shape or any level is out of range
    /// ([`DesignSpace::try_index`] returns the condition as a typed error
    /// instead).
    pub fn index(&self, point: &DesignPoint) -> usize {
        self.try_index(point).unwrap_or_else(|e| panic!("{e}"))
    }

    /// The concrete value parameter `p` takes at `point`.
    pub fn value(&self, point: &DesignPoint, p: usize) -> ParamValue {
        let level = point.level(p);
        match self.params[p].kind() {
            ParamKind::Cardinal(v) => ParamValue::Number(v[level]),
            ParamKind::Nominal(v) => ParamValue::Choice(v[level].clone()),
            ParamKind::Boolean => ParamValue::Flag(level == 1),
            ParamKind::LinkedCardinal { parent, choices } => {
                ParamValue::Number(choices[point.level(*parent)][level])
            }
        }
    }

    /// Looks up a parameter's index by name.
    pub fn param_index(&self, name: &str) -> Option<usize> {
        self.params.iter().position(|p| p.name() == name)
    }

    /// The numeric value of the named parameter at `point`, or a typed
    /// error if no parameter has that name or it is not quantitative.
    pub fn try_number(&self, point: &DesignPoint, name: &str) -> Result<f64, SpaceError> {
        let p = self
            .param_index(name)
            .ok_or_else(|| SpaceError::NoSuchParam {
                name: name.to_owned(),
            })?;
        self.value(point, p)
            .as_number()
            .ok_or_else(|| SpaceError::NotQuantitative {
                name: name.to_owned(),
            })
    }

    /// The numeric value of the named parameter at `point`.
    ///
    /// # Panics
    ///
    /// Panics if no parameter has that name or it is not quantitative
    /// ([`DesignSpace::try_number`] returns the condition as a typed error
    /// instead).
    pub fn number(&self, point: &DesignPoint, name: &str) -> f64 {
        self.try_number(point, name)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The categorical value of the named parameter at `point`, or a typed
    /// error if no parameter has that name or it is not nominal.
    pub fn try_choice(&self, point: &DesignPoint, name: &str) -> Result<String, SpaceError> {
        let p = self
            .param_index(name)
            .ok_or_else(|| SpaceError::NoSuchParam {
                name: name.to_owned(),
            })?;
        self.value(point, p)
            .as_choice()
            .map(str::to_owned)
            .ok_or_else(|| SpaceError::NotNominal {
                name: name.to_owned(),
            })
    }

    /// The categorical value of the named parameter at `point`.
    ///
    /// # Panics
    ///
    /// Panics if no parameter has that name or it is not nominal
    /// ([`DesignSpace::try_choice`] returns the condition as a typed error
    /// instead).
    pub fn choice(&self, point: &DesignPoint, name: &str) -> String {
        self.try_choice(point, name)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Width of the encoded feature vector.
    pub fn encoded_width(&self) -> usize {
        self.params.iter().map(|p| p.kind().encoded_width()).sum()
    }

    /// A stable 64-bit fingerprint of the space's structure: parameter
    /// names, kinds, and every level value, in declaration order (FNV-1a
    /// over the exact bits). Two spaces fingerprint equal iff they index
    /// and encode identically, so persisted model artifacts stamped with
    /// this value fail loudly instead of mispredicting when a parameter
    /// is added, reordered, or its levels change.
    pub fn fingerprint(&self) -> u64 {
        use archpredict_stats::hash::{fnv1a_64_extend, FNV_OFFSET};
        let mut h = FNV_OFFSET;
        let fold_f64s = |h: &mut u64, values: &mut dyn Iterator<Item = f64>| {
            for v in values {
                *h = fnv1a_64_extend(*h, &v.to_bits().to_le_bytes());
            }
        };
        for p in &self.params {
            h = fnv1a_64_extend(h, p.name().as_bytes());
            // NUL separates name from payload (parameter names never
            // contain it), so ("ab", "c") and ("a", "bc") differ.
            h = fnv1a_64_extend(h, &[0]);
            match p.kind() {
                ParamKind::Cardinal(v) => {
                    h = fnv1a_64_extend(h, b"cardinal");
                    fold_f64s(&mut h, &mut v.iter().copied());
                }
                ParamKind::Nominal(v) => {
                    h = fnv1a_64_extend(h, b"nominal");
                    for s in v {
                        h = fnv1a_64_extend(h, s.as_bytes());
                        h = fnv1a_64_extend(h, &[0]);
                    }
                }
                ParamKind::Boolean => {
                    h = fnv1a_64_extend(h, b"boolean");
                }
                ParamKind::LinkedCardinal { parent, choices } => {
                    h = fnv1a_64_extend(h, b"linked");
                    h = fnv1a_64_extend(h, &(*parent as u64).to_le_bytes());
                    for row in choices {
                        h = fnv1a_64_extend(h, &(row.len() as u64).to_le_bytes());
                        fold_f64s(&mut h, &mut row.iter().copied());
                    }
                }
            }
        }
        h
    }

    /// Iterates over every point of the space in index order.
    ///
    /// # Example
    ///
    /// ```
    /// use archpredict::{DesignSpace, Param};
    /// let space = DesignSpace::new(vec![Param::boolean("x"), Param::boolean("y")])?;
    /// assert_eq!(space.iter().count(), 4);
    /// # Ok::<(), archpredict::SpaceError>(())
    /// ```
    pub fn iter(&self) -> impl Iterator<Item = DesignPoint> + '_ {
        (0..self.size()).map(|i| self.point(i))
    }

    /// Encodes `point` per §3.3: cardinal/linked values minimax-scaled to
    /// `[0, 1]` using the parameter's full range over the space, nominals
    /// one-hot, booleans 0/1.
    pub fn encode(&self, point: &DesignPoint) -> Vec<f64> {
        let mut features = Vec::with_capacity(self.encoded_width());
        self.encode_into(point, &mut features);
        features
    }

    /// Encodes `point`, *appending* its `encoded_width()` features to
    /// `features` — the building block for row-major feature matrices in
    /// batched inference (no allocation per point once the buffer is
    /// warm). Bit-for-bit identical to [`DesignSpace::encode`].
    pub fn encode_into(&self, point: &DesignPoint, features: &mut Vec<f64>) {
        self.encode_levels_into(|p| point.level(p), features);
    }

    /// Encodes the point at `index` straight from its mixed-radix
    /// decomposition, *appending* its `encoded_width()` features — the hot
    /// path of batched sweeps: no [`DesignPoint`] is materialized and no
    /// per-point allocation happens. Bit-for-bit identical to
    /// `encode_into(&self.point(index), ..)`.
    ///
    /// # Panics
    ///
    /// Panics if `index >= size()`.
    pub fn encode_index_into(&self, index: usize, features: &mut Vec<f64>) {
        assert!(
            index < self.size(),
            "index {index} out of space ({} points)",
            self.size()
        );
        self.encode_levels_into(
            |p| (index / self.strides[p]) % self.params[p].levels(),
            features,
        );
    }

    /// Shared encoding body over a level accessor, using the precomputed
    /// per-parameter minimax ranges.
    fn encode_levels_into(&self, level: impl Fn(usize) -> usize, features: &mut Vec<f64>) {
        for (p, param) in self.params.iter().enumerate() {
            let (lo, hi) = self.ranges[p];
            match param.kind() {
                ParamKind::Cardinal(v) => {
                    features.push(minimax(v[level(p)], lo, hi));
                }
                ParamKind::Nominal(v) => {
                    for s in 0..v.len() {
                        features.push(if s == level(p) { 1.0 } else { 0.0 });
                    }
                }
                ParamKind::Boolean => features.push(level(p) as f64),
                ParamKind::LinkedCardinal { parent, choices } => {
                    features.push(minimax(choices[level(*parent)][level(p)], lo, hi));
                }
            }
        }
    }
}

/// `(lo, hi)` of a level list, the fold [`minimax`] scaling is defined
/// over. Computed once per parameter at space construction.
fn fold_range(levels: impl Iterator<Item = f64>) -> (f64, f64) {
    levels.fold((f64::INFINITY, f64::NEG_INFINITY), |(lo, hi), v| {
        (lo.min(v), hi.max(v))
    })
}

fn minimax(value: f64, min: f64, max: f64) -> f64 {
    if max > min {
        (value - min) / (max - min)
    } else {
        0.5
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;

    fn toy_space() -> DesignSpace {
        DesignSpace::new(vec![
            Param::cardinal("rob", [96.0, 128.0, 160.0]),
            Param::nominal("policy", ["WT", "WB"]),
            Param::boolean("prefetch"),
            Param::linked_cardinal(
                "regs",
                0,
                vec![vec![64.0, 80.0], vec![80.0, 96.0], vec![96.0, 112.0]],
            ),
        ])
        .unwrap()
    }

    #[test]
    fn size_is_cross_product() {
        assert_eq!(toy_space().size(), 3 * 2 * 2 * 2);
    }

    #[test]
    fn index_point_round_trip() {
        let space = toy_space();
        for i in 0..space.size() {
            let p = space.point(i);
            assert_eq!(space.index(&p), i);
        }
    }

    #[test]
    fn values_resolve_linked_parameters() {
        let space = toy_space();
        // rob level 2 (160), regs level 1 -> 112.
        let point = DesignPoint(vec![2, 0, 0, 1]);
        assert_eq!(space.number(&point, "rob"), 160.0);
        assert_eq!(space.number(&point, "regs"), 112.0);
        assert_eq!(space.choice(&point, "policy"), "WT");
        // rob level 0 (96), regs level 1 -> 80.
        let point = DesignPoint(vec![0, 1, 1, 1]);
        assert_eq!(space.number(&point, "regs"), 80.0);
        assert_eq!(space.choice(&point, "policy"), "WB");
    }

    #[test]
    fn encoding_layout_matches_figure_3_4() {
        let space = toy_space();
        assert_eq!(space.encoded_width(), 1 + 2 + 1 + 1);
        let point = DesignPoint(vec![1, 1, 0, 0]);
        let f = space.encode(&point);
        assert_eq!(f.len(), 5);
        assert_eq!(f[0], 0.5); // 128 in [96, 160]
        assert_eq!(&f[1..3], &[0.0, 1.0]); // one-hot WB
        assert_eq!(f[3], 0.0); // prefetch off
                               // regs=80 within global range [64, 112].
        assert!((f[4] - (80.0 - 64.0) / (112.0 - 64.0)).abs() < 1e-12);
    }

    #[test]
    fn iter_visits_every_point_in_order() {
        let space = toy_space();
        let points: Vec<DesignPoint> = space.iter().collect();
        assert_eq!(points.len(), space.size());
        for (i, p) in points.iter().enumerate() {
            assert_eq!(space.index(p), i);
        }
    }

    #[test]
    fn encoding_is_injective_over_space() {
        let space = toy_space();
        let mut seen = std::collections::HashSet::new();
        for i in 0..space.size() {
            let f = space.encode(&space.point(i));
            let key: Vec<u64> = f.iter().map(|x| x.to_bits()).collect();
            assert!(seen.insert(key), "duplicate encoding at index {i}");
        }
    }

    #[test]
    fn fingerprint_tracks_structure() {
        let space = toy_space();
        assert_eq!(space.fingerprint(), toy_space().fingerprint());
        assert_eq!(space.fingerprint(), space.clone().fingerprint());
        // Renaming, reordering, or changing one level value all change it.
        let renamed = DesignSpace::new(vec![
            Param::cardinal("rob2", [96.0, 128.0, 160.0]),
            Param::nominal("policy", ["WT", "WB"]),
            Param::boolean("prefetch"),
            Param::linked_cardinal(
                "regs",
                0,
                vec![vec![64.0, 80.0], vec![80.0, 96.0], vec![96.0, 112.0]],
            ),
        ])
        .unwrap();
        assert_ne!(space.fingerprint(), renamed.fingerprint());
        let tweaked = DesignSpace::new(vec![
            Param::cardinal("rob", [96.0, 128.0, 161.0]),
            Param::nominal("policy", ["WT", "WB"]),
            Param::boolean("prefetch"),
            Param::linked_cardinal(
                "regs",
                0,
                vec![vec![64.0, 80.0], vec![80.0, 96.0], vec![96.0, 112.0]],
            ),
        ])
        .unwrap();
        assert_ne!(space.fingerprint(), tweaked.fingerprint());
        // Name/kind boundaries are framed: ("ab"+"c") != ("a"+"bc").
        let a = DesignSpace::new(vec![Param::nominal("p", ["ab", "c"])]).unwrap();
        let b = DesignSpace::new(vec![Param::nominal("p", ["a", "bc"])]).unwrap();
        assert_ne!(a.fingerprint(), b.fingerprint());
    }

    #[test]
    fn validation_errors() {
        assert_eq!(DesignSpace::new(vec![]).unwrap_err(), SpaceError::Empty);
        let err =
            DesignSpace::new(vec![Param::linked_cardinal("r", 0, vec![vec![1.0]])]).unwrap_err();
        assert_eq!(err, SpaceError::BadParent { param: 0 });
        let err = DesignSpace::new(vec![
            Param::cardinal("a", [1.0, 2.0]),
            Param::linked_cardinal("r", 0, vec![vec![1.0]]),
        ])
        .unwrap_err();
        assert!(matches!(err, SpaceError::ChoiceRowMismatch { .. }));
    }

    #[test]
    #[should_panic(expected = "out of space")]
    fn out_of_range_index_panics() {
        let space = toy_space();
        space.point(space.size());
    }

    #[test]
    fn queries_surface_typed_errors() {
        let space = toy_space();
        assert_eq!(
            space.try_point(space.size()),
            Err(SpaceError::IndexOutOfRange {
                index: space.size(),
                size: space.size(),
            })
        );
        assert_eq!(
            space.try_index(&DesignPoint(vec![0, 0])),
            Err(SpaceError::ArityMismatch { got: 2, want: 4 })
        );
        assert_eq!(
            space.try_index(&DesignPoint(vec![0, 9, 0, 0])),
            Err(SpaceError::LevelOutOfRange {
                param: "policy".into(),
                level: 9,
                levels: 2,
            })
        );
        let point = space.point(0);
        assert_eq!(
            space.try_number(&point, "nope"),
            Err(SpaceError::NoSuchParam {
                name: "nope".into()
            })
        );
        assert_eq!(
            space.try_number(&point, "policy"),
            Err(SpaceError::NotQuantitative {
                name: "policy".into()
            })
        );
        assert_eq!(
            space.try_choice(&point, "rob"),
            Err(SpaceError::NotNominal { name: "rob".into() })
        );
        // Happy paths agree with the panicking accessors.
        assert_eq!(space.try_point(5).unwrap(), space.point(5));
        assert_eq!(space.try_index(&point).unwrap(), 0);
        assert_eq!(space.try_number(&point, "rob").unwrap(), 96.0);
        assert_eq!(space.try_choice(&point, "policy").unwrap(), "WT");
    }
}
