//! Crash-safe checkpointing of exploration state.
//!
//! After every refinement round the [`crate::explorer::Explorer`] can
//! persist an [`ExplorerState`] snapshot — sampler position, RNG state,
//! training set, quarantine, and full round history — to
//! `results/checkpoints/{tag}/state.json` via the atomic
//! [`crate::persist::write_atomic`] path. A study killed at any point
//! (`kill -9` included) resumes from the last completed round with
//! [`crate::explorer::Explorer::resume`], and because every stochastic
//! stream is restored bit-for-bit, the resumed run's learning curve is
//! byte-for-byte identical to the uninterrupted one.
//!
//! # Format
//!
//! JSON, written with the workspace's own round-tripping writer
//! ([`archpredict_stats::json`]): finite floats use Rust's shortest
//! round-trip formatting, and 64-bit seeds / RNG state words are encoded
//! as **hex strings** because a JSON number (an `f64`) cannot represent
//! every `u64` exactly.

use crate::campaign::Round;
use crate::persist::write_atomic;
use crate::simulate::SimStats;
use archpredict_ann::cross_validation::{ErrorEstimate, FoldRecord};
use archpredict_ann::{Parallelism, TrainConfig};
use archpredict_stats::json::{JsonError, Value};
use archpredict_stats::sampling::SamplerState;
use std::path::Path;

/// Current checkpoint schema version.
pub const CHECKPOINT_VERSION: u64 = 1;

/// Why a checkpoint could not be saved or restored.
#[derive(Debug)]
pub enum CheckpointError {
    /// The checkpoint file could not be read or written.
    Io(std::io::Error),
    /// The file exists but does not parse as a valid checkpoint.
    Corrupt(String),
    /// The checkpoint is valid but was taken under a different seed or
    /// design space than the caller supplied.
    Mismatch(String),
}

impl std::fmt::Display for CheckpointError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CheckpointError::Io(e) => write!(f, "checkpoint I/O error: {e}"),
            CheckpointError::Corrupt(m) => write!(f, "corrupt checkpoint: {m}"),
            CheckpointError::Mismatch(m) => write!(f, "checkpoint mismatch: {m}"),
        }
    }
}

impl std::error::Error for CheckpointError {}

impl From<std::io::Error> for CheckpointError {
    fn from(e: std::io::Error) -> Self {
        CheckpointError::Io(e)
    }
}

impl From<JsonError> for CheckpointError {
    fn from(e: JsonError) -> Self {
        CheckpointError::Corrupt(e.to_string())
    }
}

/// The network-training hyperparameters in force when the last ensemble
/// was fit, minus the [`Parallelism`] knob: thread count never affects
/// results, so the resumed run applies the *caller's* parallelism.
#[derive(Debug, Clone, PartialEq)]
pub struct TrainSnapshot {
    /// Hidden units in the first hidden layer.
    pub hidden_units: usize,
    /// Units in the optional second hidden layer (0 = none).
    pub second_hidden_units: usize,
    /// Gradient-descent step size.
    pub learning_rate: f64,
    /// Momentum coefficient.
    pub momentum: f64,
    /// Hard cap on training epochs.
    pub max_epochs: usize,
    /// Early-stopping patience.
    pub patience: usize,
    /// Percentage-error training mode.
    pub percentage_error: bool,
}

impl TrainSnapshot {
    /// Captures the result-affecting fields of `config`.
    pub fn of(config: &TrainConfig) -> Self {
        Self {
            hidden_units: config.hidden_units,
            second_hidden_units: config.second_hidden_units,
            learning_rate: config.learning_rate,
            momentum: config.momentum,
            max_epochs: config.max_epochs,
            patience: config.patience,
            percentage_error: config.percentage_error,
        }
    }

    /// Rebuilds a full [`TrainConfig`] under the given worker policy.
    pub fn to_config(&self, parallelism: Parallelism) -> TrainConfig {
        TrainConfig {
            hidden_units: self.hidden_units,
            second_hidden_units: self.second_hidden_units,
            learning_rate: self.learning_rate,
            momentum: self.momentum,
            max_epochs: self.max_epochs,
            patience: self.patience,
            percentage_error: self.percentage_error,
            parallelism,
        }
    }

    fn to_json_value(&self) -> Value {
        Value::Object(vec![
            ("hidden_units".into(), Value::num(self.hidden_units as f64)),
            (
                "second_hidden_units".into(),
                Value::num(self.second_hidden_units as f64),
            ),
            ("learning_rate".into(), Value::num(self.learning_rate)),
            ("momentum".into(), Value::num(self.momentum)),
            ("max_epochs".into(), Value::num(self.max_epochs as f64)),
            ("patience".into(), Value::num(self.patience as f64)),
            (
                "percentage_error".into(),
                Value::Bool(self.percentage_error),
            ),
        ])
    }

    fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        Ok(Self {
            hidden_units: value.get("hidden_units")?.as_usize()?,
            second_hidden_units: value.get("second_hidden_units")?.as_usize()?,
            learning_rate: value.get("learning_rate")?.as_f64()?,
            momentum: value.get("momentum")?.as_f64()?,
            max_epochs: value.get("max_epochs")?.as_usize()?,
            patience: value.get("patience")?.as_usize()?,
            percentage_error: value.get("percentage_error")?.as_bool()?,
        })
    }
}

/// A complete, restorable snapshot of an explorer after a round.
#[derive(Debug, Clone, PartialEq)]
pub struct ExplorerState {
    /// The master seed the run was configured with (validated on resume).
    pub seed: u64,
    /// Size of the design space (validated on resume).
    pub space_size: usize,
    /// The explorer's training-seed RNG state *after* the last round
    /// consumed its fit seed.
    pub rng: [u64; 4],
    /// The incremental sampler's full state (drawn count + sparse
    /// Fisher–Yates swaps + its RNG).
    pub sampler: SamplerState,
    /// The training set as `(point index, measured metric)` pairs, in
    /// collection order. Features are re-encoded from the space on resume.
    pub samples: Vec<(usize, f64)>,
    /// Indices the run gave up on (failed every retry); excluded from
    /// future batches and held-out sets.
    pub quarantined: Vec<usize>,
    /// The seed handed to `fit_ensemble` for the last round, so resume can
    /// refit the identical ensemble.
    pub last_fit_seed: Option<u64>,
    /// The training hyperparameters in force at the last fit.
    pub last_train: Option<TrainSnapshot>,
    /// Full round history.
    pub rounds: Vec<Round>,
}

fn hex(x: u64) -> Value {
    Value::Str(format!("{x:016x}"))
}

fn from_hex(value: &Value) -> Result<u64, JsonError> {
    let s = value.as_str()?;
    u64::from_str_radix(s, 16).map_err(|_| JsonError::custom(format!("bad hex u64 {s:?}")))
}

fn rng_to_json(state: &[u64; 4]) -> Value {
    Value::Array(state.iter().map(|&w| hex(w)).collect())
}

fn rng_from_json(value: &Value) -> Result<[u64; 4], JsonError> {
    let words = value.as_array()?;
    if words.len() != 4 {
        return Err(JsonError::custom(format!(
            "RNG state needs 4 words, got {}",
            words.len()
        )));
    }
    Ok([
        from_hex(&words[0])?,
        from_hex(&words[1])?,
        from_hex(&words[2])?,
        from_hex(&words[3])?,
    ])
}

fn stats_to_json(stats: &SimStats) -> Value {
    Value::Object(vec![
        (
            "unique_simulations".into(),
            Value::num(stats.unique_simulations as f64),
        ),
        ("cache_hits".into(), Value::num(stats.cache_hits as f64)),
        (
            "simulated_instructions".into(),
            Value::num(stats.simulated_instructions as f64),
        ),
        ("wall_seconds".into(), Value::num(stats.wall_seconds)),
        ("failures".into(), Value::num(stats.failures as f64)),
        ("retries".into(), Value::num(stats.retries as f64)),
        ("quarantined".into(), Value::num(stats.quarantined as f64)),
        ("resampled".into(), Value::num(stats.resampled as f64)),
    ])
}

fn stats_from_json(value: &Value) -> Result<SimStats, JsonError> {
    Ok(SimStats {
        unique_simulations: value.get("unique_simulations")?.as_u64()?,
        cache_hits: value.get("cache_hits")?.as_u64()?,
        simulated_instructions: value.get("simulated_instructions")?.as_u64()?,
        wall_seconds: value.get("wall_seconds")?.as_f64()?,
        failures: value.get("failures")?.as_u64()?,
        retries: value.get("retries")?.as_u64()?,
        quarantined: value.get("quarantined")?.as_u64()?,
        resampled: value.get("resampled")?.as_u64()?,
    })
}

fn fold_to_json(fold: &FoldRecord) -> Value {
    Value::Object(vec![
        ("fold".into(), Value::num(fold.fold as f64)),
        (
            "train_samples".into(),
            Value::num(fold.train_samples as f64),
        ),
        ("es_samples".into(), Value::num(fold.es_samples as f64)),
        ("test_samples".into(), Value::num(fold.test_samples as f64)),
        ("epochs".into(), Value::num(fold.epochs as f64)),
        ("best_es_error".into(), Value::num(fold.best_es_error)),
        ("seconds".into(), Value::num(fold.seconds)),
        ("reinits".into(), Value::num(fold.reinits as f64)),
    ])
}

fn fold_from_json(value: &Value) -> Result<FoldRecord, JsonError> {
    Ok(FoldRecord {
        fold: value.get("fold")?.as_usize()?,
        train_samples: value.get("train_samples")?.as_usize()?,
        es_samples: value.get("es_samples")?.as_usize()?,
        test_samples: value.get("test_samples")?.as_usize()?,
        epochs: value.get("epochs")?.as_usize()?,
        best_es_error: value.get("best_es_error")?.as_f64_or(f64::INFINITY)?,
        seconds: value.get("seconds")?.as_f64()?,
        reinits: value.get("reinits")?.as_u64()? as u32,
    })
}

fn round_to_json(round: &Round) -> Value {
    Value::Object(vec![
        ("samples".into(), Value::num(round.samples as f64)),
        (
            "fraction_sampled".into(),
            Value::num(round.fraction_sampled),
        ),
        (
            "estimate".into(),
            Value::Object(vec![
                ("mean".into(), Value::num(round.estimate.mean)),
                ("std_dev".into(), Value::num(round.estimate.std_dev)),
                ("points".into(), Value::num(round.estimate.points as f64)),
            ]),
        ),
        (
            "training_seconds".into(),
            Value::num(round.training_seconds),
        ),
        (
            "simulation_seconds".into(),
            Value::num(round.simulation_seconds),
        ),
        ("simulation".into(), stats_to_json(&round.simulation)),
        (
            "prediction_seconds".into(),
            Value::num(round.prediction_seconds),
        ),
        (
            "folds".into(),
            Value::Array(round.folds.iter().map(fold_to_json).collect()),
        ),
    ])
}

fn round_from_json(value: &Value) -> Result<Round, JsonError> {
    let estimate = value.get("estimate")?;
    Ok(Round {
        samples: value.get("samples")?.as_usize()?,
        fraction_sampled: value.get("fraction_sampled")?.as_f64()?,
        estimate: ErrorEstimate {
            mean: estimate.get("mean")?.as_f64_or(f64::INFINITY)?,
            std_dev: estimate.get("std_dev")?.as_f64_or(f64::INFINITY)?,
            points: estimate.get("points")?.as_u64()?,
        },
        training_seconds: value.get("training_seconds")?.as_f64()?,
        simulation_seconds: value.get("simulation_seconds")?.as_f64()?,
        simulation: stats_from_json(value.get("simulation")?)?,
        prediction_seconds: value.get("prediction_seconds")?.as_f64()?,
        folds: value
            .get("folds")?
            .as_array()?
            .iter()
            .map(fold_from_json)
            .collect::<Result<Vec<_>, _>>()?,
    })
}

impl ExplorerState {
    /// Serializes the snapshot to compact JSON.
    pub fn to_json(&self) -> String {
        let sampler = Value::Object(vec![
            (
                "population".into(),
                Value::num(self.sampler.population as f64),
            ),
            ("drawn".into(), Value::num(self.sampler.drawn as f64)),
            (
                "swapped".into(),
                Value::Array(
                    self.sampler
                        .swapped
                        .iter()
                        .map(|&(a, b)| {
                            Value::Array(vec![Value::num(a as f64), Value::num(b as f64)])
                        })
                        .collect(),
                ),
            ),
            ("rng".into(), rng_to_json(&self.sampler.rng)),
        ]);
        let samples = Value::Array(
            self.samples
                .iter()
                .map(|&(index, value)| {
                    Value::Array(vec![Value::num(index as f64), Value::num(value)])
                })
                .collect(),
        );
        Value::Object(vec![
            ("version".into(), Value::num(CHECKPOINT_VERSION as f64)),
            ("seed".into(), hex(self.seed)),
            ("space_size".into(), Value::num(self.space_size as f64)),
            ("rng".into(), rng_to_json(&self.rng)),
            ("sampler".into(), sampler),
            ("samples".into(), samples),
            (
                "quarantined".into(),
                Value::Array(
                    self.quarantined
                        .iter()
                        .map(|&i| Value::num(i as f64))
                        .collect(),
                ),
            ),
            (
                "last_fit_seed".into(),
                match self.last_fit_seed {
                    Some(seed) => hex(seed),
                    None => Value::Null,
                },
            ),
            (
                "last_train".into(),
                match &self.last_train {
                    Some(train) => train.to_json_value(),
                    None => Value::Null,
                },
            ),
            (
                "rounds".into(),
                Value::Array(self.rounds.iter().map(round_to_json).collect()),
            ),
        ])
        .to_json()
    }

    /// Parses a snapshot written by [`ExplorerState::to_json`].
    pub fn from_json(text: &str) -> Result<Self, CheckpointError> {
        let value = Value::parse(text)?;
        let version = value.get("version")?.as_u64()?;
        if version != CHECKPOINT_VERSION {
            return Err(CheckpointError::Mismatch(format!(
                "checkpoint version {version}, this build reads {CHECKPOINT_VERSION}"
            )));
        }
        let sampler = value.get("sampler")?;
        let swapped = sampler
            .get("swapped")?
            .as_array()?
            .iter()
            .map(|pair| {
                let pair = pair.as_array()?;
                if pair.len() != 2 {
                    return Err(JsonError::custom("swap entries are [from, to] pairs"));
                }
                Ok((pair[0].as_usize()?, pair[1].as_usize()?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let samples = value
            .get("samples")?
            .as_array()?
            .iter()
            .map(|pair| {
                let pair = pair.as_array()?;
                if pair.len() != 2 {
                    return Err(JsonError::custom("samples are [index, value] pairs"));
                }
                Ok((pair[0].as_usize()?, pair[1].as_f64()?))
            })
            .collect::<Result<Vec<_>, _>>()?;
        let quarantined = value
            .get("quarantined")?
            .as_array()?
            .iter()
            .map(Value::as_usize)
            .collect::<Result<Vec<_>, _>>()?;
        let last_fit_seed = match value.get("last_fit_seed")? {
            Value::Null => None,
            other => Some(from_hex(other)?),
        };
        let last_train = match value.get("last_train")? {
            Value::Null => None,
            other => Some(TrainSnapshot::from_json_value(other)?),
        };
        let rounds = value
            .get("rounds")?
            .as_array()?
            .iter()
            .map(round_from_json)
            .collect::<Result<Vec<_>, _>>()?;
        Ok(Self {
            seed: from_hex(value.get("seed")?)?,
            space_size: value.get("space_size")?.as_usize()?,
            rng: rng_from_json(value.get("rng")?)?,
            sampler: SamplerState {
                population: sampler.get("population")?.as_usize()?,
                drawn: sampler.get("drawn")?.as_usize()?,
                swapped,
                rng: rng_from_json(sampler.get("rng")?)?,
            },
            samples,
            quarantined,
            last_fit_seed,
            last_train,
            rounds,
        })
    }

    /// Atomically writes the snapshot to `dir/state.json`.
    pub fn save(&self, dir: &Path) -> Result<(), CheckpointError> {
        write_atomic(&dir.join("state.json"), &self.to_json())?;
        Ok(())
    }

    /// Loads the snapshot at `dir/state.json`.
    pub fn load(dir: &Path) -> Result<Self, CheckpointError> {
        let text = std::fs::read_to_string(dir.join("state.json"))?;
        Self::from_json(&text)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn state() -> ExplorerState {
        ExplorerState {
            seed: 0xDEAD_BEEF_CAFE_F00D,
            space_size: 432,
            rng: [u64::MAX, 1, 0x8000_0000_0000_0001, 42],
            sampler: SamplerState {
                population: 432,
                drawn: 100,
                swapped: vec![(3, 431), (17, 401)],
                rng: [9, 8, 7, u64::MAX - 1],
            },
            samples: vec![(3, 0.1 + 0.2), (431, 1.25), (17, f64::MIN_POSITIVE)],
            quarantined: vec![11, 99],
            last_fit_seed: Some(0xFFFF_FFFF_FFFF_FFFF),
            last_train: Some(TrainSnapshot {
                hidden_units: 16,
                second_hidden_units: 0,
                learning_rate: 0.001,
                momentum: 0.5,
                max_epochs: 800,
                patience: 60,
                percentage_error: true,
            }),
            rounds: vec![Round {
                samples: 100,
                fraction_sampled: 100.0 / 432.0,
                estimate: ErrorEstimate {
                    mean: 4.25,
                    std_dev: 1.125,
                    points: 100,
                },
                training_seconds: 0.5,
                simulation_seconds: 0.25,
                simulation: SimStats {
                    unique_simulations: 100,
                    cache_hits: 3,
                    simulated_instructions: 100_000,
                    wall_seconds: 0.25,
                    failures: 7,
                    retries: 5,
                    quarantined: 2,
                    resampled: 2,
                },
                prediction_seconds: 0.0,
                folds: vec![FoldRecord {
                    fold: 0,
                    train_samples: 80,
                    es_samples: 10,
                    test_samples: 10,
                    epochs: 123,
                    best_es_error: 4.5,
                    seconds: 0.05,
                    reinits: 1,
                }],
            }],
        }
    }

    #[test]
    fn json_round_trip_is_exact() {
        let original = state();
        let text = original.to_json();
        let back = ExplorerState::from_json(&text).expect("parse back");
        assert_eq!(back, original);
        // Floats survive bit-for-bit, u64s exactly (both beyond 2^53).
        assert_eq!(back.samples[0].1.to_bits(), (0.1f64 + 0.2).to_bits());
        assert_eq!(back.rng[0], u64::MAX);
        assert_eq!(back.last_fit_seed, Some(u64::MAX));
    }

    #[test]
    fn save_and_load_round_trip_through_disk() {
        let dir = std::env::temp_dir().join(format!("archpredict_ckpt_{}", std::process::id()));
        let original = state();
        original.save(&dir).expect("save");
        let back = ExplorerState::load(&dir).expect("load");
        assert_eq!(back, original);
        // A torn temp file from a killed writer is ignored by readers.
        std::fs::write(dir.join("state.json.tmp"), "{\"version\":").unwrap();
        assert_eq!(ExplorerState::load(&dir).expect("load again"), original);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_and_mismatched_checkpoints_are_typed_errors() {
        assert!(matches!(
            ExplorerState::from_json("{ not json"),
            Err(CheckpointError::Corrupt(_))
        ));
        let text = state()
            .to_json()
            .replace("\"version\":1.0", "\"version\":2");
        assert!(matches!(
            ExplorerState::from_json(&text),
            Err(CheckpointError::Mismatch(_))
        ));
    }
}
