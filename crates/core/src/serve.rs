//! The prediction daemon: a long-running session layer over the
//! [`crate::registry`] store.
//!
//! Every figure binary pays full process-startup cost — load or fit the
//! model, sweep, exit. The daemon amortizes that across requests: it
//! holds warm ensembles in memory, multiplexes concurrent campaigns and
//! prediction requests over plain HTTP/1.1 on `std::net` (no external
//! dependencies, the same hand-rolled-protocol discipline as the worker
//! crate's pipe protocol), and **coalesces** concurrent predictions
//! against the same model into one batched [`crate::infer`] sweep per
//! tick.
//!
//! # Protocol
//!
//! One request per connection (`Connection: close`), JSON bodies both
//! ways. Seeds travel as 16-digit hex strings (JSON numbers are f64 and
//! cannot carry a u64). Endpoints:
//!
//! | Method & path   | Body                                             | Effect |
//! |-----------------|--------------------------------------------------|--------|
//! | `GET /health`   | —                                                | liveness probe (200 even while draining) |
//! | `GET /ready`    | —                                                | readiness probe (503 once draining) |
//! | `GET /stats`    | —                                                | server counters (JSON view) |
//! | `GET /metrics`  | —                                                | process-wide [`crate::telemetry`] registry (plain text) |
//! | `POST /fit`     | model spec (below)                               | load-or-fit via [`Registry::get_or_fit_study`] |
//! | `POST /predict` | model spec + `"indices":[…]`                     | batched predictions |
//! | `POST /shutdown`| —                                                | graceful drain |
//!
//! A model spec is `{"study":"memory","app":"gzip","seed":"00a5ceed",
//! "budget":40}` plus optional `"quick":true` (quick simulation budget),
//! `"batch"`, `"folds"`, `"target_error"`, and `"pool_factor"` (selects
//! active learning). `/predict` never fits: it serves from memory or the
//! registry's warm artifacts and errors if the model was never fitted —
//! fitting is an explicit, expensive act.
//!
//! # Coalescing and bit-identity
//!
//! Concurrent `/predict` calls for one model elect a leader: the first
//! arrival waits one tick for followers to pile in, concatenates all
//! queued index lists, runs **one** [`infer::predict_indices`] sweep and
//! scatters the results back. Because inference is per-index
//! deterministic (each output depends only on its own index — the
//! [`crate::infer`] determinism contract), coalesced predictions are
//! bit-for-bit identical to what each caller would have computed alone,
//! at any batch composition. Responses carry `SimStats`-style telemetry:
//! model cache hit/miss, model age, and the size of the coalesced batch.
//!
//! # Resource bounds and load shedding
//!
//! A long-lived daemon must not let one misbehaving client (or many
//! distinct model specs) grow its footprint without limit:
//!
//! - at most [`ServeConfig::max_connections`] connection threads exist
//!   at once — when all slots are taken the accept loop waits at most
//!   [`ServeConfig::gate_wait`] for one to free, then **sheds** the
//!   connection with `503` + `Retry-After` (`requests_shed` in `/stats`)
//!   instead of blocking the accept loop behind a saturated gate;
//! - request parsing bounds header count and per-line length, and the
//!   socket carries read/write timeouts, so a stalled or malicious
//!   client cannot pin a thread or buffer unbounded memory;
//! - the in-memory model map holds at most [`ServeConfig::max_models`]
//!   ensembles; beyond that the least-recently-used entry is evicted
//!   (`models_evicted` in `/stats`) and reloads warm from the registry
//!   on next use.
//!
//! # Lifecycle
//!
//! `POST /shutdown` — or SIGTERM/SIGINT once the binary calls
//! [`install_signal_handlers`] — triggers a **graceful drain**: the
//! listener closes first (new connections are refused, load balancers
//! see `/ready` flip to 503 beforehand via the draining flag), in-flight
//! connections get up to [`ServeConfig::drain_deadline`] to finish, and
//! a final stats snapshot is flushed to stderr. `/health` stays 200
//! through the drain — liveness and readiness are distinct signals.
//!
//! Each connection runs its handler under `catch_unwind`: a panicking
//! handler answers that client `500`, increments `panics_caught`, and
//! the daemon keeps serving. A panic inside a coalescing leader's sweep
//! fails every follower in the batch with a `500` as well — no follower
//! is left waiting on a dead leader. The dispatch path and the sweep
//! carry [`crate::failpoint`] sites ([`FP_HANDLER`], [`FP_SWEEP`]) so
//! chaos schedules can inject exactly these failures.

use crate::campaign::CampaignConfig;
use crate::failpoint;
use crate::infer;
use crate::registry::{Registry, StudyFitSpec};
use crate::sampling::Strategy;
use crate::space::DesignSpace;
use crate::studies::Study;
use crate::telemetry::{self, Counter};
use archpredict_ann::{Ensemble, Parallelism};
use archpredict_stats::json::Value;
use archpredict_workloads::Benchmark;
use std::collections::HashMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream, ToSocketAddrs};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Upper bound on request bodies (a full-space index list is ~10 MB of
/// JSON; anything past this is a client bug, not a workload).
const MAX_BODY: usize = 64 << 20;
/// Upper bound on one request/header line.
const MAX_HEADER_LINE: usize = 8 << 10;
/// Upper bound on header count per request.
const MAX_HEADERS: usize = 64;
/// Per-operation socket timeout: a request must arrive, and a response
/// drain, in bounded time (a fit may run for minutes between the two —
/// the timeout is per read/write call, not per request).
const IO_TIMEOUT: Duration = Duration::from_secs(30);
/// How often the (nonblocking) accept loop re-checks the shutdown and
/// signal flags while no connection is pending.
const ACCEPT_POLL: Duration = Duration::from_millis(5);

/// Failpoint site evaluated at the top of every request dispatch. The
/// `panic` action exercises per-connection panic isolation; `error`
/// fails the request with a `500`.
pub const FP_HANDLER: &str = "serve.handler";
/// Failpoint site evaluated inside the coalescing leader's sweep, under
/// the same `catch_unwind` isolation as the inference itself — firing
/// `panic` here must fail every follower in the batch, not hang them.
pub const FP_SWEEP: &str = "serve.sweep";

/// Set by the SIGTERM/SIGINT handler; the accept loop treats it exactly
/// like `POST /shutdown`.
static SIGNALED: AtomicBool = AtomicBool::new(false);

/// True once SIGTERM or SIGINT has been delivered after
/// [`install_signal_handlers`].
pub fn shutdown_signaled() -> bool {
    SIGNALED.load(Ordering::SeqCst)
}

/// Routes SIGTERM and SIGINT into the graceful-drain path: the handler
/// only sets an atomic flag, which the accept loop polls every
/// few milliseconds, so the daemon drains instead of dying mid-commit.
/// Process-global; call once from the binary's `main`.
#[cfg(unix)]
pub fn install_signal_handlers() {
    extern "C" fn on_signal(_signum: i32) {
        SIGNALED.store(true, Ordering::SeqCst);
    }
    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
    }
    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;
    unsafe {
        signal(SIGINT, on_signal);
        signal(SIGTERM, on_signal);
    }
}

/// No-op off Unix: the daemon still drains via `POST /shutdown`.
#[cfg(not(unix))]
pub fn install_signal_handlers() {}

/// Server policy.
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Registry root the daemon loads from and fits into.
    pub registry_root: PathBuf,
    /// How long a coalescing leader waits for followers before sweeping.
    pub tick: Duration,
    /// Most connection threads alive at once (further accepts shed after
    /// [`ServeConfig::gate_wait`]).
    pub max_connections: usize,
    /// Most warm models held in memory (least-recently-used eviction).
    pub max_models: usize,
    /// How long the accept loop waits for a free connection slot before
    /// shedding the connection with `503` + `Retry-After`.
    pub gate_wait: Duration,
    /// How long a drain (shutdown request or signal) waits for in-flight
    /// connections to finish before giving up on them.
    pub drain_deadline: Duration,
}

impl Default for ServeConfig {
    fn default() -> Self {
        Self {
            registry_root: PathBuf::from("results/registry"),
            tick: Duration::from_millis(1),
            max_connections: 64,
            max_models: 32,
            gate_wait: Duration::from_secs(2),
            drain_deadline: Duration::from_secs(30),
        }
    }
}

/// Counting semaphore bounding live connection threads.
struct ConnectionGate {
    capacity: usize,
    free: Mutex<usize>,
    freed: Condvar,
}

impl ConnectionGate {
    fn new(slots: usize) -> Self {
        let capacity = slots.max(1);
        Self {
            capacity,
            free: Mutex::new(capacity),
            freed: Condvar::new(),
        }
    }

    /// Claims a slot (released on drop) if one frees within `wait`;
    /// `None` means the caller should shed the connection — the accept
    /// loop must never block indefinitely behind a saturated gate.
    fn acquire_timeout(self: &Arc<Self>, wait: Duration) -> Option<ConnectionPermit> {
        let deadline = Instant::now() + wait;
        let mut free = self.free.lock().expect("connection gate poisoned");
        while *free == 0 {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return None;
            }
            free = self
                .freed
                .wait_timeout(free, left)
                .expect("connection gate poisoned")
                .0;
        }
        *free -= 1;
        Some(ConnectionPermit {
            gate: Arc::clone(self),
        })
    }

    /// Waits until every permit is back (all connection threads done) or
    /// `deadline` passes; `true` means fully idle.
    fn wait_idle(&self, deadline: Instant) -> bool {
        let mut free = self.free.lock().expect("connection gate poisoned");
        while *free < self.capacity {
            let left = deadline.saturating_duration_since(Instant::now());
            if left.is_zero() {
                return false;
            }
            free = self
                .freed
                .wait_timeout(free, left)
                .expect("connection gate poisoned")
                .0;
        }
        true
    }
}

struct ConnectionPermit {
    gate: Arc<ConnectionGate>,
}

impl Drop for ConnectionPermit {
    fn drop(&mut self) {
        *self.gate.free.lock().expect("connection gate poisoned") += 1;
        // Both kinds of waiters (acquirers and the drain's wait_idle) may
        // be parked on this condvar.
        self.gate.freed.notify_all();
    }
}

/// A warm model held in memory, with its per-model coalescing state.
struct ModelEntry {
    space: DesignSpace,
    ensemble: Ensemble,
    loaded_at: Instant,
    /// Logical access stamp (from [`ServerInner::clock`]) for LRU
    /// eviction.
    last_used: AtomicU64,
    batch: Mutex<BatchState>,
}

#[derive(Default)]
struct BatchState {
    jobs: Vec<Job>,
    leader_elected: bool,
}

struct Job {
    indices: Vec<usize>,
    slot: Arc<JobSlot>,
}

/// One job's share of a coalesced sweep, or why the sweep failed.
type SweepShare = Result<(Vec<f64>, BatchTelemetry), String>;

/// Where a follower waits for the leader's sweep to land. A leader that
/// panics (or hits an injected sweep failure) fills every slot with the
/// error before unwinding, so no follower is ever left waiting forever.
#[derive(Default)]
struct JobSlot {
    done: Mutex<Option<SweepShare>>,
    ready: Condvar,
}

/// What one coalesced sweep looked like, reported to every participant.
#[derive(Debug, Clone, Copy)]
struct BatchTelemetry {
    /// Requests merged into the sweep (1 = no coalescing happened).
    jobs: usize,
    /// Total design-point indices in the sweep.
    indices: usize,
}

/// Monotonic server counters, exposed at `GET /stats`.
///
/// Each counter is instance-scoped (this server's `/stats` view) and
/// mirrors into the process-wide [`crate::telemetry`] registry behind
/// `GET /metrics` — one increment updates both, and in-process test
/// servers keep authoritative per-instance counts.
#[derive(Debug)]
struct ServeStats {
    requests: Counter,
    predictions: Counter,
    predict_batches: Counter,
    coalesced_jobs: Counter,
    model_cache_hits: Counter,
    model_cache_misses: Counter,
    warm_loads: Counter,
    models_evicted: Counter,
    errors: Counter,
    /// Connections refused with `503` because the gate stayed saturated
    /// past [`ServeConfig::gate_wait`].
    requests_shed: Counter,
    /// Handler panics contained by the per-connection `catch_unwind`.
    panics_caught: Counter,
}

impl Default for ServeStats {
    fn default() -> Self {
        Self {
            requests: Counter::mirroring("serve.requests", &telemetry::SERVE_REQUESTS),
            predictions: Counter::mirroring("serve.predictions", &telemetry::SERVE_PREDICTIONS),
            predict_batches: Counter::mirroring(
                "serve.predict_batches",
                &telemetry::SERVE_PREDICT_BATCHES,
            ),
            coalesced_jobs: Counter::mirroring(
                "serve.coalesced_jobs",
                &telemetry::SERVE_COALESCED_JOBS,
            ),
            model_cache_hits: Counter::mirroring(
                "serve.model_cache_hits",
                &telemetry::SERVE_MODEL_CACHE_HITS,
            ),
            model_cache_misses: Counter::mirroring(
                "serve.model_cache_misses",
                &telemetry::SERVE_MODEL_CACHE_MISSES,
            ),
            warm_loads: Counter::mirroring("serve.warm_loads", &telemetry::SERVE_WARM_LOADS),
            models_evicted: Counter::mirroring(
                "serve.models_evicted",
                &telemetry::SERVE_MODELS_EVICTED,
            ),
            errors: Counter::mirroring("serve.errors", &telemetry::SERVE_ERRORS),
            requests_shed: Counter::mirroring(
                "serve.requests_shed",
                &telemetry::SERVE_REQUESTS_SHED,
            ),
            panics_caught: Counter::mirroring(
                "serve.panics_caught",
                &telemetry::SERVE_PANICS_CAUGHT,
            ),
        }
    }
}

struct ServerInner {
    registry: Registry,
    config: ServeConfig,
    addr: SocketAddr,
    models: Mutex<HashMap<String, Arc<ModelEntry>>>,
    /// Monotonic logical clock stamping model accesses for LRU eviction.
    clock: AtomicU64,
    gate: Arc<ConnectionGate>,
    stats: ServeStats,
    shutdown: AtomicBool,
    /// Set when the drain begins; `/ready` answers 503 from then on
    /// while `/health` stays 200 (readiness vs liveness).
    draining: AtomicBool,
}

/// A bound (but not yet running) daemon.
pub struct Server {
    inner: Arc<ServerInner>,
    listener: TcpListener,
}

/// A daemon running on a background thread (test/embedding convenience).
pub struct ServerHandle {
    inner: Arc<ServerInner>,
    thread: std::thread::JoinHandle<std::io::Result<()>>,
}

/// An error with an HTTP status attached.
#[derive(Debug)]
struct ServeError {
    status: u16,
    message: String,
}

impl ServeError {
    fn bad_request(message: impl Into<String>) -> Self {
        Self {
            status: 400,
            message: message.into(),
        }
    }

    fn not_found(message: impl Into<String>) -> Self {
        Self {
            status: 404,
            message: message.into(),
        }
    }

    fn internal(message: impl Into<String>) -> Self {
        Self {
            status: 500,
            message: message.into(),
        }
    }

    fn unavailable(message: impl Into<String>) -> Self {
        Self {
            status: 503,
            message: message.into(),
        }
    }
}

impl Server {
    /// Binds the daemon to `addr` (use port 0 for an ephemeral port) over
    /// the registry named in `config`.
    ///
    /// # Errors
    ///
    /// Fails if the socket cannot be bound or the registry root cannot be
    /// created.
    pub fn bind(addr: impl ToSocketAddrs, config: ServeConfig) -> std::io::Result<Self> {
        let listener = TcpListener::bind(addr)?;
        let registry = Registry::open(&config.registry_root)?;
        let addr = listener.local_addr()?;
        let gate = Arc::new(ConnectionGate::new(config.max_connections));
        Ok(Self {
            inner: Arc::new(ServerInner {
                registry,
                config,
                addr,
                models: Mutex::new(HashMap::new()),
                clock: AtomicU64::new(0),
                gate,
                stats: ServeStats::default(),
                shutdown: AtomicBool::new(false),
                draining: AtomicBool::new(false),
            }),
            listener,
        })
    }

    /// The bound address (the concrete port when bound to port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Serves until `POST /shutdown` or a handled signal, then drains
    /// gracefully. Each connection is handled on its own thread; one
    /// request per connection; at most [`ServeConfig::max_connections`]
    /// threads at once — when the gate stays saturated past
    /// [`ServeConfig::gate_wait`], further connections are shed with
    /// `503` + `Retry-After` instead of queueing without bound.
    ///
    /// The accept loop is nonblocking and polls the shutdown/signal
    /// flags every few milliseconds, so a SIGTERM is observed promptly
    /// even when no connection ever arrives.
    ///
    /// # Errors
    ///
    /// Fails only on accept-loop setup errors; per-connection errors are
    /// reported to that client and counted in `/stats`.
    pub fn run(self) -> std::io::Result<()> {
        self.listener.set_nonblocking(true)?;
        loop {
            if self.inner.shutdown.load(Ordering::SeqCst) || shutdown_signaled() {
                break;
            }
            let stream = match self.listener.accept() {
                Ok((stream, _)) => stream,
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                    std::thread::sleep(ACCEPT_POLL);
                    continue;
                }
                Err(_) => continue,
            };
            // The listener is nonblocking; the per-connection socket must
            // not be (its reads are bounded by IO_TIMEOUT instead).
            let _ = stream.set_nonblocking(false);
            match self.inner.gate.acquire_timeout(self.inner.config.gate_wait) {
                Some(permit) => {
                    let inner = Arc::clone(&self.inner);
                    std::thread::spawn(move || {
                        let _permit = permit;
                        handle_connection(stream, &inner);
                    });
                }
                None => {
                    self.inner.stats.requests_shed.incr();
                    shed(stream);
                }
            }
        }
        self.drain();
        Ok(())
    }

    /// Graceful drain: mark not-ready, close the listener **first** (new
    /// connections are refused from here on), give in-flight connection
    /// threads up to [`ServeConfig::drain_deadline`] to finish, then
    /// flush a final stats snapshot to stderr.
    fn drain(self) {
        let Server { inner, listener } = self;
        inner.draining.store(true, Ordering::SeqCst);
        drop(listener);
        let deadline = Instant::now() + inner.config.drain_deadline;
        if !inner.gate.wait_idle(deadline) {
            eprintln!(
                "archpredict-served: drain deadline ({:?}) passed with connections in flight",
                inner.config.drain_deadline
            );
        }
        eprintln!(
            "archpredict-served: drained; final stats {}",
            stats_json(&inner).to_json()
        );
    }

    /// Runs the daemon on a background thread and returns a handle for
    /// shutdown. Used by the in-process tests; `archpredict-served` calls
    /// [`Server::run`] directly.
    pub fn spawn(self) -> ServerHandle {
        let inner = Arc::clone(&self.inner);
        let thread = std::thread::spawn(move || self.run());
        ServerHandle { inner, thread }
    }
}

impl ServerHandle {
    /// The daemon's bound address.
    pub fn addr(&self) -> SocketAddr {
        self.inner.addr
    }

    /// Stops the daemon (graceful drain included) and joins its thread.
    /// The accept loop polls the flag, so no network poke is needed.
    pub fn shutdown(self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        let _ = self.thread.join();
    }
}

/// Minimal HTTP/1.1 client for the daemon's protocol: one request, one
/// JSON response. Returns `(status, parsed body)`. Shared by the load
/// generator, the CI smoke gate, and the tests.
///
/// # Errors
///
/// On connection/transport failure or an unparsable response body.
pub fn http_request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, Value), String> {
    let (status, text) = http_request_text(addr, method, path, body)?;
    let value = Value::parse(&text).map_err(|e| format!("response not JSON: {e}"))?;
    Ok((status, value))
}

/// [`http_request`] without the JSON parse: returns the raw body text.
/// The client for non-JSON endpoints (`GET /metrics`).
///
/// # Errors
///
/// On connection/transport failure or a malformed response envelope.
pub fn http_request_text(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: Option<&str>,
) -> Result<(u16, String), String> {
    let mut stream = TcpStream::connect(addr).map_err(|e| format!("connect {addr} failed: {e}"))?;
    let body = body.unwrap_or("");
    let request = format!(
        "{method} {path} HTTP/1.1\r\nHost: {addr}\r\nContent-Type: application/json\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    stream
        .write_all(request.as_bytes())
        .map_err(|e| format!("send failed: {e}"))?;
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader
        .read_line(&mut status_line)
        .map_err(|e| format!("read status failed: {e}"))?;
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| format!("malformed status line {status_line:?}"))?;
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader
            .read_line(&mut line)
            .map_err(|e| format!("read header failed: {e}"))?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v
                .trim()
                .parse()
                .map_err(|_| format!("bad content-length {line:?}"))?;
        }
    }
    let mut body = vec![0u8; content_length];
    reader
        .read_exact(&mut body)
        .map_err(|e| format!("read body failed: {e}"))?;
    let text = String::from_utf8(body).map_err(|_| "response body not UTF-8".to_owned())?;
    Ok((status, text))
}

fn handle_connection(stream: TcpStream, inner: &ServerInner) {
    inner.stats.requests.incr();
    let mut stream = stream;
    // A stalled client must not pin this thread: every socket read and
    // write is individually bounded.
    let _ = stream.set_read_timeout(Some(IO_TIMEOUT));
    let _ = stream.set_write_timeout(Some(IO_TIMEOUT));
    let parsed = read_request(&mut stream);
    let (method, path, body) = match parsed {
        Ok(r) => r,
        Err(e) => {
            inner.stats.errors.incr();
            respond_error(&mut stream, 400, &format!("malformed request: {e}"));
            return;
        }
    };
    // The metrics scrape is plain text, not JSON, and must stay cheap
    // and infallible — it bypasses the JSON dispatch (and its failpoint)
    // entirely.
    if method == "GET" && path == "/metrics" {
        respond_text(&mut stream, 200, "OK", &telemetry::render_metrics());
        return;
    }
    // Stamp the request with a fresh trace ID: every span this thread
    // opens downstream — registry fit, campaign round, inference sweep,
    // worker dispatch — carries it, reconstructing the causal tree.
    let _trace_scope = telemetry::set_trace(telemetry::fresh_trace_id());
    let _request_span = telemetry::span("serve.request");
    // Panic isolation: one request's panic answers that client with a
    // 500 and leaves the daemon serving. The coalescing path guarantees
    // a panicking leader fails its followers before unwinding to here.
    let dispatched = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        dispatch(inner, &method, &path, &body)
    }));
    let result = match dispatched {
        Ok(result) => result,
        Err(panic) => {
            inner.stats.panics_caught.incr();
            Err(ServeError::internal(format!(
                "handler panicked: {}",
                panic_message(panic.as_ref())
            )))
        }
    };
    match result {
        Ok(value) => respond(&mut stream, 200, "OK", &value.to_json()),
        Err(e) => {
            inner.stats.errors.incr();
            respond_error(&mut stream, e.status, &e.message);
        }
    }
}

fn panic_message(panic: &(dyn std::any::Any + Send)) -> &str {
    panic.downcast_ref::<&str>().copied().unwrap_or_else(|| {
        panic
            .downcast_ref::<String>()
            .map(String::as_str)
            .unwrap_or("opaque panic payload")
    })
}

/// Whether the daemon is past the point of accepting new work.
fn draining(inner: &ServerInner) -> bool {
    inner.draining.load(Ordering::SeqCst)
        || inner.shutdown.load(Ordering::SeqCst)
        || shutdown_signaled()
}

fn health_json(inner: &ServerInner) -> Value {
    let draining = draining(inner);
    Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("ready".into(), Value::Bool(!draining)),
        ("draining".into(), Value::Bool(draining)),
    ])
}

fn dispatch(
    inner: &ServerInner,
    method: &str,
    path: &str,
    body: &str,
) -> Result<Value, ServeError> {
    if let Some(failure) = failpoint::check(FP_HANDLER) {
        return Err(ServeError::internal(
            failure.into_io_error(FP_HANDLER).to_string(),
        ));
    }
    match (method, path) {
        // Liveness: 200 as long as the process can answer at all, even
        // mid-drain. Readiness: 503 once draining — load balancers stop
        // routing before the listener actually closes.
        ("GET", "/health") => Ok(health_json(inner)),
        ("GET", "/ready") => {
            if draining(inner) {
                Err(ServeError::unavailable("draining; not accepting new work"))
            } else {
                Ok(health_json(inner))
            }
        }
        ("GET", "/stats") => Ok(stats_json(inner)),
        ("POST", "/fit") => handle_fit(inner, body),
        ("POST", "/predict") => handle_predict(inner, body),
        ("POST", "/shutdown") => {
            // Flip readiness before the accept loop notices, so probes
            // observe the drain from the first possible moment.
            inner.draining.store(true, Ordering::SeqCst);
            inner.shutdown.store(true, Ordering::SeqCst);
            Ok(Value::Object(vec![("ok".into(), Value::Bool(true))]))
        }
        _ => Err(ServeError::not_found(format!(
            "no endpoint {method} {path}"
        ))),
    }
}

/// Refuses a connection the gate could not admit: `503` with
/// `Retry-After` so well-behaved clients back off. Written on a
/// short-lived thread with a tight timeout — the accept loop must not
/// stall behind a client that won't read.
fn shed(stream: TcpStream) {
    std::thread::spawn(move || {
        let mut stream = stream;
        let _ = stream.set_write_timeout(Some(Duration::from_secs(1)));
        let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
        // Drain (a bounded amount of) the request before closing: a
        // socket closed with unread bytes resets the connection, which
        // would destroy the 503 before the client could read it.
        let mut discard = [0u8; 4096];
        for _ in 0..16 {
            match stream.read(&mut discard) {
                Ok(n) if n == discard.len() => continue,
                _ => break,
            }
        }
        let body = Value::Object(vec![
            ("ok".into(), Value::Bool(false)),
            (
                "error".into(),
                Value::Str("server saturated; retry after backoff".into()),
            ),
        ])
        .to_json();
        let header = format!(
            "HTTP/1.1 503 Service Unavailable\r\nContent-Type: application/json\r\n\
             Retry-After: 1\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
            body.len()
        );
        let _ = stream.write_all(header.as_bytes());
        let _ = stream.write_all(body.as_bytes());
        let _ = stream.flush();
    });
}

/// Reads one line, erroring (instead of buffering without bound) past
/// `max` bytes.
fn read_line_bounded(reader: &mut impl BufRead, max: usize) -> Result<String, String> {
    let mut limited = reader.take(max as u64 + 1);
    let mut line = String::new();
    limited.read_line(&mut line).map_err(|e| e.to_string())?;
    if line.len() > max {
        return Err(format!("header line exceeds {max} bytes"));
    }
    Ok(line)
}

fn read_request(stream: &mut TcpStream) -> Result<(String, String, String), String> {
    let mut reader = BufReader::new(stream.try_clone().map_err(|e| e.to_string())?);
    let request_line = read_line_bounded(&mut reader, MAX_HEADER_LINE)?;
    let mut parts = request_line.split_whitespace();
    let method = parts.next().ok_or("empty request line")?.to_owned();
    let path = parts.next().ok_or("request line missing path")?.to_owned();
    let mut content_length = 0usize;
    let mut headers = 0usize;
    loop {
        if headers >= MAX_HEADERS {
            return Err(format!("more than {MAX_HEADERS} header lines"));
        }
        headers += 1;
        let line = read_line_bounded(&mut reader, MAX_HEADER_LINE)?;
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().strip_prefix("content-length:") {
            content_length = v.trim().parse().map_err(|_| "bad content-length")?;
        }
    }
    if content_length > MAX_BODY {
        return Err(format!("body of {content_length} bytes exceeds {MAX_BODY}"));
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| e.to_string())?;
    let body = String::from_utf8(body).map_err(|_| "body not UTF-8")?;
    Ok((method, path, body))
}

fn respond(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    respond_with_type(stream, status, reason, "application/json", body);
}

/// Plain-text response — the `/metrics` scrape format.
fn respond_text(stream: &mut TcpStream, status: u16, reason: &str, body: &str) {
    respond_with_type(stream, status, reason, "text/plain; charset=utf-8", body);
}

fn respond_with_type(
    stream: &mut TcpStream,
    status: u16,
    reason: &str,
    content_type: &str,
    body: &str,
) {
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\n\
         Content-Length: {}\r\nConnection: close\r\n\r\n",
        body.len()
    );
    let _ = stream.write_all(header.as_bytes());
    let _ = stream.write_all(body.as_bytes());
    let _ = stream.flush();
}

fn respond_error(stream: &mut TcpStream, status: u16, message: &str) {
    let reason = match status {
        400 => "Bad Request",
        404 => "Not Found",
        409 => "Conflict",
        503 => "Service Unavailable",
        _ => "Internal Server Error",
    };
    let body = Value::Object(vec![
        ("ok".into(), Value::Bool(false)),
        ("error".into(), Value::Str(message.to_owned())),
    ])
    .to_json();
    respond(stream, status, reason, &body);
}

fn stats_json(inner: &ServerInner) -> Value {
    let s = &inner.stats;
    let count = |c: &Counter| Value::num(c.get() as f64);
    Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("requests".into(), count(&s.requests)),
        ("predictions".into(), count(&s.predictions)),
        ("predict_batches".into(), count(&s.predict_batches)),
        ("coalesced_jobs".into(), count(&s.coalesced_jobs)),
        ("model_cache_hits".into(), count(&s.model_cache_hits)),
        ("model_cache_misses".into(), count(&s.model_cache_misses)),
        ("warm_loads".into(), count(&s.warm_loads)),
        ("models_evicted".into(), count(&s.models_evicted)),
        ("errors".into(), count(&s.errors)),
        ("requests_shed".into(), count(&s.requests_shed)),
        ("panics_caught".into(), count(&s.panics_caught)),
        (
            "fits_performed".into(),
            Value::num(inner.registry.fits_performed() as f64),
        ),
        (
            "models_in_memory".into(),
            Value::num(inner.models.lock().expect("model map poisoned").len() as f64),
        ),
    ])
}

/// Parses the model-spec fields shared by `/fit` and `/predict`.
fn spec_from_json(body: &Value) -> Result<StudyFitSpec, ServeError> {
    let field = |name: &str| {
        body.get(name)
            .map_err(|_| ServeError::bad_request(format!("missing field {name:?}")))
    };
    let study_name = field("study")?
        .as_str()
        .map_err(|e| ServeError::bad_request(format!("study: {e}")))?;
    let study = Study::from_name(study_name)
        .ok_or_else(|| ServeError::bad_request(format!("unknown study {study_name:?}")))?;
    let app_name = field("app")?
        .as_str()
        .map_err(|e| ServeError::bad_request(format!("app: {e}")))?;
    let benchmark = Benchmark::from_name(app_name)
        .ok_or_else(|| ServeError::bad_request(format!("unknown app {app_name:?}")))?;
    let seed_text = field("seed")?
        .as_str()
        .map_err(|e| ServeError::bad_request(format!("seed: {e}")))?;
    let seed = u64::from_str_radix(seed_text, 16)
        .map_err(|_| ServeError::bad_request(format!("seed {seed_text:?} is not hex")))?;
    let budget = field("budget")?
        .as_usize()
        .map_err(|e| ServeError::bad_request(format!("budget: {e}")))?;
    let mut config = CampaignConfig {
        seed,
        max_samples: budget,
        ..CampaignConfig::default()
    };
    if let Ok(batch) = body.get("batch") {
        config.batch = batch
            .as_usize()
            .map_err(|e| ServeError::bad_request(format!("batch: {e}")))?;
    }
    if let Ok(folds) = body.get("folds") {
        config.folds = folds
            .as_usize()
            .map_err(|e| ServeError::bad_request(format!("folds: {e}")))?;
    }
    if let Ok(target) = body.get("target_error") {
        config.target_error = target
            .as_f64()
            .map_err(|e| ServeError::bad_request(format!("target_error: {e}")))?;
    }
    if let Ok(pool) = body.get("pool_factor") {
        let pool_factor = pool
            .as_usize()
            .map_err(|e| ServeError::bad_request(format!("pool_factor: {e}")))?;
        config.strategy = Strategy::Active { pool_factor };
    }
    let quick = match body.get("quick") {
        Ok(v) => v
            .as_bool()
            .map_err(|e| ServeError::bad_request(format!("quick: {e}")))?,
        Err(_) => false,
    };
    Ok(StudyFitSpec {
        study,
        benchmark,
        config,
        quick,
    })
}

/// Resolves a spec to a warm in-memory model. `fit` controls the miss
/// path: `/fit` may run a campaign, `/predict` only loads what exists.
/// Returns the entry plus how it was found (`"hit"`, `"warm"`, `"fitted"`).
fn resolve_model(
    inner: &ServerInner,
    spec: &StudyFitSpec,
    fit: bool,
) -> Result<(Arc<ModelEntry>, &'static str, Value), ServeError> {
    let slug = spec.key().slug();
    {
        let models = inner.models.lock().expect("model map poisoned");
        if let Some(entry) = models.get(&slug) {
            entry.last_used.store(
                inner.clock.fetch_add(1, Ordering::Relaxed),
                Ordering::Relaxed,
            );
            inner.stats.model_cache_hits.incr();
            return Ok((Arc::clone(entry), "hit", Value::Null));
        }
    }
    inner.stats.model_cache_misses.incr();
    // Fit/load outside the map lock: campaigns take minutes and other
    // models must keep serving. The registry's own per-key discipline
    // collapses duplicate concurrent fits.
    let (outcome, how) = if fit {
        let outcome = inner
            .registry
            .get_or_fit_study(spec)
            .map_err(|e| ServeError::internal(e.to_string()))?;
        let how = if outcome.warm { "warm" } else { "fitted" };
        (outcome, how)
    } else {
        let found = inner
            .registry
            .get(&spec.key(), spec.fingerprint())
            .map_err(|e| ServeError::internal(e.to_string()))?;
        let outcome = found.ok_or_else(|| {
            ServeError::not_found(format!("no model for {}: POST /fit first", spec.key()))
        })?;
        (outcome, "warm")
    };
    if how == "warm" {
        inner.stats.warm_loads.incr();
    }
    let payload = outcome.payload.clone();
    let stamp = inner.clock.fetch_add(1, Ordering::Relaxed);
    let entry = Arc::new(ModelEntry {
        space: spec.study.space(),
        ensemble: outcome.model,
        loaded_at: Instant::now(),
        last_used: AtomicU64::new(stamp),
        batch: Mutex::new(BatchState::default()),
    });
    let mut models = inner.models.lock().expect("model map poisoned");
    // Bound the map: evict the least-recently-used model to make room.
    // Evicted ensembles reload warm from the registry on next use; an
    // in-flight coalesced sweep keeps its entry alive through its `Arc`.
    while !models.contains_key(&slug) && models.len() >= inner.config.max_models.max(1) {
        let Some(victim) = models
            .iter()
            .min_by_key(|(_, e)| e.last_used.load(Ordering::Relaxed))
            .map(|(k, _)| k.clone())
        else {
            break;
        };
        models.remove(&victim);
        inner.stats.models_evicted.incr();
    }
    let entry = Arc::clone(models.entry(slug).or_insert(entry));
    entry.last_used.store(stamp, Ordering::Relaxed);
    Ok((entry, how, payload))
}

fn handle_fit(inner: &ServerInner, body: &str) -> Result<Value, ServeError> {
    let body =
        Value::parse(body).map_err(|e| ServeError::bad_request(format!("body not JSON: {e}")))?;
    let spec = spec_from_json(&body)?;
    let (_, how, payload) = resolve_model(inner, &spec, true)?;
    Ok(Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("model".into(), Value::Str(spec.key().slug())),
        ("warm".into(), Value::Bool(how != "fitted")),
        ("cache".into(), Value::Str(how.into())),
        ("payload".into(), payload),
        (
            "fits_performed".into(),
            Value::num(inner.registry.fits_performed() as f64),
        ),
    ]))
}

fn handle_predict(inner: &ServerInner, body: &str) -> Result<Value, ServeError> {
    let body =
        Value::parse(body).map_err(|e| ServeError::bad_request(format!("body not JSON: {e}")))?;
    let spec = spec_from_json(&body)?;
    let indices = body
        .get("indices")
        .map_err(|_| ServeError::bad_request("missing field \"indices\""))?
        .as_array()
        .map_err(|e| ServeError::bad_request(format!("indices: {e}")))?
        .iter()
        .map(|v| v.as_usize())
        .collect::<Result<Vec<_>, _>>()
        .map_err(|e| ServeError::bad_request(format!("indices: {e}")))?;
    let (entry, how, _) = resolve_model(inner, &spec, false)?;
    let space_size = entry.space.size();
    if let Some(&bad) = indices.iter().find(|&&i| i >= space_size) {
        return Err(ServeError::bad_request(format!(
            "index {bad} out of range for {} ({space_size} points)",
            spec.key()
        )));
    }
    let (predictions, batch) = predict_coalesced(inner, &entry, indices)?;
    inner.stats.predictions.add(predictions.len() as u64);
    let age_ms = entry.loaded_at.elapsed().as_secs_f64() * 1e3;
    Ok(Value::Object(vec![
        ("ok".into(), Value::Bool(true)),
        ("model".into(), Value::Str(spec.key().slug())),
        (
            "predictions".into(),
            Value::Array(predictions.into_iter().map(Value::num).collect()),
        ),
        (
            "stats".into(),
            Value::Object(vec![
                ("cache".into(), Value::Str(how.into())),
                ("model_age_ms".into(), Value::num(age_ms)),
                ("batch_jobs".into(), Value::num(batch.jobs as f64)),
                ("batch_indices".into(), Value::num(batch.indices as f64)),
                ("coalesced".into(), Value::Bool(batch.jobs > 1)),
            ]),
        ),
    ]))
}

/// Queues one prediction job and either leads a coalesced sweep or waits
/// for the elected leader's results (see module docs).
///
/// The leader runs its sweep under `catch_unwind`: on a panic (or an
/// injected [`FP_SWEEP`] failure) every queued follower's slot is filled
/// with the error before the leader unwinds, so followers fail with a
/// `500` instead of waiting forever on a dead leader.
fn predict_coalesced(
    inner: &ServerInner,
    entry: &ModelEntry,
    indices: Vec<usize>,
) -> Result<(Vec<f64>, BatchTelemetry), ServeError> {
    let slot = Arc::new(JobSlot::default());
    let is_leader = {
        let mut state = entry.batch.lock().expect("batch state poisoned");
        state.jobs.push(Job {
            indices,
            slot: Arc::clone(&slot),
        });
        let lead = !state.leader_elected;
        state.leader_elected = true;
        lead
    };
    if is_leader {
        // Let concurrent callers pile onto the batch before sweeping.
        std::thread::sleep(inner.config.tick);
        let jobs = {
            let mut state = entry.batch.lock().expect("batch state poisoned");
            state.leader_elected = false;
            std::mem::take(&mut state.jobs)
        };
        let all: Vec<usize> = jobs
            .iter()
            .flat_map(|j| j.indices.iter().copied())
            .collect();
        let swept = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            if let Some(failure) = failpoint::check(FP_SWEEP) {
                return Err(failure.into_io_error(FP_SWEEP).to_string());
            }
            // The leader's trace covers the whole coalesced sweep, so
            // followers' work is attributed to the request that led it.
            let _sweep_span = telemetry::span("serve.sweep");
            Ok(infer::predict_indices(
                &entry.ensemble,
                &entry.space,
                &all,
                Parallelism::Auto,
            ))
        }));
        let fill_all = |message: String| {
            for job in &jobs {
                *job.slot.done.lock().expect("job slot poisoned") = Some(Err(message.clone()));
                job.slot.ready.notify_all();
            }
        };
        match swept {
            Ok(Ok(predictions)) => {
                let batch = BatchTelemetry {
                    jobs: jobs.len(),
                    indices: all.len(),
                };
                inner.stats.predict_batches.incr();
                inner.stats.coalesced_jobs.add(batch.jobs as u64);
                let mut offset = 0;
                for job in jobs {
                    let span = predictions[offset..offset + job.indices.len()].to_vec();
                    offset += job.indices.len();
                    *job.slot.done.lock().expect("job slot poisoned") = Some(Ok((span, batch)));
                    job.slot.ready.notify_all();
                }
            }
            Ok(Err(message)) => fill_all(format!("coalesced sweep failed: {message}")),
            Err(panic) => {
                fill_all(format!(
                    "coalescing leader panicked: {}",
                    panic_message(panic.as_ref())
                ));
                // The leader's own connection still reports the panic
                // (500 + panics_caught) through handle_connection.
                std::panic::resume_unwind(panic);
            }
        }
    }
    let mut done = slot.done.lock().expect("job slot poisoned");
    while done.is_none() {
        done = slot.ready.wait(done).expect("job slot poisoned");
    }
    match done.take().expect("checked above") {
        Ok(result) => Ok(result),
        Err(message) => Err(ServeError::internal(message)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spec_parses_full_and_minimal_bodies() {
        let minimal =
            Value::parse(r#"{"study":"memory","app":"gzip","seed":"00a5ceed","budget":40}"#)
                .unwrap();
        let spec = spec_from_json(&minimal).unwrap();
        assert_eq!(spec.study, Study::MemorySystem);
        assert_eq!(spec.benchmark, Benchmark::Gzip);
        assert_eq!(spec.config.seed, 0x00A5_CEED);
        assert_eq!(spec.config.max_samples, 40);
        assert!(!spec.quick);
        assert_eq!(spec.encoder_name(), "plain");

        let full = Value::parse(
            r#"{"study":"processor","app":"mcf","seed":"2a","budget":100,"quick":true,
               "batch":25,"folds":5,"target_error":2.5,"pool_factor":4}"#,
        )
        .unwrap();
        let spec = spec_from_json(&full).unwrap();
        assert_eq!(spec.study, Study::Processor);
        assert_eq!(spec.config.seed, 0x2A);
        assert_eq!(spec.config.batch, 25);
        assert_eq!(spec.config.folds, 5);
        assert_eq!(spec.config.target_error, 2.5);
        assert!(matches!(
            spec.config.strategy,
            Strategy::Active { pool_factor: 4 }
        ));
        assert!(spec.quick);
        assert_eq!(spec.encoder_name(), "plain-qbc4-quick");
    }

    #[test]
    fn spec_rejects_bad_fields() {
        for body in [
            r#"{"app":"gzip","seed":"1","budget":40}"#,
            r#"{"study":"memory","app":"nope","seed":"1","budget":40}"#,
            r#"{"study":"nope","app":"gzip","seed":"1","budget":40}"#,
            r#"{"study":"memory","app":"gzip","seed":"zz","budget":40}"#,
        ] {
            let value = Value::parse(body).unwrap();
            assert!(spec_from_json(&value).is_err(), "accepted {body}");
        }
    }

    #[test]
    fn health_stats_and_unknown_endpoints() {
        let root =
            std::env::temp_dir().join(format!("archpredict_serve_http_{}", std::process::id()));
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                registry_root: root.clone(),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let handle = server.spawn();
        let addr = handle.addr();

        let (status, body) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!(status, 200);
        assert!(body.get("ok").unwrap().as_bool().unwrap());

        let (status, body) = http_request(addr, "GET", "/stats", None).unwrap();
        assert_eq!(status, 200);
        assert_eq!(body.get("predictions").unwrap().as_u64().unwrap(), 0);

        let (status, body) = http_request(addr, "GET", "/nope", None).unwrap();
        assert_eq!(status, 404);
        assert!(!body.get("ok").unwrap().as_bool().unwrap());

        // Predicting a never-fitted model is a loud 404, not a fit.
        let (status, _) = http_request(
            addr,
            "POST",
            "/predict",
            Some(r#"{"study":"memory","app":"gzip","seed":"7","budget":9,"indices":[0]}"#),
        )
        .unwrap();
        assert_eq!(status, 404);

        handle.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }

    /// Sends raw bytes and returns the response status line.
    fn raw_request(addr: SocketAddr, bytes: &[u8]) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(bytes).unwrap();
        let mut reader = BufReader::new(stream);
        let mut status_line = String::new();
        reader.read_line(&mut status_line).unwrap();
        status_line
    }

    #[test]
    fn oversized_and_excessive_headers_are_rejected() {
        let root =
            std::env::temp_dir().join(format!("archpredict_serve_bounds_{}", std::process::id()));
        let server = Server::bind(
            "127.0.0.1:0",
            ServeConfig {
                registry_root: root.clone(),
                ..ServeConfig::default()
            },
        )
        .unwrap();
        let handle = server.spawn();
        let addr = handle.addr();

        // One header line far past MAX_HEADER_LINE: refused, not buffered.
        let huge = format!(
            "GET /health HTTP/1.1\r\nX-Junk: {}\r\n\r\n",
            "a".repeat(MAX_HEADER_LINE * 4)
        );
        assert!(raw_request(addr, huge.as_bytes()).contains("400"));

        // More header lines than MAX_HEADERS: refused.
        let mut many = String::from("GET /health HTTP/1.1\r\n");
        for i in 0..(MAX_HEADERS * 2) {
            many.push_str(&format!("X-H{i}: v\r\n"));
        }
        many.push_str("\r\n");
        assert!(raw_request(addr, many.as_bytes()).contains("400"));

        // A sane request still works after the abuse.
        let (status, _) = http_request(addr, "GET", "/health", None).unwrap();
        assert_eq!(status, 200);

        handle.shutdown();
        std::fs::remove_dir_all(&root).ok();
    }

    #[test]
    fn connection_gate_bounds_concurrency_and_releases() {
        let gate = Arc::new(ConnectionGate::new(2));
        let a = gate.acquire_timeout(Duration::from_secs(5)).unwrap();
        let _b = gate.acquire_timeout(Duration::from_secs(5)).unwrap();
        // Third acquire waits until a permit drops.
        let gate2 = Arc::clone(&gate);
        let waiter =
            std::thread::spawn(move || gate2.acquire_timeout(Duration::from_secs(5)).is_some());
        std::thread::sleep(Duration::from_millis(20));
        assert!(!waiter.is_finished(), "third connection must wait");
        drop(a);
        assert!(waiter.join().unwrap());
    }

    #[test]
    fn saturated_gate_times_out_instead_of_blocking_forever() {
        let gate = Arc::new(ConnectionGate::new(1));
        let held = gate.acquire_timeout(Duration::from_secs(5)).unwrap();
        let start = Instant::now();
        assert!(
            gate.acquire_timeout(Duration::from_millis(30)).is_none(),
            "saturated gate must shed, not block"
        );
        assert!(start.elapsed() >= Duration::from_millis(25));
        // Idle-wait sees the outstanding permit, then its return.
        assert!(!gate.wait_idle(Instant::now() + Duration::from_millis(20)));
        drop(held);
        assert!(gate.wait_idle(Instant::now() + Duration::from_secs(5)));
    }
}
