//! Multi-process simulation workers: the distributed oracle.
//!
//! One host's cores are already saturated by the in-process scoped-thread
//! fan-out ([`crate::simulate::evaluate_indices`]); the next scaling step
//! is **processes**. [`ProcessPoolOracle`] fork/execs N copies of the
//! `archpredict-worker` binary and speaks a length-prefixed binary
//! protocol over each worker's stdin/stdout (see [`proto`]): a magic +
//! version handshake, a [`WorkerSpec`] config frame describing the
//! evaluator to build, then `EVAL` span requests answered by per-index
//! `RESULT` replies with bit-exact `f64` encoding (`f64::to_bits`).
//!
//! # Determinism contract
//!
//! The pool honors the batch-oracle contract of [`crate::simulate`]
//! exactly: the coordinator assigns **contiguous index spans** (the same
//! split the in-process fan-out uses) and merges replies in input order,
//! each result depends only on its own design-point index, and workers run
//! the very same evaluator code the coordinator would run in-process — so
//! results are **bit-for-bit identical at every worker count**, including
//! `0`, which skips the pool entirely and falls back to the in-process
//! fan-out.
//!
//! # Fault handling
//!
//! A worker that dies (EOF / nonzero exit) surfaces the index it was
//! evaluating as [`SimError::Crashed`]; a span that exceeds the pool's
//! wall-clock deadline kills the worker and surfaces the in-flight index
//! as [`SimError::TimedOut`]. In both cases the dead worker is respawned
//! and the *rest* of its span is reassigned, so batchmates are never
//! poisoned. Both errors are retriable, so the whole path flows through
//! [`crate::simulate::RetryingOracle`]'s retry/quarantine unchanged.
//!
//! # Layering
//!
//! `ProcessPoolOracle` implements [`PointEvaluator`] (claiming the batch
//! fan-out via [`PointEvaluator::dispatch_batch`]), so it slots beneath
//! [`CachedEvaluator`](crate::simulate::CachedEvaluator) — in-batch dedup,
//! memoization and CSV persist/preload all still apply — and beneath
//! [`RetryingOracle`](crate::simulate::RetryingOracle) above that:
//!
//! ```text
//! RetryingOracle<CachedEvaluator<ProcessPoolOracle>>
//!      retries/quarantine   dedup/persist   process fan-out
//! ```
//!
//! Worker count comes from [`ProcessPoolOracle::with_workers`] or the
//! [`ENV_SIM_WORKERS`] environment knob (mirroring the in-process
//! `ARCHPREDICT_SIM_THREADS`); the per-span deadline from
//! [`ProcessPoolOracle::set_span_timeout`] or [`ENV_SPAN_TIMEOUT_MS`].

use crate::simulate::{PointEvaluator, SimBudget, SimError, SimResult, StudyEvaluator};
use crate::space::{DesignPoint, DesignSpace};
use crate::studies::Study;
use crate::telemetry::{self, Counter};
use archpredict_workloads::{Benchmark, TraceGenerator};
use std::io::{self, Write};
use std::path::PathBuf;
use std::process::{Child, ChildStdin, ChildStdout, Command, Stdio};
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::{mpsc, Mutex};
use std::time::{Duration, Instant};

/// Environment variable selecting the worker-process count for
/// [`ProcessPoolOracle::from_env`] (the process analogue of
/// `ARCHPREDICT_SIM_THREADS`). Absent or `0` means in-process fallback.
pub const ENV_SIM_WORKERS: &str = "ARCHPREDICT_SIM_WORKERS";

/// Environment variable setting the default per-span wall-clock deadline,
/// in milliseconds. Absent or `0` means no deadline.
pub const ENV_SPAN_TIMEOUT_MS: &str = "ARCHPREDICT_SIM_SPAN_TIMEOUT_MS";

/// Environment variable overriding where the `archpredict-worker` binary
/// is looked up (default: next to the current executable).
pub const ENV_WORKER_BIN: &str = "ARCHPREDICT_WORKER_BIN";

/// How long a freshly spawned worker gets to complete the version
/// handshake before the coordinator gives up on it.
const HANDSHAKE_TIMEOUT: Duration = Duration::from_secs(10);

/// Failpoint site evaluated before each `EVAL` frame send: firing makes
/// the coordinator treat the worker as dead-idle (reap, respawn, retry
/// the same span) — the between-spans death shape.
pub const FP_SPAN_SEND: &str = "distributed.span.send";
/// Failpoint site evaluated by `archpredict-worker` before each index it
/// evaluates (the worker installs its plan from the environment). The
/// `abort` action is a real mid-span worker death; `error` makes the
/// worker exit after failing the current index.
pub const FP_WORKER_EVAL: &str = "distributed.worker.eval";

/// The coordinator ↔ worker wire protocol.
///
/// Every frame is a little-endian `u32` payload length followed by the
/// payload; the payload's first byte is an opcode. Streams open with an
/// 8-byte un-framed handshake ([`proto::handshake`]: 4 magic bytes, `u16`
/// version, 2 reserved zero bytes) written by the coordinator and echoed
/// verbatim by the worker, so a version skew or a wrong binary is caught
/// before any frame is parsed. Floats travel as `f64::to_bits`, so values
/// cross the pipe bit-exactly — including NaN payloads.
pub mod proto {
    use crate::simulate::{SimError, SimResult};
    use std::io::{self, Read, Write};

    /// Magic bytes opening every stream.
    pub const MAGIC: [u8; 4] = *b"APWK";
    /// Protocol version (bumped on any framing or spec-encoding change).
    /// Version 2 added the `u64` trace ID carried by `EVAL`, `RESULT`
    /// and `SPAN_DONE`, propagating [`crate::telemetry`] trace context
    /// across the process boundary.
    pub const VERSION: u16 = 2;
    /// Frames larger than this are rejected as protocol desync (a length
    /// prefix of garbage bytes must not trigger a giant allocation).
    pub const MAX_FRAME: u32 = 1 << 26;

    /// Coordinator → worker: [`super::WorkerSpec`] configuration.
    pub const OP_CONFIG: u8 = 0x01;
    /// Coordinator → worker: evaluate a span of design-point indices.
    pub const OP_EVAL: u8 = 0x02;
    /// Coordinator → worker: exit cleanly.
    pub const OP_SHUTDOWN: u8 = 0x03;
    /// Worker → coordinator: one index's [`SimResult`].
    pub const OP_RESULT: u8 = 0x81;
    /// Worker → coordinator: span finished (carries the reply count).
    pub const OP_SPAN_DONE: u8 = 0x82;

    /// The 8-byte stream-opening handshake: magic, version, reserved.
    pub fn handshake() -> [u8; 8] {
        let v = VERSION.to_le_bytes();
        [MAGIC[0], MAGIC[1], MAGIC[2], MAGIC[3], v[0], v[1], 0, 0]
    }

    fn bad(message: impl Into<String>) -> io::Error {
        io::Error::new(io::ErrorKind::InvalidData, message.into())
    }

    /// Writes one length-prefixed frame.
    pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
        w.write_all(&(payload.len() as u32).to_le_bytes())?;
        w.write_all(payload)
    }

    /// Reads one length-prefixed frame. An EOF at a frame boundary (or
    /// mid-frame) surfaces as the underlying read error.
    pub fn read_frame(r: &mut impl Read) -> io::Result<Vec<u8>> {
        let mut len = [0u8; 4];
        r.read_exact(&mut len)?;
        let len = u32::from_le_bytes(len);
        if len == 0 || len > MAX_FRAME {
            return Err(bad(format!("frame length {len} out of range")));
        }
        let mut payload = vec![0u8; len as usize];
        r.read_exact(&mut payload)?;
        Ok(payload)
    }

    /// Encodes an `EVAL` payload: opcode, `u64` trace ID, `u32` count,
    /// `u64` indices. The trace ID (0 = untraced) is echoed back in every
    /// `RESULT` and the closing `SPAN_DONE`, tying worker events to the
    /// coordinator-side request that caused them.
    pub fn encode_eval(trace: u64, indices: &[usize]) -> Vec<u8> {
        let mut p = Vec::with_capacity(13 + 8 * indices.len());
        p.push(OP_EVAL);
        p.extend_from_slice(&trace.to_le_bytes());
        p.extend_from_slice(&(indices.len() as u32).to_le_bytes());
        for &index in indices {
            p.extend_from_slice(&(index as u64).to_le_bytes());
        }
        p
    }

    /// Decodes an `EVAL` body (everything after the opcode byte) into
    /// `(trace, indices)`.
    pub fn decode_eval(body: &[u8]) -> io::Result<(u64, Vec<u64>)> {
        if body.len() < 12 {
            return Err(bad("truncated EVAL frame"));
        }
        let trace = u64::from_le_bytes([
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]);
        let count = u32::from_le_bytes([body[8], body[9], body[10], body[11]]) as usize;
        let rest = &body[12..];
        if rest.len() != 8 * count {
            return Err(bad(format!(
                "EVAL frame claims {count} indices but carries {} bytes",
                rest.len()
            )));
        }
        let indices = rest
            .chunks_exact(8)
            .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
            .collect();
        Ok((trace, indices))
    }

    /// The wire tag for a [`SimResult`]: `0` = ok, else the error code.
    pub fn result_tag(result: &SimResult) -> u8 {
        match result {
            Ok(_) => 0,
            Err(SimError::Transient) => 1,
            Err(SimError::Crashed) => 2,
            Err(SimError::NonFinite) => 3,
            Err(SimError::TimedOut) => 4,
            Err(SimError::Quarantined) => 5,
        }
    }

    /// Inverse of [`result_tag`] for the error range.
    pub fn error_from_tag(tag: u8) -> Option<SimError> {
        match tag {
            1 => Some(SimError::Transient),
            2 => Some(SimError::Crashed),
            3 => Some(SimError::NonFinite),
            4 => Some(SimError::TimedOut),
            5 => Some(SimError::Quarantined),
            _ => None,
        }
    }

    /// Encodes a `RESULT` payload: opcode, `u64` trace ID (echoed from
    /// the `EVAL` frame), `u64` index, tag, `f64` bits.
    pub fn encode_result(trace: u64, index: u64, result: &SimResult) -> Vec<u8> {
        let mut p = Vec::with_capacity(26);
        p.push(OP_RESULT);
        p.extend_from_slice(&trace.to_le_bytes());
        p.extend_from_slice(&index.to_le_bytes());
        p.push(result_tag(result));
        let bits = match result {
            Ok(v) => v.to_bits(),
            Err(_) => 0,
        };
        p.extend_from_slice(&bits.to_le_bytes());
        p
    }

    /// Decodes a `RESULT` body (everything after the opcode byte) into
    /// `(trace, index, result)`.
    pub fn decode_result(body: &[u8]) -> io::Result<(u64, u64, SimResult)> {
        if body.len() != 25 {
            return Err(bad(format!("RESULT frame of {} bytes", body.len())));
        }
        let trace = u64::from_le_bytes([
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]);
        let index = u64::from_le_bytes([
            body[8], body[9], body[10], body[11], body[12], body[13], body[14], body[15],
        ]);
        let tag = body[16];
        let bits = u64::from_le_bytes([
            body[17], body[18], body[19], body[20], body[21], body[22], body[23], body[24],
        ]);
        let result = if tag == 0 {
            Ok(f64::from_bits(bits))
        } else {
            Err(error_from_tag(tag).ok_or_else(|| bad(format!("unknown error tag {tag}")))?)
        };
        Ok((trace, index, result))
    }

    /// Encodes a `SPAN_DONE` payload: opcode, `u64` trace ID (echoed),
    /// `u32` reply count.
    pub fn encode_span_done(trace: u64, count: u32) -> Vec<u8> {
        let mut p = Vec::with_capacity(13);
        p.push(OP_SPAN_DONE);
        p.extend_from_slice(&trace.to_le_bytes());
        p.extend_from_slice(&count.to_le_bytes());
        p
    }

    /// Decodes a `SPAN_DONE` body (everything after the opcode byte)
    /// into `(trace, count)`.
    pub fn decode_span_done(body: &[u8]) -> io::Result<(u64, u32)> {
        if body.len() != 12 {
            return Err(bad(format!("SPAN_DONE frame of {} bytes", body.len())));
        }
        let trace = u64::from_le_bytes([
            body[0], body[1], body[2], body[3], body[4], body[5], body[6], body[7],
        ]);
        let count = u32::from_le_bytes([body[8], body[9], body[10], body[11]]);
        Ok((trace, count))
    }
}

/// Cursor over a spec-encoding buffer with typed, bounds-checked reads.
struct SpecReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> SpecReader<'a> {
    fn new(buf: &'a [u8]) -> Self {
        Self { buf, pos: 0 }
    }

    fn take(&mut self, n: usize) -> io::Result<&'a [u8]> {
        let end = self.pos.checked_add(n).filter(|&e| e <= self.buf.len());
        let end =
            end.ok_or_else(|| io::Error::new(io::ErrorKind::InvalidData, "truncated worker spec"))?;
        let slice = &self.buf[self.pos..end];
        self.pos = end;
        Ok(slice)
    }

    fn u8(&mut self) -> io::Result<u8> {
        Ok(self.take(1)?[0])
    }

    fn u32(&mut self) -> io::Result<u32> {
        let b = self.take(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    fn u64(&mut self) -> io::Result<u64> {
        let b = self.take(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    fn opt_u64(&mut self) -> io::Result<Option<u64>> {
        Ok(if self.u8()? == 0 {
            let _ = self.u64()?;
            None
        } else {
            Some(self.u64()?)
        })
    }

    fn done(&self) -> io::Result<()> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "trailing bytes after worker spec",
            ))
        }
    }
}

fn push_opt_u64(out: &mut Vec<u8>, v: Option<u64>) {
    out.push(u8::from(v.is_some()));
    out.extend_from_slice(&v.unwrap_or(0).to_le_bytes());
}

/// A self-contained, wire-encodable description of the evaluator a worker
/// process should build — the unit the `CONFIG` frame carries.
///
/// Both sides of the pipe instantiate the *same* evaluator from the same
/// spec ([`WorkerSpec::evaluator`]), which is what makes the 0-worker
/// in-process fallback bit-for-bit identical to every distributed run.
#[derive(Debug, Clone, PartialEq)]
pub enum WorkerSpec {
    /// Full detailed simulation: [`StudyEvaluator`] with an explicit
    /// budget (the budget must travel, or workers would re-derive it —
    /// any drift would silently break bit-exactness).
    Study {
        /// Which design space / configuration mapping.
        study: Study,
        /// Which application's trace to simulate.
        benchmark: Benchmark,
        /// Warmup/measured instruction budget and interval schedule.
        budget: SimBudget,
    },
    /// The [`SleepyEvaluator`] test double: deterministic synthetic
    /// values, an optional per-evaluation sleep (for exercising span
    /// deadlines), an optional hard-crash index (the worker process
    /// aborts — for exercising crash recovery) and an optional NaN index
    /// (for exercising error transport).
    Sleepy {
        /// Which study's space the indices belong to.
        study: Study,
        /// Per-evaluation sleep, in microseconds.
        sleep_micros: u64,
        /// Index at which the worker process aborts (in-process fallback
        /// returns [`SimError::Crashed`] instead, keeping results
        /// identical at every worker count).
        crash_index: Option<u64>,
        /// Index that yields NaN → [`SimError::NonFinite`].
        nan_index: Option<u64>,
    },
}

const SPEC_STUDY: u8 = 0;
const SPEC_SLEEPY: u8 = 1;

fn study_tag(study: Study) -> u8 {
    match study {
        Study::MemorySystem => 0,
        Study::Processor => 1,
    }
}

fn study_from_tag(tag: u8) -> io::Result<Study> {
    match tag {
        0 => Ok(Study::MemorySystem),
        1 => Ok(Study::Processor),
        other => Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("unknown study tag {other}"),
        )),
    }
}

impl WorkerSpec {
    /// The standard full-simulation spec for `study` × `benchmark`
    /// ([`SimBudget::standard`]).
    pub fn study(study: Study, benchmark: Benchmark) -> Self {
        let generator = TraceGenerator::new(benchmark);
        WorkerSpec::Study {
            study,
            benchmark,
            budget: SimBudget::standard(&generator),
        }
    }

    /// The design space the spec's indices refer to.
    pub fn space(&self) -> DesignSpace {
        match self {
            WorkerSpec::Study { study, .. } | WorkerSpec::Sleepy { study, .. } => study.space(),
        }
    }

    /// Builds the in-process incarnation of this spec's evaluator (used
    /// by the 0-worker fallback and for single-point adapters).
    pub fn evaluator(&self) -> SpecEvaluator {
        self.build(false)
    }

    /// Builds the worker-process incarnation: identical to
    /// [`WorkerSpec::evaluator`] except that a [`WorkerSpec::Sleepy`]
    /// crash index genuinely aborts the process.
    pub fn evaluator_in_worker(&self) -> SpecEvaluator {
        self.build(true)
    }

    fn build(&self, in_worker: bool) -> SpecEvaluator {
        match self {
            WorkerSpec::Study {
                study,
                benchmark,
                budget,
            } => SpecEvaluator::Study(StudyEvaluator::with_budget(
                *study,
                *benchmark,
                budget.clone(),
            )),
            WorkerSpec::Sleepy {
                study,
                sleep_micros,
                crash_index,
                nan_index,
            } => SpecEvaluator::Sleepy(SleepyEvaluator {
                space: study.space(),
                sleep: Duration::from_micros(*sleep_micros),
                crash_index: crash_index.map(|i| i as usize),
                nan_index: nan_index.map(|i| i as usize),
                abort_on_crash: in_worker,
            }),
        }
    }

    /// Serializes the spec for the `CONFIG` frame (little-endian, fixed
    /// layout per variant; see [`proto`]).
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::new();
        match self {
            WorkerSpec::Study {
                study,
                benchmark,
                budget,
            } => {
                out.push(SPEC_STUDY);
                out.push(study_tag(*study));
                let app = Benchmark::ALL
                    .iter()
                    .position(|b| b == benchmark)
                    .expect("benchmark is in ALL") as u8;
                out.push(app);
                out.extend_from_slice(&budget.warmup.to_le_bytes());
                out.extend_from_slice(&budget.measured.to_le_bytes());
                out.extend_from_slice(&(budget.intervals.len() as u32).to_le_bytes());
                for &interval in &budget.intervals {
                    out.extend_from_slice(&(interval as u32).to_le_bytes());
                }
            }
            WorkerSpec::Sleepy {
                study,
                sleep_micros,
                crash_index,
                nan_index,
            } => {
                out.push(SPEC_SLEEPY);
                out.push(study_tag(*study));
                out.extend_from_slice(&sleep_micros.to_le_bytes());
                push_opt_u64(&mut out, *crash_index);
                push_opt_u64(&mut out, *nan_index);
            }
        }
        out
    }

    /// Deserializes a spec from a `CONFIG` frame body.
    pub fn decode(bytes: &[u8]) -> io::Result<Self> {
        let mut r = SpecReader::new(bytes);
        let spec = match r.u8()? {
            SPEC_STUDY => {
                let study = study_from_tag(r.u8()?)?;
                let app = r.u8()? as usize;
                let benchmark = *Benchmark::ALL.get(app).ok_or_else(|| {
                    io::Error::new(
                        io::ErrorKind::InvalidData,
                        format!("unknown benchmark tag {app}"),
                    )
                })?;
                let warmup = r.u64()?;
                let measured = r.u64()?;
                let count = r.u32()? as usize;
                let mut intervals = Vec::with_capacity(count);
                for _ in 0..count {
                    intervals.push(r.u32()? as usize);
                }
                WorkerSpec::Study {
                    study,
                    benchmark,
                    budget: SimBudget {
                        warmup,
                        measured,
                        intervals,
                    },
                }
            }
            SPEC_SLEEPY => WorkerSpec::Sleepy {
                study: study_from_tag(r.u8()?)?,
                sleep_micros: r.u64()?,
                crash_index: r.opt_u64()?,
                nan_index: r.opt_u64()?,
            },
            other => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unknown spec tag {other}"),
                ))
            }
        };
        r.done()?;
        Ok(spec)
    }
}

/// The evaluator a [`WorkerSpec`] describes, instantiable on either side
/// of the pipe.
#[derive(Debug)]
pub enum SpecEvaluator {
    /// Full detailed simulation.
    Study(StudyEvaluator),
    /// The synthetic sleepy/crashy/NaN test double.
    Sleepy(SleepyEvaluator),
}

impl PointEvaluator for SpecEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        match self {
            SpecEvaluator::Study(e) => e.evaluate(point),
            SpecEvaluator::Sleepy(e) => e.evaluate(point),
        }
    }

    fn try_evaluate(&self, point: &DesignPoint) -> SimResult {
        match self {
            SpecEvaluator::Study(e) => e.try_evaluate(point),
            SpecEvaluator::Sleepy(e) => e.try_evaluate(point),
        }
    }

    fn instructions_per_evaluation(&self) -> u64 {
        match self {
            SpecEvaluator::Study(e) => e.instructions_per_evaluation(),
            SpecEvaluator::Sleepy(e) => e.instructions_per_evaluation(),
        }
    }
}

/// A deterministic test double that sleeps before answering — the
/// evaluator behind [`WorkerSpec::Sleepy`].
///
/// Values are a pure function of the design point (sum of level indices
/// plus one), so runs are reproducible at any worker count. The optional
/// fault knobs exercise the three distributed failure paths: `sleep`
/// drives the pool's span deadline into [`SimError::TimedOut`],
/// `crash_index` kills the worker process mid-span (in-process it returns
/// [`SimError::Crashed`], keeping placements identical), and `nan_index`
/// exercises error transport with [`SimError::NonFinite`].
#[derive(Debug)]
pub struct SleepyEvaluator {
    space: DesignSpace,
    sleep: Duration,
    crash_index: Option<usize>,
    nan_index: Option<usize>,
    abort_on_crash: bool,
}

impl SleepyEvaluator {
    /// A fault-free sleepy evaluator over `study`'s space.
    pub fn new(study: Study, sleep: Duration) -> Self {
        Self {
            space: study.space(),
            sleep,
            crash_index: None,
            nan_index: None,
            abort_on_crash: false,
        }
    }

    /// The synthetic metric at `point`: `Σ level + 1`, strictly positive.
    pub fn value_at(point: &DesignPoint) -> f64 {
        point.0.iter().sum::<usize>() as f64 + 1.0
    }
}

impl PointEvaluator for SleepyEvaluator {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        Self::value_at(point)
    }

    fn try_evaluate(&self, point: &DesignPoint) -> SimResult {
        if !self.sleep.is_zero() {
            std::thread::sleep(self.sleep);
        }
        let index = self.space.index(point);
        if Some(index) == self.crash_index {
            if self.abort_on_crash {
                // A genuine hard death: no unwinding, no cleanup, no exit
                // code 0 — exactly what a segfaulting simulator looks like
                // to the coordinator.
                std::process::abort();
            }
            return Err(SimError::Crashed);
        }
        if Some(index) == self.nan_index {
            return Err(SimError::NonFinite);
        }
        Ok(Self::value_at(point))
    }

    fn instructions_per_evaluation(&self) -> u64 {
        1
    }
}

/// A message the per-worker reader thread forwards to the coordinator.
enum Msg {
    /// The worker echoed the handshake correctly.
    Hello,
    /// One index's result, echoing the span's trace ID.
    Result {
        trace: u64,
        index: u64,
        result: SimResult,
    },
    /// The worker finished its span (`count` replies sent), echoing the
    /// span's trace ID.
    SpanDone { trace: u64, count: u32 },
    /// The worker spoke garbage; the stream is unusable.
    Malformed(String),
}

/// A live worker process: the child, its stdin, and the channel its
/// reader thread forwards replies on.
struct Worker {
    child: Child,
    stdin: ChildStdin,
    rx: mpsc::Receiver<Msg>,
    reader: Option<std::thread::JoinHandle<()>>,
    pid: u32,
}

/// Why a span round ended.
enum SpanOutcome {
    /// Every remaining index answered and `SPAN_DONE` seen.
    Done,
    /// The span deadline expired with the worker still busy.
    TimedOut,
    /// The worker died (EOF) or desynced (garbage frames).
    Died,
}

/// The multi-process simulation oracle: fan batches out across worker
/// *processes* instead of threads.
///
/// See the [module docs](self) for the protocol, determinism and fault
/// semantics. With `workers == 0` (the default of [`ENV_SIM_WORKERS`])
/// every batch runs in-process through the ordinary scoped-thread
/// fan-out — same evaluator, same results.
#[derive(Debug)]
pub struct ProcessPoolOracle {
    spec: WorkerSpec,
    fallback: SpecEvaluator,
    space_size: usize,
    binary: Option<PathBuf>,
    workers: usize,
    span_timeout: Option<Duration>,
    slots: Vec<Mutex<Option<Worker>>>,
    /// Live PID per slot (0 = empty), kept outside the slot mutexes so
    /// [`ProcessPoolOracle::worker_pids`] never blocks on a running span
    /// (crash tests SIGKILL a worker *while* its span is in flight).
    pids: Vec<AtomicU32>,
    respawns: Counter,
    timeouts: Counter,
}

impl std::fmt::Debug for Worker {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Worker").field("pid", &self.pid).finish()
    }
}

impl ProcessPoolOracle {
    /// Builds a pool sized by [`ENV_SIM_WORKERS`] (0 = in-process) with
    /// the deadline from [`ENV_SPAN_TIMEOUT_MS`] (absent = none).
    pub fn from_env(spec: WorkerSpec) -> io::Result<Self> {
        Self::with_workers(spec, Self::workers_from_env())
    }

    /// Builds a pool with an explicit worker count. `workers == 0` never
    /// spawns anything; `workers >= 1` requires the `archpredict-worker`
    /// binary to be locatable (see [`locate_worker_binary`]). Workers are
    /// spawned lazily, on the first batch that needs them.
    pub fn with_workers(spec: WorkerSpec, workers: usize) -> io::Result<Self> {
        let binary = if workers == 0 {
            None
        } else {
            Some(locate_worker_binary()?)
        };
        let fallback = spec.evaluator();
        let space_size = spec.space().size();
        Ok(Self {
            spec,
            fallback,
            space_size,
            binary,
            workers,
            span_timeout: span_timeout_from_env(),
            slots: (0..workers).map(|_| Mutex::new(None)).collect(),
            pids: (0..workers).map(|_| AtomicU32::new(0)).collect(),
            respawns: Counter::mirroring("distributed.respawns", &telemetry::DISTRIBUTED_RESPAWNS),
            timeouts: Counter::mirroring("distributed.timeouts", &telemetry::DISTRIBUTED_TIMEOUTS),
        })
    }

    /// The configured worker count (0 = in-process fallback).
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// The spec every worker is configured with.
    pub fn spec(&self) -> &WorkerSpec {
        &self.spec
    }

    /// Replaces the per-span wall-clock deadline (`None` disables it).
    pub fn set_span_timeout(&mut self, timeout: Option<Duration>) {
        self.span_timeout = timeout;
    }

    /// The per-span deadline in force.
    pub fn span_timeout(&self) -> Option<Duration> {
        self.span_timeout
    }

    /// Workers replaced after a crash, desync or deadline kill.
    pub fn respawns(&self) -> u64 {
        self.respawns.get()
    }

    /// Spans whose deadline expired (each also counts a respawn).
    pub fn span_timeouts(&self) -> u64 {
        self.timeouts.get()
    }

    /// PIDs of the currently live workers (spawned lazily, so this is
    /// empty until the first distributed batch). Never blocks, even while
    /// spans are in flight.
    pub fn worker_pids(&self) -> Vec<u32> {
        self.pids
            .iter()
            .map(|pid| pid.load(Ordering::Relaxed))
            .filter(|&pid| pid != 0)
            .collect()
    }

    /// Resolves [`ENV_SIM_WORKERS`] (absent/unparsable = 0).
    pub fn workers_from_env() -> usize {
        std::env::var(ENV_SIM_WORKERS)
            .ok()
            .and_then(|v| v.trim().parse::<usize>().ok())
            .unwrap_or(0)
    }

    fn spawn_worker(&self) -> io::Result<Worker> {
        let binary = self.binary.as_ref().expect("spawn requires workers >= 1");
        let mut child = Command::new(binary)
            .stdin(Stdio::piped())
            .stdout(Stdio::piped())
            .stderr(Stdio::inherit())
            .spawn()?;
        let pid = child.id();
        let mut stdin = child.stdin.take().expect("piped stdin");
        let stdout = child.stdout.take().expect("piped stdout");
        let (tx, rx) = mpsc::channel();
        let reader = std::thread::Builder::new()
            .name(format!("archpredict-worker-io-{pid}"))
            .spawn(move || reader_loop(stdout, &tx))?;
        let sent = (|| {
            stdin.write_all(&proto::handshake())?;
            let mut config = vec![proto::OP_CONFIG];
            config.extend_from_slice(&self.spec.encode());
            proto::write_frame(&mut stdin, &config)?;
            stdin.flush()
        })();
        let hello = sent.is_ok() && matches!(rx.recv_timeout(HANDSHAKE_TIMEOUT), Ok(Msg::Hello));
        if !hello {
            let _ = child.kill();
            let _ = child.wait();
            let _ = reader.join();
            return Err(io::Error::other(format!(
                "worker {pid} failed the version handshake"
            )));
        }
        Ok(Worker {
            child,
            stdin,
            rx,
            reader: Some(reader),
            pid,
        })
    }

    /// Kills (if needed), reaps and joins a worker. Safe on workers that
    /// already died: `kill` on a reaped-by-nobody zombie is a no-op and
    /// `wait` collects it.
    fn reap(worker: Option<Worker>) {
        if let Some(mut w) = worker {
            let _ = w.child.kill();
            let _ = w.child.wait();
            if let Some(reader) = w.reader.take() {
                let _ = reader.join();
            }
        }
    }

    /// Drives one worker slot through one span: send the `EVAL` frame,
    /// stream replies into `out`, and on death/deadline blame exactly the
    /// in-flight index, respawn, and reassign the unfinished remainder.
    fn run_span(&self, slot_index: usize, span: &[usize], out: &mut [SimResult]) {
        let _span_event = telemetry::span("distributed.span");
        // The thread's trace ID rides the EVAL frame to the worker, which
        // echoes it in every RESULT and the closing SPAN_DONE — a reply
        // carrying the wrong trace is a protocol desync like any other.
        let trace = telemetry::current_trace();
        let mut slot = self.slots[slot_index].lock().expect("worker slot");
        // (position in `out`, design-point index) pairs still unanswered.
        let mut remaining: Vec<(usize, usize)> = span.iter().copied().enumerate().collect();
        let mut consecutive_failures = 0u32;
        while !remaining.is_empty() {
            if consecutive_failures >= 3 {
                // A worker that cannot even start a span (spawn or write
                // failing back-to-back) fails the remainder outright; the
                // retry layer above decides what happens next.
                for &(pos, _) in &remaining {
                    out[pos] = Err(SimError::Crashed);
                }
                return;
            }
            if slot.is_none() {
                match self.spawn_worker() {
                    Ok(worker) => {
                        self.pids[slot_index].store(worker.pid, Ordering::Relaxed);
                        *slot = Some(worker);
                    }
                    Err(e) => {
                        consecutive_failures += 1;
                        eprintln!("archpredict distributed: spawn failed: {e}");
                        continue;
                    }
                }
            }
            let worker = slot.as_mut().expect("slot filled above");
            let indices: Vec<usize> = remaining.iter().map(|&(_, index)| index).collect();
            // An injected send failure looks exactly like a worker that
            // died idle between spans: the coordinator reaps, respawns,
            // and retries the same indices.
            let sent = match crate::failpoint::check(FP_SPAN_SEND) {
                Some(failure) => Err(failure.into_io_error(FP_SPAN_SEND)),
                None => proto::write_frame(&mut worker.stdin, &proto::encode_eval(trace, &indices))
                    .and_then(|_| worker.stdin.flush()),
            };
            if sent.is_err() {
                // The worker died idle, between spans: nothing was in
                // flight, so nothing is blamed — just replace it.
                self.pids[slot_index].store(0, Ordering::Relaxed);
                Self::reap(slot.take());
                self.respawns.incr();
                consecutive_failures += 1;
                continue;
            }
            consecutive_failures = 0;
            let deadline = self.span_timeout.map(|t| Instant::now() + t);
            let mut answered = 0usize;
            let outcome = loop {
                let received = match deadline {
                    Some(d) => {
                        let now = Instant::now();
                        if now >= d {
                            break SpanOutcome::TimedOut;
                        }
                        match worker.rx.recv_timeout(d - now) {
                            Ok(msg) => msg,
                            Err(mpsc::RecvTimeoutError::Timeout) => break SpanOutcome::TimedOut,
                            Err(mpsc::RecvTimeoutError::Disconnected) => break SpanOutcome::Died,
                        }
                    }
                    None => match worker.rx.recv() {
                        Ok(msg) => msg,
                        Err(_) => break SpanOutcome::Died,
                    },
                };
                match received {
                    Msg::Result {
                        trace: echoed,
                        index,
                        result,
                    } if echoed == trace
                        && answered < remaining.len()
                        && index as usize == remaining[answered].1 =>
                    {
                        out[remaining[answered].0] = result;
                        answered += 1;
                    }
                    Msg::SpanDone {
                        trace: echoed,
                        count,
                    } if echoed == trace
                        && answered == remaining.len()
                        && count as usize == answered =>
                    {
                        break SpanOutcome::Done;
                    }
                    Msg::Malformed(why) => {
                        eprintln!(
                            "archpredict distributed: worker {} desynced: {why}",
                            worker.pid
                        );
                        break SpanOutcome::Died;
                    }
                    // Out-of-order replies are a protocol desync too.
                    _ => break SpanOutcome::Died,
                }
            };
            match outcome {
                SpanOutcome::Done => remaining.clear(),
                SpanOutcome::TimedOut | SpanOutcome::Died => {
                    if matches!(outcome, SpanOutcome::TimedOut) {
                        self.timeouts.incr();
                    }
                    self.pids[slot_index].store(0, Ordering::Relaxed);
                    Self::reap(slot.take());
                    self.respawns.incr();
                    if answered >= remaining.len() {
                        // Death after the final reply but before
                        // SPAN_DONE: every result already landed.
                        remaining.clear();
                    } else {
                        // Blame exactly the in-flight index — the worker
                        // answers strictly in order, so the first
                        // unanswered index is the one it was evaluating —
                        // and reassign the untouched remainder.
                        let error = if matches!(outcome, SpanOutcome::TimedOut) {
                            SimError::TimedOut
                        } else {
                            SimError::Crashed
                        };
                        out[remaining[answered].0] = Err(error);
                        remaining.drain(..=answered);
                    }
                }
            }
        }
    }
}

impl PointEvaluator for ProcessPoolOracle {
    fn evaluate(&self, point: &DesignPoint) -> f64 {
        self.fallback.evaluate(point)
    }

    fn try_evaluate(&self, point: &DesignPoint) -> SimResult {
        self.fallback.try_evaluate(point)
    }

    fn instructions_per_evaluation(&self) -> u64 {
        self.fallback.instructions_per_evaluation()
    }

    fn dispatch_batch(&self, space: &DesignSpace, indices: &[usize]) -> Option<Vec<SimResult>> {
        if self.workers == 0 || indices.is_empty() {
            return None;
        }
        assert_eq!(
            space.size(),
            self.space_size,
            "batch space does not match the pool's worker spec"
        );
        // The same contiguous-span split the in-process fan-out uses;
        // merging in input order keeps results identical at every count.
        let workers = self.workers.min(indices.len());
        let chunk = indices.len().div_ceil(workers);
        let mut results = vec![Ok(0.0); indices.len()];
        // Trace context is thread-local; capture it here and re-attach
        // inside each scoped worker thread so span frames carry the
        // caller's trace ID across the process boundary.
        let trace = telemetry::current_trace();
        std::thread::scope(|scope| {
            for (slot_index, (out, span)) in results
                .chunks_mut(chunk)
                .zip(indices.chunks(chunk))
                .enumerate()
            {
                scope.spawn(move || {
                    let _trace_scope = telemetry::set_trace(trace);
                    self.run_span(slot_index, span, out);
                });
            }
        });
        Some(results)
    }
}

impl Drop for ProcessPoolOracle {
    fn drop(&mut self) {
        for (slot_index, slot) in self.slots.iter().enumerate() {
            if let Ok(mut slot) = slot.lock() {
                if let Some(worker) = slot.as_mut() {
                    // Best-effort graceful shutdown before the reap kill.
                    let _ = proto::write_frame(&mut worker.stdin, &[proto::OP_SHUTDOWN])
                        .and_then(|_| worker.stdin.flush());
                }
                self.pids[slot_index].store(0, Ordering::Relaxed);
                Self::reap(slot.take());
            }
        }
    }
}

/// Reads frames off a worker's stdout and forwards them as [`Msg`]s until
/// EOF (worker death or shutdown) or a send failure (coordinator gone).
fn reader_loop(stdout: ChildStdout, tx: &mpsc::Sender<Msg>) {
    let mut reader = std::io::BufReader::new(stdout);
    let mut echo = [0u8; 8];
    if std::io::Read::read_exact(&mut reader, &mut echo).is_err() || echo != proto::handshake() {
        let _ = tx.send(Msg::Malformed("bad handshake echo".into()));
        return;
    }
    if tx.send(Msg::Hello).is_err() {
        return;
    }
    loop {
        let payload = match proto::read_frame(&mut reader) {
            Ok(payload) => payload,
            // EOF: dropping the sender disconnects the channel, which the
            // coordinator observes as worker death.
            Err(_) => return,
        };
        let msg = match payload.split_first() {
            Some((&proto::OP_RESULT, body)) => match proto::decode_result(body) {
                Ok((trace, index, result)) => Msg::Result {
                    trace,
                    index,
                    result,
                },
                Err(e) => Msg::Malformed(e.to_string()),
            },
            Some((&proto::OP_SPAN_DONE, body)) => match proto::decode_span_done(body) {
                Ok((trace, count)) => Msg::SpanDone { trace, count },
                Err(e) => Msg::Malformed(e.to_string()),
            },
            Some((&op, _)) => Msg::Malformed(format!("unexpected opcode {op:#04x}")),
            None => Msg::Malformed("empty frame".into()),
        };
        let malformed = matches!(msg, Msg::Malformed(_));
        if tx.send(msg).is_err() || malformed {
            return;
        }
    }
}

/// Resolves the per-span deadline from [`ENV_SPAN_TIMEOUT_MS`].
fn span_timeout_from_env() -> Option<Duration> {
    std::env::var(ENV_SPAN_TIMEOUT_MS)
        .ok()
        .and_then(|v| v.trim().parse::<u64>().ok())
        .filter(|&ms| ms > 0)
        .map(Duration::from_millis)
}

/// Finds the `archpredict-worker` binary: [`ENV_WORKER_BIN`] if set, else
/// next to the current executable, else one directory up (test binaries
/// live in `target/<profile>/deps/`, the worker in `target/<profile>/`).
pub fn locate_worker_binary() -> io::Result<PathBuf> {
    if let Ok(path) = std::env::var(ENV_WORKER_BIN) {
        let path = PathBuf::from(path);
        if path.is_file() {
            return Ok(path);
        }
        return Err(io::Error::new(
            io::ErrorKind::NotFound,
            format!(
                "{ENV_WORKER_BIN} points at {}, which does not exist",
                path.display()
            ),
        ));
    }
    let exe = std::env::current_exe()?;
    let mut dir = exe.parent();
    for _ in 0..2 {
        if let Some(d) = dir {
            let candidate = d.join("archpredict-worker");
            if candidate.is_file() {
                return Ok(candidate);
            }
            dir = d.parent();
        }
    }
    Err(io::Error::new(
        io::ErrorKind::NotFound,
        "archpredict-worker binary not found: build it with \
         `cargo build -p archpredict-worker` or set ARCHPREDICT_WORKER_BIN",
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handshake_is_magic_then_version() {
        let h = proto::handshake();
        assert_eq!(&h[..4], b"APWK");
        assert_eq!(u16::from_le_bytes([h[4], h[5]]), proto::VERSION);
        assert_eq!(&h[6..], &[0, 0]);
    }

    #[test]
    fn frame_round_trip() {
        let mut pipe: Vec<u8> = Vec::new();
        proto::write_frame(&mut pipe, &[1, 2, 3]).unwrap();
        proto::write_frame(&mut pipe, &proto::encode_span_done(0xFEED, 7)).unwrap();
        let mut cursor = &pipe[..];
        assert_eq!(proto::read_frame(&mut cursor).unwrap(), vec![1, 2, 3]);
        let done = proto::read_frame(&mut cursor).unwrap();
        assert_eq!(done[0], proto::OP_SPAN_DONE);
        assert_eq!(proto::decode_span_done(&done[1..]).unwrap(), (0xFEED, 7));
        // EOF at a frame boundary is an error the reader maps to death.
        assert!(proto::read_frame(&mut cursor).is_err());
    }

    #[test]
    fn oversized_and_empty_frames_are_rejected() {
        let mut pipe: Vec<u8> = Vec::new();
        pipe.extend_from_slice(&(proto::MAX_FRAME + 1).to_le_bytes());
        assert!(proto::read_frame(&mut &pipe[..]).is_err());
        let zero = 0u32.to_le_bytes();
        assert!(proto::read_frame(&mut &zero[..]).is_err());
    }

    #[test]
    fn eval_round_trip() {
        let indices = vec![0usize, 7, 23_039, usize::MAX >> 1];
        let trace = 0xDEAD_BEEF_0123_4567u64;
        let payload = proto::encode_eval(trace, &indices);
        assert_eq!(payload[0], proto::OP_EVAL);
        let (echoed, decoded) = proto::decode_eval(&payload[1..]).unwrap();
        let expected: Vec<u64> = indices.iter().map(|&i| i as u64).collect();
        assert_eq!(echoed, trace);
        assert_eq!(decoded, expected);
        assert!(proto::decode_eval(&payload[1..payload.len() - 1]).is_err());
    }

    #[test]
    fn result_round_trip_is_bit_exact() {
        let cases: Vec<SimResult> = vec![
            Ok(1.25),
            Ok(-0.0),
            Ok(f64::MIN_POSITIVE / 2.0),               // subnormal
            Ok(f64::from_bits(0x7FF8_0000_0000_1234)), // NaN with payload
            Err(SimError::Transient),
            Err(SimError::Crashed),
            Err(SimError::NonFinite),
            Err(SimError::TimedOut),
            Err(SimError::Quarantined),
        ];
        let trace = 0x0123_4567_89AB_CDEFu64;
        for (i, result) in cases.iter().enumerate() {
            let payload = proto::encode_result(trace, i as u64, result);
            assert_eq!(payload[0], proto::OP_RESULT);
            let (echoed, index, decoded) = proto::decode_result(&payload[1..]).unwrap();
            assert_eq!(echoed, trace);
            assert_eq!(index, i as u64);
            match (result, &decoded) {
                (Ok(a), Ok(b)) => assert_eq!(a.to_bits(), b.to_bits(), "case {i}"),
                (Err(a), Err(b)) => assert_eq!(a, b, "case {i}"),
                _ => panic!("case {i}: {result:?} decoded as {decoded:?}"),
            }
        }
        assert!(proto::decode_result(&[0u8; 16]).is_err());
        // Unknown error tag.
        let mut bogus = proto::encode_result(trace, 0, &Err(SimError::Crashed));
        bogus[17] = 99;
        assert!(proto::decode_result(&bogus[1..]).is_err());
    }

    #[test]
    fn spec_round_trips() {
        let generator = TraceGenerator::new(Benchmark::Twolf);
        let specs = vec![
            WorkerSpec::Study {
                study: Study::Processor,
                benchmark: Benchmark::Twolf,
                budget: SimBudget::spread(&generator, 3, 5_000, 9_000),
            },
            WorkerSpec::study(Study::MemorySystem, Benchmark::Gzip),
            WorkerSpec::Sleepy {
                study: Study::MemorySystem,
                sleep_micros: 1_500,
                crash_index: Some(42),
                nan_index: None,
            },
            WorkerSpec::Sleepy {
                study: Study::Processor,
                sleep_micros: 0,
                crash_index: None,
                nan_index: Some(7),
            },
        ];
        for spec in specs {
            let decoded = WorkerSpec::decode(&spec.encode()).unwrap();
            assert_eq!(spec, decoded);
        }
        assert!(WorkerSpec::decode(&[]).is_err());
        assert!(WorkerSpec::decode(&[99]).is_err());
        // Trailing garbage is rejected, not ignored.
        let mut padded = WorkerSpec::study(Study::MemorySystem, Benchmark::Gzip).encode();
        padded.push(0);
        assert!(WorkerSpec::decode(&padded).is_err());
    }

    #[test]
    fn sleepy_evaluator_matches_spec_fallback_and_faults_deterministically() {
        let spec = WorkerSpec::Sleepy {
            study: Study::MemorySystem,
            sleep_micros: 0,
            crash_index: Some(5),
            nan_index: Some(9),
        };
        let space = spec.space();
        let evaluator = spec.evaluator();
        assert_eq!(
            evaluator.try_evaluate(&space.point(5)),
            Err(SimError::Crashed)
        );
        assert_eq!(
            evaluator.try_evaluate(&space.point(9)),
            Err(SimError::NonFinite)
        );
        let p = space.point(100);
        assert_eq!(
            evaluator.try_evaluate(&p),
            Ok(SleepyEvaluator::value_at(&p))
        );
        assert_eq!(evaluator.instructions_per_evaluation(), 1);
    }

    #[test]
    fn zero_worker_pool_needs_no_binary_and_defers_to_in_process() {
        let spec = WorkerSpec::Sleepy {
            study: Study::MemorySystem,
            sleep_micros: 0,
            crash_index: None,
            nan_index: None,
        };
        let space = spec.space();
        // workers == 0 must construct even with no worker binary on disk.
        let pool = ProcessPoolOracle::with_workers(spec, 0).expect("no binary needed");
        assert_eq!(pool.workers(), 0);
        assert!(pool.dispatch_batch(&space, &[1, 2, 3]).is_none());
        assert!(pool.worker_pids().is_empty());
        let p = space.point(12);
        assert_eq!(pool.try_evaluate(&p), Ok(SleepyEvaluator::value_at(&p)));
    }
}
