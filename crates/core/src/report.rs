//! Experiment reporting: learning curves and CSV emission.
//!
//! Every figure in the paper's evaluation is a series of
//! (fraction-of-space-sampled → error) points. [`LearningCurve`] collects
//! those rows — estimated and, when measured, true error — and renders
//! them as CSV (for plotting) or an aligned text table (for logs).
//!
//! Two CSV flavors exist: [`LearningCurve::to_csv`] carries everything
//! including wall-clock timings, and [`LearningCurve::to_csv_deterministic`]
//! drops the timing columns so two runs with identical seeds produce
//! byte-for-byte identical files — the currency of the fault-tolerance and
//! checkpoint/resume equivalence gates. File writes go through the atomic
//! [`crate::persist::write_atomic`] path.

use crate::campaign::{Round, TrueError};
use archpredict_stats::json::{JsonError, Value};
use std::path::Path;

/// One row of a learning curve.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CurvePoint {
    /// Training-set size in simulations.
    pub samples: usize,
    /// Percentage of the full space sampled.
    pub percent_sampled: f64,
    /// Cross-validation estimated mean percentage error.
    pub estimated_mean: f64,
    /// Cross-validation estimated standard deviation of percentage error.
    pub estimated_std_dev: f64,
    /// Measured mean percentage error on held-out points, when available.
    pub true_mean: Option<f64>,
    /// Measured standard deviation, when available.
    pub true_std_dev: Option<f64>,
    /// Wall-clock seconds spent training this row's ensemble, as seen by
    /// the caller (folds training in parallel overlap inside this figure).
    pub training_seconds: f64,
    /// Wall-clock seconds spent simulating this row's batch.
    pub simulation_seconds: f64,
    /// Wall-clock seconds spent scoring candidate points through the
    /// batched inference path (0 outside active learning).
    pub prediction_seconds: f64,
    /// Mean training epochs per fold before early stopping.
    pub mean_fold_epochs: f64,
    /// Configurations actually simulated for this row's batch (cached or
    /// duplicated points excluded) — the honest Figs. 5.6/5.7 count.
    pub unique_simulations: u64,
    /// Evaluations the oracle served from cache for this row's batch.
    pub simulation_cache_hits: u64,
    /// Instructions simulated for this row's batch.
    pub simulated_instructions: u64,
    /// Evaluation attempts that failed for this row's batch.
    pub sim_failures: u64,
    /// Retry attempts the oracle stack issued for this row's batch.
    pub sim_retries: u64,
    /// Points quarantined (gave up on) during this row's batch.
    pub sim_quarantined: u64,
    /// Replacement points drawn to backfill failures this round.
    pub sim_resampled: u64,
}

/// A labelled learning curve (one application × one study).
#[derive(Debug, Clone, PartialEq, Default)]
pub struct LearningCurve {
    /// Label, e.g. `"mesa (memory)"`.
    pub label: String,
    /// Rows in sampling order.
    pub points: Vec<CurvePoint>,
}

impl LearningCurve {
    /// Creates an empty curve with a label.
    pub fn new(label: impl Into<String>) -> Self {
        Self {
            label: label.into(),
            points: Vec::new(),
        }
    }

    /// Appends a row from an explorer round and optional true error.
    pub fn push(&mut self, round: &Round, true_error: Option<TrueError>) {
        self.points.push(CurvePoint {
            samples: round.samples,
            percent_sampled: 100.0 * round.fraction_sampled,
            estimated_mean: round.estimate.mean,
            estimated_std_dev: round.estimate.std_dev,
            true_mean: true_error.map(|t| t.mean),
            true_std_dev: true_error.map(|t| t.std_dev),
            training_seconds: round.training_seconds,
            simulation_seconds: round.simulation_seconds,
            prediction_seconds: round.prediction_seconds,
            mean_fold_epochs: round.mean_epochs(),
            unique_simulations: round.simulation.unique_simulations,
            simulation_cache_hits: round.simulation.cache_hits,
            simulated_instructions: round.simulation.simulated_instructions,
            sim_failures: round.simulation.failures,
            sim_retries: round.simulation.retries,
            sim_quarantined: round.simulation.quarantined,
            sim_resampled: round.simulation.resampled,
        });
    }

    /// CSV rendering with a header row.
    pub fn to_csv(&self) -> String {
        let mut out = String::from(
            "label,samples,percent_sampled,estimated_mean,estimated_std_dev,true_mean,true_std_dev,training_seconds,simulation_seconds,prediction_seconds,mean_fold_epochs,unique_simulations,simulation_cache_hits,simulated_instructions,sim_failures,sim_retries,sim_quarantined,sim_resampled\n",
        );
        for p in &self.points {
            let fmt_opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.4}"));
            out.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4},{},{},{:.4},{:.4},{:.4},{:.1},{},{},{},{},{},{},{}\n",
                self.label,
                p.samples,
                p.percent_sampled,
                p.estimated_mean,
                p.estimated_std_dev,
                fmt_opt(p.true_mean),
                fmt_opt(p.true_std_dev),
                p.training_seconds,
                p.simulation_seconds,
                p.prediction_seconds,
                p.mean_fold_epochs,
                p.unique_simulations,
                p.simulation_cache_hits,
                p.simulated_instructions,
                p.sim_failures,
                p.sim_retries,
                p.sim_quarantined,
                p.sim_resampled,
            ));
        }
        out
    }

    /// CSV rendering with the wall-clock timing columns removed, so the
    /// output is a pure function of seeds and data. Two runs that should
    /// be equivalent (different thread counts, resumed vs. uninterrupted)
    /// can be compared byte-for-byte on this rendering.
    pub fn to_csv_deterministic(&self) -> String {
        let mut out = String::from(
            "label,samples,percent_sampled,estimated_mean,estimated_std_dev,true_mean,true_std_dev,mean_fold_epochs,unique_simulations,simulation_cache_hits,simulated_instructions,sim_failures,sim_retries,sim_quarantined,sim_resampled\n",
        );
        for p in &self.points {
            let fmt_opt = |v: Option<f64>| v.map_or(String::new(), |x| format!("{x:.4}"));
            out.push_str(&format!(
                "{},{},{:.4},{:.4},{:.4},{},{},{:.1},{},{},{},{},{},{},{}\n",
                self.label,
                p.samples,
                p.percent_sampled,
                p.estimated_mean,
                p.estimated_std_dev,
                fmt_opt(p.true_mean),
                fmt_opt(p.true_std_dev),
                p.mean_fold_epochs,
                p.unique_simulations,
                p.simulation_cache_hits,
                p.simulated_instructions,
                p.sim_failures,
                p.sim_retries,
                p.sim_quarantined,
                p.sim_resampled,
            ));
        }
        out
    }

    /// Atomically writes [`LearningCurve::to_csv`] to `path` (temp file,
    /// fsync, rename — a kill mid-write never leaves a torn artifact).
    pub fn write_csv(&self, path: &Path) -> std::io::Result<()> {
        crate::persist::write_atomic(path, &self.to_csv())
    }

    /// Atomically writes [`LearningCurve::to_csv_deterministic`] to `path`.
    pub fn write_csv_deterministic(&self, path: &Path) -> std::io::Result<()> {
        crate::persist::write_atomic(path, &self.to_csv_deterministic())
    }

    /// Aligned, human-readable table.
    pub fn to_table(&self) -> String {
        let mut out = format!(
            "{}\n{:>8} {:>8} {:>10} {:>10} {:>10} {:>10}\n",
            self.label, "samples", "%space", "est.mean", "est.sd", "true.mean", "true.sd"
        );
        for p in &self.points {
            let fmt_opt = |v: Option<f64>| v.map_or("-".to_string(), |x| format!("{x:.2}"));
            out.push_str(&format!(
                "{:>8} {:>8.2} {:>10.2} {:>10.2} {:>10} {:>10}\n",
                p.samples,
                p.percent_sampled,
                p.estimated_mean,
                p.estimated_std_dev,
                fmt_opt(p.true_mean),
                fmt_opt(p.true_std_dev),
            ));
        }
        out
    }

    /// First row whose estimated mean error is at or below `target`,
    /// if the curve ever gets there.
    pub fn first_reaching(&self, target: f64) -> Option<&CurvePoint> {
        self.points.iter().find(|p| p.estimated_mean <= target)
    }

    /// JSON value carrying every field bit-exactly (floats render via
    /// shortest-round-trip formatting) — the payload format the model
    /// registry persists so warm re-runs reconstruct whole curves without
    /// simulating.
    pub fn to_json_value(&self) -> Value {
        let opt = |v: Option<f64>| v.map_or(Value::Null, Value::num);
        Value::Object(vec![
            ("label".into(), Value::Str(self.label.clone())),
            (
                "points".into(),
                Value::Array(
                    self.points
                        .iter()
                        .map(|p| {
                            Value::Object(vec![
                                ("samples".into(), Value::num(p.samples as f64)),
                                ("percent_sampled".into(), Value::num(p.percent_sampled)),
                                ("estimated_mean".into(), Value::num(p.estimated_mean)),
                                ("estimated_std_dev".into(), Value::num(p.estimated_std_dev)),
                                ("true_mean".into(), opt(p.true_mean)),
                                ("true_std_dev".into(), opt(p.true_std_dev)),
                                ("training_seconds".into(), Value::num(p.training_seconds)),
                                (
                                    "simulation_seconds".into(),
                                    Value::num(p.simulation_seconds),
                                ),
                                (
                                    "prediction_seconds".into(),
                                    Value::num(p.prediction_seconds),
                                ),
                                ("mean_fold_epochs".into(), Value::num(p.mean_fold_epochs)),
                                (
                                    "unique_simulations".into(),
                                    Value::num(p.unique_simulations as f64),
                                ),
                                (
                                    "simulation_cache_hits".into(),
                                    Value::num(p.simulation_cache_hits as f64),
                                ),
                                (
                                    "simulated_instructions".into(),
                                    Value::num(p.simulated_instructions as f64),
                                ),
                                ("sim_failures".into(), Value::num(p.sim_failures as f64)),
                                ("sim_retries".into(), Value::num(p.sim_retries as f64)),
                                (
                                    "sim_quarantined".into(),
                                    Value::num(p.sim_quarantined as f64),
                                ),
                                ("sim_resampled".into(), Value::num(p.sim_resampled as f64)),
                            ])
                        })
                        .collect(),
                ),
            ),
        ])
    }

    /// Parses [`LearningCurve::to_json_value`] output.
    ///
    /// # Errors
    ///
    /// On missing fields or wrong types.
    pub fn from_json_value(value: &Value) -> Result<Self, JsonError> {
        let opt = |v: &Value| -> Result<Option<f64>, JsonError> {
            match v {
                Value::Null => Ok(None),
                other => other.as_f64().map(Some),
            }
        };
        let points = value
            .get("points")?
            .as_array()?
            .iter()
            .map(|p| {
                Ok(CurvePoint {
                    samples: p.get("samples")?.as_usize()?,
                    percent_sampled: p.get("percent_sampled")?.as_f64()?,
                    estimated_mean: p.get("estimated_mean")?.as_f64()?,
                    estimated_std_dev: p.get("estimated_std_dev")?.as_f64()?,
                    true_mean: opt(p.get("true_mean")?)?,
                    true_std_dev: opt(p.get("true_std_dev")?)?,
                    training_seconds: p.get("training_seconds")?.as_f64()?,
                    simulation_seconds: p.get("simulation_seconds")?.as_f64()?,
                    prediction_seconds: p.get("prediction_seconds")?.as_f64()?,
                    mean_fold_epochs: p.get("mean_fold_epochs")?.as_f64()?,
                    unique_simulations: p.get("unique_simulations")?.as_u64()?,
                    simulation_cache_hits: p.get("simulation_cache_hits")?.as_u64()?,
                    simulated_instructions: p.get("simulated_instructions")?.as_u64()?,
                    sim_failures: p.get("sim_failures")?.as_u64()?,
                    sim_retries: p.get("sim_retries")?.as_u64()?,
                    sim_quarantined: p.get("sim_quarantined")?.as_u64()?,
                    sim_resampled: p.get("sim_resampled")?.as_u64()?,
                })
            })
            .collect::<Result<Vec<_>, JsonError>>()?;
        Ok(Self {
            label: value.get("label")?.as_str()?.to_owned(),
            points,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use archpredict_ann::cross_validation::ErrorEstimate;

    fn round(samples: usize, mean: f64) -> Round {
        Round {
            samples,
            fraction_sampled: samples as f64 / 1000.0,
            estimate: ErrorEstimate {
                mean,
                std_dev: mean / 2.0,
                points: samples as u64,
            },
            training_seconds: 0.5,
            simulation_seconds: 0.25,
            simulation: crate::simulate::SimStats {
                unique_simulations: 45,
                cache_hits: 5,
                simulated_instructions: 45_000,
                wall_seconds: 0.25,
                failures: 7,
                retries: 5,
                quarantined: 2,
                resampled: 3,
            },
            prediction_seconds: 0.125,
            folds: vec![
                archpredict_ann::FoldRecord {
                    fold: 0,
                    train_samples: samples.saturating_sub(20),
                    es_samples: 10,
                    test_samples: 10,
                    epochs: 120,
                    best_es_error: mean,
                    seconds: 0.05,
                    reinits: 0,
                };
                10
            ],
        }
    }

    #[test]
    fn csv_has_header_and_rows() {
        let mut curve = LearningCurve::new("mesa (memory)");
        curve.push(&round(50, 8.0), None);
        curve.push(
            &round(100, 4.0),
            Some(TrueError {
                mean: 4.2,
                std_dev: 2.0,
                points: 100,
            }),
        );
        let csv = curve.to_csv();
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("label,samples"));
        assert!(lines[0].ends_with(
            "simulated_instructions,sim_failures,sim_retries,sim_quarantined,sim_resampled"
        ));
        assert!(lines[1].contains("mesa (memory),50,5.0000,8.0000"));
        assert!(lines[1].ends_with("0.5000,0.2500,0.1250,120.0,45,5,45000,7,5,2,3"));
        assert!(lines[2].contains("4.2000"));
    }

    #[test]
    fn deterministic_csv_excludes_wall_clock_columns() {
        let mut curve = LearningCurve::new("x");
        curve.push(&round(50, 8.0), None);
        // The same run with different timings renders identically.
        let mut jittered = LearningCurve::new("x");
        let mut r = round(50, 8.0);
        r.training_seconds = 99.0;
        r.simulation_seconds = 1.0;
        r.prediction_seconds = 2.0;
        r.simulation.wall_seconds = 3.0;
        jittered.push(&r, None);
        assert_eq!(
            curve.to_csv_deterministic(),
            jittered.to_csv_deterministic()
        );
        assert_ne!(curve.to_csv(), jittered.to_csv());
        let csv = curve.to_csv_deterministic();
        assert!(!csv.contains("seconds"), "{csv}");
        assert!(csv.lines().next().unwrap().ends_with(
            "simulated_instructions,sim_failures,sim_retries,sim_quarantined,sim_resampled"
        ));
        assert!(csv
            .lines()
            .nth(1)
            .unwrap()
            .ends_with("120.0,45,5,45000,7,5,2,3"));
    }

    #[test]
    fn csv_writes_are_atomic_and_readable() {
        let dir = std::env::temp_dir().join(format!("archpredict_report_{}", std::process::id()));
        let mut curve = LearningCurve::new("x");
        curve.push(&round(50, 8.0), None);
        let path = dir.join("curve.csv");
        curve.write_csv(&path).expect("write csv");
        assert_eq!(std::fs::read_to_string(&path).unwrap(), curve.to_csv());
        curve.write_csv_deterministic(&path).expect("rewrite");
        assert_eq!(
            std::fs::read_to_string(&path).unwrap(),
            curve.to_csv_deterministic()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn missing_true_error_renders_empty_fields() {
        let mut curve = LearningCurve::new("x");
        curve.push(&round(50, 8.0), None);
        let row = curve.to_csv().lines().nth(1).unwrap().to_string();
        assert!(row.contains(",,"), "row was {row}");
    }

    #[test]
    fn first_reaching_finds_threshold() {
        let mut curve = LearningCurve::new("x");
        curve.push(&round(50, 8.0), None);
        curve.push(&round(100, 3.0), None);
        curve.push(&round(150, 1.5), None);
        assert_eq!(curve.first_reaching(2.0).unwrap().samples, 150);
        assert_eq!(curve.first_reaching(5.0).unwrap().samples, 100);
        assert!(curve.first_reaching(0.5).is_none());
    }

    #[test]
    fn json_round_trip_is_exact() {
        let mut curve = LearningCurve::new("mesa (memory)");
        curve.push(&round(50, 8.0), None);
        curve.push(
            &round(100, 4.0 / 3.0),
            Some(TrueError {
                mean: 1.0 / 3.0,
                std_dev: 0.1 + 0.2, // deliberately non-representable
                points: 100,
            }),
        );
        let json = curve.to_json_value().to_json();
        let back = LearningCurve::from_json_value(&Value::parse(&json).unwrap()).unwrap();
        // PartialEq over f64 fields: equality here means bit-identical
        // (no NaNs are produced by push).
        assert_eq!(back, curve);
    }

    #[test]
    fn table_is_readable() {
        let mut curve = LearningCurve::new("gzip (processor)");
        curve.push(&round(50, 8.0), None);
        let table = curve.to_table();
        assert!(table.contains("gzip (processor)"));
        assert!(table.contains("est.mean"));
    }
}
