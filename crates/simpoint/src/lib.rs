//! SimPoint-style representative-interval selection.
//!
//! Reimplements the technique of Sherwood et al. (ASPLOS 2002) that the
//! paper composes with its ANN models (§5.3): program execution is divided
//! into fixed-length intervals; each interval is fingerprinted by its
//! **basic-block vector** (BBV); BBVs are reduced by random projection and
//! clustered with k-means (cluster count chosen by the Bayesian Information
//! Criterion); one representative interval per cluster is then simulated in
//! detail, and whole-program metrics are estimated as the cluster-weighted
//! average of the representatives' metrics.
//!
//! The result is a *fast but noisy* estimator of the simulator function —
//! exactly the kind of data source the paper shows ANN ensembles tolerate
//! well.
//!
//! # Example
//!
//! ```
//! use archpredict_simpoint::SimPointPlan;
//! use archpredict_workloads::{Benchmark, TraceGenerator};
//!
//! let generator = TraceGenerator::new(Benchmark::Mgrid);
//! let plan = SimPointPlan::build(&generator, 5_000, 10);
//! assert!(plan.points().len() <= 10);
//! // Weights cover the whole program.
//! let total: f64 = plan.points().iter().map(|p| p.weight).sum();
//! assert!((total - 1.0).abs() < 1e-9);
//! ```

pub mod project;

use archpredict_sim::{simulate_with_warmup, SimConfig};
use archpredict_stats::kmeans::kmeans_best_bic;
use archpredict_stats::rng::Xoshiro256;
use archpredict_workloads::TraceGenerator;

/// Dimensionality BBVs are reduced to before clustering (SimPoint uses 15).
pub const PROJECTED_DIMS: usize = 15;

/// One selected simulation point.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SimPoint {
    /// Interval index to simulate in detail.
    pub interval: usize,
    /// Fraction of program execution this point represents.
    pub weight: f64,
}

/// A complete SimPoint selection for one benchmark.
#[derive(Debug, Clone, PartialEq)]
pub struct SimPointPlan {
    points: Vec<SimPoint>,
    interval_len: usize,
    total_intervals: usize,
}

impl SimPointPlan {
    /// Profiles all intervals of `generator` (BBVs over `interval_len`
    /// instructions each), clusters them, and selects one representative
    /// per cluster, weighted by cluster population.
    ///
    /// `max_k` caps the number of simulation points, as in SimPoint's
    /// "maxK" parameter.
    ///
    /// # Panics
    ///
    /// Panics if `interval_len` is zero or `max_k` is zero.
    pub fn build(generator: &TraceGenerator, interval_len: usize, max_k: usize) -> Self {
        assert!(interval_len > 0, "interval_len must be positive");
        assert!(max_k > 0, "max_k must be positive");
        let total_intervals = generator.num_intervals();
        // 1. Profile: one BBV per interval.
        let bbvs: Vec<Vec<f64>> = (0..total_intervals)
            .map(|i| generator.bbv(i, interval_len))
            .collect();
        // 2. Random projection to a tractable dimensionality.
        let seed = generator.profile().seed ^ 0x51D0_9001;
        let projected = project::random_projection(&bbvs, PROJECTED_DIMS, seed);
        // 3. Cluster with BIC-selected k.
        let mut rng = Xoshiro256::seed_from(seed ^ 0xC105_7E12);
        let (_, clustering) =
            kmeans_best_bic(&projected, max_k.min(total_intervals), 100, &mut rng);
        // 4. One representative per cluster, weighted by cluster size.
        let reps = clustering.representatives(&projected);
        let sizes = clustering.cluster_sizes();
        let points = reps
            .iter()
            .zip(&sizes)
            .filter(|&(_, &size)| size > 0)
            .map(|(&rep, &size)| SimPoint {
                interval: rep,
                weight: size as f64 / total_intervals as f64,
            })
            .collect();
        Self {
            points,
            interval_len,
            total_intervals,
        }
    }

    /// The selected simulation points.
    pub fn points(&self) -> &[SimPoint] {
        &self.points
    }

    /// Interval length (instructions) used for profiling and simulation.
    pub fn interval_len(&self) -> usize {
        self.interval_len
    }

    /// Number of intervals in the whole program.
    pub fn total_intervals(&self) -> usize {
        self.total_intervals
    }

    /// Instructions that must be simulated under this plan.
    pub fn simulated_instructions(&self) -> u64 {
        (self.points.len() * self.interval_len) as u64
    }

    /// Instructions a full-program simulation would cost.
    pub fn full_instructions(&self) -> u64 {
        (self.total_intervals * self.interval_len) as u64
    }

    /// The factor by which this plan reduces simulated instructions.
    pub fn reduction_factor(&self) -> f64 {
        self.full_instructions() as f64 / self.simulated_instructions() as f64
    }

    /// SimPoint's estimate of whole-program IPC for `config`: simulate each
    /// representative interval in detail and combine by cluster weight.
    ///
    /// A fraction of each interval is used to warm architectural state, as
    /// SimPoint deployments do.
    pub fn estimate_ipc(&self, config: &SimConfig, generator: &TraceGenerator) -> f64 {
        let warmup = (self.interval_len / 3) as u64;
        let measured = self.interval_len as u64 - warmup;
        self.points
            .iter()
            .map(|p| {
                let r =
                    simulate_with_warmup(config, generator.interval(p.interval), warmup, measured);
                p.weight * r.ipc()
            })
            .sum()
    }
}

/// Reference "full" IPC: simulate every interval of the program and average
/// (every interval has equal length, so the mean is the program IPC).
pub fn full_program_ipc(
    config: &SimConfig,
    generator: &TraceGenerator,
    interval_len: usize,
) -> f64 {
    let warmup = (interval_len / 3) as u64;
    let measured = interval_len as u64 - warmup;
    let n = generator.num_intervals();
    let sum: f64 = (0..n)
        .map(|i| simulate_with_warmup(config, generator.interval(i), warmup, measured).ipc())
        .sum();
    sum / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use archpredict_workloads::Benchmark;

    const LEN: usize = 4000;

    #[test]
    fn plan_covers_all_phases() {
        let generator = TraceGenerator::new(Benchmark::Mgrid);
        let plan = SimPointPlan::build(&generator, LEN, 10);
        // mgrid has 3 phases; the representatives must span at least 3
        // distinct phases (clusters track phases).
        let mut phases: Vec<usize> = plan
            .points()
            .iter()
            .map(|p| generator.phase_of_interval(p.interval))
            .collect();
        phases.sort();
        phases.dedup();
        assert!(phases.len() >= 3, "only phases {phases:?} covered");
    }

    #[test]
    fn weights_sum_to_one_and_are_positive() {
        for b in [Benchmark::Gzip, Benchmark::Twolf, Benchmark::Equake] {
            let generator = TraceGenerator::new(b);
            let plan = SimPointPlan::build(&generator, LEN, 8);
            let total: f64 = plan.points().iter().map(|p| p.weight).sum();
            assert!((total - 1.0).abs() < 1e-9, "{}: {total}", b.name());
            assert!(plan.points().iter().all(|p| p.weight > 0.0));
        }
    }

    #[test]
    fn reduction_factor_is_meaningful() {
        let generator = TraceGenerator::new(Benchmark::Mcf);
        let plan = SimPointPlan::build(&generator, LEN, 6);
        assert!(
            plan.reduction_factor() >= 4.0,
            "reduction {}",
            plan.reduction_factor()
        );
    }

    #[test]
    fn estimate_tracks_full_simulation() {
        let generator = TraceGenerator::new(Benchmark::Mgrid);
        let plan = SimPointPlan::build(&generator, LEN, 10);
        let config = SimConfig::default();
        let est = plan.estimate_ipc(&config, &generator);
        let full = full_program_ipc(&config, &generator, LEN);
        let err = (est - full).abs() / full;
        assert!(
            err < 0.12,
            "SimPoint estimate {est:.4} vs full {full:.4}: {:.1}% error",
            err * 100.0
        );
    }

    #[test]
    fn plan_is_deterministic() {
        let generator = TraceGenerator::new(Benchmark::Mesa);
        let a = SimPointPlan::build(&generator, LEN, 8);
        let b = SimPointPlan::build(&generator, LEN, 8);
        assert_eq!(a, b);
    }

    #[test]
    fn interval_indices_are_in_range() {
        let generator = TraceGenerator::new(Benchmark::Applu);
        let plan = SimPointPlan::build(&generator, LEN, 8);
        assert!(plan
            .points()
            .iter()
            .all(|p| p.interval < generator.num_intervals()));
    }
}
