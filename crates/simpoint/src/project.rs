//! Random projection for dimensionality reduction.
//!
//! SimPoint projects ~100K-dimensional basic-block vectors down to 15
//! dimensions before clustering; the Johnson–Lindenstrauss lemma guarantees
//! pairwise distances are approximately preserved. We use a dense Gaussian
//! projection matrix generated deterministically from a seed.

use archpredict_stats::rng::Xoshiro256;

/// Projects each row of `vectors` to `dims` dimensions using a seeded
/// Gaussian random matrix (scaled by `1/sqrt(dims)`).
///
/// # Panics
///
/// Panics if `vectors` is empty, rows have inconsistent lengths, or `dims`
/// is zero.
pub fn random_projection(vectors: &[Vec<f64>], dims: usize, seed: u64) -> Vec<Vec<f64>> {
    assert!(!vectors.is_empty(), "no vectors to project");
    assert!(dims > 0, "projection dimensionality must be positive");
    let input_dim = vectors[0].len();
    assert!(
        vectors.iter().all(|v| v.len() == input_dim),
        "inconsistent vector dimensionality"
    );
    // Projection matrix: dims x input_dim, generated column-major per
    // output dimension so each output dim has an independent stream.
    let scale = 1.0 / (dims as f64).sqrt();
    let matrix: Vec<Vec<f64>> = (0..dims)
        .map(|d| {
            let mut rng = Xoshiro256::seed_from(seed).derive(d as u64 + 1);
            (0..input_dim)
                .map(|_| rng.next_gaussian() * scale)
                .collect()
        })
        .collect();
    vectors
        .iter()
        .map(|v| {
            matrix
                .iter()
                .map(|row| row.iter().zip(v).map(|(r, x)| r * x).sum())
                .collect()
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dist(a: &[f64], b: &[f64]) -> f64 {
        a.iter()
            .zip(b)
            .map(|(x, y)| (x - y) * (x - y))
            .sum::<f64>()
            .sqrt()
    }

    #[test]
    fn output_has_requested_shape() {
        let vs = vec![vec![1.0; 500], vec![0.0; 500]];
        let p = random_projection(&vs, 15, 7);
        assert_eq!(p.len(), 2);
        assert!(p.iter().all(|v| v.len() == 15));
    }

    #[test]
    fn deterministic_in_seed() {
        let vs = vec![vec![0.5; 100], vec![0.25; 100]];
        assert_eq!(random_projection(&vs, 8, 42), random_projection(&vs, 8, 42));
        assert_ne!(random_projection(&vs, 8, 42), random_projection(&vs, 8, 43));
    }

    #[test]
    fn preserves_relative_distances() {
        // Three points: a and b close, c far. After projection the ordering
        // of distances must be preserved (JL property, statistically).
        let mut rng = Xoshiro256::seed_from(9);
        let a: Vec<f64> = (0..1000).map(|_| rng.next_f64()).collect();
        let b: Vec<f64> = a.iter().map(|x| x + 0.01 * rng.next_gaussian()).collect();
        let c: Vec<f64> = (0..1000).map(|_| rng.next_f64() * 3.0).collect();
        let p = random_projection(&[a, b, c], 20, 11);
        assert!(dist(&p[0], &p[1]) < dist(&p[0], &p[2]));
        assert!(dist(&p[0], &p[1]) < dist(&p[1], &p[2]));
    }

    #[test]
    fn zero_vector_projects_to_zero() {
        let vs = vec![vec![0.0; 64]];
        let p = random_projection(&vs, 10, 3);
        assert!(p[0].iter().all(|&x| x == 0.0));
    }

    #[test]
    #[should_panic(expected = "no vectors")]
    fn empty_input_panics() {
        random_projection(&[], 4, 1);
    }
}
