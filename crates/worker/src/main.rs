//! `archpredict-worker` — the child side of the distributed simulation
//! oracle's pipe protocol (see `archpredict::distributed`).
//!
//! Lifecycle: echo the 8-byte magic+version handshake, receive one
//! `CONFIG` frame describing the evaluator to build, then loop over
//! `EVAL` spans — answering each index with a flushed `RESULT` frame the
//! moment it finishes (streamed replies are what let the coordinator
//! blame exactly the in-flight index when this process dies) and closing
//! each span with `SPAN_DONE`. Exits 0 on `SHUTDOWN` or stdin EOF,
//! nonzero on any protocol violation so the coordinator sees a crash,
//! never a silent wedge.

use archpredict::distributed::{proto, WorkerSpec, FP_WORKER_EVAL};
use archpredict::failpoint;
use archpredict::simulate::PointEvaluator;
use archpredict::telemetry;
use std::io::{self, BufReader, BufWriter, Read, Write};
use std::process::ExitCode;

fn run() -> io::Result<()> {
    // Chaos schedules reach workers through the environment: an `abort`
    // plan on the eval site is a real, deterministic mid-span death.
    failpoint::install_from_env().map_err(io::Error::other)?;
    // Trace context arrives two ways: the JSONL sink path through the
    // inherited ARCHPREDICT_TRACE variable, and the per-span trace ID on
    // each EVAL frame. One shared file collects the whole process tree.
    telemetry::install_trace_from_env()?;
    let stdin = io::stdin().lock();
    let mut input = BufReader::new(stdin);
    let stdout = io::stdout().lock();
    let mut output = BufWriter::new(stdout);

    // Version handshake: read the coordinator's 8 bytes, verify, echo.
    // A mismatch means a stale binary or a foreign parent — die loudly
    // before anything tries to parse frames.
    let mut hello = [0u8; 8];
    input.read_exact(&mut hello)?;
    if hello != proto::handshake() {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "handshake mismatch: coordinator and worker disagree on magic/version",
        ));
    }
    output.write_all(&hello)?;
    output.flush()?;

    // One CONFIG frame, exactly once, before any EVAL.
    let config = proto::read_frame(&mut input)?;
    let spec = match config.split_first() {
        Some((&proto::OP_CONFIG, body)) => WorkerSpec::decode(body)?,
        _ => {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                "expected CONFIG as the first frame",
            ))
        }
    };
    let evaluator = spec.evaluator_in_worker();
    let space = spec.space();

    loop {
        let frame = match proto::read_frame(&mut input) {
            Ok(frame) => frame,
            // EOF between frames: the coordinator closed our stdin
            // (normal teardown). Mid-frame truncation is a real error.
            Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(()),
            Err(e) => return Err(e),
        };
        match frame.split_first() {
            Some((&proto::OP_EVAL, body)) => {
                let (trace, indices) = proto::decode_eval(body)?;
                // Adopt the coordinator's trace for this span: the span
                // event and every RESULT echo carry it, so one grep of
                // the shared event log crosses the process boundary.
                let _trace_scope = telemetry::set_trace(trace);
                let span_event = telemetry::span("worker.span");
                for index in &indices {
                    if let Some(failure) = failpoint::check(FP_WORKER_EVAL) {
                        // `abort`/`exit` died inside check; a returnable
                        // failure exits nonzero so the coordinator sees
                        // a crash blamed on exactly this index.
                        return Err(failure.into_io_error(FP_WORKER_EVAL));
                    }
                    let point = space.try_point(*index as usize).map_err(|e| {
                        io::Error::new(
                            io::ErrorKind::InvalidData,
                            format!("index {index} out of range: {e}"),
                        )
                    })?;
                    let result = evaluator.try_evaluate(&point);
                    proto::write_frame(&mut output, &proto::encode_result(trace, *index, &result))?;
                    // Flush per result, not per span: the coordinator's
                    // crash blame depends on seeing every completed
                    // reply before this process can die.
                    output.flush()?;
                }
                // Emit the span before SPAN_DONE goes out: the moment the
                // coordinator sees the span complete it may tear the pool
                // down (kill, not drain), and the event must already be
                // appended by then.
                drop(span_event);
                proto::write_frame(
                    &mut output,
                    &proto::encode_span_done(trace, indices.len() as u32),
                )?;
                output.flush()?;
            }
            Some((&proto::OP_SHUTDOWN, _)) => return Ok(()),
            Some((&op, _)) => {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("unexpected opcode {op:#04x}"),
                ))
            }
            None => return Err(io::Error::new(io::ErrorKind::InvalidData, "empty frame")),
        }
    }
}

fn main() -> ExitCode {
    match run() {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            // A broken pipe means the coordinator went away mid-write;
            // that is its problem, not a protocol violation on our side.
            if e.kind() == io::ErrorKind::BrokenPipe {
                return ExitCode::SUCCESS;
            }
            eprintln!("archpredict-worker: {e}");
            ExitCode::FAILURE
        }
    }
}
